// Planner exploration tool: dissects a planning run for a user-specified
// scenario - grouping (with Theorem 1/2 splitting decisions), pipeline
// orchestration, work assignment, the ablation of each non-uniform
// dimension, and the migration cost from the healthy plan.
//
//   $ ./examples/planner_explore [straggler_gpu=0] [level=3]

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "core/grouping.h"
#include "core/migration.h"
#include "core/planner.h"
#include "model/cost_model.h"
#include "plan/estimator.h"

using namespace malleus;

int main(int argc, char** argv) {
  const int straggler_gpu = argc > 1 ? std::atoi(argv[1]) : 0;
  const int level = argc > 2 ? std::atoi(argv[2]) : 3;

  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(4);
  const model::CostModel cost(model::ModelSpec::Llama32B(), cluster.gpu());
  if (!cluster.ValidGpu(straggler_gpu)) {
    std::fprintf(stderr, "GPU id out of range (0..%d)\n",
                 cluster.num_gpus() - 1);
    return 1;
  }

  straggler::Situation s(cluster.num_gpus());
  s.SetLevel(straggler_gpu, level);
  std::printf("scenario: %s on %s\n\n", s.ToString().c_str(),
              cluster.ToString().c_str());

  // --- Grouping: show how Theorem 1/2 treat the straggler per TP degree.
  for (int tp : {2, 4, 8}) {
    core::GroupingOptions gopts;
    gopts.max_tp_degree = tp;
    Result<core::GroupingResult> g = core::GroupGpus(cluster, cost, s, gopts);
    MALLEUS_CHECK_OK(g.status());
    std::printf("grouping (max TP %d): capacity %.2f\n", tp, g->Capacity());
    for (size_t i = 0; i < g->groups.size(); ++i) {
      if (cluster.NodeOf(g->groups[i].gpus[0]) != 0) continue;  // Node 0.
      std::printf("  %s  y=%.3f\n", g->groups[i].ToString().c_str(),
                  g->rates[i]);
    }
  }

  // --- Full planning and per-dimension ablation.
  core::Planner planner(cluster, cost);
  const straggler::Situation healthy(cluster.num_gpus());
  Result<core::PlanResult> base = planner.Plan(healthy, 64);
  MALLEUS_CHECK_OK(base.status());

  struct Variant {
    const char* label;
    bool devices, layers, data;
  } variants[] = {
      {"uniform everything", false, false, false},
      {"+ non-uniform data", false, false, true},
      {"+ non-uniform layers", false, true, true},
      {"+ non-uniform devices/stages (full Malleus)", true, true, true},
  };
  std::printf("\nablation (estimated step seconds; healthy plan %.1f s):\n",
              base->estimated_full_seconds);
  for (const Variant& v : variants) {
    core::PlannerOptions opts;
    opts.dp_degree = base->plan.dp_degree();
    opts.nonuniform_devices = v.devices;
    opts.nonuniform_layers = v.layers;
    opts.nonuniform_data = v.data;
    Result<core::PlanResult> r = planner.Plan(s, 64, opts);
    if (!r.ok()) {
      std::printf("  %-45s: %s\n", v.label, r.status().ToString().c_str());
      continue;
    }
    std::printf("  %-45s: %.1f s\n", v.label, r->estimated_full_seconds);
  }

  // --- Chosen plan + what migrating to it would cost.
  core::PlannerOptions opts;
  opts.dp_degree = base->plan.dp_degree();
  Result<core::PlanResult> final_plan = planner.Plan(s, 64, opts);
  MALLEUS_CHECK_OK(final_plan.status());
  std::printf("\nchosen plan:\n%s", final_plan->plan.ToString().c_str());
  Result<core::MigrationPlan> migration =
      core::ComputeMigration(base->plan, final_plan->plan, cost);
  MALLEUS_CHECK_OK(migration.status());
  std::printf("\nmigration from the healthy plan: %s in %zu transfers, "
              "%.2f s\n",
              FormatBytes(static_cast<uint64_t>(migration->total_bytes))
                  .c_str(),
              migration->transfers.size(),
              core::MigrationSeconds(*migration, cluster));
  return 0;
}
