// Scenario runner: drive Malleus (and optionally the baselines) through an
// arbitrary straggler trace from the command line.
//
//   $ ./examples/scenario_cli --model=70b --nodes=8 --steps=6
//         --trace=normal,s1,s4,normal --baselines
//
// Flags:
//   --scenario=FILE             load model/cluster/trace/stragglers from a
//                               scenario file (see src/scenario/scenario.h);
//                               later flags override individual fields
//   --lint[=text|json|sarif]    lint the --scenario file (malleus::lint's
//                               full pass stack, including the planner's
//                               plan and the flow-conservation audit) and
//                               exit: 0 clean, 1 error-level findings
//   --model=32b|70b|110b|tiny   model to train          (default 32b)
//   --nodes=N                   8-GPU nodes             (default 4)
//   --batch=B                   global batch size       (default 64)
//   --steps=K                   steps per trace phase   (default 6)
//   --trace=p1,p2,...           phases: normal,s1..s6   (default full trace)
//   --seed=S                    simulator seed          (default 42)
//   --net-model=analytic|flow   comm pricing: isolated closed forms, or the
//                               contention-aware flow-level fabric simulator
//                               (default: build/env default, see net/fabric.h)
//   --planner-threads=N         worker threads for the planner's candidate
//                               sweep; 0 = MALLEUS_PLANNER_THREADS env or
//                               hardware concurrency (default 0). The chosen
//                               plan is identical at every thread count.
//   --baselines                 also run Megatron/DeepSpeed for comparison
//   --dynamic                   run the scenario's `dynamic = {...}` block
//                               through the online fault-tolerance policy
//                               engine (malleus::policy) instead of the
//                               phase trace; uses the block's defaults when
//                               the scenario has none
//   --policy=NAME               selector for --dynamic: adaptive (default),
//                               tolerate, promote, delta, replan, restart
//
// Observability outputs (all produced from the Malleus run only):
//   --trace-out=FILE    Chrome trace-event JSON of every 1F1B stage task,
//                       P2P transfer, grad-sync phase and engine transition
//                       (open in Perfetto / chrome://tracing)
//   --metrics-out=FILE  metrics registry snapshot as JSON (planner solve
//                       times, replan/migration counters, solver stats)
//   --events-out=FILE   run telemetry as JSONL (steps + typed engine
//                       events with plan fingerprints)
//   --csv-out=FILE      per-step run log as CSV
//   --record-out=DIR    write the whole run as a recorded-run bundle (see
//                       obs/bundle.h): the effective scenario, the chosen
//                       plan's golden snapshot, the Chrome trace, the
//                       metrics snapshot and the run log, manifest-hashed
//                       so tools/malleus_whatif can verify and replay the
//                       run offline

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/deepspeed.h"
#include "baselines/malleus_adapter.h"
#include "baselines/megatron.h"
#include "baselines/trace_runner.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/cache_codec.h"
#include "core/run_log.h"
#include "core/scenario_lint.h"
#include "lint/lint.h"
#include "net/fabric.h"
#include "obs/bundle.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "policy/events.h"
#include "policy/policy.h"
#include "policy/runner.h"
#include "scenario/scenario.h"
#include "solver/cache_io.h"
#include "solver/solve_cache.h"
#include "testkit/golden.h"

using namespace malleus;

namespace {

struct Args {
  std::string model = "32b";
  int nodes = 4;
  int64_t batch = 64;
  int steps = 6;
  std::vector<std::string> trace;
  uint64_t seed = 42;
  net::NetModel net_model = net::DefaultNetModel();
  int planner_threads = 0;
  bool baselines = false;
  std::string trace_out;
  std::string metrics_out;
  std::string events_out;
  std::string csv_out;
  std::string record_out;
  std::string scenario_file;
  /// Solver-cache persistence in the daemon's file format (solver/cache_io),
  /// so one-shot runs share malleus_served's --cache-save/--cache-load files.
  std::string cache_load;
  std::string cache_save;
  /// Custom straggler overlay carried over from --scenario, so a recorded
  /// bundle round-trips the whole file (the trace run itself only plays
  /// the phases; the overlay is what the what-if engine analyzes).
  std::vector<scenario::StragglerEntry> stragglers;
  bool lint = false;
  std::string lint_format = "text";
  /// Dynamic policy-engine mode: the scenario's `dynamic = {...}` block
  /// (or its defaults) replayed through policy::RunDynamic.
  bool dynamic = false;
  std::string policy = "adaptive";
  scenario::DynamicSpec dynamic_spec;
};

// Writes `content` to `path`; complains to stderr on failure.
bool WriteFileOrWarn(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--scenario=")) {
      out->scenario_file = v;
      // Apply the file immediately so later flags override its fields.
      Result<scenario::ScenarioSpec> spec = scenario::LoadScenarioFile(v);
      if (!spec.ok()) {
        std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
        return false;
      }
      out->model = spec->model;
      out->nodes = spec->nodes;
      out->batch = spec->batch;
      out->steps = spec->steps;
      out->seed = spec->seed;
      out->trace = spec->phases;
      out->stragglers = spec->stragglers;
      out->dynamic_spec = spec->dynamic;
      if (spec->dynamic.enabled) out->dynamic = true;
      if (!spec->net_model.empty()) {
        Result<net::NetModel> nm = net::ParseNetModel(spec->net_model);
        if (!nm.ok()) {
          std::fprintf(stderr, "%s\n", nm.status().ToString().c_str());
          return false;
        }
        out->net_model = *nm;
      }
    } else if (arg == "--lint") {
      out->lint = true;
    } else if (const char* v = value("--lint=")) {
      out->lint = true;
      out->lint_format = v;
      if (out->lint_format != "text" && out->lint_format != "json" &&
          out->lint_format != "sarif") {
        std::fprintf(stderr, "unknown lint format: %s\n", v);
        return false;
      }
    } else if (const char* v = value("--model=")) {
      out->model = v;
    } else if (const char* v = value("--nodes=")) {
      out->nodes = std::atoi(v);
    } else if (const char* v = value("--batch=")) {
      out->batch = std::atoll(v);
    } else if (const char* v = value("--steps=")) {
      out->steps = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      out->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--trace=")) {
      std::string phase;
      for (const char* c = v;; ++c) {
        if (*c == ',' || *c == '\0') {
          if (!phase.empty()) out->trace.push_back(phase);
          phase.clear();
          if (*c == '\0') break;
        } else {
          phase += *c;
        }
      }
    } else if (const char* v = value("--trace-out=")) {
      out->trace_out = v;
    } else if (const char* v = value("--metrics-out=")) {
      out->metrics_out = v;
    } else if (const char* v = value("--events-out=")) {
      out->events_out = v;
    } else if (const char* v = value("--csv-out=")) {
      out->csv_out = v;
    } else if (const char* v = value("--record-out=")) {
      out->record_out = v;
    } else if (const char* v = value("--net-model=")) {
      Result<net::NetModel> model = net::ParseNetModel(v);
      if (!model.ok()) {
        std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
        return false;
      }
      out->net_model = *model;
    } else if (const char* v = value("--cache-load=")) {
      out->cache_load = v;
    } else if (const char* v = value("--cache-save=")) {
      out->cache_save = v;
    } else if (const char* v = value("--planner-threads=")) {
      out->planner_threads = std::atoi(v);
      if (out->planner_threads < 0) {
        std::fprintf(stderr, "--planner-threads must be >= 0\n");
        return false;
      }
    } else if (arg == "--baselines") {
      out->baselines = true;
    } else if (arg == "--dynamic") {
      out->dynamic = true;
    } else if (const char* v = value("--policy=")) {
      out->policy = v;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

Result<model::ModelSpec> SpecFor(const std::string& name) {
  if (name == "32b") return model::ModelSpec::Llama32B();
  if (name == "70b") return model::ModelSpec::Llama70B();
  if (name == "110b") return model::ModelSpec::Llama110B();
  if (name == "tiny") return model::ModelSpec::Tiny();
  return Status::InvalidArgument("unknown model: " + name);
}

// The scenario the run actually executed, reconstructed from the effective
// flags (a loaded --scenario plus overrides). This is what --record-out
// persists, so a bundle replays the run as flagged, not as the file read.
scenario::ScenarioSpec EffectiveSpec(
    const Args& args, const std::vector<straggler::TracePhase>& trace) {
  scenario::ScenarioSpec spec;
  spec.model = args.model;
  spec.nodes = args.nodes;
  spec.gpus_per_node = 8;  // A800Cluster, the only shape the CLI runs.
  spec.batch = args.batch;
  spec.steps = args.steps;
  spec.seed = args.seed;
  spec.net_model = net::NetModelName(args.net_model);
  for (const straggler::TracePhase& p : trace) {
    std::string name = straggler::SituationName(p.id);
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    spec.phases.push_back(std::move(name));
  }
  spec.stragglers = args.stragglers;
  return spec;
}

Result<straggler::SituationId> PhaseFor(const std::string& name) {
  using straggler::SituationId;
  if (name == "normal") return SituationId::kNormal;
  if (name == "s1") return SituationId::kS1;
  if (name == "s2") return SituationId::kS2;
  if (name == "s3") return SituationId::kS3;
  if (name == "s4") return SituationId::kS4;
  if (name == "s5") return SituationId::kS5;
  if (name == "s6") return SituationId::kS6;
  return Status::InvalidArgument("unknown trace phase: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s [--scenario=FILE] [--lint[=text|json|sarif]] "
                 "[--model=32b|70b|110b|tiny] [--nodes=N] "
                 "[--batch=B] [--steps=K] [--trace=normal,s1,...] "
                 "[--seed=S] [--net-model=analytic|flow] "
                 "[--planner-threads=N] [--baselines] "
                 "[--dynamic] [--policy=NAME] "
                 "[--cache-load=FILE] [--cache-save=FILE] "
                 "[--trace-out=FILE] "
                 "[--metrics-out=FILE] [--events-out=FILE] "
                 "[--csv-out=FILE] [--record-out=DIR]\n",
                 argv[0]);
    return 2;
  }

  if (args.lint) {
    if (args.scenario_file.empty()) {
      std::fprintf(stderr, "--lint requires --scenario=FILE\n");
      return 2;
    }
    lint::DiagnosticSink sink;
    const Status status = core::LintScenarioFile(
        args.scenario_file, core::ScenarioLintOptions(), &sink);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    if (args.lint_format == "json") {
      std::printf("%s\n", lint::RenderJson(sink).c_str());
    } else if (args.lint_format == "sarif") {
      std::printf("%s\n",
                  lint::RenderSarif(sink, args.scenario_file).c_str());
    } else {
      std::printf("%s", lint::RenderText(sink).c_str());
    }
    return sink.HasErrors() ? 1 : 0;
  }

  Result<model::ModelSpec> spec = SpecFor(args.model);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 2;
  }
  if (args.nodes < 1 || args.batch < 1 || args.steps < 1) {
    std::fprintf(stderr,
                 "--nodes, --batch and --steps must all be >= 1\n");
    return 2;
  }
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(args.nodes);
  const model::CostModel cost(*spec, cluster.gpu());

  if (args.dynamic) {
    scenario::DynamicSpec dyn = args.dynamic_spec;
    dyn.enabled = true;  // --dynamic without a block runs the defaults.
    const policy::EventTrace trace = policy::GenerateEventTrace(
        cluster, dyn, dyn.seed != 0 ? dyn.seed : args.seed);
    Result<std::unique_ptr<policy::PolicySelector>> selector =
        policy::MakeSelector(args.policy);
    if (!selector.ok()) {
      std::fprintf(stderr, "%s\n", selector.status().ToString().c_str());
      return 2;
    }
    straggler::Situation initial(cluster.num_gpus());
    for (const scenario::StragglerEntry& entry : args.stragglers) {
      if (entry.gpu < 0 || entry.gpu >= cluster.num_gpus()) {
        std::fprintf(stderr, "straggler GPU %d is outside the cluster\n",
                     entry.gpu);
        return 2;
      }
      if (entry.is_rate) {
        initial.SetRate(entry.gpu, entry.rate);
      } else {
        initial.SetLevel(entry.gpu, entry.level);
      }
    }
    core::RunLog dyn_log;
    policy::DynamicRunOptions dyn_options;
    dyn_options.planner.num_threads = args.planner_threads;
    dyn_options.sim.net_model = args.net_model;
    dyn_options.run_log = &dyn_log;
    std::printf("model   : %s\n", cost.spec().ToString().c_str());
    std::printf("cluster : %s\n", cluster.ToString().c_str());
    std::printf("dynamic : %lld iterations, %zu events, policy=%s\n\n",
                static_cast<long long>(trace.iterations),
                trace.events.size(), args.policy.c_str());
    const Result<policy::DynamicRunResult> run = policy::RunDynamic(
        cluster, cost, initial, trace, args.batch, **selector, dyn_options);
    if (!run.ok()) {
      std::fprintf(stderr, "dynamic run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("iterations run   : %lld of %lld\n",
                static_cast<long long>(run->iterations_run),
                static_cast<long long>(run->trace_iterations));
    std::printf("events applied   : %d\n", run->events_applied);
    std::string actions;
    for (int a = 0; a < policy::kNumPolicyActions; ++a) {
      if (a > 0) actions += ", ";
      actions += StrFormat(
          "%s %d",
          policy::PolicyActionName(static_cast<policy::PolicyAction>(a)),
          run->action_counts[a]);
    }
    std::printf("actions          : %s\n", actions.c_str());
    std::printf("training         : %.3f s\n", run->training_seconds);
    std::printf("transition       : %.3f s\n", run->transition_seconds);
    std::printf("wall             : %.3f s\n", run->wall_seconds);
    std::printf("healthy step     : %.4f s/iter\n",
                run->healthy_step_seconds);
    std::printf("goodput          : %.4f\n", run->goodput);
    if (!run->stop_reason.empty()) {
      std::printf("stopped early    : %s\n", run->stop_reason.c_str());
    }
    int dyn_rc = run->stop_reason.empty() ? 0 : 1;
    if (!args.events_out.empty()) {
      if (WriteFileOrWarn(args.events_out, dyn_log.ToJsonl())) {
        std::printf("wrote %d steps + %zu events to %s\n",
                    dyn_log.num_steps(), dyn_log.events().size(),
                    args.events_out.c_str());
      } else {
        dyn_rc = 1;
      }
    }
    if (!args.csv_out.empty()) {
      if (WriteFileOrWarn(args.csv_out, dyn_log.ToCsv())) {
        std::printf("wrote run log CSV to %s\n", args.csv_out.c_str());
      } else {
        dyn_rc = 1;
      }
    }
    return dyn_rc;
  }

  std::vector<straggler::TracePhase> trace;
  if (args.trace.empty()) {
    trace = straggler::StandardTrace(args.steps);
  } else {
    for (const std::string& name : args.trace) {
      Result<straggler::SituationId> id = PhaseFor(name);
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 2;
      }
      trace.push_back({*id, args.steps});
    }
  }

  std::printf("model   : %s\n", cost.spec().ToString().c_str());
  std::printf("cluster : %s\n", cluster.ToString().c_str());
  std::printf("batch   : %lld sequences/step\n\n",
               static_cast<long long>(args.batch));

  std::vector<std::unique_ptr<baselines::TrainingFramework>> frameworks;
  obs::TraceRecorder trace_recorder;
  core::RunLog run_log;
  core::EngineOptions eng;
  eng.seed = args.seed;
  eng.sim.net_model = args.net_model;
  eng.planner.num_threads = args.planner_threads;
  // Replace the planner's measured wall time by a representative constant
  // so every exported artifact is byte-reproducible for a fixed --seed.
  eng.planning_seconds_override = 0.02;
  if (!args.trace_out.empty() || !args.record_out.empty()) {
    eng.sim.trace = &trace_recorder;
  }
  auto malleus_fw =
      std::make_unique<baselines::MalleusFramework>(cluster, cost, eng);
  baselines::MalleusFramework* malleus = malleus_fw.get();
  frameworks.push_back(std::move(malleus_fw));
  if (args.baselines) {
    baselines::MegatronOptions mo;
    mo.seed = args.seed;
    frameworks.push_back(
        std::make_unique<baselines::MegatronBaseline>(cluster, cost, mo));
    baselines::DeepSpeedOptions dso;
    dso.seed = args.seed;
    frameworks.push_back(
        std::make_unique<baselines::DeepSpeedBaseline>(cluster, cost, dso));
  }

  // Warm-load the Malleus planner's solve cache from a daemon-format cache
  // file. Any failure (missing file, no matching section, corrupt bytes)
  // downgrades to a cold start — persistence must never fail a run.
  const uint64_t cache_fp = core::PlannerCacheFingerprint(cluster, cost);
  if (!args.cache_load.empty()) {
    Result<std::vector<solver::CacheFileSection>> sections =
        solver::ReadCacheFile(args.cache_load);
    if (!sections.ok()) {
      std::fprintf(stderr, "cache load: %s (cold start)\n",
                   sections.status().ToString().c_str());
    } else {
      solver::SolveCache& cache = malleus->engine().planner().solve_cache();
      bool matched = false;
      for (const solver::CacheFileSection& section : *sections) {
        if (section.fingerprint != cache_fp) continue;
        matched = true;
        const Status status =
            cache.Deserialize(section.blob, core::OrchestrationCacheCodec());
        if (!status.ok()) {
          std::fprintf(stderr, "cache load: %s (cold start)\n",
                       status.ToString().c_str());
        } else {
          std::printf("warm solve cache: %zu entries from %s\n",
                      cache.size(), args.cache_load.c_str());
        }
        break;
      }
      if (!matched) {
        std::fprintf(stderr,
                     "cache load: %s has no section for this cluster/model "
                     "(cold start)\n",
                     args.cache_load.c_str());
      }
    }
  }

  TablePrinter table("per-phase mean step seconds");
  std::vector<std::string> header = {"Framework"};
  for (const auto& phase : trace) {
    header.push_back(straggler::SituationName(phase.id));
  }
  table.SetHeader(std::move(header));

  int rc = 0;
  for (auto& fw : frameworks) {
    baselines::TraceRunOptions run_opts;
    if (fw->name() == "Malleus") run_opts.run_log = &run_log;
    Result<std::vector<baselines::PhaseStats>> stats =
        baselines::RunTrace(fw.get(), cluster, trace, args.batch, run_opts);
    if (!stats.ok()) {
      // A framework that cannot plan or validate its plan is a failed run,
      // not a cosmetic gap in the table: exit non-zero after reporting.
      std::fprintf(stderr, "%s failed: %s\n", fw->name().c_str(),
                   stats.status().ToString().c_str());
      rc = 1;
      continue;
    }
    std::vector<std::string> row = {fw->name()};
    for (const baselines::PhaseStats& p : *stats) {
      std::string cell = StrFormat("%.1f", p.mean_step_seconds);
      if (p.restart_seconds > 0) {
        cell += StrFormat(" (+%.0fs restart)", p.restart_seconds);
      } else if (p.migration_seconds > 0) {
        cell += StrFormat(" (+%.1fs migr)", p.migration_seconds);
      }
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  if (!args.trace_out.empty()) {
    if (WriteFileOrWarn(args.trace_out, trace_recorder.ToChromeTraceJson())) {
      std::printf("\nwrote step trace (%zu events) to %s\n",
                  trace_recorder.num_events(), args.trace_out.c_str());
    } else {
      rc = 1;
    }
  }
  if (!args.metrics_out.empty()) {
    if (WriteFileOrWarn(args.metrics_out,
                        obs::MetricsRegistry::Global().ToJson() + "\n")) {
      std::printf("wrote metrics snapshot to %s\n", args.metrics_out.c_str());
    } else {
      rc = 1;
    }
  }
  if (!args.events_out.empty()) {
    if (WriteFileOrWarn(args.events_out, run_log.ToJsonl())) {
      std::printf("wrote %d steps + %zu events to %s\n", run_log.num_steps(),
                  run_log.events().size(), args.events_out.c_str());
    } else {
      rc = 1;
    }
  }
  if (!args.csv_out.empty()) {
    if (WriteFileOrWarn(args.csv_out, run_log.ToCsv())) {
      std::printf("wrote run log CSV to %s\n", args.csv_out.c_str());
    } else {
      rc = 1;
    }
  }
  if (!args.cache_save.empty()) {
    // Merge with an existing file: replace this cluster/model's section,
    // carry every other section forward (same policy as malleus_served).
    std::vector<solver::CacheFileSection> sections;
    Result<std::vector<solver::CacheFileSection>> existing =
        solver::ReadCacheFile(args.cache_save);
    if (existing.ok()) {
      for (solver::CacheFileSection& section : *existing) {
        if (section.fingerprint != cache_fp) {
          sections.push_back(std::move(section));
        }
      }
    }
    solver::CacheFileSection section;
    section.fingerprint = cache_fp;
    section.label = StrFormat("scenario_cli %s nodes=%d",
                              args.model.c_str(), args.nodes);
    section.blob = malleus->engine().planner().solve_cache().Serialize(
        core::OrchestrationCacheCodec());
    sections.push_back(std::move(section));
    std::sort(sections.begin(), sections.end(),
              [](const solver::CacheFileSection& a,
                 const solver::CacheFileSection& b) {
                return a.fingerprint < b.fingerprint;
              });
    const Status status = solver::WriteCacheFile(args.cache_save, sections);
    if (!status.ok()) {
      std::fprintf(stderr, "cache save: %s\n", status.ToString().c_str());
      rc = 1;
    } else {
      std::printf("wrote solve cache (%zu sections) to %s\n",
                  sections.size(), args.cache_save.c_str());
    }
  }
  if (!args.record_out.empty()) {
    const scenario::ScenarioSpec effective = EffectiveSpec(args, trace);
    obs::RunBundle bundle;
    bundle.producer = "scenario_cli";
    bundle.files.push_back({obs::kBundleScenarioName,
                            scenario::SerializeScenario(effective)});
    // The snapshot is re-rendered from the effective scenario (the planner
    // is deterministic), pinning the plan the bundle's trace executed so
    // malleus_whatif can cross-check its own re-derivation.
    Result<std::string> snapshot = testkit::RenderGoldenSnapshot(effective);
    if (snapshot.ok()) {
      bundle.files.push_back({obs::kBundleSnapshotName, *snapshot});
    } else {
      std::fprintf(stderr, "snapshot render failed: %s\n",
                   snapshot.status().ToString().c_str());
      rc = 1;
    }
    bundle.files.push_back({obs::kBundleTraceName,
                            trace_recorder.ToChromeTraceJson()});
    bundle.files.push_back({obs::kBundleMetricsName,
                            obs::MetricsRegistry::Global().ToJson() + "\n"});
    bundle.files.push_back({obs::kBundleEventsName, run_log.ToJsonl()});
    bundle.files.push_back({obs::kBundleCsvName, run_log.ToCsv()});
    const Status written = obs::WriteRunBundle(args.record_out, bundle);
    if (written.ok()) {
      std::printf("recorded run bundle (%zu members) to %s\n",
                  bundle.files.size(), args.record_out.c_str());
    } else {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      rc = 1;
    }
  }
  return rc;
}
