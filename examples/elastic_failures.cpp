// Failure handling demo (paper S5.1/S8): a GPU dies mid-training
// (straggling rate = infinity), Malleus reloads the latest checkpoint onto
// the remaining devices and continues; when the GPU comes back, the
// standby micro-benchmarks notice and the planner re-includes it.
//
//   $ ./examples/elastic_failures

#include <cstdio>

#include "core/engine.h"
#include "model/cost_model.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

using namespace malleus;

namespace {

void RunSteps(core::MalleusEngine& engine, const straggler::Situation& truth,
              const char* phase, int steps) {
  std::printf("--- %s\n", phase);
  for (int i = 0; i < steps; ++i) {
    Result<core::StepReport> r = engine.Step(truth);
    MALLEUS_CHECK_OK(r.status());
    std::printf("  step: %.1f s", r->step_seconds);
    if (r->recovery_seconds > 0) {
      std::printf("  [checkpoint reload %.0f s]", r->recovery_seconds);
    }
    if (r->replanned) std::printf("  [re-planned]");
    if (!r->note.empty()) std::printf("  (%s)", r->note.c_str());
    std::printf("  active GPUs: %zu\n",
                engine.current_plan().ActiveGpus().size());
  }
}

}  // namespace

int main() {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(4);
  const model::CostModel cost(model::ModelSpec::Llama32B(), cluster.gpu());

  core::MalleusEngine engine(cluster, cost);
  MALLEUS_CHECK_OK(engine.Initialize(/*global_batch=*/64));

  straggler::Situation healthy(cluster.num_gpus());
  RunSteps(engine, healthy, "all GPUs healthy", 3);

  straggler::Situation failed(cluster.num_gpus());
  failed.Fail(/*gpu=*/5);
  RunSteps(engine, failed, "GPU 5 becomes unresponsive", 4);

  RunSteps(engine, healthy, "GPU 5 recovers", 5);
  return 0;
}
