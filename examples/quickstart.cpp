// Quickstart: plan and simulate hybrid-parallel training of a LLaMA-2-70B
// model on 8 x 8-GPU nodes, first healthy, then with a straggler.
//
//   $ ./examples/quickstart
//
// Walks through the core public API: ClusterSpec -> CostModel -> Planner ->
// plan inspection -> step simulation.

#include <cstdio>

#include "core/planner.h"
#include "model/cost_model.h"
#include "sim/pipeline_sim.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

using namespace malleus;

int main() {
  // 1. Describe the cluster (the paper's testbed: A800-80GB nodes).
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(8);
  std::printf("cluster : %s\n", cluster.ToString().c_str());

  // 2. Describe the model and build the profiled-equivalent cost model.
  const model::CostModel cost(model::ModelSpec::Llama70B(), cluster.gpu());
  std::printf("model   : %s\n\n", cost.spec().ToString().c_str());

  // 3. Plan for a healthy cluster.
  core::Planner planner(cluster, cost);
  const straggler::Situation healthy(cluster.num_gpus());
  Result<core::PlanResult> base = planner.Plan(healthy, /*global_batch=*/64);
  MALLEUS_CHECK_OK(base.status());
  std::printf("healthy plan (estimated %.1f s/step, planned in %.2f s):\n%s\n",
              base->estimated_full_seconds, base->timings.total_seconds,
              base->plan.ToString().c_str());

  // 4. A level-1 straggler appears on GPU 0; re-plan with the DP degree
  //    kept (the paper's footnote-2 policy).
  straggler::Situation s1(cluster.num_gpus());
  s1.SetLevel(/*gpu=*/0, /*level=*/1);
  std::printf("straggler: %s\n", s1.ToString().c_str());
  core::PlannerOptions opts;
  opts.dp_degree = base->plan.dp_degree();
  Result<core::PlanResult> adapted = planner.Plan(s1, 64, opts);
  MALLEUS_CHECK_OK(adapted.status());
  std::printf("adapted plan (estimated %.1f s/step):\n%s\n",
              adapted->estimated_full_seconds,
              adapted->plan.ToString().c_str());

  // 5. Simulate one training step of each plan under the straggler.
  Rng rng(0);
  sim::SimOptions sim_opts;
  Result<sim::StepResult> stale =
      sim::SimulateStep(cluster, cost, base->plan, s1, sim_opts, &rng);
  Result<sim::StepResult> fresh =
      sim::SimulateStep(cluster, cost, adapted->plan, s1, sim_opts, &rng);
  MALLEUS_CHECK_OK(stale.status());
  MALLEUS_CHECK_OK(fresh.status());
  std::printf("step time under the straggler:\n");
  std::printf("  old (uniform) plan : %.1f s\n", stale->step_seconds);
  std::printf("  Malleus plan       : %.1f s\n", fresh->step_seconds);
  std::printf("  theoretic optimum  : %.1f s\n",
              base->estimated_full_seconds * s1.TheoreticSlowdown());
  return 0;
}
