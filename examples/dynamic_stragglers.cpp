// Dynamic-straggler demo: run the full Malleus engine (profiler + planner +
// executor) through the paper's Figure 7 trace on the 32B model and watch
// it detect shifts, re-plan asynchronously, and migrate on the fly.
//
//   $ ./examples/dynamic_stragglers

#include <cstdio>

#include "core/engine.h"
#include "model/cost_model.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

using namespace malleus;

int main() {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(4);
  const model::CostModel cost(model::ModelSpec::Llama32B(), cluster.gpu());

  core::MalleusEngine engine(cluster, cost);
  MALLEUS_CHECK_OK(engine.Initialize(/*global_batch=*/64));
  std::printf("initial plan:\n%s\n", engine.current_plan().ToString().c_str());

  for (const straggler::TracePhase& phase :
       straggler::StandardTrace(/*steps_per_phase=*/6)) {
    Result<straggler::Situation> truth =
        straggler::Situation::Canonical(cluster, phase.id);
    MALLEUS_CHECK_OK(truth.status());
    std::printf("--- %s  (%s)\n", straggler::SituationName(phase.id),
                truth->ToString().c_str());
    for (int step = 0; step < phase.steps; ++step) {
      Result<core::StepReport> r = engine.Step(*truth);
      MALLEUS_CHECK_OK(r.status());
      std::printf("  step %d: %.1f s", step, r->step_seconds);
      if (r->replanned) {
        std::printf("  [re-planned in %.2f s (overlapped)%s%s]",
                    r->planning_seconds,
                    r->migration_seconds > 0 ? ", migrated" : "",
                    r->note.empty() ? "" : (", " + r->note).c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("\nfinal plan:\n%s", engine.current_plan().ToString().c_str());
  return 0;
}
