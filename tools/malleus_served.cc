// malleus_served: the planner-as-a-service daemon. Speaks the versioned
// JSONL protocol (serve/protocol.h) over TCP, or over stdin/stdout with
// --stdio for scripted sessions and tests.
//
//   $ ./tools/malleus_served --port=7077 --cache-save=/var/tmp/malleus.cache
//   listening on 127.0.0.1:7077
//
//   $ ./tools/malleus_served --stdio < session.jsonl
//
// The daemon serves register/plan/replan/estimate/lint/status/save_cache
// for any number of registered clusters concurrently and exits on a
// `shutdown` request (graceful drain: every admitted request is answered,
// the solver cache is persisted when --cache-save is set).
//
// Flags:
//   --port=N             TCP listen port on 127.0.0.1 (0 = ephemeral;
//                        the chosen port is printed either way)
//   --stdio              serve stdin/stdout instead of TCP
//   --workers=N          concurrent request executors      (default 2)
//   --planner-threads=N  threads per planner sweep         (default 1)
//   --max-queue=N        admission queue bound             (default 64)
//   --cache-load=FILE    warm-load the solver cache at startup
//   --cache-save=FILE    persist the solver cache at shutdown
//
// Exit status: 0 = clean shutdown, 1 = startup or shutdown failure,
// 2 = bad usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/server.h"
#include "serve/transport.h"

using namespace malleus;

namespace {

struct Args {
  int port = 0;
  bool stdio = false;
  serve::ServerOptions options;
};

bool ParseIntFlag(const std::string& arg, const char* prefix, int* out) {
  const size_t len = std::strlen(prefix);
  if (arg.rfind(prefix, 0) != 0) return false;
  char* end = nullptr;
  const long value = std::strtol(arg.c_str() + len, &end, 10);
  if (end == nullptr || *end != '\0' || value < 0 || value > 1 << 20) {
    std::fprintf(stderr, "bad value in %s\n", arg.c_str());
    std::exit(2);
  }
  *out = static_cast<int>(value);
  return true;
}

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int value = 0;
    if (arg == "--stdio") {
      out->stdio = true;
    } else if (ParseIntFlag(arg, "--port=", &out->port)) {
    } else if (ParseIntFlag(arg, "--workers=", &value)) {
      out->options.num_workers = value;
    } else if (ParseIntFlag(arg, "--planner-threads=", &value)) {
      out->options.planner_threads = value;
    } else if (ParseIntFlag(arg, "--max-queue=", &value)) {
      out->options.max_queue = value;
    } else if (arg.rfind("--cache-load=", 0) == 0) {
      out->options.cache_load_path = arg.substr(13);
    } else if (arg.rfind("--cache-save=", 0) == 0) {
      out->options.cache_save_path = arg.substr(13);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (out->options.num_workers < 1 || out->options.planner_threads < 1 ||
      out->options.max_queue < 1) {
    std::fprintf(stderr,
                 "--workers/--planner-threads/--max-queue must be >= 1\n");
    return false;
  }
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: malleus_served [--port=N | --stdio] [--workers=N]\n"
      "                      [--planner-threads=N] [--max-queue=N]\n"
      "                      [--cache-load=FILE] [--cache-save=FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  serve::Server server(args.options);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }

  if (args.stdio) {
    status = serve::ServeStdio(&server, std::cin, std::cout);
  } else {
    serve::TcpServer tcp(&server);
    status = tcp.Listen(args.port);
    if (status.ok()) {
      // Parseable by scripts that passed --port=0.
      std::fprintf(stdout, "listening on 127.0.0.1:%d\n", tcp.port());
      std::fflush(stdout);
      status = tcp.Serve();
    }
  }
  if (!status.ok()) {
    std::fprintf(stderr, "serve: %s\n", status.ToString().c_str());
    // Best-effort drain on the error path; its own failure is secondary
    // to the transport error already being reported.
    const Status drain = server.Shutdown();
    if (!drain.ok()) {
      std::fprintf(stderr, "shutdown: %s\n", drain.ToString().c_str());
    }
    return 1;
  }

  status = server.Shutdown();
  if (!status.ok()) {
    std::fprintf(stderr, "shutdown: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
