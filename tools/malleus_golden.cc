// malleus_golden: golden-trace regression for the shipped example
// scenarios.
//
//   $ ./tools/malleus_golden                       # check against goldens
//   $ ./tools/malleus_golden --update-golden       # refresh the goldens
//
// For every *.scenario under --scenario-dir (sorted by name), the planner
// runs for each situation the scenario implies and the resulting plan,
// closed-form estimates and noise-free simulated step times are rendered
// into one deterministic snapshot (testkit::RenderGoldenSnapshot). In
// check mode the snapshot must match tests/golden/<name>.golden byte for
// byte; any drift — a different plan, a shifted estimate, a new failure —
// fails with the first differing line. --update-golden rewrites the
// goldens instead (review the diff before committing).
//
// Exit status: 0 = all snapshots match (or were written), 1 = drift or a
// scenario that no longer renders, 2 = bad usage / I/O failure.
//
// Flags:
//   --scenario-dir=DIR   scenarios to snapshot   (default examples/scenarios)
//   --golden-dir=DIR     goldens location        (default tests/golden)
//   --update-golden      write snapshots instead of comparing

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "testkit/golden.h"

using namespace malleus;

namespace {

struct Args {
  std::string scenario_dir = "examples/scenarios";
  std::string golden_dir = "tests/golden";
  bool update = false;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scenario-dir=", 0) == 0) {
      out->scenario_dir = arg.substr(15);
    } else if (arg.rfind("--golden-dir=", 0) == 0) {
      out->golden_dir = arg.substr(13);
    } else if (arg == "--update-golden") {
      out->update = true;
    } else {
      if (arg != "--help" && arg != "-h") {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      }
      return false;
    }
  }
  return true;
}

bool ReadFile(const std::string& path, std::string* content) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *content = buffer.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

// The 1-based line number and text of the first line where a and b differ.
void FirstDiff(const std::string& a, const std::string& b, int* line,
               std::string* a_line, std::string* b_line) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  *line = 0;
  for (;;) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    ++*line;
    if (!ga && !gb) return;  // Equal (differ only past EOF — impossible).
    if (!ga || !gb || la != lb) {
      *a_line = ga ? la : "<eof>";
      *b_line = gb ? lb : "<eof>";
      return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: malleus_golden [--scenario-dir=DIR] "
                 "[--golden-dir=DIR] [--update-golden]\n");
    return 2;
  }

  std::error_code ec;
  std::vector<std::filesystem::path> scenarios;
  for (const auto& entry :
       std::filesystem::directory_iterator(args.scenario_dir, ec)) {
    if (entry.path().extension() == ".scenario") {
      scenarios.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "cannot list %s: %s\n", args.scenario_dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  if (scenarios.empty()) {
    std::fprintf(stderr, "no *.scenario files under %s\n",
                 args.scenario_dir.c_str());
    return 2;
  }
  std::sort(scenarios.begin(), scenarios.end());

  if (args.update) {
    std::filesystem::create_directories(args.golden_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", args.golden_dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
  }

  bool drifted = false;
  for (const std::filesystem::path& path : scenarios) {
    const std::string name = path.stem().string();
    const std::string golden_path =
        args.golden_dir + "/" + name + ".golden";
    Result<scenario::ScenarioSpec> spec =
        scenario::LoadScenarioFile(path.string());
    if (!spec.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.string().c_str(),
                   spec.status().ToString().c_str());
      drifted = true;
      continue;
    }
    Result<std::string> snapshot = testkit::RenderGoldenSnapshot(*spec);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.string().c_str(),
                   snapshot.status().ToString().c_str());
      drifted = true;
      continue;
    }
    if (args.update) {
      if (!WriteFile(golden_path, *snapshot)) {
        std::fprintf(stderr, "cannot write %s\n", golden_path.c_str());
        return 2;
      }
      std::printf("wrote %s\n", golden_path.c_str());
      continue;
    }
    std::string golden;
    if (!ReadFile(golden_path, &golden)) {
      std::fprintf(stderr,
                   "%s: missing golden %s (run malleus_golden "
                   "--update-golden)\n",
                   name.c_str(), golden_path.c_str());
      drifted = true;
      continue;
    }
    if (golden == *snapshot) {
      std::printf("%s: ok\n", name.c_str());
      continue;
    }
    int line = 0;
    std::string golden_line;
    std::string current_line;
    FirstDiff(golden, *snapshot, &line, &golden_line, &current_line);
    std::fprintf(stderr,
                 "%s: DRIFT at line %d\n  golden : %s\n  current: %s\n"
                 "  (refresh with malleus_golden --update-golden if "
                 "intended)\n",
                 name.c_str(), line, golden_line.c_str(),
                 current_line.c_str());
    drifted = true;
  }
  return drifted ? 1 : 0;
}
