// malleus_detlint: the repo's determinism & concurrency static analyzer
// (malleus::analyze, DESIGN.md §15), run over C++ sources.
//
//   $ ./tools/malleus_detlint src tools tests bench
//   $ ./tools/malleus_detlint --format=sarif src > detlint.sarif
//   $ ./tools/malleus_detlint --baseline=tools/detlint_baseline.txt src
//   $ ./tools/malleus_detlint --explain=det.unordered-iteration
//   $ ./tools/malleus_detlint --list
//
// Arguments are files or directories; directories are walked recursively
// for *.h / *.cc, skipping build trees (build*), hidden directories, and
// tests/detlint_corpus (whose snippets are deliberately bad — pass a
// corpus file explicitly to analyze it, as the contract test does).
//
// Two passes: first every file is lexed and indexed (so status.discarded
// knows which names return Status/Result across the whole set), then each
// file is analyzed in sorted path order — output is byte-deterministic
// for a given tree.
//
// Exit status, matching malleus_lint: 0 = no error-level findings
// (stale-baseline notes don't fail), 1 = at least one error-level finding
// or an unreadable file, 2 = bad usage.
//
// Flags:
//   --format=text|json|sarif   output format                (default text)
//   --baseline=FILE            suppress the findings listed in FILE
//                              (format: CODE PATH:LINE reason)
//   --explain=CODE             print the rule's rationale and exit
//   --list                     print the rule registry and exit

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "lint/diagnostic.h"

using namespace malleus;

namespace {

struct Args {
  std::string format = "text";
  std::string baseline_path;
  std::string explain_code;
  bool list = false;
  std::vector<std::string> paths;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      out->format = arg.substr(9);
      if (out->format != "text" && out->format != "json" &&
          out->format != "sarif") {
        std::fprintf(stderr, "unknown format: %s\n", out->format.c_str());
        return false;
      }
    } else if (arg.rfind("--baseline=", 0) == 0) {
      out->baseline_path = arg.substr(11);
    } else if (arg.rfind("--explain=", 0) == 0) {
      out->explain_code = arg.substr(10);
    } else if (arg == "--list") {
      out->list = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      out->paths.push_back(arg);
    }
  }
  return out->list || !out->explain_code.empty() || !out->paths.empty();
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool IsCppSource(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

// True for directories the walker must not descend into: build trees,
// hidden directories, and the deliberately-bad rule corpus.
bool SkippedDir(const std::string& name) {
  if (name.rfind("build", 0) == 0) return true;
  if (!name.empty() && name[0] == '.') return true;
  return name == "detlint_corpus";
}

// Expands files/directories into the sorted list of sources to analyze.
// Explicitly named files are always included, corpus or not.
bool CollectSources(const std::vector<std::string>& paths,
                    std::vector<std::string>* out) {
  namespace fs = std::filesystem;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, ec), end;
      if (ec) {
        std::fprintf(stderr, "%s: %s\n", p.c_str(), ec.message().c_str());
        return false;
      }
      for (; it != end; it.increment(ec)) {
        if (ec) {
          std::fprintf(stderr, "%s: %s\n", p.c_str(), ec.message().c_str());
          return false;
        }
        if (it->is_directory() &&
            SkippedDir(it->path().filename().string())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsCppSource(it->path())) {
          out->push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      out->push_back(fs::path(p).generic_string());
    } else {
      std::fprintf(stderr, "%s: not a file or directory\n", p.c_str());
      return false;
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

void PrintRuleList() {
  for (const analyze::RuleInfo& rule : analyze::Rules()) {
    std::printf("%-7s %-30s %s\n", lint::SeverityName(rule.severity),
                rule.code, rule.summary);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: %s [--format=text|json|sarif] [--baseline=FILE] "
        "[--explain=CODE] [--list] PATH...\n"
        "PATHs are C++ files or directories (recursed for *.h, *.cc)\n",
        argv[0]);
    return 2;
  }
  if (args.list) {
    PrintRuleList();
    return 0;
  }
  if (!args.explain_code.empty()) {
    const analyze::RuleInfo* rule = analyze::FindRule(args.explain_code);
    if (rule == nullptr) {
      std::fprintf(stderr, "unknown rule: %s (see --list)\n",
                   args.explain_code.c_str());
      return 2;
    }
    std::printf("%s (%s)\n%s\n\n%s\n", rule->code,
                lint::SeverityName(rule->severity), rule->summary,
                rule->explanation);
    return 0;
  }

  std::vector<analyze::BaselineEntry> baseline;
  if (!args.baseline_path.empty()) {
    std::string text;
    if (!ReadFile(args.baseline_path, &text)) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   args.baseline_path.c_str());
      return 2;
    }
    Result<std::vector<analyze::BaselineEntry>> parsed =
        analyze::ParseBaseline(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", args.baseline_path.c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    baseline = std::move(parsed).ValueOrDie();
  }

  std::vector<std::string> sources;
  if (!CollectSources(args.paths, &sources)) return 2;

  // Pass 1: lex + index every file; pass 2: run the rules.
  bool readable = true;
  std::vector<std::pair<std::string, analyze::LexedFile>> lexed;
  lexed.reserve(sources.size());
  analyze::SymbolIndex index;
  for (const std::string& path : sources) {
    std::string source;
    if (!ReadFile(path, &source)) {
      std::fprintf(stderr, "%s: cannot read\n", path.c_str());
      readable = false;
      continue;
    }
    lexed.emplace_back(path, analyze::Lex(source));
    index.AddFile(lexed.back().second);
  }
  const analyze::AnalyzeOptions options;
  lint::DiagnosticSink raw;
  for (const auto& [path, file] : lexed) {
    analyze::AnalyzeFile(path, file, index, options, &raw);
  }
  lint::DiagnosticSink sink;
  analyze::ApplyBaseline(baseline, raw, &sink);

  if (args.format == "json") {
    std::printf("%s\n", lint::RenderJson(sink).c_str());
  } else if (args.format == "sarif") {
    std::printf("%s\n",
                lint::RenderSarif(sink, args.paths.front(), "malleus-detlint")
                    .c_str());
  } else if (sink.empty()) {
    std::printf("%zu file(s): no findings\n", lexed.size());
  } else {
    std::printf("%s", lint::RenderText(sink).c_str());
  }
  return (sink.HasErrors() || !readable) ? 1 : 0;
}
