// malleus_client: command-line client for a running malleus_served.
//
//   $ ./tools/malleus_client --port=7077 register
//         '{"name":"c1","scenario":"model = 32b\nnodes = 8\nbatch = 64"}'
//   $ ./tools/malleus_client --port=7077 plan
//         '{"cluster":"c1","situation":"s3"}'
//   $ ./tools/malleus_client --port=7077 status
//   $ ./tools/malleus_client --port=7077 --scenario-file=run.scenario
//         register '{"name":"c1"}'
//
// The first positional argument is the method, the optional second one
// the params JSON object. --scenario-file=FILE reads the file and injects
// its contents as the params' "scenario" string (saving the caller the
// JSON escaping of a multi-line scenario).
//
// Prints the raw response line; exit 0 on an ok response, 1 on a wire
// error or transport failure, 2 on bad usage.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "serve/client.h"
#include "serve/json.h"

using namespace malleus;

namespace {

struct Args {
  std::string host = "127.0.0.1";
  int port = 0;
  long deadline_ms = -1;
  std::string scenario_file;
  std::string method;
  std::string params;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) {
      out->host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      out->port = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      out->deadline_ms = std::atol(arg.c_str() + 14);
    } else if (arg.rfind("--scenario-file=", 0) == 0) {
      out->scenario_file = arg.substr(16);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else if (out->method.empty()) {
      out->method = arg;
    } else if (out->params.empty()) {
      out->params = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (out->method.empty() || out->port <= 0) {
    return false;
  }
  return true;
}

void Usage() {
  std::fprintf(stderr,
               "usage: malleus_client --port=N [--host=H] [--deadline-ms=D]\n"
               "                      [--scenario-file=FILE] METHOD "
               "[PARAMS_JSON]\n");
}

// Splices the scenario file's text into the params object as "scenario".
Result<std::string> InjectScenario(const std::string& params,
                                   const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(
        StrFormat("cannot read scenario file %s", path.c_str()));
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string field =
      StrFormat("\"scenario\":\"%s\"", JsonEscape(text.str()).c_str());
  if (params.empty() || params == "{}") {
    return StrFormat("{%s}", field.c_str());
  }
  // Validate, then splice the field in after the opening brace.
  MALLEUS_ASSIGN_OR_RETURN(serve::JsonValue parsed,
                           serve::JsonValue::Parse(params));
  if (!parsed.is_object()) {
    return Status::InvalidArgument("PARAMS_JSON must be a JSON object");
  }
  const size_t brace = params.find('{');
  return params.substr(0, brace + 1) + field +
         (parsed.members().empty() ? "" : ",") + params.substr(brace + 1);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  std::string params = args.params;
  if (!args.scenario_file.empty()) {
    Result<std::string> injected =
        InjectScenario(params, args.scenario_file);
    if (!injected.ok()) {
      std::fprintf(stderr, "%s\n", injected.status().ToString().c_str());
      return 2;
    }
    params = *injected;
  }

  Result<std::unique_ptr<serve::Client>> client =
      serve::Client::ConnectTcp(args.host, args.port);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  Result<std::string> response =
      (*client)->CallRaw(args.method, params, args.deadline_ms);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stdout, "%s\n", response->c_str());

  // Exit code reflects the wire-level outcome.
  Result<serve::JsonValue> doc = serve::JsonValue::Parse(*response);
  if (doc.ok()) {
    const serve::JsonValue* ok = doc->Find("ok");
    if (ok != nullptr && ok->is_bool() && ok->bool_value()) return 0;
  }
  return 1;
}
