#!/usr/bin/env bash
# Formats the C++ tree with clang-format (config: .clang-format).
#
#   tools/format.sh            # rewrite files in place
#   tools/format.sh --check    # exit 1 if any file needs reformatting
#
# When clang-format is not installed (the CI container ships only gcc),
# the script reports a skip and exits 0 so pipelines that chain it stay
# green; formatting is then enforced wherever the tool exists.
set -euo pipefail

cd "$(dirname "$0")/.."

CHECK=0
for arg in "$@"; do
  case "$arg" in
    --check) CHECK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format.sh: clang-format not found; skipping (install LLVM to enforce)"
  exit 0
fi

mapfile -t files < <(git ls-files 'src/*.h' 'src/*.cc' 'tools/*.cc' \
                                  'examples/*.cpp' 'tests/*.cc')

if [[ "$CHECK" == 1 ]]; then
  clang-format --dry-run --Werror "${files[@]}"
  echo "format.sh: ${#files[@]} files clean"
else
  clang-format -i "${files[@]}"
  echo "format.sh: formatted ${#files[@]} files"
fi
