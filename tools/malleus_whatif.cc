// malleus_whatif: offline what-if attribution over a recorded-run bundle.
//
//   $ ./examples/scenario_cli --scenario=straggle_s3.scenario
//         --record-out=/tmp/run
//   $ ./tools/malleus_whatif /tmp/run --auto-grid --top=10
//         --report-out=report.json --csv-out=report.csv
//
// Loads the bundle (manifest-verified: a truncated or edited member fails
// cleanly), re-derives the recorded plan from its scenario, sweeps a
// counterfactual grid — heal/dampen each straggler, scale NIC/NVLink
// bandwidth, pin the planner's TP degree, add standby nodes, swap the
// network cost model — and prints the causes ranked by seconds of step
// time attributed to each. The JSON and CSV reports are byte-identical
// across repeat invocations at any --threads value.
//
// Exit status: 0 = sweep completed, 1 = bad bundle / failed sweep / failed
// output write, 2 = bad usage.
//
// Flags:
//   --grid=FILE        counterfactual grid, one per line (see
//                      scenario/counterfactual.h for the grammar)
//   --auto-grid[=full] build the standard grid for the recorded situation;
//                      `full` additionally sweeps removals AND dampenings
//                      over every GPU (a 64-GPU bundle yields 250+
//                      counterfactuals). Default when --grid is absent.
//   --phase=LABEL      situation to attribute ("overlay", "Normal", "S3",
//                      ...); default: the implied situation with the most
//                      stragglers
//   --report-out=FILE  write the ranked report as JSON
//   --csv-out=FILE     write the ranked report as RFC 4180 CSV
//   --threads=N        sweep workers (0 = hardware default); report bytes
//                      are identical at every value
//   --no-replan        attribute straggler/bandwidth edits by fixed-plan
//                      replay alone instead of the better of replay and
//                      re-plan (force_tp / add_standby_node still re-plan)
//   --top=N            rows to print in the text table (0 = all)
//   --verify-snapshot  re-render the scenario's golden snapshot and require
//                      it to match the bundle's snapshot member byte for
//                      byte (catches bundles recorded by a drifted build)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bundle.h"
#include "obs/report.h"
#include "scenario/counterfactual.h"
#include "testkit/golden.h"
#include "whatif/whatif.h"

using namespace malleus;

namespace {

struct Args {
  std::string bundle_dir;
  std::string grid_file;
  bool auto_grid_full = false;
  std::string phase;
  std::string report_out;
  std::string csv_out;
  int threads = 0;
  bool replan = true;
  int top = 10;
  bool verify_snapshot = false;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--grid=", 0) == 0) {
      out->grid_file = arg.substr(7);
    } else if (arg == "--auto-grid") {
      // The default; accepted for explicitness.
    } else if (arg == "--auto-grid=full") {
      out->auto_grid_full = true;
    } else if (arg.rfind("--phase=", 0) == 0) {
      out->phase = arg.substr(8);
    } else if (arg.rfind("--report-out=", 0) == 0) {
      out->report_out = arg.substr(13);
    } else if (arg.rfind("--csv-out=", 0) == 0) {
      out->csv_out = arg.substr(10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      out->threads = std::atoi(arg.c_str() + 10);
      if (out->threads < 0) {
        std::fprintf(stderr, "--threads must be >= 0\n");
        return false;
      }
    } else if (arg == "--no-replan") {
      out->replan = false;
    } else if (arg.rfind("--top=", 0) == 0) {
      out->top = std::atoi(arg.c_str() + 6);
    } else if (arg == "--verify-snapshot") {
      out->verify_snapshot = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else if (out->bundle_dir.empty()) {
      out->bundle_dir = arg;
    } else {
      std::fprintf(stderr, "more than one bundle directory given\n");
      return false;
    }
  }
  if (out->bundle_dir.empty()) {
    std::fprintf(stderr, "missing bundle directory\n");
    return false;
  }
  return true;
}

bool ReadFile(const std::string& path, std::string* content) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *content = buffer.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: %s BUNDLE_DIR [--grid=FILE | --auto-grid[=full]] "
        "[--phase=LABEL] [--report-out=FILE] [--csv-out=FILE] "
        "[--threads=N] [--no-replan] [--top=N] [--verify-snapshot]\n",
        argv[0]);
    return 2;
  }

  Result<obs::RunBundle> bundle = obs::LoadRunBundle(args.bundle_dir);
  if (!bundle.ok()) {
    std::fprintf(stderr, "cannot load bundle %s: %s\n",
                 args.bundle_dir.c_str(),
                 bundle.status().ToString().c_str());
    return 1;
  }
  Result<whatif::RecordedRun> run =
      whatif::LoadRecordedRun(*bundle, args.bundle_dir);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  if (args.verify_snapshot) {
    const std::string* recorded = bundle->Find(obs::kBundleSnapshotName);
    if (recorded == nullptr) {
      std::fprintf(stderr, "bundle has no %s member to verify\n",
                   obs::kBundleSnapshotName);
      return 1;
    }
    Result<std::string> rendered = testkit::RenderGoldenSnapshot(run->spec);
    if (!rendered.ok()) {
      std::fprintf(stderr, "snapshot re-render failed: %s\n",
                   rendered.status().ToString().c_str());
      return 1;
    }
    if (*rendered != *recorded) {
      std::fprintf(stderr,
                   "snapshot drift: this build renders a different golden "
                   "snapshot than the bundle recorded\n");
      return 1;
    }
    std::printf("snapshot verified: %zu bytes identical\n",
                recorded->size());
  }

  std::vector<scenario::Counterfactual> grid;
  if (!args.grid_file.empty()) {
    std::string text;
    if (!ReadFile(args.grid_file, &text)) {
      std::fprintf(stderr, "cannot read grid file %s\n",
                   args.grid_file.c_str());
      return 1;
    }
    Result<std::vector<scenario::Counterfactual>> parsed =
        scenario::ParseCounterfactualGrid(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", args.grid_file.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    grid = std::move(*parsed);
  } else {
    Result<scenario::LabeledSituation> analyzed =
        whatif::AnalyzedSituation(*run, args.phase);
    if (!analyzed.ok()) {
      std::fprintf(stderr, "%s\n", analyzed.status().ToString().c_str());
      return 1;
    }
    scenario::DefaultGridOptions gopts;
    gopts.dampen_all_gpus = args.auto_grid_full;
    grid = scenario::DefaultCounterfactualGrid(
        run->resolved.cluster, analyzed->situation, run->resolved.net_model,
        gopts);
  }
  if (grid.empty()) {
    std::fprintf(stderr, "the counterfactual grid is empty\n");
    return 1;
  }

  whatif::WhatIfOptions options;
  options.num_threads = args.threads;
  options.replan = args.replan;
  options.phase = args.phase;
  Result<obs::AttributionReport> report =
      whatif::RunWhatIf(*run, grid, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("%s", obs::RenderAttributionText(*report, args.top).c_str());

  int rc = 0;
  if (!args.report_out.empty()) {
    if (WriteFile(args.report_out, obs::RenderAttributionJson(*report))) {
      std::printf("wrote JSON report (%zu causes) to %s\n",
                  report->rows.size(), args.report_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", args.report_out.c_str());
      rc = 1;
    }
  }
  if (!args.csv_out.empty()) {
    if (WriteFile(args.csv_out, obs::RenderAttributionCsv(*report))) {
      std::printf("wrote CSV report to %s\n", args.csv_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", args.csv_out.c_str());
      rc = 1;
    }
  }
  return rc;
}
