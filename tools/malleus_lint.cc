// malleus_lint: lint scenario files standalone, without running training.
//
//   $ ./tools/malleus_lint examples/scenarios/straggle_s3.scenario
//   $ ./tools/malleus_lint --format=sarif run.scenario > lint.sarif
//   $ ./tools/malleus_lint --list
//
// Per file, the full analysis stack runs:
//   1. parse        — syntax errors abort the file (Status, line-numbered);
//   2. scenario     — semantic checks on the parsed spec (lint::LintScenario);
//   3. cluster      — shape/interconnect sanity (lint::LintCluster);
//   4. situations   — the custom straggler overlay and every trace phase,
//                     against the fitted straggler model (lint::LintSituation);
//   5. plan         — the planner runs for the scenario's first situation and
//                     its chosen plan is linted (structure + quality + the
//                     1F1B event-graph audit), unless --no-plan;
//   6. flow         — the plan's grad-sync rings are played through the
//                     flow-level fabric simulator and the result audited for
//                     conservation (lint::LintFlowConservation).
//
// Exit status: 0 = no error-level diagnostics anywhere, 1 = at least one
// error (or a file failed to parse / plan), 2 = bad usage.
//
// Flags:
//   --format=text|json|sarif   output format          (default text)
//   --no-plan                  skip the planner-dependent passes (5-6)
//   --list                     print the diagnostic-code registry and exit
//
// With json/sarif and several files, all findings merge into one document
// (the first file is recorded as the SARIF artifact).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/scenario_lint.h"
#include "lint/diagnostic.h"
#include "lint/lint.h"

using namespace malleus;

namespace {

struct Args {
  std::string format = "text";
  bool no_plan = false;
  bool list = false;
  std::vector<std::string> files;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      out->format = arg.substr(9);
      if (out->format != "text" && out->format != "json" &&
          out->format != "sarif") {
        std::fprintf(stderr, "unknown format: %s\n", out->format.c_str());
        return false;
      }
    } else if (arg == "--no-plan") {
      out->no_plan = true;
    } else if (arg == "--list") {
      out->list = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      out->files.push_back(arg);
    }
  }
  return out->list || !out->files.empty();
}

// Runs the shared end-to-end lint. Returns false when the file could not
// even be analyzed (parse or planner failure), which counts as an error
// exit.
bool LintFile(const std::string& path, const Args& args,
              lint::DiagnosticSink* sink) {
  core::ScenarioLintOptions options;
  options.with_plan = !args.no_plan;
  const Status status = core::LintScenarioFile(path, options, sink);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return false;
  }
  return true;
}

void PrintPassList() {
  for (const lint::PassInfo& pass : lint::Passes()) {
    std::printf("%-7s %-28s %s\n", lint::SeverityName(pass.severity),
                pass.code, pass.summary);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s [--format=text|json|sarif] [--no-plan] [--list] "
                 "FILE.scenario...\n",
                 argv[0]);
    return 2;
  }
  if (args.list) {
    PrintPassList();
    return 0;
  }

  lint::DiagnosticSink merged;
  bool analyzable = true;
  for (const std::string& path : args.files) {
    lint::DiagnosticSink sink;
    if (!LintFile(path, args, &sink)) analyzable = false;
    if (args.format == "text" && !sink.empty()) {
      std::printf("%s:\n%s", path.c_str(), lint::RenderText(sink).c_str());
    }
    merged.Merge(sink);
  }
  lint::RecordDiagnosticMetrics(merged);

  if (args.format == "json") {
    std::printf("%s\n", lint::RenderJson(merged).c_str());
  } else if (args.format == "sarif") {
    std::printf("%s\n",
                lint::RenderSarif(merged, args.files.front()).c_str());
  } else if (merged.empty()) {
    std::printf("%zu file(s): no diagnostics\n", args.files.size());
  }
  return (merged.HasErrors() || !analyzable) ? 1 : 0;
}
