#!/usr/bin/env bash
# Builds the tree and runs the full test suite under ASan + UBSan, proving
# the process-global metrics registry (and everything else) race/UB-clean.
# The suite runs twice: once per network cost model (MALLEUS_NET_MODEL=
# analytic / flow), so both the closed-form and the contention-aware
# flow-level fabric paths stay green.
#
#   tools/check.sh             # sanitized configure + build + 2x ctest
#   tools/check.sh --fast      # reuse an existing build-asan configure
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-asan

if [[ "${1:-}" != "--fast" || ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMALLEUS_SANITIZE=address,undefined
fi

cmake --build "$BUILD_DIR" -j"$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"

for net_model in analytic flow; do
  echo "== ctest (MALLEUS_NET_MODEL=$net_model) =="
  MALLEUS_NET_MODEL="$net_model" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
done
echo "OK: build + tests clean under ASan/UBSan (analytic + flow net models)"
