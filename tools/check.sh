#!/usr/bin/env bash
# Builds the tree and runs the test suite under sanitizers.
#
# Default preset — ASan + UBSan over the full suite, proving the
# process-global metrics registry (and everything else) UB/leak-clean. The
# suite runs twice: once per network cost model (MALLEUS_NET_MODEL=
# analytic / flow), so both the closed-form and the contention-aware
# flow-level fabric paths stay green.
#
# TSan preset (--tsan) — ThreadSanitizer over the concurrency surface: the
# exec thread pool, the metrics registry and the parallel planner sweep,
# all forced to >= 4 worker threads via MALLEUS_PLANNER_THREADS; the
# planner determinism tests run under both net models.
#
#   tools/check.sh             # ASan/UBSan configure + build + 2x ctest
#                              #   + a 25-run malleus_fuzz smoke
#                              #   + detlint sweep + format check
#   tools/check.sh --fast      # reuse an existing build-asan configure
#   tools/check.sh --tsan      # TSan build + concurrency-focused tests
#   tools/check.sh --tsan --fast
#   tools/check.sh --lint      # static-analysis gate (see below)
#   tools/check.sh --detlint   # determinism/concurrency analyzer only:
#                              #   Release build of malleus_detlint, sweep
#                              #   src/ tools/ tests/ bench/ examples/
#                              #   against tools/detlint_baseline.txt, and
#                              #   a seeded known-bad self-check
#   tools/check.sh --fuzz      # 200-run oracle fuzz under ASan/UBSan,
#                              #   once per --net-model (analytic, flow)
#   tools/check.sh --whatif    # record every example scenario as a bundle
#                              #   and sweep it with malleus_whatif under
#                              #   ASan/UBSan, once per net model, checking
#                              #   byte-identical repeat reports
#   tools/check.sh --serve     # the serving control plane: serve_test +
#                              #   the malleus_served smoke under
#                              #   ASan/UBSan, then serve_test under TSan
#                              #   with 4 workers/planner threads
#   tools/check.sh --policy    # the online fault-tolerance policy engine:
#                              #   policy_test under ASan/UBSan, a seeded
#                              #   --dynamic fuzz budget, the checked-in
#                              #   dynamic corpus replays and the
#                              #   golden_dynamic snapshot comparison
#   tools/check.sh --scale     # kilo-GPU smoke: plan + flow-level sim of
#                              #   the examples/scenarios/scale/ fat-tree
#                              #   scenarios (1024 GPUs end-to-end, 2048
#                              #   GPUs plan-only) under ASan/UBSan, plus
#                              #   scale_test in the sanitized build
#
# Fuzz preset (--fuzz) — the seeded scenario fuzzer (tools/malleus_fuzz,
# DESIGN.md §11) over 200 runs per net model, in the ASan/UBSan build, so
# every oracle violation AND every memory/UB bug on a generated scenario
# fails the run. On a violation the minimized `.scenario` repro paths are
# printed; replay one with `malleus_fuzz --replay=<file>`.
#
# Lint preset (--lint) — the static-analysis gate, in five stages:
#   1. a -Werror build (-DMALLEUS_WERROR=ON): compiler warnings fail
#      (including [[nodiscard]] Status/Result discards);
#   2. malleus_lint over examples/scenarios/*.scenario: every shipped
#      scenario must be free of error-level diagnostics;
#   3. malleus_detlint over src/ tools/ tests/ bench/ examples/ against
#      tools/detlint_baseline.txt, plus the seeded known-bad self-check
#      (DESIGN.md §15);
#   4. clang-tidy over src/ against the checked-in .clang-tidy, compared
#      to the baseline count below (skipped with a note when clang-tidy
#      is not installed — the container ships only gcc);
#   5. tools/format.sh --check (skips itself when clang-format is absent).
#
# The default preset also runs stage 3 and the format check after the
# sanitized test sweep, so `tools/check.sh` alone gates on detlint.
set -euo pipefail

cd "$(dirname "$0")/.."

# clang-tidy findings currently in the tree (stage 3 fails when the count
# grows past this; shrink it as findings are fixed).
CLANG_TIDY_BASELINE=0

MODE=asan
FAST=0
for arg in "$@"; do
  case "$arg" in
    --tsan) MODE=tsan ;;
    --lint) MODE=lint ;;
    --detlint) MODE=detlint ;;
    --fuzz) MODE=fuzz ;;
    --whatif) MODE=whatif ;;
    --serve) MODE=serve ;;
    --policy) MODE=policy ;;
    --scale) MODE=scale ;;
    --fast) FAST=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# run_detlint BINARY — the determinism/concurrency analyzer gate
# (DESIGN.md §15): the tree sweep must be clean modulo the checked-in
# baseline, and a seeded known-bad corpus snippet must still fail with a
# SARIF finding at its marked line — proving the gate can catch what it
# claims to before trusting its green.
run_detlint() {
  local detlint=$1
  echo "== malleus_detlint over src/ tools/ tests/ bench/ examples/ =="
  "$detlint" --baseline=tools/detlint_baseline.txt \
    src tools tests bench examples

  local bad=tests/detlint_corpus/bad_unordered_iteration.cc
  echo "== detlint self-check (seeded known-bad snippet) =="
  local sarif
  if sarif=$("$detlint" --format=sarif "$bad"); then
    echo "detlint self-check: $bad unexpectedly passed" >&2
    exit 1
  fi
  if ! grep -q '"startLine":8' <<<"$sarif" || \
     ! grep -q 'bad_unordered_iteration.cc' <<<"$sarif"; then
    echo "detlint self-check: SARIF finding missing or mislocated:" >&2
    echo "$sarif" >&2
    exit 1
  fi
}

if [[ "$MODE" == "detlint" ]]; then
  BUILD_DIR=build-lint
  if [[ "$FAST" != 1 || ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=Release \
      -DMALLEUS_WERROR=ON
  fi
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target malleus_detlint_tool
  run_detlint "$BUILD_DIR/tools/malleus_detlint"
  echo "OK: detlint sweep clean (baseline applied), self-check still fails"
  exit 0
fi

if [[ "$MODE" == "lint" ]]; then
  BUILD_DIR=build-lint
  if [[ "$FAST" != 1 || ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=Release \
      -DMALLEUS_WERROR=ON
  fi
  echo "== -Werror build =="
  cmake --build "$BUILD_DIR" -j"$(nproc)"

  echo "== malleus_lint over shipped scenarios =="
  "$BUILD_DIR/tools/malleus_lint" examples/scenarios/*.scenario

  run_detlint "$BUILD_DIR/tools/malleus_detlint"

  echo "== clang-tidy (baseline: $CLANG_TIDY_BASELINE findings) =="
  if command -v clang-tidy >/dev/null 2>&1; then
    mapfile -t sources < <(git ls-files 'src/*.cc' 'tools/*.cc')
    findings=$(clang-tidy -p "$BUILD_DIR" --quiet "${sources[@]}" 2>/dev/null \
                 | grep -c 'warning:' || true)
    echo "clang-tidy: $findings finding(s)"
    if (( findings > CLANG_TIDY_BASELINE )); then
      echo "clang-tidy: findings grew past the baseline" \
           "($findings > $CLANG_TIDY_BASELINE)" >&2
      exit 1
    fi
  else
    echo "clang-tidy not found; skipping (install LLVM to enforce)"
  fi

  echo "== format check =="
  tools/format.sh --check

  echo "OK: -Werror build + scenario lint + detlint + clang-tidy" \
       "+ format check"
  exit 0
fi

if [[ "$MODE" == "serve" ]]; then
  # The serving control plane, both sanitizer families: memory/UB bugs in
  # the protocol + server + cache persistence paths under ASan/UBSan
  # (including the end-to-end daemon smoke), then the admission queue /
  # drainer / per-request metrics concurrency under TSan with real
  # parallelism forced.
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  export ASAN_OPTIONS="detect_leaks=1"
  if [[ "$FAST" != 1 || ! -f build-asan/CMakeCache.txt ]]; then
    cmake -B build-asan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DMALLEUS_SANITIZE=address,undefined
  fi
  cmake --build build-asan -j"$(nproc)" \
    --target serve_test malleus_served malleus_client_tool
  echo "== serve tests + daemon smoke (ASan/UBSan) =="
  ctest --test-dir build-asan -R 'serve' --output-on-failure -j"$(nproc)"

  if [[ "$FAST" != 1 || ! -f build-tsan/CMakeCache.txt ]]; then
    cmake -B build-tsan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DMALLEUS_SANITIZE=thread
  fi
  cmake --build build-tsan -j"$(nproc)" --target serve_test
  echo "== serve_test (TSan, 4 planner threads) =="
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    MALLEUS_PLANNER_THREADS=4 build-tsan/tests/serve_test
  echo "OK: serve tests + smoke clean under ASan/UBSan, serve_test clean" \
       "under TSan (4 planner threads)"
  exit 0
fi

if [[ "$MODE" == "tsan" ]]; then
  BUILD_DIR=build-tsan
  SANITIZE=thread
else
  BUILD_DIR=build-asan
  SANITIZE=address,undefined
fi

# Seed for the oracle fuzzer (default smoke + --fuzz). Fixed so failures
# reproduce with `malleus_fuzz --seed=$FUZZ_SEED`; bump deliberately to
# rotate the explored scenario population.
FUZZ_SEED=20260807

# run_fuzz RUNS — one seeded fuzz sweep per net model in $BUILD_DIR's
# instrumented malleus_fuzz. Prints the repro paths and exits non-zero on
# any oracle violation (sanitizer findings abort the binary directly).
run_fuzz() {
  local runs=$1
  local out_dir="$BUILD_DIR/fuzz-out"
  mkdir -p "$out_dir"
  for net_model in analytic flow; do
    echo "== malleus_fuzz --seed=$FUZZ_SEED --runs=$runs" \
         "--net-model=$net_model (sanitized) =="
    if ! "$BUILD_DIR/tools/malleus_fuzz" \
           --seed="$FUZZ_SEED" --runs="$runs" --net-model="$net_model" \
           --out="$out_dir" --report="$out_dir/report-$net_model.json"; then
      echo "fuzz: oracle violation(s); minimized repro(s):" >&2
      ls "$out_dir"/repro-*.scenario >&2 2>/dev/null || true
      echo "replay with: $BUILD_DIR/tools/malleus_fuzz --replay=<repro>" \
           "--net-model=$net_model" >&2
      exit 1
    fi
  done
}

if [[ "$FAST" != 1 || ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMALLEUS_SANITIZE="$SANITIZE"
fi

if [[ "$MODE" == "tsan" ]]; then
  # Only the binaries exercising threads: the pool itself, the metrics
  # registry hammer, the planner (serial + parallel-sweep suites) and the
  # serving control plane.
  TSAN_TARGETS=(exec_test obs_test planner_parallel_test planner_test
                serve_test)
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${TSAN_TARGETS[@]}"

  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  # Force real concurrency even where tests leave the thread count at the
  # default, so TSan sees the racy interleavings.
  export MALLEUS_PLANNER_THREADS=4
  for net_model in analytic flow; do
    echo "== TSan tests (MALLEUS_NET_MODEL=$net_model, 4 planner threads) =="
    for t in "${TSAN_TARGETS[@]}"; do
      MALLEUS_NET_MODEL="$net_model" "$BUILD_DIR/tests/$t"
    done
  done
  echo "OK: thread pool + metrics + planner sweep clean under TSan" \
       "(analytic + flow net models, MALLEUS_PLANNER_THREADS=4)"
  exit 0
fi

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"

if [[ "$MODE" == "fuzz" ]]; then
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target malleus_fuzz
  run_fuzz 200
  echo "OK: 2x200 fuzz runs clean under ASan/UBSan" \
       "(analytic + flow net models, seed $FUZZ_SEED)"
  exit 0
fi

if [[ "$MODE" == "whatif" ]]; then
  # Record-and-sweep every shipped scenario in the instrumented build so
  # the whole bundle + what-if pipeline (scenario_cli --record-out,
  # LoadRunBundle, the counterfactual sweep, both report renderers) runs
  # under ASan/UBSan, once per net model. Each bundle is swept twice and
  # the ranked JSON/CSV reports must come out byte-identical.
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target scenario_cli malleus_whatif_tool
  out_dir="$BUILD_DIR/whatif-out"
  mkdir -p "$out_dir"
  for net_model in analytic flow; do
    for scenario in examples/scenarios/*.scenario; do
      name=$(basename "$scenario" .scenario)
      bundle="$out_dir/$name-$net_model"
      rm -rf "$bundle"
      echo "== record + sweep $name (MALLEUS_NET_MODEL=$net_model) =="
      MALLEUS_NET_MODEL="$net_model" "$BUILD_DIR/examples/scenario_cli" \
        --scenario="$scenario" --record-out="$bundle" >/dev/null
      MALLEUS_NET_MODEL="$net_model" "$BUILD_DIR/tools/malleus_whatif" \
        "$bundle" --auto-grid --verify-snapshot --top=3 \
        --report-out="$bundle.a.json" --csv-out="$bundle.a.csv"
      MALLEUS_NET_MODEL="$net_model" "$BUILD_DIR/tools/malleus_whatif" \
        "$bundle" --auto-grid --top=0 \
        --report-out="$bundle.b.json" --csv-out="$bundle.b.csv" >/dev/null
      cmp "$bundle.a.json" "$bundle.b.json"
      cmp "$bundle.a.csv" "$bundle.b.csv"
    done
  done
  echo "OK: recorded + swept every example scenario under ASan/UBSan" \
       "(analytic + flow net models, byte-identical repeat reports)"
  exit 0
fi

if [[ "$MODE" == "policy" ]]; then
  # The policy engine's hardening sweep, all in the instrumented build:
  # the property tests (trace determinism, the adaptive cost bound, engine
  # validity, byte-identical replay), a short seeded --dynamic fuzz budget
  # driving the dynamic.* oracles on generated scenarios, every checked-in
  # dynamic corpus replay, and the per-selector golden snapshot.
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target policy_test malleus_fuzz malleus_golden
  echo "== policy_test (ASan/UBSan) =="
  "$BUILD_DIR/tests/policy_test"
  out_dir="$BUILD_DIR/fuzz-out"
  mkdir -p "$out_dir"
  echo "== malleus_fuzz --seed=$FUZZ_SEED --runs=15 --dynamic (sanitized) =="
  if ! "$BUILD_DIR/tools/malleus_fuzz" \
         --seed="$FUZZ_SEED" --runs=15 --dynamic --out="$out_dir" \
         --report="$out_dir/report-dynamic.json"; then
    echo "fuzz --dynamic: oracle violation(s); minimized repro(s):" >&2
    ls "$out_dir"/repro-*.scenario >&2 2>/dev/null || true
    exit 1
  fi
  echo "== dynamic corpus replays (sanitized) =="
  for corpus in tests/dynamic_corpus/*.scenario; do
    "$BUILD_DIR/tools/malleus_fuzz" --replay="$corpus"
  done
  echo "== golden_dynamic snapshot comparison (sanitized) =="
  "$BUILD_DIR/tools/malleus_golden" \
    --scenario-dir=examples/scenarios/dynamic --golden-dir=tests/golden
  echo "OK: policy tests + dynamic fuzz budget + corpus replays" \
       "+ golden snapshots clean under ASan/UBSan"
  exit 0
fi

if [[ "$MODE" == "scale" ]]; then
  # Kilo-GPU scale-out smoke in the instrumented build: hierarchical
  # planning and the incremental flow simulator on pod-structured
  # fat-trees, where a memory bug would scale with the cluster. The
  # 1024-GPU scenario runs its full phase trace end-to-end; the 2048-GPU
  # acceptance case plans one normal phase (ASan makes the full trace
  # needlessly slow for a smoke); scale_test re-checks plan validity,
  # determinism and the island-memo delta re-plan, sanitized.
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target scenario_cli scale_test
  echo "== 1024-GPU fat-tree scenario (plan + flow sim, ASan/UBSan) =="
  "$BUILD_DIR/examples/scenario_cli" \
    --scenario=examples/scenarios/scale/fat_tree_1024.scenario >/dev/null
  echo "== 2048-GPU fat-tree scenario (plan, normal phase, ASan/UBSan) =="
  "$BUILD_DIR/examples/scenario_cli" \
    --scenario=examples/scenarios/scale/fat_tree_2048.scenario \
    --trace=normal >/dev/null
  echo "== scale_test (ASan/UBSan) =="
  "$BUILD_DIR/tests/scale_test"
  echo "OK: kilo-GPU planning + flow sim clean under ASan/UBSan"
  exit 0
fi

cmake --build "$BUILD_DIR" -j"$(nproc)"

# The ctest pass covers the `fuzz`-labeled smoke too; exclude it here and
# run it explicitly below so both net models are swept and the repro path
# is printed on failure.
for net_model in analytic flow; do
  echo "== ctest (MALLEUS_NET_MODEL=$net_model) =="
  MALLEUS_NET_MODEL="$net_model" \
    ctest --test-dir "$BUILD_DIR" -LE fuzz --output-on-failure -j"$(nproc)"
done

run_fuzz 25

# Static gates ride the default preset too: the (sanitized) detlint binary
# sweeps the tree, and formatting drifts fail here rather than in review.
run_detlint "$BUILD_DIR/tools/malleus_detlint"
echo "== format check =="
tools/format.sh --check

echo "OK: build + tests + 2x25 fuzz runs + detlint + format check clean" \
     "under ASan/UBSan (analytic + flow net models)"
