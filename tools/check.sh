#!/usr/bin/env bash
# Builds the tree and runs the full test suite under ASan + UBSan, proving
# the process-global metrics registry (and everything else) race/UB-clean.
#
#   tools/check.sh             # sanitized configure + build + ctest
#   tools/check.sh --fast      # reuse an existing build-asan configure
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-asan

if [[ "${1:-}" != "--fast" || ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMALLEUS_SANITIZE=address,undefined
fi

cmake --build "$BUILD_DIR" -j"$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
echo "OK: build + tests clean under ASan/UBSan"
