#!/usr/bin/env bash
# Builds the tree and runs the test suite under sanitizers.
#
# Default preset — ASan + UBSan over the full suite, proving the
# process-global metrics registry (and everything else) UB/leak-clean. The
# suite runs twice: once per network cost model (MALLEUS_NET_MODEL=
# analytic / flow), so both the closed-form and the contention-aware
# flow-level fabric paths stay green.
#
# TSan preset (--tsan) — ThreadSanitizer over the concurrency surface: the
# exec thread pool, the metrics registry and the parallel planner sweep,
# all forced to >= 4 worker threads via MALLEUS_PLANNER_THREADS; the
# planner determinism tests run under both net models.
#
#   tools/check.sh             # ASan/UBSan configure + build + 2x ctest
#   tools/check.sh --fast      # reuse an existing build-asan configure
#   tools/check.sh --tsan      # TSan build + concurrency-focused tests
#   tools/check.sh --tsan --fast
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=asan
FAST=0
for arg in "$@"; do
  case "$arg" in
    --tsan) MODE=tsan ;;
    --fast) FAST=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ "$MODE" == "tsan" ]]; then
  BUILD_DIR=build-tsan
  SANITIZE=thread
else
  BUILD_DIR=build-asan
  SANITIZE=address,undefined
fi

if [[ "$FAST" != 1 || ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMALLEUS_SANITIZE="$SANITIZE"
fi

if [[ "$MODE" == "tsan" ]]; then
  # Only the binaries exercising threads: the pool itself, the metrics
  # registry hammer, and the planner (serial + parallel-sweep suites).
  TSAN_TARGETS=(exec_test obs_test planner_parallel_test planner_test)
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${TSAN_TARGETS[@]}"

  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  # Force real concurrency even where tests leave the thread count at the
  # default, so TSan sees the racy interleavings.
  export MALLEUS_PLANNER_THREADS=4
  for net_model in analytic flow; do
    echo "== TSan tests (MALLEUS_NET_MODEL=$net_model, 4 planner threads) =="
    for t in "${TSAN_TARGETS[@]}"; do
      MALLEUS_NET_MODEL="$net_model" "$BUILD_DIR/tests/$t"
    done
  done
  echo "OK: thread pool + metrics + planner sweep clean under TSan" \
       "(analytic + flow net models, MALLEUS_PLANNER_THREADS=4)"
  exit 0
fi

cmake --build "$BUILD_DIR" -j"$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"

for net_model in analytic flow; do
  echo "== ctest (MALLEUS_NET_MODEL=$net_model) =="
  MALLEUS_NET_MODEL="$net_model" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
done
echo "OK: build + tests clean under ASan/UBSan (analytic + flow net models)"
