// malleus_fuzz: seeded scenario fuzzing against the property oracles.
//
//   $ ./tools/malleus_fuzz --seed=7 --runs=200
//   $ ./tools/malleus_fuzz --seed=7 --runs=200 --report=fuzz.json --out=/tmp
//   $ ./tools/malleus_fuzz --replay=repro-7-13.scenario
//
// Each run draws one boundary-biased scenario from the seeded generator
// (testkit::GenerateScenario over Rng(MixSeed(seed, run))) and evaluates
// every applicable oracle (testkit::RunOracles). A violation is minimized
// (testkit::MinimizeScenario) and written as a self-contained `.scenario`
// repro under --out, replayable with --replay.
//
// Determinism: the whole sweep is a pure function of the flags. The JSON
// report carries no timestamps or machine state, and its FNV-1a hash is
// printed so two invocations can be compared byte-for-byte:
//
//   $ ./tools/malleus_fuzz --seed=7 --runs=200 | grep report-hash
//
// Exit status: 0 = no violations, 1 = violations found (or a replay that
// still violates), 2 = bad usage / I/O failure.
//
// Flags:
//   --seed=N                 base seed             (default 1)
//   --runs=N                 scenarios to fuzz     (default 100)
//   --net-model=analytic|flow  net model for the noisy-sim oracle pass
//   --out=DIR                repro output directory (default ".")
//   --report=FILE            write the JSON report to FILE
//   --replay=FILE            re-run the oracles on one scenario file
//   --dynamic                attach a `dynamic = {...}` block to every
//                            generated scenario, so each run exercises the
//                            policy engine's oracles (dynamic.*)
//   --inject=perturb-estimate  deliberately break an oracle (harness test)

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/string_util.h"
#include "net/fabric.h"
#include "scenario/scenario.h"
#include "testkit/generator.h"
#include "testkit/oracle.h"
#include "testkit/repro.h"

using namespace malleus;

namespace {

struct Args {
  uint64_t seed = 1;
  int runs = 100;
  std::string net_model = "analytic";
  std::string out_dir = ".";
  std::string report_path;
  std::string replay_path;
  bool dynamic = false;
  bool inject_perturb_estimate = false;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      out->seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--runs=", 0) == 0) {
      out->runs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--net-model=", 0) == 0) {
      out->net_model = arg.substr(12);
      if (out->net_model != "analytic" && out->net_model != "flow") {
        std::fprintf(stderr, "unknown net model: %s\n",
                     out->net_model.c_str());
        return false;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out->out_dir = arg.substr(6);
    } else if (arg.rfind("--report=", 0) == 0) {
      out->report_path = arg.substr(9);
    } else if (arg.rfind("--replay=", 0) == 0) {
      out->replay_path = arg.substr(9);
    } else if (arg == "--dynamic") {
      out->dynamic = true;
    } else if (arg == "--inject=perturb-estimate") {
      out->inject_perturb_estimate = true;
    } else {
      if (arg != "--help" && arg != "-h") {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      }
      return false;
    }
  }
  return out->runs > 0 || !out->replay_path.empty();
}

testkit::OracleOptions ToOracleOptions(const Args& args) {
  testkit::OracleOptions options;
  options.sim_net_model = args.net_model == "flow" ? net::NetModel::kFlow
                                                   : net::NetModel::kAnalytic;
  options.inject_perturb_estimate = args.inject_perturb_estimate;
  return options;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

int Replay(const Args& args) {
  Result<scenario::ScenarioSpec> spec =
      scenario::LoadScenarioFile(args.replay_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", args.replay_path.c_str(),
                 spec.status().ToString().c_str());
    return 2;
  }
  const testkit::OracleOutcome outcome =
      testkit::RunOracles(*spec, ToOracleOptions(args));
  std::printf("replay %s: %zu oracles run, %zu violation(s)\n",
              args.replay_path.c_str(), outcome.oracles_run.size(),
              outcome.violations.size());
  if (!outcome.error.empty()) {
    std::printf("  note: %s\n", outcome.error.c_str());
  }
  for (const testkit::Violation& v : outcome.violations) {
    std::printf("  %s: %s\n", v.oracle.c_str(), v.message.c_str());
  }
  return outcome.violations.empty() ? 0 : 1;
}

struct ViolationRecord {
  int run = 0;
  uint64_t run_seed = 0;
  testkit::Violation violation;
  std::string repro_path;
};

std::string RenderReport(const Args& args, int resolved, int planned,
                         const std::map<std::string, int>& oracle_runs,
                         const std::map<std::string, int>& oracle_violations,
                         const std::vector<ViolationRecord>& records) {
  std::string json = "{";
  json += StrFormat("\"seed\":%" PRIu64 ",\"runs\":%d,", args.seed,
                    args.runs);
  json += StrFormat("\"net_model\":\"%s\",\"dynamic\":%s,\"inject\":%s,",
                    args.net_model.c_str(), args.dynamic ? "true" : "false",
                    args.inject_perturb_estimate ? "true" : "false");
  json += StrFormat("\"resolved\":%d,\"planned\":%d,", resolved, planned);
  json += "\"oracles\":{";
  bool first = true;
  for (const auto& [oracle, runs] : oracle_runs) {
    if (!first) json += ",";
    first = false;
    const auto it = oracle_violations.find(oracle);
    json += StrFormat("\"%s\":{\"runs\":%d,\"violations\":%d}",
                      JsonEscape(oracle).c_str(), runs,
                      it == oracle_violations.end() ? 0 : it->second);
  }
  json += "},\"violations\":[";
  first = true;
  for (const ViolationRecord& record : records) {
    if (!first) json += ",";
    first = false;
    json += StrFormat(
        "{\"run\":%d,\"seed\":%" PRIu64
        ",\"oracle\":\"%s\",\"message\":\"%s\",\"repro\":\"%s\"}",
        record.run, record.run_seed,
        JsonEscape(record.violation.oracle).c_str(),
        JsonEscape(record.violation.message).c_str(),
        JsonEscape(record.repro_path).c_str());
  }
  json += "]}";
  return json;
}

int Fuzz(const Args& args) {
  const testkit::OracleOptions options = ToOracleOptions(args);
  int resolved = 0;
  int planned = 0;
  std::map<std::string, int> oracle_runs;
  std::map<std::string, int> oracle_violations;
  std::vector<ViolationRecord> records;
  bool io_failed = false;

  testkit::GeneratorOptions generator_options;
  if (args.dynamic) generator_options.dynamic_prob = 1.0;

  for (int run = 0; run < args.runs; ++run) {
    const uint64_t run_seed = testkit::MixSeed(args.seed, run);
    Rng rng(run_seed);
    const scenario::ScenarioSpec spec =
        testkit::GenerateScenario(&rng, generator_options);
    const testkit::OracleOutcome outcome =
        testkit::RunOracles(spec, options);
    resolved += outcome.resolved ? 1 : 0;
    planned += outcome.planned ? 1 : 0;
    for (const std::string& oracle : outcome.oracles_run) {
      ++oracle_runs[oracle];
    }
    for (const testkit::Violation& v : outcome.violations) {
      ++oracle_violations[v.oracle];
    }
    if (outcome.violations.empty()) continue;

    // Minimize against the first violated oracle and write the repro.
    const testkit::Violation& v = outcome.violations.front();
    const scenario::ScenarioSpec minimized =
        testkit::MinimizeScenario(spec, v.oracle, options);
    ViolationRecord record;
    record.run = run;
    record.run_seed = run_seed;
    record.violation = v;
    record.repro_path = StrFormat("%s/repro-%" PRIu64 "-%d.scenario",
                                  args.out_dir.c_str(), args.seed, run);
    const std::string repro =
        testkit::RenderRepro(minimized, v, args.seed, run, options);
    if (!WriteFile(record.repro_path, repro)) {
      std::fprintf(stderr, "cannot write %s\n", record.repro_path.c_str());
      io_failed = true;
    }
    std::printf("run %d (seed %" PRIu64 "): VIOLATION %s\n", run, run_seed,
                v.oracle.c_str());
    std::printf("  %s\n", v.message.c_str());
    std::printf("  repro: %s\n", record.repro_path.c_str());
    records.push_back(std::move(record));
  }

  const std::string report = RenderReport(args, resolved, planned,
                                          oracle_runs, oracle_violations,
                                          records);
  if (!args.report_path.empty() && !WriteFile(args.report_path, report)) {
    std::fprintf(stderr, "cannot write %s\n", args.report_path.c_str());
    io_failed = true;
  }
  std::printf("fuzzed %d scenario(s): %d resolved, %d planned, "
              "%zu violation(s)\n",
              args.runs, resolved, planned, records.size());
  for (const auto& [oracle, runs] : oracle_runs) {
    const auto it = oracle_violations.find(oracle);
    std::printf("  %-42s %5d run(s) %3d violation(s)\n", oracle.c_str(),
                runs, it == oracle_violations.end() ? 0 : it->second);
  }
  std::printf("report-hash: %016" PRIx64 "\n", Fnv1a64(report));
  if (io_failed) return 2;
  return records.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: malleus_fuzz [--seed=N] [--runs=N] "
        "[--net-model=analytic|flow] [--out=DIR] [--report=FILE]\n"
        "                    [--replay=FILE] [--dynamic] "
        "[--inject=perturb-estimate]\n");
    return 2;
  }
  if (!args.replay_path.empty()) return Replay(args);
  return Fuzz(args);
}
