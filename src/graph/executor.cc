#include "graph/executor.h"

#include <algorithm>

#include "common/string_util.h"
#include "graph/builder.h"
#include "sim/collective.h"

namespace malleus {
namespace graph {

namespace {

double CommSeconds(const Op& op, const topo::ClusterSpec& cluster) {
  switch (op.kind) {
    case OpKind::kP2pTransfer:
      return sim::P2pSeconds(cluster, op.devices[0], op.devices[1],
                             op.bytes);
    case OpKind::kReduceScatter:
      return sim::ReduceScatterSeconds(cluster, op.devices, op.bytes);
    case OpKind::kAllGather:
      return sim::AllGatherSeconds(cluster, op.devices, op.bytes);
    default:
      return 0.0;
  }
}

}  // namespace

Result<ExecutionResult> ExecuteGraph(const Graph& g,
                                     const topo::ClusterSpec& cluster,
                                     const std::vector<double>& rates) {
  MALLEUS_RETURN_NOT_OK(g.Validate());
  ExecutionResult result;
  result.finish_seconds.assign(g.size(), -1.0);

  // Per-device issue queues and positions.
  std::map<topo::GpuId, size_t> pos;
  std::map<topo::GpuId, double> busy;
  std::vector<topo::GpuId> devices;
  for (const Op& op : g.ops()) {
    for (topo::GpuId d : op.devices) {
      if (pos.emplace(d, 0).second) {
        busy[d] = 0.0;
        devices.push_back(d);
        if (d < 0 || d >= static_cast<int>(rates.size()) || rates[d] <= 0) {
          return Status::InvalidArgument(
              StrFormat("op uses device %d with no effective rate", d));
        }
      }
    }
  }

  auto deps_done = [&](const Op& op, double* ready) {
    double r = 0.0;
    for (OpId dep : op.deps) {
      if (result.finish_seconds[dep] < 0) return false;
      r = std::max(r, result.finish_seconds[dep]);
    }
    *ready = r;
    return true;
  };

  int remaining = g.size();
  std::vector<bool> done(g.size(), false);

  while (remaining > 0) {
    bool progressed = false;

    // Asynchronous ops (P2P) complete as soon as their deps do.
    for (const Op& op : g.ops()) {
      if (done[op.id] || op.OccupiesDevices()) continue;
      double ready = 0.0;
      if (!deps_done(op, &ready)) continue;
      result.finish_seconds[op.id] = ready + CommSeconds(op, cluster);
      done[op.id] = true;
      --remaining;
      progressed = true;
    }

    // Device-occupying ops execute in queue order; a multi-device op needs
    // to be at the front of every participant's queue.
    for (topo::GpuId d : devices) {
      const std::vector<OpId>& queue = g.DeviceQueue(d);
      while (pos[d] < queue.size()) {
        const Op& op = g.op(queue[pos[d]]);
        bool at_front_everywhere = true;
        for (topo::GpuId other : op.devices) {
          const std::vector<OpId>& oq = g.DeviceQueue(other);
          if (pos[other] >= oq.size() || oq[pos[other]] != op.id) {
            at_front_everywhere = false;
            break;
          }
        }
        if (!at_front_everywhere) break;
        double ready = 0.0;
        if (!deps_done(op, &ready)) break;

        double start = ready;
        for (topo::GpuId member : op.devices) {
          start = std::max(start, busy[member]);
        }
        double duration = 0.0;
        if (op.IsCompute()) {
          double worst_rate = 0.0;
          for (topo::GpuId member : op.devices) {
            worst_rate = std::max(worst_rate, rates[member]);
          }
          duration = op.base_seconds * worst_rate;
        } else {
          duration = CommSeconds(op, cluster);
        }
        const double finish = start + duration;
        result.finish_seconds[op.id] = finish;
        done[op.id] = true;
        --remaining;
        progressed = true;
        for (topo::GpuId member : op.devices) {
          busy[member] = finish;
          ++pos[member];
        }
      }
    }

    if (!progressed) {
      return Status::Internal(
          "graph execution deadlocked: inconsistent collective issue order "
          "across participants (see S5.1)");
    }
  }

  for (const auto& [d, t] : busy) {
    result.device_busy_seconds[d] = t;
    result.makespan_seconds = std::max(result.makespan_seconds, t);
  }
  for (double f : result.finish_seconds) {
    result.makespan_seconds = std::max(result.makespan_seconds, f);
  }
  return result;
}

Result<double> SimulateStepViaGraph(const topo::ClusterSpec& cluster,
                                    const model::CostModel& cost,
                                    const plan::ParallelPlan& p,
                                    const straggler::Situation& situation,
                                    double timing_noise_stddev, Rng* rng) {
  MALLEUS_RETURN_NOT_OK(p.Validate(cluster, cost));
  Result<Graph> g = BuildStepGraph(p, cost);
  MALLEUS_RETURN_NOT_OK(g.status());

  std::vector<double> rates(cluster.num_gpus(), 0.0);
  for (topo::GpuId gpu : p.ActiveGpus()) {
    if (situation.IsFailed(gpu)) {
      return Status::Unavailable(StrFormat("GPU %d is unresponsive", gpu));
    }
    double jitter = 1.0;
    if (rng != nullptr && timing_noise_stddev > 0) {
      jitter = std::max(0.5, 1.0 + rng->Normal(0.0, timing_noise_stddev));
    }
    rates[gpu] = situation.rate(gpu) * jitter;
  }
  Result<ExecutionResult> exec = ExecuteGraph(*g, cluster, rates);
  MALLEUS_RETURN_NOT_OK(exec.status());
  return exec->makespan_seconds;
}

}  // namespace graph
}  // namespace malleus
