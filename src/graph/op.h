// Operator definitions for the execution graph.
//
// The paper's runtime (built on the Hetu system) manages non-uniform data,
// layer, stage, and device partitioning through a computation graph; this
// module is our equivalent. A Graph materializes one training step of a
// ParallelPlan as a per-GPU operator DAG: fused per-stage forward/backward
// compute, point-to-point activation transfers, the per-slice ZeRO-1
// collectives in their deadlock-free order, and optimizer updates.

#ifndef MALLEUS_GRAPH_OP_H_
#define MALLEUS_GRAPH_OP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "topology/cluster.h"

namespace malleus {
namespace graph {

using OpId = int;

enum class OpKind {
  kForward,        ///< Fused forward of one stage for one micro-batch.
  kBackward,       ///< Fused backward of one stage for one micro-batch.
  kP2pTransfer,    ///< Activation/gradient hand-off between stages.
  kReduceScatter,  ///< Per-slice gradient reduce-scatter across DP peers.
  kAllGather,      ///< Per-slice parameter all-gather after the update.
  kOptimizerStep,  ///< Per-GPU sharded optimizer update.
};

const char* OpKindName(OpKind kind);

/// \brief One node of the execution graph.
///
/// Compute ops (`kForward`/`kBackward`/`kOptimizerStep`) occupy every GPU
/// in `devices` for their duration. Collectives occupy all participants
/// and require the globally consistent issue order (S5.1). P2P transfers
/// are asynchronous copies: they delay their consumers but do not occupy
/// the GPU compute stream.
struct Op {
  OpId id = -1;
  OpKind kind = OpKind::kForward;
  /// Ops that must finish before this one starts.
  std::vector<OpId> deps;
  /// GPUs participating (compute: the TP group; collective: ring members;
  /// P2P: {src, dst}).
  std::vector<topo::GpuId> devices;

  /// Healthy-duration of compute ops (already includes the TP-degree
  /// efficiency); the executor scales it by the slowest member's live rate.
  double base_seconds = 0.0;
  /// Payload of communication ops.
  double bytes = 0.0;

  // Provenance (for debugging and tests).
  int pipeline = -1;
  int stage = -1;
  int64_t micro = -1;
  int layer = -1;
  int slice = -1;

  bool IsCompute() const {
    return kind == OpKind::kForward || kind == OpKind::kBackward ||
           kind == OpKind::kOptimizerStep;
  }
  bool IsCollective() const {
    return kind == OpKind::kReduceScatter || kind == OpKind::kAllGather;
  }
  bool OccupiesDevices() const { return kind != OpKind::kP2pTransfer; }

  std::string ToString() const;
};

}  // namespace graph
}  // namespace malleus

#endif  // MALLEUS_GRAPH_OP_H_
