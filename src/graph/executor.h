// Discrete-event execution of an operator graph on the simulated cluster.
//
// Devices execute their queued ops strictly in issue order; a collective
// runs when it reaches the front of *every* participant's queue (so an
// inconsistent issue order across participants deadlocks - exactly the
// hazard S5.1's canonical call order exists to prevent, and the executor
// detects it). P2P transfers are asynchronous copies that delay consumers
// without occupying the compute stream.

#ifndef MALLEUS_GRAPH_EXECUTOR_H_
#define MALLEUS_GRAPH_EXECUTOR_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "model/cost_model.h"
#include "plan/plan.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace graph {

/// Outcome of executing a graph.
struct ExecutionResult {
  double makespan_seconds = 0.0;
  /// Finish time of every op.
  std::vector<double> finish_seconds;
  /// Busy-until time per device.
  std::map<topo::GpuId, double> device_busy_seconds;
};

/// Executes `g` with the given per-GPU effective straggling rates
/// (rate <= 0 entries mean "device unused"). Compute ops are stretched by
/// the slowest participant's rate; communication is rate-independent.
/// Returns Status::Internal on a collective-order deadlock.
Result<ExecutionResult> ExecuteGraph(const Graph& g,
                                     const topo::ClusterSpec& cluster,
                                     const std::vector<double>& rates);

/// Convenience wrapper mirroring sim::SimulateStep: builds the step graph
/// of `p` and executes it under `situation` (with kernel jitter from rng).
/// This is the high-fidelity counterpart of the analytic simulator; tests
/// cross-validate the two.
Result<double> SimulateStepViaGraph(const topo::ClusterSpec& cluster,
                                    const model::CostModel& cost,
                                    const plan::ParallelPlan& p,
                                    const straggler::Situation& situation,
                                    double timing_noise_stddev, Rng* rng);

}  // namespace graph
}  // namespace malleus

#endif  // MALLEUS_GRAPH_EXECUTOR_H_
