#include "graph/graph.h"

#include "common/string_util.h"

namespace malleus {
namespace graph {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kForward:
      return "Forward";
    case OpKind::kBackward:
      return "Backward";
    case OpKind::kP2pTransfer:
      return "P2pTransfer";
    case OpKind::kReduceScatter:
      return "ReduceScatter";
    case OpKind::kAllGather:
      return "AllGather";
    case OpKind::kOptimizerStep:
      return "OptimizerStep";
  }
  return "?";
}

std::string Op::ToString() const {
  std::string out = StrFormat("#%d %s", id, OpKindName(kind));
  if (pipeline >= 0) out += StrFormat(" p%d", pipeline);
  if (stage >= 0) out += StrFormat(" s%d", stage);
  if (micro >= 0) out += StrFormat(" m%lld", static_cast<long long>(micro));
  if (layer >= 0) out += StrFormat(" L%d", layer);
  if (slice >= 0) out += StrFormat("/%d", slice);
  return out;
}

const std::vector<OpId> Graph::kEmptyQueue;

OpId Graph::Add(Op op) {
  op.id = static_cast<OpId>(ops_.size());
  if (op.OccupiesDevices()) {
    for (topo::GpuId g : op.devices) {
      device_queues_[g].push_back(op.id);
    }
  }
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

const std::vector<OpId>& Graph::DeviceQueue(topo::GpuId gpu) const {
  auto it = device_queues_.find(gpu);
  return it == device_queues_.end() ? kEmptyQueue : it->second;
}

Status Graph::Validate() const {
  for (const Op& op : ops_) {
    if (op.devices.empty()) {
      return Status::InvalidArgument(
          StrFormat("op %d has no devices", op.id));
    }
    for (OpId dep : op.deps) {
      if (dep < 0 || dep >= op.id) {
        return Status::InvalidArgument(StrFormat(
            "op %d depends on %d (deps must point backwards)", op.id, dep));
      }
    }
    if (op.IsCompute() && op.base_seconds < 0) {
      return Status::InvalidArgument("negative compute duration");
    }
    if (!op.IsCompute() && op.bytes < 0) {
      return Status::InvalidArgument("negative comm payload");
    }
    if (op.kind == OpKind::kP2pTransfer && op.devices.size() != 2) {
      return Status::InvalidArgument("P2P transfer needs src and dst");
    }
  }
  return Status::OK();
}

GraphStats Graph::Stats() const {
  GraphStats s;
  s.num_ops = size();
  for (const Op& op : ops_) {
    if (op.IsCompute()) {
      ++s.num_compute;
      s.total_flops_seconds += op.base_seconds;
    } else if (op.kind == OpKind::kP2pTransfer) {
      ++s.num_p2p;
      s.total_comm_bytes += op.bytes;
    } else {
      ++s.num_collectives;
      s.total_comm_bytes += op.bytes;
    }
  }
  return s;
}

}  // namespace graph
}  // namespace malleus
