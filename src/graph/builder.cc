#include "graph/builder.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "sim/pipeline_sim.h"

namespace malleus {
namespace graph {

namespace {

// Stage of `pipeline` hosting `layer`, or -1.
int StageOfLayer(const plan::Pipeline& pipeline, int layer) {
  int offset = 0;
  for (size_t j = 0; j < pipeline.stages.size(); ++j) {
    const int next = offset + pipeline.stages[j].num_layers;
    if (layer >= offset && layer < next) return static_cast<int>(j);
    offset = next;
  }
  return -1;
}

struct PipelineBuild {
  // Compute op ids, indexed [stage][micro].
  std::vector<std::vector<OpId>> fwd_ids;
  std::vector<std::vector<OpId>> bwd_ids;
  // Last backward op of each stage (the gradient-sync dependency).
  std::vector<OpId> last_bwd;
};

// Emits the 1F1B compute + P2P ops of one pipeline, in an insertion order
// that is simultaneously topological and per-stage issue order: stages are
// swept repeatedly and a task is appended as soon as its producer exists.
PipelineBuild BuildPipeline(Graph* g, const plan::ParallelPlan& p,
                            int pipeline_index, const model::CostModel& cost,
                            const BuildOptions& options) {
  const plan::Pipeline& pipe = p.pipelines[pipeline_index];
  const int pp = pipe.num_stages();
  const int64_t m = pipe.num_microbatches;
  const int b = p.micro_batch_size;
  const double ac = p.activation_checkpointing
                        ? cost.config().ac_compute_overhead
                        : 1.0;

  PipelineBuild out;
  out.fwd_ids.assign(pp, std::vector<OpId>(m, -1));
  out.bwd_ids.assign(pp, std::vector<OpId>(m, -1));
  out.last_bwd.assign(pp, -1);

  std::vector<std::vector<sim::StageTask>> seq(pp);
  for (int j = 0; j < pp; ++j) {
    seq[j] = sim::Build1F1BSchedule(j, pp, m);
  }
  std::vector<size_t> pos(pp, 0);
  // The previous op of each stage: chains the stage's issue order into
  // explicit dependencies so the graph is self-contained.
  std::vector<OpId> prev_in_stage(pp, -1);

  const double p2p_bytes = cost.P2pActivationBytes(b);

  size_t total_done = 0;
  const size_t total = static_cast<size_t>(pp) * 2 * m;
  while (total_done < total) {
    bool progressed = false;
    for (int j = 0; j < pp; ++j) {
      while (pos[j] < seq[j].size()) {
        const sim::StageTask& t = seq[j][pos[j]];
        const int64_t k = t.micro;
        std::vector<OpId> deps;
        if (prev_in_stage[j] >= 0) deps.push_back(prev_in_stage[j]);
        if (t.is_fwd && j > 0) {
          if (out.fwd_ids[j - 1][k] < 0) break;  // Producer not built yet.
          if (options.include_p2p) {
            Op xfer;
            xfer.kind = OpKind::kP2pTransfer;
            xfer.devices = {pipe.stages[j - 1].group.gpus.back(),
                            pipe.stages[j].group.gpus.front()};
            xfer.bytes = p2p_bytes;
            xfer.deps = {out.fwd_ids[j - 1][k]};
            xfer.pipeline = pipeline_index;
            xfer.stage = j;
            xfer.micro = k;
            deps.push_back(g->Add(std::move(xfer)));
          } else {
            deps.push_back(out.fwd_ids[j - 1][k]);
          }
        }
        if (!t.is_fwd && j < pp - 1) {
          if (out.bwd_ids[j + 1][k] < 0) break;
          if (options.include_p2p) {
            Op xfer;
            xfer.kind = OpKind::kP2pTransfer;
            xfer.devices = {pipe.stages[j + 1].group.gpus.front(),
                            pipe.stages[j].group.gpus.back()};
            xfer.bytes = p2p_bytes;
            xfer.deps = {out.bwd_ids[j + 1][k]};
            xfer.pipeline = pipeline_index;
            xfer.stage = j;
            xfer.micro = k;
            deps.push_back(g->Add(std::move(xfer)));
          } else {
            deps.push_back(out.bwd_ids[j + 1][k]);
          }
        }
        // The backward additionally consumes the same stage's stashed
        // forward activations, which the stage order already guarantees.
        const plan::Stage& stage = pipe.stages[j];
        const double t_full = cost.Rho(stage.group.size()) *
                              stage.num_layers * cost.TauSeconds(b);
        // Activation checkpointing re-runs the forward during backward;
        // the forward pass itself is unchanged.
        const double bwd_seconds =
            t_full * 2.0 / 3.0 + (ac - 1.0) * t_full;
        Op op;
        op.kind = t.is_fwd ? OpKind::kForward : OpKind::kBackward;
        op.devices = stage.group.gpus;
        op.base_seconds = t.is_fwd ? t_full / 3.0 : bwd_seconds;
        op.deps = std::move(deps);
        op.pipeline = pipeline_index;
        op.stage = j;
        op.micro = k;
        const OpId id = g->Add(std::move(op));
        (t.is_fwd ? out.fwd_ids : out.bwd_ids)[j][k] = id;
        prev_in_stage[j] = id;
        if (!t.is_fwd) out.last_bwd[j] = id;
        ++pos[j];
        ++total_done;
        progressed = true;
      }
    }
    MALLEUS_CHECK(progressed) << "1F1B graph construction stalled";
  }
  return out;
}

}  // namespace

Result<Graph> BuildStepGraph(const plan::ParallelPlan& p,
                             const model::CostModel& cost,
                             const BuildOptions& options) {
  if (p.pipelines.empty()) {
    return Status::InvalidArgument("plan has no pipelines");
  }
  Graph g;
  const int dp = p.dp_degree();

  std::vector<PipelineBuild> builds;
  builds.reserve(dp);
  for (int i = 0; i < dp; ++i) {
    builds.push_back(BuildPipeline(&g, p, i, cost, options));
  }

  // --- ZeRO-1 gradient sync + optimizer + parameter gather tail ---
  const int num_layers = p.pipelines[0].TotalLayers();
  const double layer_param_bytes = 2.0 * cost.spec().ParamsPerLayer();

  // Per-GPU reduce-scatter ops, needed as optimizer dependencies.
  std::map<topo::GpuId, std::vector<OpId>> rs_by_gpu;
  // (layer, slice) -> participants + their optimizer owner, for all-gather.
  struct SliceRing {
    std::vector<topo::GpuId> devices;
    topo::GpuId optimizer_owner = -1;
    double bytes = 0.0;
  };
  std::vector<SliceRing> rings;

  if (options.include_grad_sync && dp > 1) {
    for (int layer = 0; layer < num_layers; ++layer) {
      int tp_max = 0;
      std::vector<int> stage_of(dp);
      for (int i = 0; i < dp; ++i) {
        stage_of[i] = StageOfLayer(p.pipelines[i], layer);
        MALLEUS_CHECK_GE(stage_of[i], 0);
        tp_max = std::max(
            tp_max, p.pipelines[i].stages[stage_of[i]].group.size());
      }
      for (int slice = 0; slice < tp_max; ++slice) {
        SliceRing ring;
        ring.bytes = layer_param_bytes / tp_max;
        std::vector<OpId> deps;
        for (int i = 0; i < dp; ++i) {
          const plan::TpGroup& group =
              p.pipelines[i].stages[stage_of[i]].group;
          const int per = tp_max / group.size();
          ring.devices.push_back(group.gpus[slice / per]);
          deps.push_back(builds[i].last_bwd[stage_of[i]]);
        }
        // ZeRO-1 scatters the optimizer slices across the DP replicas
        // (strided by layer so dp > TPmax still uses every replica).
        ring.optimizer_owner = ring.devices[(layer * tp_max + slice) % dp];

        Op rs;
        rs.kind = OpKind::kReduceScatter;
        rs.devices = ring.devices;
        rs.bytes = ring.bytes;
        rs.deps = std::move(deps);
        rs.layer = layer;
        rs.slice = slice;
        const OpId id = g.Add(std::move(rs));
        for (topo::GpuId dev : g.op(id).devices) {
          rs_by_gpu[dev].push_back(id);
        }
        rings.push_back(std::move(ring));
      }
    }
  }

  // Optimizer updates: each GPU updates its ZeRO shard.
  std::map<topo::GpuId, OpId> opt_by_gpu;
  for (topo::GpuId gpu : p.ActiveGpus()) {
    Op opt;
    opt.kind = OpKind::kOptimizerStep;
    opt.devices = {gpu};
    double shard_bytes = 0.0;
    for (const SliceRing& ring : rings) {
      if (ring.optimizer_owner == gpu) {
        shard_bytes += ring.bytes *
                       cost.config().sharded_bytes_per_param / 2.0;
      }
    }
    opt.base_seconds = shard_bytes / options.optimizer_bytes_per_second;
    if (auto it = rs_by_gpu.find(gpu); it != rs_by_gpu.end()) {
      opt.deps = it->second;
    }
    opt_by_gpu[gpu] = g.Add(std::move(opt));
  }

  // All-gathers: retrieve the updated parameters, same (layer, slice) order.
  if (options.include_grad_sync && dp > 1) {
    size_t ring_index = 0;
    for (int layer = 0; layer < num_layers; ++layer) {
      int tp_max = 0;
      for (int i = 0; i < dp; ++i) {
        const int j = StageOfLayer(p.pipelines[i], layer);
        tp_max = std::max(tp_max, p.pipelines[i].stages[j].group.size());
      }
      for (int slice = 0; slice < tp_max; ++slice, ++ring_index) {
        const SliceRing& ring = rings[ring_index];
        Op ag;
        ag.kind = OpKind::kAllGather;
        ag.devices = ring.devices;
        ag.bytes = ring.bytes;
        ag.deps = {opt_by_gpu.at(ring.optimizer_owner)};
        ag.layer = layer;
        ag.slice = slice;
        g.Add(std::move(ag));
      }
    }
  }

  MALLEUS_RETURN_NOT_OK(g.Validate());
  return g;
}

}  // namespace graph
}  // namespace malleus
