// The execution graph container: op storage, validation, and statistics.

#ifndef MALLEUS_GRAPH_GRAPH_H_
#define MALLEUS_GRAPH_GRAPH_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "graph/op.h"

namespace malleus {
namespace graph {

/// Aggregate statistics of a graph (used by tests and reporting).
struct GraphStats {
  int num_ops = 0;
  int num_compute = 0;
  int num_p2p = 0;
  int num_collectives = 0;
  double total_flops_seconds = 0.0;  ///< Sum of compute base_seconds.
  double total_comm_bytes = 0.0;
};

/// \brief An append-only operator DAG.
///
/// Ops are identified by dense ids in insertion order; dependencies must
/// point backwards (the builder constructs in a valid order; Validate
/// enforces it), which keeps every traversal trivially topological.
class Graph {
 public:
  /// Appends an op; assigns and returns its id. Dependencies must already
  /// exist.
  OpId Add(Op op);

  int size() const { return static_cast<int>(ops_.size()); }
  const Op& op(OpId id) const { return ops_[id]; }
  const std::vector<Op>& ops() const { return ops_; }

  /// Per-device op sequences, in issue order (insertion order restricted
  /// to ops that occupy the device).
  const std::vector<OpId>& DeviceQueue(topo::GpuId gpu) const;

  /// Checks structural sanity: backward deps, devices present, payloads
  /// consistent with the op kind.
  Status Validate() const;

  GraphStats Stats() const;

 private:
  std::vector<Op> ops_;
  std::map<topo::GpuId, std::vector<OpId>> device_queues_;
  static const std::vector<OpId> kEmptyQueue;
};

}  // namespace graph
}  // namespace malleus

#endif  // MALLEUS_GRAPH_GRAPH_H_
