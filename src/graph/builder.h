// Builds the execution graph of one training step from a ParallelPlan:
// 1F1B-ordered per-stage compute, inter-stage P2P transfers, the ZeRO-1
// per-slice reduce-scatter / optimizer / all-gather tail in the globally
// consistent (layer, slice) order, per Figure 6 and S5.1.

#ifndef MALLEUS_GRAPH_BUILDER_H_
#define MALLEUS_GRAPH_BUILDER_H_

#include "common/result.h"
#include "graph/graph.h"
#include "model/cost_model.h"
#include "plan/plan.h"

namespace malleus {
namespace graph {

struct BuildOptions {
  bool include_p2p = true;
  bool include_grad_sync = true;
  /// Effective HBM bandwidth used for the optimizer-update duration.
  double optimizer_bytes_per_second = 2e12;
};

/// Materializes one step of `p`. The plan is assumed valid; ops are emitted
/// in a topological order that also matches every stage's 1F1B issue order
/// and every GPU's collective call order.
Result<Graph> BuildStepGraph(const plan::ParallelPlan& p,
                             const model::CostModel& cost,
                             const BuildOptions& options = BuildOptions());

}  // namespace graph
}  // namespace malleus

#endif  // MALLEUS_GRAPH_BUILDER_H_
