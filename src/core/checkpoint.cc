#include "core/checkpoint.h"

#include <algorithm>

#include "common/logging.h"
#include "core/sharding.h"

namespace malleus {
namespace core {

namespace {

// Visits every (layer, owner interval) of every replica plus the optimizer
// shard owners; the callbacks receive (gpu, bytes).
template <typename WeightsFn, typename OptimizerFn>
Status VisitStateOwners(const plan::ParallelPlan& p,
                        const model::CostModel& cost, WeightsFn on_weights,
                        OptimizerFn on_optimizer) {
  const int dp = p.dp_degree();
  const int num_layers = cost.spec().num_layers;
  const double weight_bytes = 2.0 * cost.spec().ParamsPerLayer();
  const double optimizer_bytes =
      cost.config().sharded_bytes_per_param * cost.spec().ParamsPerLayer();

  for (int layer = 0; layer < num_layers; ++layer) {
    // Weight intervals per replica.
    std::vector<std::vector<OwnedInterval>> owners(dp);
    int tp_max = 0;
    for (int i = 0; i < dp; ++i) {
      Result<std::vector<OwnedInterval>> o = LayerWeightOwners(p, i, layer);
      MALLEUS_RETURN_NOT_OK(o.status());
      owners[i] = std::move(o).ValueOrDie();
      tp_max = std::max(tp_max, static_cast<int>(owners[i].size()));
    }
    for (int i = 0; i < dp; ++i) {
      for (const OwnedInterval& iv : owners[i]) {
        on_weights(i, iv.gpu, (iv.end - iv.begin) * weight_bytes);
      }
    }
    // Optimizer slices: DP x TPmax pieces. Striding by layer spreads the
    // ownership over every replica even when dp > tp_max.
    for (int slice = 0; slice < tp_max; ++slice) {
      const int replica = (layer * tp_max + slice) % dp;
      const double lo = static_cast<double>(slice) / tp_max;
      // The GPU of `replica` whose weight interval contains this slice.
      topo::GpuId owner = -1;
      for (const OwnedInterval& iv : owners[replica]) {
        if (lo >= iv.begin - 1e-12 && lo < iv.end) owner = iv.gpu;
      }
      MALLEUS_CHECK_GE(owner, 0);
      on_optimizer(owner, optimizer_bytes / tp_max);
    }
  }
  return Status::OK();
}

}  // namespace

Result<CheckpointIoPlan> PlanCheckpointSave(const plan::ParallelPlan& p,
                                            const model::CostModel& cost) {
  CheckpointIoPlan io;
  MALLEUS_RETURN_NOT_OK(VisitStateOwners(
      p, cost,
      [&](int replica, topo::GpuId gpu, double bytes) {
        // Weights are replicated across DP; replica 0 writes them once.
        if (replica != 0) return;
        io.bytes_per_gpu[gpu] += bytes;
        io.total_bytes += bytes;
      },
      [&](topo::GpuId gpu, double bytes) {
        io.bytes_per_gpu[gpu] += bytes;
        io.total_bytes += bytes;
      }));
  return io;
}

Result<CheckpointIoPlan> PlanCheckpointLoad(const plan::ParallelPlan& p,
                                            const model::CostModel& cost) {
  CheckpointIoPlan io;
  MALLEUS_RETURN_NOT_OK(VisitStateOwners(
      p, cost,
      [&](int replica, topo::GpuId gpu, double bytes) {
        // Every replica reads its weights back.
        (void)replica;
        io.bytes_per_gpu[gpu] += bytes;
        io.total_bytes += bytes;
      },
      [&](topo::GpuId gpu, double bytes) {
        io.bytes_per_gpu[gpu] += bytes;
        io.total_bytes += bytes;
      }));
  return io;
}

double CheckpointIoSeconds(const CheckpointIoPlan& io,
                           const topo::ClusterSpec& cluster,
                           const CheckpointIoConfig& config) {
  std::map<topo::NodeId, double> node_bytes;
  for (const auto& [gpu, bytes] : io.bytes_per_gpu) {
    node_bytes[cluster.NodeOf(gpu)] += bytes;
  }
  double worst = 0.0;
  for (const auto& [node, bytes] : node_bytes) {
    worst = std::max(worst, bytes / (config.per_node_io_gbps * 1e9));
  }
  return worst;
}

}  // namespace core
}  // namespace malleus
