#include "core/hier.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/work_assignment.h"
#include "lint/lint.h"
#include "obs/metrics.h"
#include "plan/estimator.h"
#include "solver/solve_cache.h"

namespace malleus {
namespace core {

std::shared_ptr<HierPlanState> MakeHierPlanState() {
  return std::make_shared<HierPlanState>();
}

int ResolveIslandNodes(const topo::ClusterSpec& cluster,
                       const PlannerOptions& options) {
  const int nodes = cluster.num_nodes();
  if (options.island_nodes < 0) return 0;
  if (options.island_nodes > 0) {
    // A non-dividing size is rejected by Plan() before dispatch; a size
    // covering the whole cluster means one island, i.e. the flat sweep.
    if (options.island_nodes >= nodes) return 0;
    if (nodes % options.island_nodes != 0) return 0;
    return options.island_nodes;
  }
  if (cluster.fabric().kind == topo::FabricSpec::Kind::kFatTree &&
      cluster.num_pods() >= 2 && cluster.num_gpus() >= kHierAutoMinGpus) {
    return cluster.NodesPerPod();
  }
  return 0;
}

namespace {

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Deterministic largest-remainder split of `total` over the healthy
// islands, proportional to their capacities, every share >= 1 (requires
// total >= healthy.size()). Ties in the fractional parts break to the
// lower island index.
std::vector<int64_t> SplitProportional(int64_t total,
                                       const std::vector<int>& healthy,
                                       const std::vector<double>& caps) {
  const size_t h = healthy.size();
  MALLEUS_CHECK_GE(total, static_cast<int64_t>(h));
  std::vector<int64_t> share(h, 1);
  const int64_t rem = total - static_cast<int64_t>(h);
  double cap_sum = 0.0;
  for (int k : healthy) cap_sum += caps[k];
  std::vector<std::pair<double, size_t>> fracs(h);
  int64_t given = 0;
  for (size_t i = 0; i < h; ++i) {
    const double quota =
        static_cast<double>(rem) * (caps[healthy[i]] / cap_sum);
    const int64_t base = static_cast<int64_t>(std::floor(quota));
    share[i] += base;
    given += base;
    fracs[i] = {quota - static_cast<double>(base), i};
  }
  std::sort(fracs.begin(), fracs.end(),
            [](const std::pair<double, size_t>& a,
               const std::pair<double, size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  const int64_t leftover = rem - given;
  MALLEUS_CHECK_GE(leftover, 0);
  MALLEUS_CHECK_LE(leftover, static_cast<int64_t>(h));
  for (int64_t j = 0; j < leftover; ++j) ++share[fracs[j].second];
  return share;
}

}  // namespace

Result<PlanResult> PlanHierarchical(const topo::ClusterSpec& cluster,
                                    const model::CostModel& cost,
                                    const straggler::Situation& situation,
                                    int64_t global_batch,
                                    const PlannerOptions& options,
                                    int island_nodes, HierPlanState* state) {
  const auto t_total = std::chrono::steady_clock::now();
  MALLEUS_CHECK(state != nullptr);
  MALLEUS_CHECK_GT(island_nodes, 0);
  MALLEUS_CHECK_EQ(cluster.num_nodes() % island_nodes, 0);
  const int num_islands = cluster.num_nodes() / island_nodes;
  const int gpn = cluster.gpus_per_node();
  const int island_gpus = island_nodes * gpn;

  // Island-local view of the hardware: inside a pod the network is flat,
  // so islands plan on a flat sub-cluster of the same GPU and link specs.
  const topo::ClusterSpec island_cluster(island_nodes, gpn, cluster.gpu(),
                                         cluster.link());
  const Planner island_planner(island_cluster, cost);

  // Slice the situation per island; Theorem-2 capacity sum(1/x) per island
  // decides both the nominal micro-batch shares and the DP pinning split.
  std::vector<straggler::Situation> sits(num_islands,
                                         straggler::Situation(island_gpus));
  std::vector<double> caps(num_islands, 0.0);
  for (int k = 0; k < num_islands; ++k) {
    for (int g = 0; g < island_gpus; ++g) {
      const double r = situation.rate(k * island_gpus + g);
      sits[k].SetRate(g, r);
      if (r != straggler::kFailedRate) caps[k] += 1.0 / r;
    }
  }
  std::vector<int> healthy;
  for (int k = 0; k < num_islands; ++k) {
    if (caps[k] > 0.0) healthy.push_back(k);
  }
  if (healthy.empty()) {
    return Status::Infeasible("every island is fully failed");
  }
  const int64_t num_healthy = static_cast<int64_t>(healthy.size());

  // A pinned DP degree is distributed over the healthy islands by
  // capacity; Plan() only dispatches here when dp >= the island count.
  std::vector<int64_t> dp_share(num_islands, 0);
  if (options.dp_degree > 0) {
    if (options.dp_degree < num_healthy) {
      return Status::Infeasible(
          StrFormat("pinned dp %d is below the %lld healthy islands",
                    options.dp_degree,
                    static_cast<long long>(num_healthy)));
    }
    const std::vector<int64_t> split =
        SplitProportional(options.dp_degree, healthy, caps);
    for (size_t i = 0; i < healthy.size(); ++i) {
      dp_share[healthy[i]] = split[i];
    }
  }

  std::vector<int> micro_batches;
  if (options.forced_micro_batch > 0) {
    if (global_batch % options.forced_micro_batch == 0) {
      micro_batches.push_back(options.forced_micro_batch);
    }
  } else {
    for (int b = 1; b <= options.max_micro_batch; ++b) {
      if (global_batch % b == 0) micro_batches.push_back(b);
    }
  }

  PlannerTimings timings;
  PlanResult best;
  best.estimated_seconds = std::numeric_limits<double>::infinity();
  best.estimated_full_seconds = std::numeric_limits<double>::infinity();
  bool found = false;
  Status last_error =
      Status::Infeasible("no micro-batch candidate produced a stitched plan");
  int64_t hits = 0;
  int64_t misses = 0;

  for (int b : micro_batches) {
    const int64_t total_micro = global_batch / b;
    if (total_micro < num_healthy ||
        (options.dp_degree > 0 && total_micro < options.dp_degree)) {
      last_error = Status::Infeasible(
          StrFormat("batch %lld at micro-batch %d yields too few "
                    "micro-batches for the island split",
                    static_cast<long long>(global_batch), b));
      continue;
    }
    const std::vector<int64_t> micro_share =
        SplitProportional(total_micro, healthy, caps);

    // Solve every island (memoized) and stitch in island order.
    plan::ParallelPlan stitched;
    stitched.micro_batch_size = b;
    stitched.global_batch = global_batch;
    int tp_max = 0;
    bool islands_ok = true;
    for (int k = 0, next_healthy = 0; k < num_islands; ++k) {
      const topo::GpuId offset = static_cast<topo::GpuId>(k) * island_gpus;
      if (caps[k] <= 0.0) {
        // A fully failed island contributes no pipelines; its GPUs sit on
        // standby so the stitched plan still accounts for every device.
        for (int g = 0; g < island_gpus; ++g) {
          stitched.standby_gpus.push_back(offset + g);
        }
        continue;
      }
      int64_t m_k = micro_share[next_healthy];
      ++next_healthy;
      if (dp_share[k] > 0) m_k = std::max(m_k, dp_share[k]);

      // The memo key covers everything that can change this island's
      // answer. enable_solve_cache is deliberately absent (it cannot), and
      // max_micro_batch is unused once b is pinned.
      solver::CacheKey key;
      key.Tag('H')
          .Int(island_nodes)
          .Int(gpn)
          .Int(b)
          .Int(m_k)
          .Int(dp_share[k])
          .Int(options.forced_tp)
          .Bool(options.nonuniform_devices)
          .Bool(options.nonuniform_layers)
          .Bool(options.nonuniform_data)
          .Int(options.max_division_nodes)
          .Doubles(sits[k].rates());

      std::shared_ptr<const HierPlanState::Entry> entry;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        auto it = state->memo.find(key.str());
        if (it != state->memo.end()) {
          entry = it->second;
          ++state->hits;
          ++hits;
        } else {
          ++state->misses;
          ++misses;
        }
      }
      if (entry == nullptr) {
        PlannerOptions iopts = options;
        iopts.dp_degree = static_cast<int>(dp_share[k]);
        iopts.forced_micro_batch = b;
        iopts.island_nodes = -1;  // Islands always run the flat sweep.
        iopts.num_threads = 1;    // Memoization makes island solves cheap.
        const Result<PlanResult> solved =
            island_planner.Plan(sits[k], m_k * b, iopts);
        auto fresh = std::make_shared<HierPlanState::Entry>();
        if (solved.ok()) {
          fresh->feasible = true;
          fresh->plan = solved->plan;
          fresh->chosen_tp = solved->chosen_tp;
          timings.grouping_seconds += solved->timings.grouping_seconds;
          timings.division_seconds += solved->timings.division_seconds;
          timings.ordering_seconds += solved->timings.ordering_seconds;
          timings.assignment_seconds += solved->timings.assignment_seconds;
        } else {
          fresh->error = solved.status().ToString();
        }
        std::lock_guard<std::mutex> lock(state->mu);
        entry = state->memo.emplace(key.str(), std::move(fresh))
                    .first->second;
      }
      if (!entry->feasible) {
        last_error = Status::Infeasible(StrFormat(
            "island %d (micro-batch %d): %s", k, b, entry->error.c_str()));
        islands_ok = false;
        break;
      }
      tp_max = std::max(tp_max, entry->chosen_tp);
      for (const plan::Pipeline& p : entry->plan.pipelines) {
        plan::Pipeline remapped = p;
        for (plan::Stage& stage : remapped.stages) {
          for (topo::GpuId& g : stage.group.gpus) g += offset;
        }
        stitched.pipelines.push_back(std::move(remapped));
      }
      for (topo::GpuId g : entry->plan.standby_gpus) {
        stitched.standby_gpus.push_back(g + offset);
      }
    }
    if (!islands_ok) continue;

    // Global Eq. (3) re-assignment: micro-batches follow the stitched
    // pipelines' true bottlenecks under the GLOBAL situation, not the
    // nominal capacity split the islands were seeded with.
    if (static_cast<int64_t>(stitched.pipelines.size()) > total_micro) {
      last_error = Status::Infeasible(
          StrFormat("stitched %zu pipelines exceed %lld micro-batches",
                    stitched.pipelines.size(),
                    static_cast<long long>(total_micro)));
      continue;
    }
    std::vector<double> bottlenecks;
    bottlenecks.reserve(stitched.pipelines.size());
    for (const plan::Pipeline& p : stitched.pipelines) {
      double bn = 0.0;
      for (const plan::Stage& s : p.stages) {
        bn = std::max(
            bn, plan::StageTimePerMicrobatch(s, b, cost, situation));
      }
      bottlenecks.push_back(bn);
    }
    const Result<std::vector<int64_t>> data =
        AssignData(bottlenecks, total_micro, options.nonuniform_data);
    if (!data.ok()) {
      last_error = data.status();
      continue;
    }
    for (size_t i = 0; i < stitched.pipelines.size(); ++i) {
      stitched.pipelines[i].num_microbatches = (*data)[i];
    }

    Status valid = stitched.Validate(cluster, cost);
    if (!valid.ok()) {
      last_error = std::move(valid);
      continue;
    }

    const plan::StepEstimate est =
        plan::EstimateStep(stitched, cost, situation);
    // Strict <, so the first (lowest) b keeps ties — the flat sweep's
    // deterministic tie-break rule.
    if (est.step_seconds < best.estimated_full_seconds) {
      best.plan = std::move(stitched);
      best.estimated_seconds = est.simplified_seconds;
      best.estimated_full_seconds = est.step_seconds;
      best.chosen_tp = tp_max;
      found = true;
    }
  }

  timings.total_seconds = Elapsed(t_total);

  auto& registry = obs::MetricsRegistry::Current();
  registry.GetCounter("planner.hier_solves")->Increment();
  registry.GetGauge("planner.islands")->Set(static_cast<double>(num_islands));
  registry.GetCounter("planner.island_cache_hits")
      ->Increment(static_cast<double>(hits));
  registry.GetCounter("planner.island_cache_misses")
      ->Increment(static_cast<double>(misses));
  registry.GetHistogram("planner.solve_seconds")
      ->Observe(timings.total_seconds);

  if (!found) {
    registry.GetCounter("planner.infeasible_solves")->Increment();
    return last_error;
  }
  registry.GetGauge("planner.last_estimate_seconds")
      ->Set(best.estimated_full_seconds);
  best.timings = timings;

  lint::LintPlan(best.plan, cluster, cost, &situation, &best.diagnostics);
  lint::LintEventGraph(best.plan, &best.diagnostics);
  lint::RecordDiagnosticMetrics(best.diagnostics);

  return best;
}

}  // namespace core
}  // namespace malleus
