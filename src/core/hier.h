// Hierarchical planning for pod-scale clusters (paper S4 at 1k-10k GPUs).
//
// The flat candidate sweep scales with the whole cluster: grouping walks
// every node, and each orchestration solve sees every TP group. On a
// 10k-GPU fat-tree that is both slow and wasteful, because the fabric
// already decomposes the problem — within a pod the network is flat and
// non-blocking, and pipelines that span the oversubscribed spine lose to
// pod-local ones on communication alone.
//
// PlanHierarchical exploits that structure:
//
//   1. Partition the nodes into contiguous islands (the fat-tree pods by
//      default, or an explicit PlannerOptions::island_nodes).
//   2. For each candidate micro-batch size b, give every island a nominal
//      share of the micro-batches proportional to its Theorem-2 capacity
//      sum(1/x) and plan the island with the ordinary flat sweep on an
//      island-local ClusterSpec, pinned to b.
//   3. Stitch: remap island GPU ids by the island offset, concatenate the
//      pipelines, and re-run the global Eq. (3) data assignment over the
//      stitched pipelines' true bottlenecks so micro-batches follow the
//      measured imbalance rather than the nominal split.
//   4. Keep the b whose stitched plan has the lowest full-step estimate
//      (strict <, first b wins ties — the flat sweep's tie-break rule).
//
// Island solves are memoized in HierPlanState keyed by everything that can
// change the island's answer (its rates bit-for-bit, b, micro share, DP
// pin, feature flags). Equal healthy islands therefore collapse into ONE
// solve, and delta re-planning — one straggler appears somewhere in a
// 10k-GPU cluster — re-solves exactly the one island whose key changed.
//
// The decomposition is a heuristic: pipelines never span islands (which is
// exactly what a pod-aware operator wants), so a model too big for one
// island is infeasible here. Planner::Plan falls back to the flat sweep
// when PlanHierarchical reports failure.

#ifndef MALLEUS_CORE_HIER_H_
#define MALLEUS_CORE_HIER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "core/planner.h"
#include "model/cost_model.h"
#include "plan/plan.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {

/// Persistent island-solve memo. Thread-safe (one internal mutex); owned
/// by the Planner so warm re-planning survives across Plan() calls.
struct HierPlanState {
  /// One island's solved sub-plan, in island-local GPU ids.
  struct Entry {
    bool feasible = false;
    plan::ParallelPlan plan;
    int chosen_tp = 0;
    std::string error;  ///< Meaningful iff !feasible.
  };

  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const Entry>> memo;
  // Lifetime hit/miss counters (reported as planner.island_cache_* deltas).
  int64_t hits = 0;
  int64_t misses = 0;
};

/// The island size (in nodes) Plan() should decompose at, or 0 for the
/// flat sweep. Explicit island_nodes wins; automatic mode picks the
/// fat-tree pod size once the cluster has at least two pods and at least
/// kHierAutoMinGpus GPUs (below that the flat sweep is already fast, and
/// its plans can use cross-pod pipelines small fabrics sometimes need).
int ResolveIslandNodes(const topo::ClusterSpec& cluster,
                       const PlannerOptions& options);

/// GPU count at which automatic hierarchical decomposition switches on.
inline constexpr int kHierAutoMinGpus = 128;

/// Plans `cluster` by island decomposition (see file comment). Returns the
/// stitched plan, or an infeasibility Status when no micro-batch candidate
/// produced a valid stitched plan (the caller falls back to flat).
Result<PlanResult> PlanHierarchical(const topo::ClusterSpec& cluster,
                                    const model::CostModel& cost,
                                    const straggler::Situation& situation,
                                    int64_t global_batch,
                                    const PlannerOptions& options,
                                    int island_nodes, HierPlanState* state);

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_HIER_H_
