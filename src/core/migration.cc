#include "core/migration.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"
#include "core/sharding.h"

namespace malleus {
namespace core {

namespace {

// Adds the transfers needed so that the `to` owners of one layer obtain
// every interval fraction they do not already hold in `from`.
// `bytes_full` is the byte size of the whole interval [0, 1).
void DiffIntervals(const std::vector<OwnedInterval>& from,
                   const std::vector<OwnedInterval>& to, double bytes_full,
                   std::map<std::pair<topo::GpuId, topo::GpuId>, double>*
                       fused) {
  // Both interval lists cover [0,1) contiguously and in order; sweep them
  // with two pointers.
  size_t a = 0, b = 0;
  double pos = 0.0;
  while (b < to.size() && a < from.size()) {
    const double end = std::min(from[a].end, to[b].end);
    if (end > pos && from[a].gpu != to[b].gpu) {
      (*fused)[{from[a].gpu, to[b].gpu}] += (end - pos) * bytes_full;
    }
    pos = end;
    if (from[a].end <= pos) ++a;
    if (b < to.size() && to[b].end <= pos) ++b;
  }
}

}  // namespace

Result<MigrationPlan> ComputeMigration(const plan::ParallelPlan& from,
                                       const plan::ParallelPlan& to,
                                       const model::CostModel& cost) {
  if (from.pipelines.empty() || to.pipelines.empty()) {
    return Status::InvalidArgument("plans must have pipelines");
  }
  const int num_layers = cost.spec().num_layers;
  if (from.pipelines[0].TotalLayers() != num_layers ||
      to.pipelines[0].TotalLayers() != num_layers) {
    return Status::InvalidArgument("plans cover different layer counts");
  }
  const int dp_from = from.dp_degree();
  const int dp_to = to.dp_degree();
  const double params = static_cast<double>(cost.spec().ParamsPerLayer());
  // Per replica, per layer: bf16 weights + this replica's ZeRO-1 optimizer
  // shard (fp32 master + Adam moments).
  const double bytes_weights = 2.0 * params;
  const double bytes_optimizer =
      cost.config().sharded_bytes_per_param * params / dp_to;

  std::map<std::pair<topo::GpuId, topo::GpuId>, double> fused;
  for (int layer = 0; layer < num_layers; ++layer) {
    for (int i = 0; i < dp_to; ++i) {
      Result<std::vector<OwnedInterval>> dst =
          LayerWeightOwners(to, i, layer);
      MALLEUS_RETURN_NOT_OK(dst.status());
      Result<std::vector<OwnedInterval>> src =
          LayerWeightOwners(from, i % dp_from, layer);
      MALLEUS_RETURN_NOT_OK(src.status());
      DiffIntervals(*src, *dst, bytes_weights + bytes_optimizer, &fused);
    }
  }

  MigrationPlan out;
  for (const auto& [pair, bytes] : fused) {
    if (bytes <= 0) continue;
    out.transfers.push_back({pair.first, pair.second, bytes});
    out.total_bytes += bytes;
  }
  out.num_packs = (num_layers + kLayersPerMigrationPack - 1) /
                  kLayersPerMigrationPack;
  return out;
}

double MigrationSeconds(const MigrationPlan& migration,
                        const topo::ClusterSpec& cluster) {
  return sim::BatchedSendRecvSeconds(cluster, migration.transfers,
                                     migration.num_packs);
}

double MigrationSeconds(const MigrationPlan& migration,
                        const topo::ClusterSpec& cluster,
                        net::NetModel model) {
  return sim::BatchedSendRecvSeconds(cluster, migration.transfers,
                                     migration.num_packs, model);
}

}  // namespace core
}  // namespace malleus
