// The Malleus parallelization planner (paper S4): given the live straggling
// rates, deduce the plan that minimizes the estimated step time by
// enumerating the maximum TP degree in {1,2,4,8} and the micro-batch size,
// solving the upper-level problem (grouping + orchestration) and the
// lower-level problem (layer + data assignment) for each candidate.
//
// Candidates are independent, so Plan() enumerates them all up front and
// evaluates them concurrently on a malleus::exec thread pool, reducing to
// the winner with a deterministic rule (lowest full-step estimate, ties to
// the lowest enumeration index). The result is bit-identical at any thread
// count, including 1. Repeated subproblems are memoized in a per-planner
// solver::SolveCache (see orchestration.h), which also persists across
// Plan() calls: re-planning under an unchanged situation replays cached
// solves instead of re-running the division/ILP searches.
//
// At pod scale the flat sweep gives way to hierarchical decomposition
// (core/hier.h): islands — fat-tree pods by default — are planned
// independently, memoized per island, and stitched across the inter-island
// fabric, which is what keeps 1k-10k GPU planning sub-second.

#ifndef MALLEUS_CORE_PLANNER_H_
#define MALLEUS_CORE_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/grouping.h"
#include "core/orchestration.h"
#include "lint/lint.h"
#include "model/cost_model.h"
#include "plan/plan.h"
#include "solver/solve_cache.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {

struct PlannerOptions {
  /// Number of pipelines. 0 enumerates candidates (footnote 2 of the paper:
  /// the DP degree is normally maintained across re-planning because model
  /// state memory depends on it; pass the current value when re-planning).
  int dp_degree = 0;
  /// Micro-batch sizes b in [1, max_micro_batch] dividing B are enumerated.
  int max_micro_batch = 4;
  /// 0 enumerates TP degrees in {1,2,4,8} (capped by gpus_per_node); a
  /// value from that set pins the sweep to exactly that degree. The
  /// what-if engine uses this for `force_tp` counterfactuals.
  int forced_tp = 0;
  /// Feature flags for the Figure 9 ablation.
  bool nonuniform_devices = true;  ///< Grouping splits + varied stage counts.
  bool nonuniform_layers = true;   ///< Eq. (2) vs even layer split.
  bool nonuniform_data = true;     ///< Eq. (3) vs even data split.
  /// Node budget for the Eq. (4) division search per candidate.
  int64_t max_division_nodes = 500'000;
  /// Worker threads for the candidate sweep. 0 picks the default: the
  /// MALLEUS_PLANNER_THREADS environment variable when set, otherwise the
  /// hardware concurrency. 1 evaluates inline on the calling thread. The
  /// chosen plan is bit-identical at every thread count.
  int num_threads = 0;
  /// Memoize division/layer solves in the planner's SolveCache (across
  /// candidates and across Plan calls). Off re-solves everything; the
  /// chosen plan is identical either way.
  bool enable_solve_cache = true;
  /// Pins the micro-batch size to exactly this b (it must divide B); 0
  /// enumerates [1, max_micro_batch] as usual. The hierarchical
  /// decomposition pins island sweeps to the globally chosen b with this.
  int forced_micro_batch = 0;
  /// Hierarchical decomposition (see core/hier.h): plan islands of this
  /// many nodes independently and stitch across the inter-island fabric.
  /// 0 = automatic — islands are the fat-tree pods when the fabric defines
  /// at least two of them and the cluster is large enough for stitching to
  /// pay off; -1 forces the flat sweep; N > 0 forces islands of N nodes
  /// (N must divide the node count).
  int island_nodes = 0;
};

/// Wall-time breakdown of one planning run (Appendix A.2 / Table 5).
/// Component times are summed over candidates (never negative; clamped at
/// attribution); with more than one worker thread they aggregate busy time
/// across workers and may exceed `total_seconds`, which is always the
/// wall-clock time of the whole Plan() call.
struct PlannerTimings {
  double grouping_seconds = 0.0;
  double division_seconds = 0.0;
  double ordering_seconds = 0.0;
  double assignment_seconds = 0.0;
  double total_seconds = 0.0;
};

struct PlanResult {
  plan::ParallelPlan plan;
  /// Eq. (1) objective: max_i m_i * max_j y_{i,j} l_{i,j} * tau(b) - the
  /// planner's estimated step time (R_est).
  double estimated_seconds = 0.0;
  /// The full (warm-up + 1F1B + cool-down) closed-form estimate.
  double estimated_full_seconds = 0.0;
  int chosen_tp = 0;
  PlannerTimings timings;
  /// Lint findings for the chosen plan under the planning situation (the
  /// warn-level quality passes plus an event-graph audit; the structural
  /// checks hold by construction — every candidate is Validate()d). The
  /// engine logs these and refuses error-level plans.
  lint::DiagnosticSink diagnostics;
};

/// Persistent state of the hierarchical decomposition (core/hier.h): the
/// per-island solve memo that makes delta re-planning cheap. Opaque here;
/// owned by the Planner so it survives across Plan() calls.
struct HierPlanState;
std::shared_ptr<HierPlanState> MakeHierPlanState();

/// \brief Deduces the best parallelization plan for the situation.
class Planner {
 public:
  Planner(const topo::ClusterSpec& cluster, const model::CostModel& cost)
      : cluster_(cluster), cost_(cost), hier_state_(MakeHierPlanState()) {}

  /// Plans a global batch of `global_batch` sequences under `situation`.
  Result<PlanResult> Plan(const straggler::Situation& situation,
                          int64_t global_batch,
                          const PlannerOptions& options = PlannerOptions())
      const;

  /// The planner's memo of division/layer solves (valid for this planner's
  /// cost model only). Exposed for tests and cache-management callers.
  solver::SolveCache& solve_cache() const { return solve_cache_; }

 private:
  const topo::ClusterSpec& cluster_;
  const model::CostModel& cost_;
  /// Keyed to cost_ (see OrchestrationOptions::solve_cache); mutable so
  /// the logically-const Plan() can memoize. Internally thread-safe.
  mutable solver::SolveCache solve_cache_;
  /// Island-solve memo for the hierarchical path; internally synchronized
  /// like the solve cache.
  std::shared_ptr<HierPlanState> hier_state_;
};

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_PLANNER_H_
