// The Malleus parallelization planner (paper S4): given the live straggling
// rates, deduce the plan that minimizes the estimated step time by
// enumerating the maximum TP degree in {1,2,4,8} and the micro-batch size,
// solving the upper-level problem (grouping + orchestration) and the
// lower-level problem (layer + data assignment) for each candidate.

#ifndef MALLEUS_CORE_PLANNER_H_
#define MALLEUS_CORE_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/grouping.h"
#include "core/orchestration.h"
#include "model/cost_model.h"
#include "plan/plan.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {

struct PlannerOptions {
  /// Number of pipelines. 0 enumerates candidates (footnote 2 of the paper:
  /// the DP degree is normally maintained across re-planning because model
  /// state memory depends on it; pass the current value when re-planning).
  int dp_degree = 0;
  /// Micro-batch sizes b in [1, max_micro_batch] dividing B are enumerated.
  int max_micro_batch = 4;
  /// Feature flags for the Figure 9 ablation.
  bool nonuniform_devices = true;  ///< Grouping splits + varied stage counts.
  bool nonuniform_layers = true;   ///< Eq. (2) vs even layer split.
  bool nonuniform_data = true;     ///< Eq. (3) vs even data split.
  /// Node budget for the Eq. (4) division search per candidate.
  int64_t max_division_nodes = 500'000;
};

/// Wall-time breakdown of one planning run (Appendix A.2 / Table 5).
struct PlannerTimings {
  double grouping_seconds = 0.0;
  double division_seconds = 0.0;
  double ordering_seconds = 0.0;
  double assignment_seconds = 0.0;
  double total_seconds = 0.0;
};

struct PlanResult {
  plan::ParallelPlan plan;
  /// Eq. (1) objective: max_i m_i * max_j y_{i,j} l_{i,j} * tau(b) - the
  /// planner's estimated step time (R_est).
  double estimated_seconds = 0.0;
  /// The full (warm-up + 1F1B + cool-down) closed-form estimate.
  double estimated_full_seconds = 0.0;
  int chosen_tp = 0;
  PlannerTimings timings;
};

/// \brief Deduces the best parallelization plan for the situation.
class Planner {
 public:
  Planner(const topo::ClusterSpec& cluster, const model::CostModel& cost)
      : cluster_(cluster), cost_(cost) {}

  /// Plans a global batch of `global_batch` sequences under `situation`.
  Result<PlanResult> Plan(const straggler::Situation& situation,
                          int64_t global_batch,
                          const PlannerOptions& options = PlannerOptions())
      const;

 private:
  const topo::ClusterSpec& cluster_;
  const model::CostModel& cost_;
};

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_PLANNER_H_
