// ZeRO-1 model-state sharding with non-uniform TP degrees (paper S5.1).
//
// For a layer whose TP degree differs across pipelines, the states are
// sharded into DP x TPmax slices and each GPU in pipeline i owns
// TPmax / TP_i of them. We represent ownership as fractional intervals of
// the layer's parameter tensor, which makes both the non-uniform gradient
// synchronization pairing and the migration diff straightforward.

#ifndef MALLEUS_CORE_SHARDING_H_
#define MALLEUS_CORE_SHARDING_H_

#include <vector>

#include "common/result.h"
#include "plan/plan.h"

namespace malleus {
namespace core {

/// Ownership of a fraction [begin, end) of one layer's parameters.
struct OwnedInterval {
  topo::GpuId gpu = -1;
  double begin = 0.0;
  double end = 0.0;
};

/// Weight ownership of `layer` (0-based) inside pipeline `pipeline_index`:
/// the hosting stage's group splits [0, 1) evenly among its GPUs.
/// Returns InvalidArgument if the layer is out of range.
Result<std::vector<OwnedInterval>> LayerWeightOwners(
    const plan::ParallelPlan& p, int pipeline_index, int layer);

/// The number of reduce-scatter calls GPU `gpu` must issue for `layer`
/// under plan `p`: TPmax / TP_i slices (paper Figure 6). Returns 0 when the
/// GPU does not hold the layer.
int SliceCountForGpu(const plan::ParallelPlan& p, topo::GpuId gpu, int layer);

/// \brief Deadlock-free ordering of the per-slice collective calls.
///
/// When TP degrees differ across pipelines, a GPU owning several slices
/// participates in several reduce-scatter rings per layer; all
/// participants must issue the calls for a given slice index in the same
/// global order or the rings deadlock. The canonical order is ascending
/// (layer, slice) — this helper materializes it for one GPU so the
/// executor (and tests) can verify the property.
std::vector<std::pair<int, int>> CollectiveCallOrder(
    const plan::ParallelPlan& p, topo::GpuId gpu);

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_SHARDING_H_
