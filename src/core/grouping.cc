#include "core/grouping.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace malleus {
namespace core {

namespace {

// A node's GPUs sorted by straggling rate descending (Theorem 1 order).
struct NodeState {
  std::vector<topo::GpuId> gpus;   // Sorted by rate descending.
  std::vector<double> rates;       // Parallel to gpus.
  std::vector<int> sizes;          // Current contiguous block sizes.
};

// Capacity (sum 1/y) of placing `sizes` as contiguous blocks over the
// sorted rates; the block's first element carries its maximum rate.
double ArrangementCapacity(const model::CostModel& cost,
                           const std::vector<double>& rates,
                           const std::vector<int>& sizes) {
  double capacity = 0.0;
  size_t pos = 0;
  for (int size : sizes) {
    const double y = cost.Rho(size) * rates[pos];
    capacity += 1.0 / y;
    pos += size;
  }
  MALLEUS_CHECK_EQ(pos, rates.size());
  return capacity;
}

// Memo of BestArrangement results for one node's (fixed) rate vector,
// keyed by the sorted size multiset. The splitting loop proposes the same
// multiset repeatedly (isolating different stragglers often produces
// identical block compositions), so grouping pays for each one only once.
using ArrangementCache = std::map<std::vector<int>, std::pair<std::vector<int>, double>>;

// DFS state of the arrangement search below.
struct ArrangementSearch {
  const model::CostModel& cost;
  const std::vector<double>& rates;
  std::vector<int> distinct;    // Distinct block sizes, ascending.
  std::vector<int> remaining;   // Count left of each distinct size.
  std::vector<double> inv_rho;  // 1 / rho(size), parallel to distinct.
  double min_rate = 1.0;        // Smallest (last) rate of the node.
  std::vector<int> prefix;      // Current partial arrangement.
  std::vector<int> best;
  double best_cap = -1.0;
};

// Extends `prefix` (capacity so far `cap`, next block starts at `pos`) by
// every remaining size in ascending order — lexicographic enumeration,
// matching the std::next_permutation sweep this replaces, so the first
// strict maximum found is the same arrangement the full sweep would pick.
// Branches are pruned when even placing every remaining block on the
// node's cheapest rate cannot strictly beat the incumbent.
void ExtendArrangement(ArrangementSearch& s, size_t pos, double cap) {
  if (pos == s.rates.size()) {
    if (cap > s.best_cap) {
      s.best_cap = cap;
      s.best = s.prefix;
    }
    return;
  }
  // Upper bound on the remaining capacity: every leftover block placed at
  // the node's minimum rate (rates are sorted descending, so no position
  // can price a block cheaper than rates.back()).
  double bound = 0.0;
  for (size_t d = 0; d < s.distinct.size(); ++d) {
    bound += s.remaining[d] * s.inv_rho[d] / s.min_rate;
  }
  if (cap + bound <= s.best_cap) return;  // Cannot strictly improve.
  for (size_t d = 0; d < s.distinct.size(); ++d) {
    if (s.remaining[d] == 0) continue;
    const int size = s.distinct[d];
    --s.remaining[d];
    s.prefix.push_back(size);
    ExtendArrangement(s, pos + size,
                      cap + s.inv_rho[d] / s.rates[pos]);
    s.prefix.pop_back();
    ++s.remaining[d];
  }
}

// Best contiguous arrangement of the multiset `sizes`: searches the unique
// permutations (Proposition 4 reduces the search to these) in lexicographic
// order with branch-and-bound pruning, and returns the capacity-maximizing
// order. Results are memoized per size multiset in `cache` (pass nullptr
// to skip memoization); the cache is only valid for one `rates` vector.
std::pair<std::vector<int>, double> BestArrangement(
    const model::CostModel& cost, const std::vector<double>& rates,
    std::vector<int> sizes, ArrangementCache* cache = nullptr) {
  std::sort(sizes.begin(), sizes.end());
  if (cache != nullptr) {
    auto it = cache->find(sizes);
    if (it != cache->end()) return it->second;
  }
  ArrangementSearch s{cost, rates, {}, {}, {}, 1.0, {}, {}, -1.0};
  for (int size : sizes) {
    if (s.distinct.empty() || s.distinct.back() != size) {
      s.distinct.push_back(size);
      s.remaining.push_back(1);
      s.inv_rho.push_back(1.0 / cost.Rho(size));
    } else {
      ++s.remaining.back();
    }
  }
  s.min_rate = rates.back();
  s.prefix.reserve(sizes.size());
  ExtendArrangement(s, 0, 0.0);
  MALLEUS_CHECK_GE(s.best_cap, 0.0);
  auto result = std::make_pair(std::move(s.best), s.best_cap);
  if (cache != nullptr) (*cache)[sizes] = result;
  return result;
}

}  // namespace

std::vector<int> PowerOfTwoComposition(int n, int max_size) {
  MALLEUS_CHECK_GE(n, 0);
  MALLEUS_CHECK(model::IsValidTpDegree(max_size));
  std::vector<int> sizes;
  int remaining = n;
  int size = max_size;
  while (remaining > 0) {
    while (size > remaining) size /= 2;
    sizes.push_back(size);
    remaining -= size;
  }
  return sizes;
}

double GroupingResult::Capacity() const {
  double capacity = 0.0;
  for (double y : rates) capacity += 1.0 / y;
  return capacity;
}

Result<GroupingResult> GroupGpus(const topo::ClusterSpec& cluster,
                                 const model::CostModel& cost,
                                 const straggler::Situation& situation,
                                 const GroupingOptions& options) {
  if (!model::IsValidTpDegree(options.max_tp_degree)) {
    return Status::InvalidArgument(
        StrFormat("invalid max TP degree %d", options.max_tp_degree));
  }
  if (options.max_tp_degree > cluster.gpus_per_node()) {
    return Status::InvalidArgument("TP degree exceeds node size");
  }
  if (situation.num_gpus() != cluster.num_gpus()) {
    return Status::InvalidArgument("situation does not match cluster");
  }
  const int k = options.max_tp_degree;

  GroupingResult result;
  for (topo::NodeId node = 0; node < cluster.num_nodes(); ++node) {
    NodeState st;
    for (topo::GpuId g : cluster.GpusOnNode(node)) {
      if (situation.IsFailed(g)) {
        result.excluded.push_back(g);
      } else {
        st.gpus.push_back(g);
      }
    }
    if (st.gpus.empty()) continue;

    // Theorem 1: descending-rate order; ties broken by id for determinism.
    std::sort(st.gpus.begin(), st.gpus.end(),
              [&](topo::GpuId a, topo::GpuId b) {
                const double ra = situation.rate(a), rb = situation.rate(b);
                if (ra != rb) return ra > rb;
                return a < b;
              });
    st.rates.reserve(st.gpus.size());
    for (topo::GpuId g : st.gpus) st.rates.push_back(situation.rate(g));

    // Initial partition: blocks of k if the live count divides, otherwise
    // the best placement of the power-of-two composition (needed after
    // failures leave a ragged count).
    const int live = static_cast<int>(st.gpus.size());
    ArrangementCache arrangement_cache;
    std::vector<int> sizes;
    if (live % k == 0) {
      sizes.assign(live / k, k);
    } else {
      sizes = PowerOfTwoComposition(live, k);
      sizes =
          BestArrangement(cost, st.rates, sizes, &arrangement_cache).first;
    }
    double capacity = ArrangementCapacity(cost, st.rates, sizes);

    // Group splitting: consider isolating stragglers, heaviest first.
    if (options.enable_splitting && k > 1) {
      for (int idx = 0; idx < live; ++idx) {
        if (st.rates[idx] <= options.split_rate_threshold) break;
        // Find the block currently containing position idx.
        int block = 0, pos = 0;
        while (pos + sizes[block] <= idx) {
          pos += sizes[block];
          ++block;
        }
        if (sizes[block] == 1) continue;  // Already isolated.
        // New multiset: replace the block by {1} + composition(size - 1).
        std::vector<int> candidate_sizes;
        for (int b2 = 0; b2 < static_cast<int>(sizes.size()); ++b2) {
          if (b2 == block) continue;
          candidate_sizes.push_back(sizes[b2]);
        }
        candidate_sizes.push_back(1);
        const std::vector<int> rest =
            PowerOfTwoComposition(sizes[block] - 1, k);
        candidate_sizes.insert(candidate_sizes.end(), rest.begin(),
                               rest.end());
        auto [arranged, cap] = BestArrangement(cost, st.rates,
                                               candidate_sizes,
                                               &arrangement_cache);
        // Theorem 2: adopt the split only if it strictly improves the
        // estimated capacity (i.e. lowers the relaxed optimal time).
        if (cap > capacity * (1.0 + 1e-12)) {
          sizes = arranged;
          capacity = cap;
        }
      }
    }

    // Materialize the blocks as TP groups.
    size_t pos = 0;
    for (int size : sizes) {
      plan::TpGroup group;
      std::vector<double> xs;
      for (int i = 0; i < size; ++i) {
        group.gpus.push_back(st.gpus[pos + i]);
        xs.push_back(st.rates[pos + i]);
      }
      pos += size;
      result.rates.push_back(cost.GroupRate(xs));
      result.groups.push_back(std::move(group));
    }
  }

  if (result.groups.empty()) {
    return Status::Unavailable("no live GPUs to group");
  }
  return result;
}

}  // namespace core
}  // namespace malleus
