#include "core/grouping.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace malleus {
namespace core {

namespace {

// A node's GPUs sorted by straggling rate descending (Theorem 1 order).
struct NodeState {
  std::vector<topo::GpuId> gpus;   // Sorted by rate descending.
  std::vector<double> rates;       // Parallel to gpus.
  std::vector<int> sizes;          // Current contiguous block sizes.
};

// Capacity (sum 1/y) of placing `sizes` as contiguous blocks over the
// sorted rates; the block's first element carries its maximum rate.
double ArrangementCapacity(const model::CostModel& cost,
                           const std::vector<double>& rates,
                           const std::vector<int>& sizes) {
  double capacity = 0.0;
  size_t pos = 0;
  for (int size : sizes) {
    const double y = cost.Rho(size) * rates[pos];
    capacity += 1.0 / y;
    pos += size;
  }
  MALLEUS_CHECK_EQ(pos, rates.size());
  return capacity;
}

// Best contiguous arrangement of the multiset `sizes`: tries every unique
// permutation (Proposition 4 reduces the search to these) and returns the
// capacity-maximizing order.
std::pair<std::vector<int>, double> BestArrangement(
    const model::CostModel& cost, const std::vector<double>& rates,
    std::vector<int> sizes) {
  std::sort(sizes.begin(), sizes.end());
  std::vector<int> best = sizes;
  double best_cap = -1.0;
  do {
    const double cap = ArrangementCapacity(cost, rates, sizes);
    if (cap > best_cap) {
      best_cap = cap;
      best = sizes;
    }
  } while (std::next_permutation(sizes.begin(), sizes.end()));
  return {best, best_cap};
}

}  // namespace

std::vector<int> PowerOfTwoComposition(int n, int max_size) {
  MALLEUS_CHECK_GE(n, 0);
  MALLEUS_CHECK(model::IsValidTpDegree(max_size));
  std::vector<int> sizes;
  int remaining = n;
  int size = max_size;
  while (remaining > 0) {
    while (size > remaining) size /= 2;
    sizes.push_back(size);
    remaining -= size;
  }
  return sizes;
}

double GroupingResult::Capacity() const {
  double capacity = 0.0;
  for (double y : rates) capacity += 1.0 / y;
  return capacity;
}

Result<GroupingResult> GroupGpus(const topo::ClusterSpec& cluster,
                                 const model::CostModel& cost,
                                 const straggler::Situation& situation,
                                 const GroupingOptions& options) {
  if (!model::IsValidTpDegree(options.max_tp_degree)) {
    return Status::InvalidArgument(
        StrFormat("invalid max TP degree %d", options.max_tp_degree));
  }
  if (options.max_tp_degree > cluster.gpus_per_node()) {
    return Status::InvalidArgument("TP degree exceeds node size");
  }
  if (situation.num_gpus() != cluster.num_gpus()) {
    return Status::InvalidArgument("situation does not match cluster");
  }
  const int k = options.max_tp_degree;

  GroupingResult result;
  for (topo::NodeId node = 0; node < cluster.num_nodes(); ++node) {
    NodeState st;
    for (topo::GpuId g : cluster.GpusOnNode(node)) {
      if (situation.IsFailed(g)) {
        result.excluded.push_back(g);
      } else {
        st.gpus.push_back(g);
      }
    }
    if (st.gpus.empty()) continue;

    // Theorem 1: descending-rate order; ties broken by id for determinism.
    std::sort(st.gpus.begin(), st.gpus.end(),
              [&](topo::GpuId a, topo::GpuId b) {
                const double ra = situation.rate(a), rb = situation.rate(b);
                if (ra != rb) return ra > rb;
                return a < b;
              });
    st.rates.reserve(st.gpus.size());
    for (topo::GpuId g : st.gpus) st.rates.push_back(situation.rate(g));

    // Initial partition: blocks of k if the live count divides, otherwise
    // the best placement of the power-of-two composition (needed after
    // failures leave a ragged count).
    const int live = static_cast<int>(st.gpus.size());
    std::vector<int> sizes;
    if (live % k == 0) {
      sizes.assign(live / k, k);
    } else {
      sizes = PowerOfTwoComposition(live, k);
      sizes = BestArrangement(cost, st.rates, sizes).first;
    }
    double capacity = ArrangementCapacity(cost, st.rates, sizes);

    // Group splitting: consider isolating stragglers, heaviest first.
    if (options.enable_splitting && k > 1) {
      for (int idx = 0; idx < live; ++idx) {
        if (st.rates[idx] <= options.split_rate_threshold) break;
        // Find the block currently containing position idx.
        int block = 0, pos = 0;
        while (pos + sizes[block] <= idx) {
          pos += sizes[block];
          ++block;
        }
        if (sizes[block] == 1) continue;  // Already isolated.
        // New multiset: replace the block by {1} + composition(size - 1).
        std::vector<int> candidate_sizes;
        for (int b2 = 0; b2 < static_cast<int>(sizes.size()); ++b2) {
          if (b2 == block) continue;
          candidate_sizes.push_back(sizes[b2]);
        }
        candidate_sizes.push_back(1);
        const std::vector<int> rest =
            PowerOfTwoComposition(sizes[block] - 1, k);
        candidate_sizes.insert(candidate_sizes.end(), rest.begin(),
                               rest.end());
        auto [arranged, cap] =
            BestArrangement(cost, st.rates, candidate_sizes);
        // Theorem 2: adopt the split only if it strictly improves the
        // estimated capacity (i.e. lowers the relaxed optimal time).
        if (cap > capacity * (1.0 + 1e-12)) {
          sizes = arranged;
          capacity = cap;
        }
      }
    }

    // Materialize the blocks as TP groups.
    size_t pos = 0;
    for (int size : sizes) {
      plan::TpGroup group;
      std::vector<double> xs;
      for (int i = 0; i < size; ++i) {
        group.gpus.push_back(st.gpus[pos + i]);
        xs.push_back(st.rates[pos + i]);
      }
      pos += size;
      result.rates.push_back(cost.GroupRate(xs));
      result.groups.push_back(std::move(group));
    }
  }

  if (result.groups.empty()) {
    return Status::Unavailable("no live GPUs to group");
  }
  return result;
}

}  // namespace core
}  // namespace malleus
