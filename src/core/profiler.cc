#include "core/profiler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"

namespace malleus {
namespace core {

Profiler::Profiler(int num_gpus, ProfilerOptions options)
    : options_(options),
      estimate_(num_gpus),
      acknowledged_(num_gpus),
      has_sample_(num_gpus, false) {}

void Profiler::Update(topo::GpuId gpu, double normalized) {
  if (estimate_.IsFailed(gpu)) return;  // Only probes can clear failure.
  if (std::fabs(normalized - 1.0) < options_.healthy_band) {
    if (normalized != 1.0) {
      obs::MetricsRegistry::Current()
          .GetCounter("profiler.snap_to_healthy")
          ->Increment();
    }
    normalized = 1.0;
  }
  double value = normalized;
  if (has_sample_[gpu]) {
    const double prev = estimate_.rate(gpu);
    value = options_.ema_alpha * normalized +
            (1.0 - options_.ema_alpha) * prev;
    if (std::fabs(value - 1.0) < options_.healthy_band) value = 1.0;
  }
  value = std::max(value, 1.0);
  if (value > 1.0 && options_.rate_quantum > 0) {
    const double q = options_.rate_quantum;
    value = std::exp(std::round(std::log(value) / q) * q);
  }
  estimate_.SetRate(gpu, value);
  has_sample_[gpu] = true;
}

void Profiler::RecordStep(const std::vector<double>& measured_rates) {
  MALLEUS_CHECK_EQ(static_cast<int>(measured_rates.size()),
                   estimate_.num_gpus());
  // Normalize by the median positive measurement: the bulk of the fleet is
  // healthy, so the median tracks "nominal" even if the cost model's
  // reference drifts.
  std::vector<double> positive;
  for (double m : measured_rates) {
    if (m > 0) positive.push_back(m);
  }
  if (positive.empty()) return;
  std::nth_element(positive.begin(), positive.begin() + positive.size() / 2,
                   positive.end());
  double median = positive[positive.size() / 2];
  // If the majority of the fleet is straggling, the median itself is a
  // straggler; only trust it as "nominal" when it looks healthy.
  if (median > 1.0 + options_.healthy_band || median <= 0) median = 1.0;

  for (int g = 0; g < estimate_.num_gpus(); ++g) {
    if (measured_rates[g] > 0) {
      Update(g, measured_rates[g] / median);
    }
  }
}

void Profiler::RecordProbe(topo::GpuId gpu, double measured_rate) {
  if (measured_rate <= 0) return;
  obs::MetricsRegistry::Current().GetCounter("profiler.probes")->Increment();
  if (estimate_.IsFailed(gpu)) MarkRecovered(gpu);
  Update(gpu, measured_rate);
}

void Profiler::MarkFailed(topo::GpuId gpu) {
  if (!estimate_.IsFailed(gpu)) {
    obs::MetricsRegistry::Current()
        .GetCounter("profiler.failures_marked")
        ->Increment();
  }
  estimate_.Fail(gpu);
  has_sample_[gpu] = true;
}

void Profiler::MarkRecovered(topo::GpuId gpu) {
  estimate_.SetRate(gpu, 1.0);
  has_sample_[gpu] = false;
}

bool Profiler::ShiftDetected() const {
  for (int g = 0; g < estimate_.num_gpus(); ++g) {
    const double now = estimate_.rate(g);
    const double base = acknowledged_.rate(g);
    if (now == base) continue;  // Also covers inf == inf.
    if (std::isinf(now) != std::isinf(base)) return true;
    const double rel = std::fabs(now - base) / base;
    if (rel > options_.shift_threshold) return true;
  }
  return false;
}

void Profiler::AcknowledgeShift() { acknowledged_ = estimate_; }

}  // namespace core
}  // namespace malleus
