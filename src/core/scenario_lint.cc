#include "core/scenario_lint.h"

#include <cstdint>
#include <vector>

#include "core/planner.h"
#include "lint/lint.h"
#include "model/cost_model.h"
#include "net/fabric.h"
#include "net/flow_sim.h"
#include "plan/estimator.h"
#include "scenario/scenario.h"

namespace malleus {
namespace core {

namespace {

// The situation the planner-dependent passes run under: the custom overlay
// when the file defines one, else the first trace phase, else all-healthy.
Result<straggler::Situation> PlanningSituation(
    const scenario::ResolvedScenario& resolved) {
  if (resolved.has_overlay) return resolved.overlay;
  if (!resolved.trace.empty()) {
    return straggler::Situation::Canonical(resolved.cluster,
                                           resolved.trace.front().id);
  }
  return straggler::Situation(resolved.cluster.num_gpus());
}

}  // namespace

Status LintScenarioFile(const std::string& path,
                        const ScenarioLintOptions& options,
                        lint::DiagnosticSink* sink) {
  MALLEUS_ASSIGN_OR_RETURN(scenario::ScenarioSpec spec,
                           scenario::LoadScenarioFile(path));
  return LintScenarioSpec(spec, options, sink);
}

Status LintScenarioSpec(const scenario::ScenarioSpec& spec,
                        const ScenarioLintOptions& options,
                        lint::DiagnosticSink* sink) {
  lint::LintScenario(spec, sink);
  if (sink->HasErrors()) return Status::OK();  // Resolution would re-fail.

  MALLEUS_ASSIGN_OR_RETURN(scenario::ResolvedScenario resolved,
                           scenario::ResolveScenario(spec));
  lint::LintCluster(resolved.cluster, sink);
  if (resolved.has_overlay) {
    lint::LintSituation(resolved.cluster, resolved.overlay, sink);
  }
  for (const straggler::TracePhase& phase : resolved.trace) {
    Result<straggler::Situation> situation =
        straggler::Situation::Canonical(resolved.cluster, phase.id);
    if (situation.ok()) {
      lint::LintSituation(resolved.cluster, *situation, sink);
    }
  }
  if (sink->HasErrors() || !options.with_plan) return Status::OK();

  const model::CostModel cost(resolved.spec, resolved.cluster.gpu());
  MALLEUS_ASSIGN_OR_RETURN(straggler::Situation situation,
                           PlanningSituation(resolved));
  const Planner planner(resolved.cluster, cost);
  MALLEUS_ASSIGN_OR_RETURN(PlanResult planned,
                           planner.Plan(situation, spec.batch));
  // The planner already ran LintPlan + LintEventGraph on its winner.
  sink->Merge(planned.diagnostics);

  // Flow audit: play the plan's ZeRO-1 grad-sync rings through the fabric
  // simulator and check conservation against the submitted volume.
  const std::vector<plan::GradSyncRing> rings =
      plan::CollectGradSyncRings(planned.plan, cost, resolved.cluster);
  if (!rings.empty()) {
    const double dp = static_cast<double>(planned.plan.dp_degree());
    const net::Fabric fabric(resolved.cluster);
    net::FlowSim flow_sim(fabric);
    double expected_bytes = 0.0;
    for (const plan::GradSyncRing& ring : rings) {
      const double bytes_per_hop = ring.bytes_per_gpu * ((dp - 1.0) / dp);
      const std::vector<int64_t> ids =
          net::SubmitRing(&flow_sim, ring.peers, bytes_per_hop,
                          /*start_seconds=*/0.0,
                          2.0 * dp * ring.hop_latency);
      expected_bytes += static_cast<double>(ids.size()) * bytes_per_hop;
    }
    flow_sim.Run();
    lint::LintFlowConservation(lint::AuditFlowSim(flow_sim), expected_bytes,
                               /*rel_tolerance=*/1e-6, sink);
  }
  return Status::OK();
}

}  // namespace core
}  // namespace malleus
