// Run telemetry: a structured record of an engine run (per-step times,
// re-planning and migration events, failures), with CSV export for the
// Figure-7-style series and an aggregate summary.

#ifndef MALLEUS_CORE_RUN_LOG_H_
#define MALLEUS_CORE_RUN_LOG_H_

#include <string>
#include <vector>

#include "core/engine.h"

namespace malleus {
namespace core {

/// \brief Accumulates StepReports with phase labels.
class RunLog {
 public:
  /// Appends one step's outcome under a phase label (e.g. "S3").
  void Record(const std::string& phase, const StepReport& report);

  int num_steps() const { return static_cast<int>(entries_.size()); }

  /// Aggregates of the recorded run.
  struct Summary {
    int steps = 0;
    int replans = 0;
    int recoveries = 0;
    double training_seconds = 0.0;
    double migration_seconds = 0.0;
    double recovery_seconds = 0.0;
    double planning_overflow_seconds = 0.0;
    /// Everything the run spent, transitions included.
    double TotalSeconds() const {
      return training_seconds + migration_seconds + recovery_seconds +
             planning_overflow_seconds;
    }
    /// Fraction of wall time spent training (vs transition overheads).
    double Efficiency() const {
      const double total = TotalSeconds();
      return total > 0 ? training_seconds / total : 1.0;
    }
  };
  Summary Summarize() const;

  /// Mean step_seconds over the steps recorded for `phase`.
  double PhaseMeanSeconds(const std::string& phase) const;

  /// CSV with header: step,phase,step_seconds,migration_seconds,
  /// recovery_seconds,planning_seconds,replanned.
  std::string ToCsv() const;

 private:
  struct Entry {
    std::string phase;
    StepReport report;
  };
  std::vector<Entry> entries_;
};

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_RUN_LOG_H_
