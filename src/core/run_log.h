// Run telemetry: a structured record of an engine run (per-step times,
// re-planning and migration events, failures), with CSV export for the
// Figure-7-style series, a JSONL export of steps plus typed engine events
// (replan / migrate / fail / recover / plan-adopted with plan fingerprint),
// and an aggregate summary.

#ifndef MALLEUS_CORE_RUN_LOG_H_
#define MALLEUS_CORE_RUN_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"

namespace malleus {
namespace core {

/// What kind of engine transition a RunEvent records.
enum class RunEventType {
  kReplan,       ///< The planner produced (and the engine accepted) a plan.
  kMigrate,      ///< Model states moved between GPUs.
  kFail,         ///< A GPU failure interrupted the step.
  kRecover,      ///< Checkpoint reload after a failure.
  kPlanAdopted,  ///< A new plan was installed (carries its fingerprint).
};

/// Stable lowercase name, e.g. "replan"; used by the JSONL export.
const char* RunEventTypeName(RunEventType type);

/// One typed engine event, tied to the step it happened on.
struct RunEvent {
  int64_t step = -1;  ///< Index of the step entry the event derives from.
  RunEventType type = RunEventType::kReplan;
  std::string phase;   ///< Phase label of that step.
  double seconds = 0.0;  ///< Cost attributed to the event (0 if none).
  std::string detail;  ///< Free-form context (engine note etc.).
  std::string plan_signature;  ///< For kPlanAdopted: the plan fingerprint.
};

/// \brief Accumulates StepReports with phase labels.
class RunLog {
 public:
  /// Appends one step's outcome under a phase label (e.g. "S3") and
  /// derives the typed events the report implies (replan, migrate, fail +
  /// recover, plan-adopted).
  void Record(const std::string& phase, const StepReport& report);

  /// Appends an event that did not come from a StepReport.
  void RecordEvent(RunEvent event);

  int num_steps() const { return static_cast<int>(entries_.size()); }
  const std::vector<RunEvent>& events() const { return events_; }

  /// Aggregates of the recorded run.
  struct Summary {
    int steps = 0;
    int replans = 0;
    int recoveries = 0;
    double training_seconds = 0.0;
    double migration_seconds = 0.0;
    double recovery_seconds = 0.0;
    double planning_overflow_seconds = 0.0;
    /// Everything the run spent, transitions included.
    double TotalSeconds() const {
      return training_seconds + migration_seconds + recovery_seconds +
             planning_overflow_seconds;
    }
    /// Fraction of wall time spent training (vs transition overheads).
    double Efficiency() const {
      const double total = TotalSeconds();
      return total > 0 ? training_seconds / total : 1.0;
    }
  };
  Summary Summarize() const;

  /// Mean step_seconds over the steps recorded for `phase`.
  double PhaseMeanSeconds(const std::string& phase) const;

  /// CSV with header: step,phase,step_seconds,migration_seconds,
  /// recovery_seconds,planning_seconds,replanned,note. Phase and note are
  /// RFC 4180 quoted when they contain commas, quotes or newlines.
  std::string ToCsv() const;

  /// JSONL: one {"kind":"step",...} object per recorded step (in order),
  /// followed by one {"kind":"event",...} object per typed event. Readers
  /// can join events to steps via the "step" index.
  std::string ToJsonl() const;

 private:
  struct Entry {
    std::string phase;
    StepReport report;
  };
  std::vector<Entry> entries_;
  std::vector<RunEvent> events_;
};

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_RUN_LOG_H_
