// Pipeline orchestration (paper S4.3.2): divide the TP groups into DP-bar
// pipelines (the Eq. (4) MINLP) and order the groups within each pipeline
// (Theorem 3 within equal-size bundles + enumeration of bundle orders).

#ifndef MALLEUS_CORE_ORCHESTRATION_H_
#define MALLEUS_CORE_ORCHESTRATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/grouping.h"
#include "model/cost_model.h"
#include "solver/solve_cache.h"

namespace malleus {
namespace core {

/// One orchestrated pipeline: ordered stages with their layer counts.
struct OrchestratedPipeline {
  std::vector<int> group_indices;  ///< Stage order; indexes GroupingResult.
  std::vector<int> layers;         ///< l_{i,j}, parallel to group_indices.
  double bottleneck = 0.0;         ///< o_i = max_j y_j * l_j.
};

struct OrchestrationResult {
  std::vector<OrchestratedPipeline> pipelines;
  /// Groups assigned zero layers; their GPUs go to standby (S5.2).
  std::vector<int> removed_groups;
  bool division_exact = true;
  int64_t division_nodes = 0;
  /// Wall time spent in the Eq. (4) division search.
  double division_seconds = 0.0;
  /// Wall time spent ordering groups + solving Eq. (2) per permutation.
  double ordering_seconds = 0.0;
};

struct OrchestrationOptions {
  /// Non-uniform layer assignment (Eq. (2)); even split when false.
  bool nonuniform_layers = true;
  /// Allow pipelines of different shapes (the upper-level non-uniformity).
  /// When false, groups are dealt round-robin into identically sized
  /// pipelines (requires the group count to divide by DP).
  bool nonuniform_stages = true;
  /// Node budget of the division search.
  int64_t max_division_nodes = 500'000;
  /// Optional memo of orchestration and layer-assignment solves. The
  /// orchestration outcome depends only on the grouping's (rate, size)
  /// profile, the micro-batch size, the DP degree, M and the flags above —
  /// plus the cost model, which is deliberately NOT part of the key: a
  /// cache must only ever be used with one cost model (core::Planner keys
  /// one cache per instance). Null disables memoization.
  solver::SolveCache* solve_cache = nullptr;
};

/// Orchestrates `dp_degree` pipelines over the grouping result and solves
/// the per-pipeline layer assignment. `total_micro` = B / b.
Result<OrchestrationResult> Orchestrate(const GroupingResult& grouping,
                                        const model::CostModel& cost,
                                        int micro_batch, int dp_degree,
                                        int64_t total_micro,
                                        const OrchestrationOptions& options);

/// Orders the given groups into pipeline stages and solves Eq. (2):
/// equal-size groups are bundled, sorted by rate descending inside the
/// bundle (Theorem 3), every bundle permutation is evaluated, and the
/// feasible order with the lowest bottleneck wins. Groups assigned zero
/// layers are dropped into `removed` and the assignment is re-solved.
/// `solve_cache` (optional) memoizes the per-permutation Eq. (2) solves by
/// their (rates, sizes, b, DP) profile; see OrchestrationOptions.
Result<OrchestratedPipeline> OrderAndAssignLayers(
    const std::vector<int>& group_indices, const GroupingResult& grouping,
    const model::CostModel& cost, int micro_batch, int dp_degree,
    bool nonuniform_layers, std::vector<int>* removed,
    solver::SolveCache* solve_cache = nullptr);

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_ORCHESTRATION_H_
