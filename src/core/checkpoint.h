// Sharded checkpointing: which GPU writes / reads which model-state slice.
//
// Checkpoints follow the ZeRO-1 ownership of S5.1: bf16 weights are written
// once (by replica 0's TP interval owners) and the fp32 optimizer shards by
// their unique owner GPUs, so save traffic is spread across the cluster.
// On recovery (paper S5.1: unresponsive GPUs force a reload), every GPU of
// the *new* plan reads exactly the slices it will own. I/O cost is
// bottlenecked by the busiest node's share of the aggregate bandwidth.

#ifndef MALLEUS_CORE_CHECKPOINT_H_
#define MALLEUS_CORE_CHECKPOINT_H_

#include <map>

#include "common/result.h"
#include "model/cost_model.h"
#include "plan/plan.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {

struct CheckpointIoConfig {
  /// Aggregate storage bandwidth available per node (GB/s).
  double per_node_io_gbps = 2.0;
};

/// Per-GPU byte volumes of a checkpoint operation.
struct CheckpointIoPlan {
  std::map<topo::GpuId, double> bytes_per_gpu;
  double total_bytes = 0.0;
};

/// Plans a checkpoint *save* of the states materialized by `p`:
/// bf16 weights once + fp32 optimizer shards by owner.
Result<CheckpointIoPlan> PlanCheckpointSave(const plan::ParallelPlan& p,
                                            const model::CostModel& cost);

/// Plans a checkpoint *load* into `p`: every GPU reads the weight intervals
/// of its stages (per replica) and its optimizer shards.
Result<CheckpointIoPlan> PlanCheckpointLoad(const plan::ParallelPlan& p,
                                            const model::CostModel& cost);

/// Wall time of executing an I/O plan: per node, the sum of its GPUs'
/// bytes over the node's storage bandwidth; nodes proceed in parallel.
double CheckpointIoSeconds(const CheckpointIoPlan& io,
                           const topo::ClusterSpec& cluster,
                           const CheckpointIoConfig& config =
                               CheckpointIoConfig());

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_CHECKPOINT_H_
