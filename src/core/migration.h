// On-the-fly model migration (paper S5.1): when the plan changes, locate
// the source and destination of every model-state slice, fuse the moves
// into batched send-recv transfers, and pack multiple layers per batch.

#ifndef MALLEUS_CORE_MIGRATION_H_
#define MALLEUS_CORE_MIGRATION_H_

#include <vector>

#include "common/result.h"
#include "model/cost_model.h"
#include "plan/plan.h"
#include "sim/collective.h"

namespace malleus {
namespace core {

/// Number of layers fused into one batched-send-recv (paper default: 4).
inline constexpr int kLayersPerMigrationPack = 4;

struct MigrationPlan {
  /// Fused transfers, one per (src, dst) GPU pair.
  std::vector<sim::Transfer> transfers;
  double total_bytes = 0.0;
  /// Number of batched-send-recv rounds (ceil(L / 4)).
  int num_packs = 0;
};

/// Computes the slice moves that turn `from`'s state placement into `to`'s.
///
/// Weights (bf16, replicated per pipeline) follow the TP interval ownership
/// of each replica; ZeRO-1 optimizer shards (12 bytes/param split across
/// DP) follow the same intervals scaled by 1/DP. New replicas (DP growth)
/// source from replica (i mod DP_old).
///
/// Known model limitations (conservative / approximate, by design):
/// replicas are matched by index, so a pure permutation of identical
/// pipelines is charged as a real move (the planner emits pipelines in a
/// deterministic order, so this only overcharges across re-planning with
/// reshuffled groups); and optimizer re-partitioning on a DP-degree change
/// is only charged along weight-interval diffs, which under-counts the
/// shard reshuffle when intervals happen to match. DP changes are rare
/// (the engine pins the DP degree per the paper's footnote 2).
Result<MigrationPlan> ComputeMigration(const plan::ParallelPlan& from,
                                       const plan::ParallelPlan& to,
                                       const model::CostModel& cost);

/// Wall time of executing the migration over the interconnect. The
/// two-argument form prices every transfer analytically (endpoint
/// serialization); pass `net::NetModel::kFlow` to play the batched
/// transfers through the contention-aware fabric simulator instead.
double MigrationSeconds(const MigrationPlan& migration,
                        const topo::ClusterSpec& cluster);
double MigrationSeconds(const MigrationPlan& migration,
                        const topo::ClusterSpec& cluster,
                        net::NetModel model);

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_MIGRATION_H_
