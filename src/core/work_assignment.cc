#include "core/work_assignment.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"
#include "solver/minmax.h"

namespace malleus {
namespace core {

std::vector<int64_t> StageLayerCapacities(const std::vector<int>& stage_sizes,
                                          int micro_batch, int dp_degree,
                                          const model::CostModel& cost) {
  const int pp = static_cast<int>(stage_sizes.size());
  std::vector<int64_t> caps(pp, 0);
  for (int j = 0; j < pp; ++j) {
    const double mu = cost.MuBytes(micro_batch, j + 1, pp, dp_degree);
    const double nu = cost.NuBytes(micro_batch, j + 1, pp, dp_degree);
    const double capacity = cost.GroupCapacityBytes(stage_sizes[j]);
    const double room = capacity - nu;
    caps[j] = room <= 0 ? 0 : static_cast<int64_t>(std::floor(room / mu));
  }
  return caps;
}

Result<LayerAssignment> AssignLayers(const std::vector<double>& stage_rates,
                                     const std::vector<int>& stage_sizes,
                                     int micro_batch, int dp_degree,
                                     const model::CostModel& cost,
                                     bool nonuniform) {
  const int pp = static_cast<int>(stage_rates.size());
  if (pp == 0) return Status::InvalidArgument("pipeline has no stages");
  if (stage_sizes.size() != stage_rates.size()) {
    return Status::InvalidArgument("rates/sizes arity mismatch");
  }
  const int L = cost.spec().num_layers;
  const std::vector<int64_t> caps =
      StageLayerCapacities(stage_sizes, micro_batch, dp_degree, cost);

  LayerAssignment out;
  out.layers.assign(pp, 0);

  if (!nonuniform) {
    // Megatron-style even split; remainder to the later stages.
    const int base = L / pp;
    const int rem = L % pp;
    for (int j = 0; j < pp; ++j) {
      out.layers[j] = base + (j >= pp - rem ? 1 : 0);
      if (out.layers[j] > caps[j]) {
        return Status::Infeasible(
            StrFormat("even split exceeds stage %d capacity", j));
      }
      out.bottleneck =
          std::max(out.bottleneck, stage_rates[j] * out.layers[j]);
    }
    return out;
  }

  Result<solver::BottleneckSolution> sol =
      solver::SolveBottleneckAllocation(stage_rates, caps, L);
  if (!sol.ok()) return sol.status();
  for (int j = 0; j < pp; ++j) {
    out.layers[j] = static_cast<int>(sol->amounts[j]);
  }
  out.bottleneck = sol->bottleneck;
  return out;
}

Result<std::vector<int64_t>> AssignData(
    const std::vector<double>& pipeline_bottlenecks, int64_t total_micro,
    bool nonuniform) {
  const int dp = static_cast<int>(pipeline_bottlenecks.size());
  if (dp == 0) return Status::InvalidArgument("no pipelines");
  if (total_micro < dp) {
    return Status::Infeasible("fewer micro-batches than pipelines");
  }
  for (double o : pipeline_bottlenecks) {
    if (!(o > 0) || !std::isfinite(o)) {
      return Status::InvalidArgument("pipeline bottlenecks must be finite");
    }
  }

  if (!nonuniform) {
    std::vector<int64_t> m(dp, total_micro / dp);
    for (int64_t r = 0; r < total_micro % dp; ++r) ++m[r];
    return m;
  }

  // Parametric search with the m_i >= 1 lower bound: a threshold t is
  // feasible iff t >= max_i o_i (so every pipeline affords one micro-batch)
  // and sum_i floor(t / o_i) >= total.
  const double o_max =
      *std::max_element(pipeline_bottlenecks.begin(),
                        pipeline_bottlenecks.end());
  auto units_at = [&](double t) {
    int64_t total = 0;
    for (double o : pipeline_bottlenecks) {
      total += static_cast<int64_t>(std::floor(t / o + 1e-9));
    }
    return total;
  };
  double lo = o_max, hi = o_max * static_cast<double>(total_micro);
  if (units_at(lo) >= total_micro) {
    hi = lo;
  } else {
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (units_at(mid) >= total_micro) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }
  const double t = hi;

  std::vector<int64_t> m(dp);
  int64_t assigned = 0;
  for (int i = 0; i < dp; ++i) {
    m[i] = std::max<int64_t>(
        1, static_cast<int64_t>(std::floor(t / pipeline_bottlenecks[i] + 1e-9)));
    assigned += m[i];
  }
  // Trim the excess from the most loaded pipelines (largest o * m) while
  // respecting the >= 1 bound.
  while (assigned > total_micro) {
    int argmax = -1;
    double worst = -1.0;
    for (int i = 0; i < dp; ++i) {
      if (m[i] <= 1) continue;
      const double load = pipeline_bottlenecks[i] * m[i];
      if (load > worst) {
        worst = load;
        argmax = i;
      }
    }
    if (argmax < 0) break;  // Everyone at the lower bound already.
    --m[argmax];
    --assigned;
  }
  if (assigned != total_micro) {
    return Status::Infeasible("cannot satisfy per-pipeline minimum load");
  }
  return m;
}

}  // namespace core
}  // namespace malleus
