#include "core/run_log.h"

#include "common/string_util.h"

namespace malleus {
namespace core {

void RunLog::Record(const std::string& phase, const StepReport& report) {
  entries_.push_back({phase, report});
}

RunLog::Summary RunLog::Summarize() const {
  Summary s;
  for (const Entry& e : entries_) {
    ++s.steps;
    if (e.report.replanned) ++s.replans;
    if (e.report.recovery_seconds > 0) ++s.recoveries;
    s.training_seconds += e.report.step_seconds;
    s.migration_seconds += e.report.migration_seconds;
    s.recovery_seconds += e.report.recovery_seconds;
    s.planning_overflow_seconds += e.report.planning_overflow_seconds;
  }
  return s;
}

double RunLog::PhaseMeanSeconds(const std::string& phase) const {
  double sum = 0.0;
  int count = 0;
  for (const Entry& e : entries_) {
    if (e.phase == phase) {
      sum += e.report.step_seconds;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

std::string RunLog::ToCsv() const {
  std::string out =
      "step,phase,step_seconds,migration_seconds,recovery_seconds,"
      "planning_seconds,replanned\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += StrFormat("%zu,%s,%.4f,%.4f,%.4f,%.4f,%d\n", i, e.phase.c_str(),
                     e.report.step_seconds, e.report.migration_seconds,
                     e.report.recovery_seconds, e.report.planning_seconds,
                     e.report.replanned ? 1 : 0);
  }
  return out;
}

}  // namespace core
}  // namespace malleus
