#include "core/run_log.h"

#include "common/string_util.h"

namespace malleus {
namespace core {

const char* RunEventTypeName(RunEventType type) {
  switch (type) {
    case RunEventType::kReplan:
      return "replan";
    case RunEventType::kMigrate:
      return "migrate";
    case RunEventType::kFail:
      return "fail";
    case RunEventType::kRecover:
      return "recover";
    case RunEventType::kPlanAdopted:
      return "plan_adopted";
  }
  return "?";
}

void RunLog::Record(const std::string& phase, const StepReport& report) {
  const int64_t step = static_cast<int64_t>(entries_.size());
  entries_.push_back({phase, report});

  // A recovery implies the step was interrupted by a failure first.
  if (report.recovery_seconds > 0) {
    events_.push_back(
        {step, RunEventType::kFail, phase, 0.0, report.note, ""});
    events_.push_back({step, RunEventType::kRecover, phase,
                       report.recovery_seconds, report.note, ""});
  }
  if (report.replanned) {
    events_.push_back({step, RunEventType::kReplan, phase,
                       report.planning_seconds, report.note, ""});
    if (!report.plan_signature.empty()) {
      events_.push_back({step, RunEventType::kPlanAdopted, phase, 0.0,
                         report.note, report.plan_signature});
    }
  }
  if (report.migration_seconds > 0) {
    events_.push_back({step, RunEventType::kMigrate, phase,
                       report.migration_seconds, report.note, ""});
  }
}

void RunLog::RecordEvent(RunEvent event) {
  events_.push_back(std::move(event));
}

RunLog::Summary RunLog::Summarize() const {
  Summary s;
  for (const Entry& e : entries_) {
    ++s.steps;
    if (e.report.replanned) ++s.replans;
    if (e.report.recovery_seconds > 0) ++s.recoveries;
    s.training_seconds += e.report.step_seconds;
    s.migration_seconds += e.report.migration_seconds;
    s.recovery_seconds += e.report.recovery_seconds;
    s.planning_overflow_seconds += e.report.planning_overflow_seconds;
  }
  return s;
}

double RunLog::PhaseMeanSeconds(const std::string& phase) const {
  double sum = 0.0;
  int count = 0;
  for (const Entry& e : entries_) {
    if (e.phase == phase) {
      sum += e.report.step_seconds;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

std::string RunLog::ToCsv() const {
  std::string out =
      "step,phase,step_seconds,migration_seconds,recovery_seconds,"
      "planning_seconds,replanned,note\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += StrFormat("%zu,%s,%.4f,%.4f,%.4f,%.4f,%d,%s\n", i,
                     CsvEscape(e.phase).c_str(), e.report.step_seconds,
                     e.report.migration_seconds, e.report.recovery_seconds,
                     e.report.planning_seconds, e.report.replanned ? 1 : 0,
                     CsvEscape(e.report.note).c_str());
  }
  return out;
}

std::string RunLog::ToJsonl() const {
  std::string out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += StrFormat(
        "{\"kind\":\"step\",\"step\":%zu,\"phase\":\"%s\","
        "\"step_seconds\":%.6f,\"migration_seconds\":%.6f,"
        "\"recovery_seconds\":%.6f,\"planning_seconds\":%.6f,"
        "\"planning_overflow_seconds\":%.6f,\"replanned\":%s,"
        "\"note\":\"%s\"}\n",
        i, JsonEscape(e.phase).c_str(), e.report.step_seconds,
        e.report.migration_seconds, e.report.recovery_seconds,
        e.report.planning_seconds, e.report.planning_overflow_seconds,
        e.report.replanned ? "true" : "false",
        JsonEscape(e.report.note).c_str());
  }
  for (const RunEvent& ev : events_) {
    out += StrFormat(
        "{\"kind\":\"event\",\"step\":%lld,\"type\":\"%s\","
        "\"phase\":\"%s\",\"seconds\":%.6f,\"detail\":\"%s\"",
        static_cast<long long>(ev.step), RunEventTypeName(ev.type),
        JsonEscape(ev.phase).c_str(), ev.seconds,
        JsonEscape(ev.detail).c_str());
    if (!ev.plan_signature.empty()) {
      out += StrFormat(",\"plan_signature\":\"%s\"",
                       JsonEscape(ev.plan_signature).c_str());
    }
    out += "}\n";
  }
  return out;
}

}  // namespace core
}  // namespace malleus
