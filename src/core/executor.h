// The executor (paper S3.2, S5.1): instantiates plans on the (simulated)
// cluster and migrates model states when the planner produces a new plan.

#ifndef MALLEUS_CORE_EXECUTOR_H_
#define MALLEUS_CORE_EXECUTOR_H_

#include "common/result.h"
#include "core/migration.h"
#include "model/cost_model.h"
#include "plan/plan.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {

/// Outcome of applying a new plan.
struct MigrationReport {
  double seconds = 0.0;
  double bytes = 0.0;
  int num_transfers = 0;
  /// True when the new plan was identical and nothing moved.
  bool no_op = false;
};

class Executor {
 public:
  /// `net_model` prices migration traffic: analytic endpoint serialization
  /// or the contention-aware flow fabric (see net/fabric.h).
  Executor(const topo::ClusterSpec& cluster, const model::CostModel& cost,
           net::NetModel net_model = net::DefaultNetModel())
      : cluster_(cluster), cost_(cost), net_model_(net_model) {}

  /// Installs the initial plan (cold start; no data movement is charged).
  Status Install(plan::ParallelPlan p);

  /// Migrates the model states from the current plan to `p` on the fly.
  Result<MigrationReport> Migrate(plan::ParallelPlan p);

  /// Re-installs after a failure recovery: states come from the checkpoint,
  /// not from peers, so no migration traffic is charged.
  Status Reload(plan::ParallelPlan p);

  bool installed() const { return installed_; }
  const plan::ParallelPlan& current_plan() const { return plan_; }
  net::NetModel net_model() const { return net_model_; }

 private:
  const topo::ClusterSpec& cluster_;
  const model::CostModel& cost_;
  net::NetModel net_model_ = net::NetModel::kAnalytic;
  plan::ParallelPlan plan_;
  bool installed_ = false;
};

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_EXECUTOR_H_
