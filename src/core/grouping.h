// GPU grouping (paper S4.3.1): partition each node's GPUs into TP groups.
//
// Even partitioning follows Theorem 1 (sort by straggling rate descending,
// cut into contiguous blocks of k), which provably minimizes the achievable
// training time for equal-size groups. Heavy stragglers are then isolated by
// group splitting: candidate re-groupings are the contiguous descending
// placements of Proposition 4 / Appendix B.7 (e.g. the 6 ways to split 7
// GPUs into blocks of 1, 2 and 4), compared in O(1) via the Theorem 2
// capacity estimate sum_groups 1 / y.

#ifndef MALLEUS_CORE_GROUPING_H_
#define MALLEUS_CORE_GROUPING_H_

#include <vector>

#include "common/result.h"
#include "model/cost_model.h"
#include "plan/plan.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {

/// A grouping of the cluster's GPUs into TP groups.
struct GroupingResult {
  std::vector<plan::TpGroup> groups;
  /// Group straggling rates y (parallel to `groups`).
  std::vector<double> rates;
  /// GPUs excluded up front (failed devices).
  std::vector<topo::GpuId> excluded;

  /// Theorem 2 capacity: sum_g 1 / y_g; higher is better.
  double Capacity() const;
};

struct GroupingOptions {
  /// Maximum TP degree of this grouping pass (the planner enumerates
  /// {1, 2, 4, 8}).
  int max_tp_degree = 8;
  /// Enables heavy-straggler isolation via group splitting. Disabled for
  /// the Figure 9 ablation (non-uniform devices/stages off).
  bool enable_splitting = true;
  /// A straggler qualifies for a splitting attempt when its rate exceeds
  /// this threshold (non-stragglers never do).
  double split_rate_threshold = 1.05;
};

/// Groups all live GPUs of `cluster` under `situation`.
Result<GroupingResult> GroupGpus(const topo::ClusterSpec& cluster,
                                 const model::CostModel& cost,
                                 const straggler::Situation& situation,
                                 const GroupingOptions& options);

/// Decomposes n into descending powers of two, each <= max_size
/// (7 -> {4,2,1} at max 8); used to size groups after isolating a straggler.
std::vector<int> PowerOfTwoComposition(int n, int max_size);

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_GROUPING_H_
