// The profiler (paper S3.2, S5.2): turns per-GPU timing measurements into
// straggling-rate estimates, detects shifts greater than 5% between
// consecutive estimates, tracks failures, and keeps probing standby devices
// so they can be re-included when they recover.

#ifndef MALLEUS_CORE_PROFILER_H_
#define MALLEUS_CORE_PROFILER_H_

#include <vector>

#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {

struct ProfilerOptions {
  /// Relative change between two consecutive per-GPU estimates that counts
  /// as "an obvious shift in the straggling situation" (paper: 5%).
  double shift_threshold = 0.05;
  /// Exponential smoothing factor for new measurements. The default of 1
  /// (no smoothing) matches the paper's consecutive-iteration comparison;
  /// the healthy band below absorbs kernel jitter instead.
  double ema_alpha = 1.0;
  /// Estimates within this relative distance of 1.0 snap to exactly 1.0,
  /// so kernel jitter does not masquerade as a straggler.
  double healthy_band = 0.03;
  /// Straggler estimates are quantized onto a log-scale grid of this
  /// relative pitch. Equally-impaired GPUs then report *identical* rates,
  /// which both stabilizes shift detection under kernel jitter and
  /// preserves the planner's "majority share the same y-hat" structure
  /// (Eq. (4) collapses identical groups; see S4.3.2).
  double rate_quantum = 0.04;
};

/// \brief Online estimator of per-GPU straggling rates.
///
/// Measurements arrive normalized to "kernel time relative to nominal"
/// (what CUDA-event timing divided by the profiled healthy time gives);
/// the profiler re-normalizes by the median so a fleet-wide drift does not
/// read as universal straggling, smooths with an EMA, and snaps healthy
/// devices to exactly 1.0.
class Profiler {
 public:
  Profiler(int num_gpus, ProfilerOptions options = ProfilerOptions());

  /// Records one training step's measurements; entries <= 0 mean "no
  /// measurement for this GPU this step" (idle or standby).
  void RecordStep(const std::vector<double>& measured_rates);

  /// Records a standby-device micro-benchmark (S5.2 elastic scaling).
  void RecordProbe(topo::GpuId gpu, double measured_rate);

  /// Marks a device unresponsive (straggling rate = infinity).
  void MarkFailed(topo::GpuId gpu);

  /// Clears the failed flag once the device answers probes again.
  void MarkRecovered(topo::GpuId gpu);

  /// The current best estimate of the straggler situation.
  const straggler::Situation& Estimated() const { return estimate_; }

  /// True iff any GPU's estimate moved more than the shift threshold since
  /// the last AcknowledgeShift() (i.e. since the last re-planning).
  bool ShiftDetected() const;

  /// Accepts the current estimate as the new planning baseline.
  void AcknowledgeShift();

 private:
  void Update(topo::GpuId gpu, double normalized);

  ProfilerOptions options_;
  straggler::Situation estimate_;
  straggler::Situation acknowledged_;
  std::vector<bool> has_sample_;
};

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_PROFILER_H_
