#include "core/executor.h"

namespace malleus {
namespace core {

Status Executor::Install(plan::ParallelPlan p) {
  MALLEUS_RETURN_NOT_OK(p.Validate(cluster_, cost_));
  plan_ = std::move(p);
  installed_ = true;
  return Status::OK();
}

Result<MigrationReport> Executor::Migrate(plan::ParallelPlan p) {
  if (!installed_) {
    return Status::FailedPrecondition("no plan installed yet");
  }
  MALLEUS_RETURN_NOT_OK(p.Validate(cluster_, cost_));

  MigrationReport report;
  if (p.Signature() == plan_.Signature()) {
    report.no_op = true;
    plan_ = std::move(p);
    return report;
  }
  Result<MigrationPlan> migration = ComputeMigration(plan_, p, cost_);
  MALLEUS_RETURN_NOT_OK(migration.status());
  report.seconds = MigrationSeconds(*migration, cluster_, net_model_);
  report.bytes = migration->total_bytes;
  report.num_transfers = static_cast<int>(migration->transfers.size());
  plan_ = std::move(p);
  return report;
}

Status Executor::Reload(plan::ParallelPlan p) {
  MALLEUS_RETURN_NOT_OK(p.Validate(cluster_, cost_));
  plan_ = std::move(p);
  installed_ = true;
  return Status::OK();
}

}  // namespace core
}  // namespace malleus
