#include "core/planner.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/work_assignment.h"
#include "obs/metrics.h"
#include "plan/estimator.h"

namespace malleus {
namespace core {

namespace {

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Result<PlanResult> Planner::Plan(const straggler::Situation& situation,
                                 int64_t global_batch,
                                 const PlannerOptions& options) const {
  const auto t_total = std::chrono::steady_clock::now();
  if (global_batch <= 0) {
    return Status::InvalidArgument("global batch must be positive");
  }
  if (situation.num_gpus() != cluster_.num_gpus()) {
    return Status::InvalidArgument("situation does not match cluster");
  }

  PlannerTimings timings;
  int64_t candidates_explored = 0;
  int64_t candidates_feasible = 0;
  bool found = false;
  PlanResult best;
  best.estimated_seconds = std::numeric_limits<double>::infinity();
  best.estimated_full_seconds = std::numeric_limits<double>::infinity();
  Status last_error = Status::Infeasible("no candidate plan succeeded");

  for (int tp : {1, 2, 4, 8}) {
    if (tp > cluster_.gpus_per_node()) continue;
    GroupingOptions gopts;
    gopts.max_tp_degree = tp;
    gopts.enable_splitting = options.nonuniform_devices;
    const auto t_group = std::chrono::steady_clock::now();
    Result<GroupingResult> grouping =
        GroupGpus(cluster_, cost_, situation, gopts);
    timings.grouping_seconds += Elapsed(t_group);
    if (!grouping.ok()) {
      last_error = grouping.status();
      continue;
    }
    const int num_groups = static_cast<int>(grouping->groups.size());

    std::vector<int> dp_candidates;
    if (options.dp_degree > 0) {
      dp_candidates.push_back(options.dp_degree);
    } else {
      // The DP search is bounded at 16 pipelines: beyond that the per-
      // pipeline micro-batch counts collapse below the 1F1B regime for the
      // paper's batch sizes, and every plan in the evaluation uses far
      // fewer. Raise the bound for unusually large B/b if needed.
      for (int dp = 1; dp <= std::min(num_groups, 16); ++dp) {
        dp_candidates.push_back(dp);
      }
    }

    for (int b = 1; b <= options.max_micro_batch; ++b) {
      if (global_batch % b != 0) continue;
      const int64_t total_micro = global_batch / b;
      for (int dp : dp_candidates) {
        if (dp > num_groups || total_micro < dp) continue;
        ++candidates_explored;

        OrchestrationOptions oopts;
        oopts.nonuniform_layers = options.nonuniform_layers;
        oopts.nonuniform_stages = options.nonuniform_devices;
        oopts.max_division_nodes = options.max_division_nodes;
        const auto t_orch = std::chrono::steady_clock::now();
        Result<OrchestrationResult> orch = Orchestrate(
            *grouping, cost_, b, dp, total_micro, oopts);
        const double orch_seconds = Elapsed(t_orch);
        if (!orch.ok()) {
          // Failed candidates spend their time in the division search.
          timings.division_seconds += orch_seconds;
          last_error = orch.status();
          continue;
        }
        timings.division_seconds +=
            orch_seconds - orch->ordering_seconds;
        timings.ordering_seconds += orch->ordering_seconds;

        const auto t_assign = std::chrono::steady_clock::now();
        std::vector<double> bottlenecks;
        for (const OrchestratedPipeline& p : orch->pipelines) {
          bottlenecks.push_back(p.bottleneck);
        }
        Result<std::vector<int64_t>> data =
            AssignData(bottlenecks, total_micro, options.nonuniform_data);
        timings.assignment_seconds += Elapsed(t_assign);
        if (!data.ok()) {
          last_error = data.status();
          continue;
        }

        // Assemble the candidate plan.
        plan::ParallelPlan candidate;
        candidate.micro_batch_size = b;
        candidate.global_batch = global_batch;
        for (int i = 0; i < dp; ++i) {
          plan::Pipeline pipe;
          pipe.num_microbatches = (*data)[i];
          const OrchestratedPipeline& op = orch->pipelines[i];
          for (size_t j = 0; j < op.group_indices.size(); ++j) {
            plan::Stage stage;
            stage.group = grouping->groups[op.group_indices[j]];
            stage.num_layers = op.layers[j];
            pipe.stages.push_back(std::move(stage));
          }
          candidate.pipelines.push_back(std::move(pipe));
        }
        candidate.standby_gpus = grouping->excluded;
        for (int g : orch->removed_groups) {
          const plan::TpGroup& group = grouping->groups[g];
          candidate.standby_gpus.insert(candidate.standby_gpus.end(),
                                        group.gpus.begin(),
                                        group.gpus.end());
        }
        Status valid = candidate.Validate(cluster_, cost_);
        if (!valid.ok()) {
          last_error = std::move(valid);
          continue;
        }
        ++candidates_feasible;

        // Candidates are ranked by the full closed-form estimate (warm-up
        // + 1F1B + cool-down): the simplified objective drives the inner
        // ILPs but ignores pipeline bubbles, which matter when comparing
        // shallow against deep pipeline layouts.
        const plan::StepEstimate est =
            plan::EstimateStep(candidate, cost_, situation);
        if (est.step_seconds < best.estimated_full_seconds) {
          best.plan = std::move(candidate);
          best.estimated_seconds = est.simplified_seconds;
          best.estimated_full_seconds = est.step_seconds;
          best.chosen_tp = tp;
          found = true;
        }
      }
    }
  }

  timings.total_seconds = Elapsed(t_total);

  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("planner.solves")->Increment();
  registry.GetCounter("planner.candidates_explored")
      ->Increment(static_cast<double>(candidates_explored));
  registry.GetCounter("planner.candidates_feasible")
      ->Increment(static_cast<double>(candidates_feasible));
  registry.GetHistogram("planner.solve_seconds")
      ->Observe(timings.total_seconds);
  registry.GetHistogram("planner.grouping_seconds")
      ->Observe(timings.grouping_seconds);
  registry.GetHistogram("planner.division_seconds")
      ->Observe(timings.division_seconds);

  if (!found) {
    registry.GetCounter("planner.infeasible_solves")->Increment();
    return last_error;
  }
  registry.GetGauge("planner.last_estimate_seconds")
      ->Set(best.estimated_full_seconds);
  best.timings = timings;
  return best;
}

}  // namespace core
}  // namespace malleus
