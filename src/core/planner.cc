#include "core/planner.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/hier.h"
#include "core/work_assignment.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "plan/estimator.h"

namespace malleus {
namespace core {

namespace {

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One (tp, b, dp) point of the sweep, in serial enumeration order (tp
// outermost, then micro-batch, then DP) — the order that defines the
// deterministic tie-break.
struct Candidate {
  int tp = 0;
  int micro_batch = 0;
  int dp = 0;
  int64_t total_micro = 0;
  const GroupingResult* grouping = nullptr;
};

// Everything one candidate evaluation produced. Outcomes are collected
// into a pre-sized vector (one slot per candidate, no sharing between
// workers) and reduced in index order after the sweep.
struct CandidateOutcome {
  bool feasible = false;
  plan::ParallelPlan plan;
  double est_simplified = 0.0;
  double est_full = std::numeric_limits<double>::infinity();
  Status error;  // Meaningful iff !feasible.
  // Component wall time spent by this candidate, each clamped at >= 0
  // (ordering_seconds can include queueing skew that would otherwise
  // drive the division share negative).
  double division_seconds = 0.0;
  double ordering_seconds = 0.0;
  double assignment_seconds = 0.0;
};

int ResolveThreads(int requested) {
  return requested > 0 ? requested : exec::DefaultPlannerThreads();
}

// Pool dispatch (thread startup, task handoff, cache cooldown) only
// amortizes when every worker gets a meaty slice of the sweep; below this
// many candidates per worker the sweep runs inline instead, which is
// bit-identical by construction and measurably faster on small clusters.
constexpr int kMinCandidatesPerWorker = 8;

// Grouping outcomes are compared so that a later TP degree that collapses
// to the same groups (e.g. after heavy splitting) is skipped: its
// candidates would duplicate an earlier TP's and lose every tie-break.
bool SameGrouping(const GroupingResult& a, const GroupingResult& b) {
  if (a.rates != b.rates || a.excluded != b.excluded) return false;
  if (a.groups.size() != b.groups.size()) return false;
  for (size_t i = 0; i < a.groups.size(); ++i) {
    if (a.groups[i].gpus != b.groups[i].gpus) return false;
  }
  return true;
}

CandidateOutcome EvaluateCandidate(const Candidate& c,
                                   const topo::ClusterSpec& cluster,
                                   const model::CostModel& cost,
                                   const straggler::Situation& situation,
                                   const PlannerOptions& options,
                                   solver::SolveCache* solve_cache) {
  CandidateOutcome out;
  const GroupingResult& grouping = *c.grouping;

  OrchestrationOptions oopts;
  oopts.nonuniform_layers = options.nonuniform_layers;
  oopts.nonuniform_stages = options.nonuniform_devices;
  oopts.max_division_nodes = options.max_division_nodes;
  oopts.solve_cache = solve_cache;
  const auto t_orch = std::chrono::steady_clock::now();
  Result<OrchestrationResult> orch = Orchestrate(
      grouping, cost, c.micro_batch, c.dp, c.total_micro, oopts);
  const double orch_seconds = std::max(0.0, Elapsed(t_orch));
  if (!orch.ok()) {
    // Failed candidates spend their time in the division search.
    out.division_seconds = orch_seconds;
    out.error = orch.status();
    return out;
  }
  out.ordering_seconds =
      std::min(std::max(0.0, orch->ordering_seconds), orch_seconds);
  out.division_seconds = orch_seconds - out.ordering_seconds;

  const auto t_assign = std::chrono::steady_clock::now();
  // Per-worker scratch: the sweep evaluates thousands of candidates at pod
  // scale, and a fresh allocation per candidate shows up in the profile.
  thread_local std::vector<double> bottlenecks;
  bottlenecks.clear();
  bottlenecks.reserve(orch->pipelines.size());
  for (const OrchestratedPipeline& p : orch->pipelines) {
    bottlenecks.push_back(p.bottleneck);
  }
  Result<std::vector<int64_t>> data =
      AssignData(bottlenecks, c.total_micro, options.nonuniform_data);
  out.assignment_seconds = std::max(0.0, Elapsed(t_assign));
  if (!data.ok()) {
    out.error = data.status();
    return out;
  }

  // Assemble the candidate plan.
  plan::ParallelPlan candidate;
  candidate.micro_batch_size = c.micro_batch;
  candidate.global_batch = c.total_micro * c.micro_batch;
  for (int i = 0; i < c.dp; ++i) {
    plan::Pipeline pipe;
    pipe.num_microbatches = (*data)[i];
    const OrchestratedPipeline& op = orch->pipelines[i];
    for (size_t j = 0; j < op.group_indices.size(); ++j) {
      plan::Stage stage;
      stage.group = grouping.groups[op.group_indices[j]];
      stage.num_layers = op.layers[j];
      pipe.stages.push_back(std::move(stage));
    }
    candidate.pipelines.push_back(std::move(pipe));
  }
  candidate.standby_gpus = grouping.excluded;
  for (int g : orch->removed_groups) {
    const plan::TpGroup& group = grouping.groups[g];
    candidate.standby_gpus.insert(candidate.standby_gpus.end(),
                                  group.gpus.begin(), group.gpus.end());
  }
  Status valid = candidate.Validate(cluster, cost);
  if (!valid.ok()) {
    out.error = std::move(valid);
    return out;
  }

  // Candidates are ranked by the full closed-form estimate (warm-up +
  // 1F1B + cool-down): the simplified objective drives the inner ILPs but
  // ignores pipeline bubbles, which matter when comparing shallow against
  // deep pipeline layouts.
  const plan::StepEstimate est =
      plan::EstimateStep(candidate, cost, situation);
  out.plan = std::move(candidate);
  out.est_simplified = est.simplified_seconds;
  out.est_full = est.step_seconds;
  out.feasible = true;
  return out;
}

}  // namespace

Result<PlanResult> Planner::Plan(const straggler::Situation& situation,
                                 int64_t global_batch,
                                 const PlannerOptions& options) const {
  const auto t_total = std::chrono::steady_clock::now();
  if (global_batch <= 0) {
    return Status::InvalidArgument("global batch must be positive");
  }
  if (situation.num_gpus() != cluster_.num_gpus()) {
    return Status::InvalidArgument("situation does not match cluster");
  }
  if (options.forced_tp != 0 && options.forced_tp != 1 &&
      options.forced_tp != 2 && options.forced_tp != 4 &&
      options.forced_tp != 8) {
    return Status::InvalidArgument("forced_tp must be one of 0, 1, 2, 4, 8");
  }
  if (options.forced_tp > cluster_.gpus_per_node()) {
    return Status::Infeasible(
        StrFormat("forced_tp %d exceeds gpus_per_node %d", options.forced_tp,
                  cluster_.gpus_per_node()));
  }
  if (options.forced_micro_batch < 0) {
    return Status::InvalidArgument("forced_micro_batch must be >= 0");
  }
  if (options.forced_micro_batch > 0 &&
      global_batch % options.forced_micro_batch != 0) {
    return Status::Infeasible(
        StrFormat("forced_micro_batch %d does not divide batch %lld",
                  options.forced_micro_batch,
                  static_cast<long long>(global_batch)));
  }
  if (options.island_nodes > 0 &&
      cluster_.num_nodes() % options.island_nodes != 0) {
    return Status::InvalidArgument(
        StrFormat("island_nodes %d must divide the node count %d",
                  options.island_nodes, cluster_.num_nodes()));
  }

  // Pod-scale clusters decompose hierarchically (core/hier.h): islands are
  // planned independently and stitched. A pinned DP degree below the
  // island count cannot be distributed one-per-island, and a hierarchical
  // infeasibility (e.g. the model does not fit inside one island) is not
  // final — both fall through to the flat sweep.
  if (const int island_nodes = ResolveIslandNodes(cluster_, options);
      island_nodes > 0) {
    const int num_islands = cluster_.num_nodes() / island_nodes;
    if (options.dp_degree == 0 || options.dp_degree >= num_islands) {
      Result<PlanResult> hier =
          PlanHierarchical(cluster_, cost_, situation, global_batch, options,
                           island_nodes, hier_state_.get());
      if (hier.ok()) return hier;
      obs::MetricsRegistry::Current()
          .GetCounter("planner.hier_fallbacks")
          ->Increment();
    }
  }

  const int num_threads = ResolveThreads(options.num_threads);
  solver::SolveCache* solve_cache =
      options.enable_solve_cache ? &solve_cache_ : nullptr;
  const solver::SolveCache::Stats cache_before = solve_cache_.stats();

  PlannerTimings timings;

  // Phase 1 (serial): one grouping per TP degree; a degree whose grouping
  // collapses to an earlier degree's is dropped as a duplicate.
  struct TpEntry {
    int tp;
    Result<GroupingResult> grouping;
  };
  std::vector<TpEntry> entries;
  for (int tp : {1, 2, 4, 8}) {
    if (tp > cluster_.gpus_per_node()) continue;
    if (options.forced_tp > 0 && tp != options.forced_tp) continue;
    GroupingOptions gopts;
    gopts.max_tp_degree = tp;
    gopts.enable_splitting = options.nonuniform_devices;
    const auto t_group = std::chrono::steady_clock::now();
    Result<GroupingResult> grouping =
        GroupGpus(cluster_, cost_, situation, gopts);
    timings.grouping_seconds += std::max(0.0, Elapsed(t_group));
    if (grouping.ok()) {
      bool duplicate = false;
      for (const TpEntry& prev : entries) {
        if (prev.grouping.ok() && SameGrouping(*prev.grouping, *grouping)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
    }
    entries.push_back(TpEntry{tp, std::move(grouping)});
  }

  // Phase 2 (serial): enumerate every candidate in sweep order. The index
  // into `candidates` is the deterministic tie-break rank.
  std::vector<Candidate> candidates;
  std::vector<std::pair<size_t, size_t>> entry_ranges;  // Per TpEntry.
  for (const TpEntry& entry : entries) {
    const size_t begin = candidates.size();
    if (entry.grouping.ok()) {
      const GroupingResult& grouping = *entry.grouping;
      const int num_groups = static_cast<int>(grouping.groups.size());
      std::vector<int> dp_candidates;
      if (options.dp_degree > 0) {
        dp_candidates.push_back(options.dp_degree);
      } else {
        // The DP search is bounded at 16 pipelines: beyond that the per-
        // pipeline micro-batch counts collapse below the 1F1B regime for
        // the paper's batch sizes, and every plan in the evaluation uses
        // far fewer. Raise the bound for unusually large B/b if needed.
        for (int dp = 1; dp <= std::min(num_groups, 16); ++dp) {
          dp_candidates.push_back(dp);
        }
      }
      // A forced micro-batch pins the sweep to exactly that b (it may sit
      // above max_micro_batch — the caller asked for it explicitly).
      const int max_b = options.forced_micro_batch > 0
                            ? options.forced_micro_batch
                            : options.max_micro_batch;
      for (int b = 1; b <= max_b; ++b) {
        if (options.forced_micro_batch > 0 &&
            b != options.forced_micro_batch) {
          continue;
        }
        if (global_batch % b != 0) continue;
        const int64_t total_micro = global_batch / b;
        for (int dp : dp_candidates) {
          if (dp > num_groups || total_micro < dp) continue;
          candidates.push_back(
              Candidate{entry.tp, b, dp, total_micro, &grouping});
        }
      }
    }
    entry_ranges.push_back({begin, candidates.size()});
  }

  // Phase 3: evaluate all candidates, concurrently when asked to. Every
  // worker writes only its own outcome slot; the shared inputs (cluster,
  // cost model, situation, groupings) are read-only, and the solve cache
  // is internally synchronized.
  std::vector<CandidateOutcome> outcomes(candidates.size());
  // Pool workers start with no MetricsScope of their own, so re-install the
  // caller's registry inside each task — solver metrics recorded off-thread
  // then land in the same registry as this Plan() call's own series.
  obs::MetricsRegistry* metrics = &obs::MetricsRegistry::Current();
  const auto evaluate = [&, metrics](int64_t i) {
    obs::MetricsScope metrics_scope(metrics);
    outcomes[i] = EvaluateCandidate(candidates[i], cluster_, cost_,
                                    situation, options, solve_cache);
  };
  // Clamp the worker count to what can pay off: never more threads than
  // the hardware can actually run (except when MALLEUS_PLANNER_THREADS
  // forces oversubscription, see exec::ConcurrencyCap), and never so many
  // that each gets less than kMinCandidatesPerWorker candidates — pool
  // dispatch on a tiny sweep costs more than it wins, and the plan is
  // bit-identical at any worker count anyway.
  int workers = static_cast<int>(
      std::min<size_t>(num_threads, std::max<size_t>(candidates.size(), 1)));
  workers = std::min(workers, exec::ConcurrencyCap());
  workers = std::min(
      workers, std::max(1, static_cast<int>(candidates.size()) /
                               kMinCandidatesPerWorker));
  if (workers > 1) {
    exec::ThreadPool pool(workers);
    exec::ParallelFor(&pool, static_cast<int64_t>(candidates.size()),
                      evaluate);
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) {
      evaluate(static_cast<int64_t>(i));
    }
  }

  // Phase 4 (serial): deterministic reduction in enumeration order —
  // strictly lower full-step estimate wins, so the first (lowest-index)
  // candidate keeps ties regardless of evaluation interleaving.
  int64_t candidates_feasible = 0;
  bool found = false;
  PlanResult best;
  best.estimated_seconds = std::numeric_limits<double>::infinity();
  best.estimated_full_seconds = std::numeric_limits<double>::infinity();
  size_t best_index = 0;
  Status last_error = Status::Infeasible("no candidate plan succeeded");
  for (size_t e = 0; e < entries.size(); ++e) {
    if (!entries[e].grouping.ok()) {
      last_error = entries[e].grouping.status();
      continue;
    }
    for (size_t i = entry_ranges[e].first; i < entry_ranges[e].second; ++i) {
      CandidateOutcome& out = outcomes[i];
      timings.division_seconds += out.division_seconds;
      timings.ordering_seconds += out.ordering_seconds;
      timings.assignment_seconds += out.assignment_seconds;
      if (!out.feasible) {
        last_error = std::move(out.error);
        continue;
      }
      ++candidates_feasible;
      if (out.est_full < best.estimated_full_seconds) {
        best.plan = std::move(out.plan);
        best.estimated_seconds = out.est_simplified;
        best.estimated_full_seconds = out.est_full;
        best.chosen_tp = candidates[i].tp;
        best_index = i;
        found = true;
      }
    }
  }
  (void)best_index;

  timings.total_seconds = Elapsed(t_total);

  const solver::SolveCache::Stats cache_after = solve_cache_.stats();
  auto& registry = obs::MetricsRegistry::Current();
  registry.GetCounter("planner.solves")->Increment();
  registry.GetCounter("planner.candidates_explored")
      ->Increment(static_cast<double>(candidates.size()));
  registry.GetCounter("planner.candidates_feasible")
      ->Increment(static_cast<double>(candidates_feasible));
  registry.GetGauge("planner.threads")->Set(workers);
  registry.GetCounter("planner.cache_hits")
      ->Increment(static_cast<double>(cache_after.hits - cache_before.hits));
  registry.GetCounter("planner.cache_misses")
      ->Increment(
          static_cast<double>(cache_after.misses - cache_before.misses));
  registry.GetHistogram("planner.solve_seconds")
      ->Observe(timings.total_seconds);
  registry.GetHistogram("planner.grouping_seconds")
      ->Observe(timings.grouping_seconds);
  registry.GetHistogram("planner.division_seconds")
      ->Observe(timings.division_seconds);

  if (!found) {
    registry.GetCounter("planner.infeasible_solves")->Increment();
    return last_error;
  }
  registry.GetGauge("planner.last_estimate_seconds")
      ->Set(best.estimated_full_seconds);
  best.timings = timings;

  // Lint the winner: structural + quality passes under the planning
  // situation, plus a topological audit of its 1F1B schedules. Findings
  // ride along in the result; the engine decides what to do with them.
  lint::LintPlan(best.plan, cluster_, cost_, &situation, &best.diagnostics);
  lint::LintEventGraph(best.plan, &best.diagnostics);
  lint::RecordDiagnosticMetrics(best.diagnostics);

  return best;
}

}  // namespace core
}  // namespace malleus
