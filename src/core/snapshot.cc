#include "core/snapshot.h"

#include "common/rng.h"
#include "common/string_util.h"
#include "plan/estimator.h"
#include "sim/pipeline_sim.h"

namespace malleus {
namespace core {

namespace {

// Simulates one noise-free step under `model`; the Rng is consumed only by
// the (disabled) jitter, so the result is a pure function of its inputs.
double DeterministicStepSeconds(const plan::ParallelPlan& p,
                                const topo::ClusterSpec& cluster,
                                const model::CostModel& cost,
                                const straggler::Situation& situation,
                                net::NetModel model) {
  sim::SimOptions opts;
  opts.timing_noise_stddev = 0.0;
  opts.net_model = model;
  Rng rng(0);
  Result<sim::StepResult> step =
      sim::SimulateStep(cluster, cost, p, situation, opts, &rng);
  if (!step.ok()) return -1.0;  // Rendered as-is: a drift into failure diffs.
  return step->step_seconds;
}

}  // namespace

std::string PlanResultSnapshot(const PlanResult& result,
                               const topo::ClusterSpec& cluster,
                               const model::CostModel& cost,
                               const straggler::Situation& situation,
                               const SnapshotOptions& options) {
  const int d = options.digits;
  std::string out;
  out += StrFormat("chosen_tp = %d\n", result.chosen_tp);
  out += StrFormat("estimate.objective_seconds = %s\n",
                   JsonNumber(result.estimated_seconds, d).c_str());
  out += StrFormat("estimate.full_step_seconds = %s\n",
                   JsonNumber(result.estimated_full_seconds, d).c_str());
  const plan::StepEstimate est =
      plan::EstimateStep(result.plan, cost, situation);
  out += StrFormat("estimate.pipeline_model_seconds = %s\n",
                   JsonNumber(est.step_seconds, d).c_str());
  for (net::NetModel m : {net::NetModel::kAnalytic, net::NetModel::kFlow}) {
    out += StrFormat(
        "gradsync.%s_seconds = %s\n", net::NetModelName(m),
        JsonNumber(
            plan::EstimateGradSyncSeconds(result.plan, cost, cluster, m), d)
            .c_str());
  }
  if (options.include_sim) {
    for (net::NetModel m :
         {net::NetModel::kAnalytic, net::NetModel::kFlow}) {
      out += StrFormat(
          "sim.%s_step_seconds = %s\n", net::NetModelName(m),
          JsonNumber(DeterministicStepSeconds(result.plan, cluster, cost,
                                              situation, m),
                     d)
              .c_str());
    }
  }
  out += StrFormat("plan.signature = %s\n", result.plan.Signature().c_str());
  out += "plan:\n";
  // Indent the Table-4-style rendering so a golden file reads as blocks.
  const std::string rendered = result.plan.ToString();
  size_t pos = 0;
  while (pos < rendered.size()) {
    size_t eol = rendered.find('\n', pos);
    if (eol == std::string::npos) eol = rendered.size();
    out += "  " + rendered.substr(pos, eol - pos) + "\n";
    pos = eol + 1;
  }
  return out;
}

}  // namespace core
}  // namespace malleus
