// Serialization codec for the planner's SolveCache entries, and the
// fingerprint that binds a persisted cache to its planner context.
//
// The cache value types ('L' layer-assignment solves and 'O' whole-
// orchestration outcomes) are defined here — orchestration.cc fills the
// cache with them — and the codec teaches solver::SolveCache::Serialize/
// Deserialize their byte encodings, so a daemon or CLI can warm-load a
// planner across process restarts (solver/cache_io.h is the file format).
//
// A SolveCache is only meaningful for one cost model (see solve_cache.h's
// keying contract), so persisted caches carry PlannerCacheFingerprint —
// a hash of the cluster and model-spec descriptions — and loaders must
// match it before deserializing.

#ifndef MALLEUS_CORE_CACHE_CODEC_H_
#define MALLEUS_CORE_CACHE_CODEC_H_

#include <cstdint>

#include "common/status.h"
#include "core/orchestration.h"
#include "core/work_assignment.h"
#include "model/cost_model.h"
#include "solver/solve_cache.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {

/// Cache value of one Eq. (2) layer solve (CacheKey tag 'L'). Stores the
/// full Result: infeasible subproblems recur across the b x dp sweep just
/// like feasible ones, and replaying the original Status keeps cached and
/// uncached runs byte-identical.
struct CachedLayers {
  Status status;
  LayerAssignment assignment;
};

/// Cache value of one whole-Orchestrate outcome (CacheKey tag 'O').
struct CachedOrchestration {
  Status status;
  OrchestrationResult result;
};

/// The codec covering the planner's cache entry kinds ('L' and 'O').
/// Returned by reference to a process-lifetime instance; callers that add
/// their own entry kinds (e.g. serve's plan-response memo) copy it and
/// Register more tags.
const solver::CacheCodec& OrchestrationCacheCodec();

/// Hash binding a cache to the planner context that filled it: the cluster
/// and cost-model descriptions. Matching fingerprints mean a persisted
/// cache can be loaded safely; anything else must cold-start.
uint64_t PlannerCacheFingerprint(const topo::ClusterSpec& cluster,
                                 const model::CostModel& cost);

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_CACHE_CODEC_H_
