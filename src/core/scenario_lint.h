// End-to-end lint of one scenario file: parse, semantic scenario checks,
// cluster/situation checks, then (optionally) a planner run whose chosen
// plan is linted (structure + quality + 1F1B event-graph audit) and whose
// grad-sync rings are played through the flow simulator and audited for
// conservation. Shared by tools/malleus_lint and scenario_cli --lint.

#ifndef MALLEUS_CORE_SCENARIO_LINT_H_
#define MALLEUS_CORE_SCENARIO_LINT_H_

#include <string>

#include "common/status.h"
#include "lint/diagnostic.h"
#include "scenario/scenario.h"

namespace malleus {
namespace core {

struct ScenarioLintOptions {
  /// Run the planner and the plan/flow-level passes. Off keeps the lint
  /// purely static (parse + scenario + cluster + situation).
  bool with_plan = true;
};

/// Lints `path`, appending findings to `sink`. The returned Status is
/// about *analyzability*, not findings: it is non-OK when the file cannot
/// be parsed, resolved, or planned at all (callers should treat that as a
/// failed lint); semantic problems land in `sink` and leave the Status OK.
/// Stops before resolution/planning once `sink` holds error diagnostics.
Status LintScenarioFile(const std::string& path,
                        const ScenarioLintOptions& options,
                        lint::DiagnosticSink* sink);

/// Same passes over an already-parsed spec (no file involved). This is the
/// form malleus::serve uses: its `lint` method receives scenario text over
/// the wire, never a path on the server's disk.
Status LintScenarioSpec(const scenario::ScenarioSpec& spec,
                        const ScenarioLintOptions& options,
                        lint::DiagnosticSink* sink);

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_SCENARIO_LINT_H_
