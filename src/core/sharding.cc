#include "core/sharding.h"

#include <algorithm>

#include "common/string_util.h"

namespace malleus {
namespace core {

namespace {

// Finds the stage of `pipeline` hosting `layer`; returns -1 if none.
int StageOfLayer(const plan::Pipeline& pipeline, int layer) {
  int offset = 0;
  for (size_t j = 0; j < pipeline.stages.size(); ++j) {
    const int next = offset + pipeline.stages[j].num_layers;
    if (layer >= offset && layer < next) return static_cast<int>(j);
    offset = next;
  }
  return -1;
}

int MaxTpDegreeForLayer(const plan::ParallelPlan& p, int layer) {
  int tp_max = 0;
  for (const plan::Pipeline& pipe : p.pipelines) {
    const int j = StageOfLayer(pipe, layer);
    if (j >= 0) tp_max = std::max(tp_max, pipe.stages[j].group.size());
  }
  return tp_max;
}

}  // namespace

Result<std::vector<OwnedInterval>> LayerWeightOwners(
    const plan::ParallelPlan& p, int pipeline_index, int layer) {
  if (pipeline_index < 0 || pipeline_index >= p.dp_degree()) {
    return Status::InvalidArgument("pipeline index out of range");
  }
  const plan::Pipeline& pipe = p.pipelines[pipeline_index];
  const int j = StageOfLayer(pipe, layer);
  if (j < 0) {
    return Status::InvalidArgument(
        StrFormat("layer %d not hosted by pipeline %d", layer,
                  pipeline_index));
  }
  const plan::TpGroup& group = pipe.stages[j].group;
  const int n = group.size();
  std::vector<OwnedInterval> out;
  out.reserve(n);
  for (int q = 0; q < n; ++q) {
    out.push_back({group.gpus[q], static_cast<double>(q) / n,
                   static_cast<double>(q + 1) / n});
  }
  return out;
}

int SliceCountForGpu(const plan::ParallelPlan& p, topo::GpuId gpu,
                     int layer) {
  const int tp_max = MaxTpDegreeForLayer(p, layer);
  for (const plan::Pipeline& pipe : p.pipelines) {
    const int j = StageOfLayer(pipe, layer);
    if (j < 0) continue;
    const plan::TpGroup& group = pipe.stages[j].group;
    for (topo::GpuId g : group.gpus) {
      if (g == gpu) return tp_max / group.size();
    }
  }
  return 0;
}

std::vector<std::pair<int, int>> CollectiveCallOrder(
    const plan::ParallelPlan& p, topo::GpuId gpu) {
  std::vector<std::pair<int, int>> calls;
  const int num_layers = p.pipelines.empty()
                             ? 0
                             : p.pipelines[0].TotalLayers();
  for (int layer = 0; layer < num_layers; ++layer) {
    const int tp_max = MaxTpDegreeForLayer(p, layer);
    for (const plan::Pipeline& pipe : p.pipelines) {
      const int j = StageOfLayer(pipe, layer);
      if (j < 0) continue;
      const plan::TpGroup& group = pipe.stages[j].group;
      const int n = group.size();
      for (int q = 0; q < n; ++q) {
        if (group.gpus[q] != gpu) continue;
        // GPU q owns slice indices [q*tp_max/n, (q+1)*tp_max/n), issued in
        // ascending order - identical across all participants of the ring.
        const int per = tp_max / n;
        for (int s = q * per; s < (q + 1) * per; ++s) {
          calls.push_back({layer, s});
        }
      }
    }
  }
  return calls;
}

}  // namespace core
}  // namespace malleus
