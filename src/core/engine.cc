#include "core/engine.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "lint/lint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace malleus {
namespace core {

namespace {

// The engine refuses plans carrying error-level diagnostics and logs the
// rest: warnings are real findings (wasted capacity, razor-edge memory)
// but the plan is executable, so they must not stop training.
Status GatePlanDiagnostics(const lint::DiagnosticSink& sink,
                           const char* origin) {
  const lint::Diagnostic* first_error = nullptr;
  for (const lint::Diagnostic& d : sink.diagnostics()) {
    if (d.severity == lint::Severity::kError) {
      MALLEUS_LOG(Error) << origin << ": " << d.ToString();
      if (first_error == nullptr) first_error = &d;
    } else {
      MALLEUS_LOG(Warning) << origin << ": " << d.ToString();
    }
  }
  if (first_error != nullptr) {
    obs::MetricsRegistry::Current()
        .GetCounter("engine.plans_refused")
        ->Increment();
    return Status::InvalidArgument(
        StrFormat("%s: plan refused, %d lint error(s), first: %s", origin,
                  sink.num_errors(), first_error->ToString().c_str()));
  }
  return Status::OK();
}

// Transition spans/instants go on a dedicated engine track so re-planning
// and migration overheads are visible next to the per-stage timelines.
obs::TrackId EngineTrack(obs::TraceRecorder* trace) {
  return trace->Track("engine", "transitions");
}

}  // namespace

MalleusEngine::MalleusEngine(const topo::ClusterSpec& cluster,
                             const model::CostModel& cost,
                             EngineOptions options)
    : cluster_(cluster),
      cost_(cost),
      options_(options),
      planner_(cluster, cost),
      executor_(cluster, cost, options.sim.net_model),
      rng_(options.seed) {
  profiler_ = std::make_unique<Profiler>(cluster.num_gpus(),
                                         options_.profiler);
}

Status MalleusEngine::Initialize(int64_t global_batch) {
  global_batch_ = global_batch;
  const straggler::Situation healthy(cluster_.num_gpus());
  Result<PlanResult> initial =
      planner_.Plan(healthy, global_batch, options_.planner);
  MALLEUS_RETURN_NOT_OK(initial.status());
  MALLEUS_RETURN_NOT_OK(
      GatePlanDiagnostics(initial->diagnostics, "initial plan"));
  MALLEUS_RETURN_NOT_OK(executor_.Install(std::move(initial->plan)));
  pinned_dp_ = executor_.current_plan().dp_degree();
  profiler_->AcknowledgeShift();
  initialized_ = true;
  return Status::OK();
}

Status MalleusEngine::InitializeWithPlan(plan::ParallelPlan p) {
  global_batch_ = p.global_batch;
  // User-provided plans get the full treatment: structural checks (no
  // situation yet, so quality passes are skipped) plus the event-graph
  // audit. Error-level findings refuse the plan before Install.
  lint::DiagnosticSink diagnostics;
  lint::LintPlan(p, cluster_, cost_, /*situation=*/nullptr, &diagnostics);
  lint::LintEventGraph(p, &diagnostics);
  lint::RecordDiagnosticMetrics(diagnostics);
  MALLEUS_RETURN_NOT_OK(
      GatePlanDiagnostics(diagnostics, "user-provided plan"));
  MALLEUS_RETURN_NOT_OK(executor_.Install(std::move(p)));
  pinned_dp_ = executor_.current_plan().dp_degree();
  profiler_->AcknowledgeShift();
  initialized_ = true;
  return Status::OK();
}

std::vector<topo::GpuId> MalleusEngine::InactiveGpus() const {
  std::set<topo::GpuId> active;
  for (topo::GpuId g : executor_.current_plan().ActiveGpus()) {
    active.insert(g);
  }
  std::vector<topo::GpuId> out;
  for (topo::GpuId g : cluster_.AllGpus()) {
    if (active.count(g) == 0) out.push_back(g);
  }
  return out;
}

Result<PlanResult> MalleusEngine::Replan() {
  PlannerOptions opts = options_.planner;
  if (options_.keep_dp_degree && pinned_dp_ > 0) {
    opts.dp_degree = pinned_dp_;
  }
  Result<PlanResult> planned =
      planner_.Plan(profiler_->Estimated(), global_batch_, opts);
  if (!planned.ok() && options_.keep_dp_degree) {
    // The pinned DP degree can become infeasible (e.g. too few live
    // groups); fall back to re-choosing it.
    opts.dp_degree = 0;
    planned = planner_.Plan(profiler_->Estimated(), global_batch_, opts);
    if (planned.ok()) pinned_dp_ = planned->plan.dp_degree();
  }
  if (planned.ok()) {
    // A refused plan surfaces as a planning failure: the caller keeps
    // training on the current plan (Step) or aborts recovery.
    MALLEUS_RETURN_NOT_OK(
        GatePlanDiagnostics(planned->diagnostics, "re-plan"));
  }
  return planned;
}

Result<StepReport> MalleusEngine::RecoverFromFailure(
    const straggler::Situation& truth) {
  StepReport report;
  for (topo::GpuId g : executor_.current_plan().ActiveGpus()) {
    if (truth.IsFailed(g)) profiler_->MarkFailed(g);
  }
  Result<PlanResult> planned = Replan();
  MALLEUS_RETURN_NOT_OK(planned.status());
  report.planning_seconds = PlanningSeconds(planned->timings);
  // Failure halts training: planning is not overlapped here, and the model
  // states are re-loaded from the latest checkpoint (S5.1).
  report.planning_overflow_seconds = report.planning_seconds;
  MALLEUS_RETURN_NOT_OK(executor_.Reload(std::move(planned->plan)));
  // Each GPU of the new plan reads exactly the slices it will own.
  Result<CheckpointIoPlan> load =
      PlanCheckpointLoad(executor_.current_plan(), cost_);
  MALLEUS_RETURN_NOT_OK(load.status());
  CheckpointIoConfig io_config;
  io_config.per_node_io_gbps = options_.restart_cost.per_node_io_gbps;
  report.recovery_seconds = CheckpointIoSeconds(*load, cluster_, io_config);
  report.replanned = true;
  report.plan_signature = executor_.current_plan().Signature();
  profiler_->AcknowledgeShift();

  auto& registry = obs::MetricsRegistry::Current();
  registry.GetCounter("engine.replans")->Increment();
  registry.GetCounter("engine.recoveries")->Increment();
  registry.GetHistogram("engine.recovery_seconds")
      ->Observe(report.recovery_seconds);

  // The failure stalls training: planning + checkpoint reload happen before
  // the step, so the step's spans start after the recovery span.
  if (options_.sim.trace != nullptr) {
    const double stall =
        report.planning_overflow_seconds + report.recovery_seconds;
    options_.sim.trace->AddSpan(
        "recover", "engine", EngineTrack(options_.sim.trace),
        options_.sim.trace_time_offset_seconds, stall,
        {obs::TraceArg::Num("planning_seconds", report.planning_seconds),
         obs::TraceArg::Num("recovery_seconds", report.recovery_seconds),
         obs::TraceArg::Str("plan", report.plan_signature)});
    options_.sim.trace_time_offset_seconds += stall;
  }

  Result<sim::StepResult> step =
      sim::SimulateStep(cluster_, cost_, executor_.current_plan(), truth,
                        options_.sim, &rng_);
  MALLEUS_RETURN_NOT_OK(step.status());
  profiler_->RecordStep(step->measured_rates);
  report.step_seconds = step->step_seconds;
  report.note = "recovered from GPU failure via checkpoint reload";
  registry.GetCounter("engine.steps")->Increment();
  registry.GetHistogram("engine.step_seconds")->Observe(report.step_seconds);
  if (options_.sim.trace != nullptr) {
    options_.sim.trace_time_offset_seconds += report.step_seconds;
  }
  return report;
}

Result<StepReport> MalleusEngine::Step(const straggler::Situation& truth) {
  if (!initialized_) {
    return Status::FailedPrecondition("engine not initialized");
  }
  if (truth.num_gpus() != cluster_.num_gpus()) {
    return Status::InvalidArgument("situation does not match cluster");
  }

  // Standby-device micro-benchmarks (S5.2): the engine periodically probes
  // devices that are out of the training so they can be re-included.
  for (topo::GpuId g : InactiveGpus()) {
    if (truth.IsFailed(g)) {
      profiler_->MarkFailed(g);
    } else {
      const double jitter = std::max(
          0.5, 1.0 + rng_.Normal(0.0, options_.sim.timing_noise_stddev));
      profiler_->RecordProbe(g, truth.rate(g) * jitter);
    }
  }

  Result<sim::StepResult> step =
      sim::SimulateStep(cluster_, cost_, executor_.current_plan(), truth,
                        options_.sim, &rng_);
  if (!step.ok()) {
    if (step.status().IsUnavailable()) return RecoverFromFailure(truth);
    return step.status();
  }
  profiler_->RecordStep(step->measured_rates);

  StepReport report;
  report.step_seconds = step->step_seconds;

  auto& registry = obs::MetricsRegistry::Current();
  registry.GetCounter("engine.steps")->Increment();
  registry.GetHistogram("engine.step_seconds")->Observe(report.step_seconds);

  // Emits transition telemetry and advances the trace timeline past this
  // step; every exit of the straggler (non-failure) path funnels through.
  auto finish = [this, &registry](StepReport r) {
    if (r.replanned) {
      registry.GetCounter("engine.replans")->Increment();
      // Asynchronous re-planning (S5.3) hides min(planning, step) of the
      // planner's wall time behind training.
      registry.GetCounter("engine.planning_overlap_saved_seconds")
          ->Increment(std::min(r.planning_seconds, r.step_seconds));
      if (r.migration_seconds > 0) {
        registry.GetCounter("engine.migrations")->Increment();
        registry.GetHistogram("engine.migration_seconds")
            ->Observe(r.migration_seconds);
      }
    }
    if (obs::TraceRecorder* trace = options_.sim.trace) {
      const double step_end =
          options_.sim.trace_time_offset_seconds + r.step_seconds;
      if (r.replanned) {
        trace->AddInstant(
            "replan", "engine", EngineTrack(trace), step_end,
            {obs::TraceArg::Num("planning_seconds", r.planning_seconds),
             obs::TraceArg::Num("overflow_seconds",
                                r.planning_overflow_seconds),
             obs::TraceArg::Str("plan", r.plan_signature)});
      }
      if (r.migration_seconds > 0) {
        trace->AddSpan("migrate", "engine", EngineTrack(trace), step_end,
                       r.migration_seconds,
                       {obs::TraceArg::Str("note", r.note)});
      }
      options_.sim.trace_time_offset_seconds += r.TotalSeconds();
    }
    return r;
  };

  if (profiler_->ShiftDetected()) {
    registry.GetCounter("profiler.shifts_detected")->Increment();
    Result<PlanResult> planned = Replan();
    if (!planned.ok()) {
      // Keep training with the current plan; try again on the next shift.
      registry.GetCounter("engine.replan_failures")->Increment();
      report.note = StrFormat("re-planning failed: %s",
                              planned.status().ToString().c_str());
      profiler_->AcknowledgeShift();
      return finish(std::move(report));
    }
    report.replanned = true;
    report.planning_seconds = PlanningSeconds(planned->timings);
    // Asynchronous re-planning (S5.3): the search overlaps with training;
    // only time beyond one step would stall the GPUs.
    report.planning_overflow_seconds =
        std::max(0.0, report.planning_seconds - report.step_seconds);
    Result<MigrationReport> migrated =
        executor_.Migrate(std::move(planned->plan));
    MALLEUS_RETURN_NOT_OK(migrated.status());
    if (!migrated->no_op) {
      report.migration_seconds = migrated->seconds;
      report.plan_signature = executor_.current_plan().Signature();
      report.note = StrFormat("migrated %s in %d transfers",
                              FormatBytes(static_cast<uint64_t>(
                                  migrated->bytes)).c_str(),
                              migrated->num_transfers);
    } else {
      report.note = "re-planned; plan unchanged";
    }
    profiler_->AcknowledgeShift();
  }
  return finish(std::move(report));
}

}  // namespace core
}  // namespace malleus
