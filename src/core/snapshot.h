// Canonical text snapshots of planner output, for golden-trace regression
// testing (tools/malleus_golden, src/testkit/golden.h).
//
// A snapshot pins everything a future PR could silently change: the chosen
// plan (layout + signature), the planner's closed-form step estimates, the
// grad-sync estimate under BOTH network cost models, and one deterministic
// (noise-free) simulated step under both models. Wall-clock quantities
// (PlannerTimings) are deliberately excluded — a snapshot must be
// byte-identical across machines and runs.

#ifndef MALLEUS_CORE_SNAPSHOT_H_
#define MALLEUS_CORE_SNAPSHOT_H_

#include <string>

#include "core/planner.h"
#include "model/cost_model.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {

struct SnapshotOptions {
  /// Significant digits for every floating-point field. 9 digits tracks
  /// genuine behavioral drift while shrugging off sub-ulp refactors
  /// (e.g. an fma the compiler contracts differently would still diff —
  /// that is the point of a golden trace).
  int digits = 9;
  /// Include one simulated step (timing noise 0) per net model. Costs a
  /// SimulateStep per model; turn off for snapshot-heavy sweeps.
  bool include_sim = true;
};

/// Renders `result` (a Planner::Plan outcome under `situation`) as a
/// stable, human-diffable text block. Deterministic for deterministic
/// inputs; independent of thread counts, caches and MALLEUS_NET_MODEL.
std::string PlanResultSnapshot(const PlanResult& result,
                               const topo::ClusterSpec& cluster,
                               const model::CostModel& cost,
                               const straggler::Situation& situation,
                               const SnapshotOptions& options = {});

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_SNAPSHOT_H_
