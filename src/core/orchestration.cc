#include "core/orchestration.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <memory>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/cache_codec.h"
#include "core/work_assignment.h"
#include "solver/division.h"

namespace malleus {
namespace core {

namespace {

// Groups rates that differ by less than this are "the same value" when
// electing the fast majority.
constexpr double kRateTolerance = 1e-9;

// Builds the stage order for one bundle-size permutation: bundles appear in
// `size_order`, each internally sorted by rate descending (Theorem 3).
std::vector<int> StagesForSizeOrder(
    const std::map<int, std::vector<int>>& bundles,
    const std::vector<int>& size_order) {
  std::vector<int> stages;
  for (int size : size_order) {
    const auto& bundle = bundles.at(size);
    stages.insert(stages.end(), bundle.begin(), bundle.end());
  }
  return stages;
}

// The cache value types CachedLayers / CachedOrchestration live in
// core/cache_codec.h so the persistence codec can name them too.

// Solves Eq. (2) for one ordered stage profile, memoized by the profile.
// The same (rates, sizes, b, DP) quadruple is solved for every pipeline
// that shares the composition, for every bundle permutation that reproduces
// it, and again across the planner's candidate sweep.
Result<LayerAssignment> CachedAssignLayers(
    const std::vector<double>& rates, const std::vector<int>& sizes,
    int micro_batch, int dp_degree, const model::CostModel& cost,
    bool nonuniform_layers, solver::SolveCache* cache) {
  if (cache == nullptr) {
    return AssignLayers(rates, sizes, micro_batch, dp_degree, cost,
                        nonuniform_layers);
  }
  const std::string key = solver::CacheKey()
                              .Tag('L')
                              .Doubles(rates)
                              .Ints(sizes)
                              .Int(micro_batch)
                              .Int(dp_degree)
                              .Bool(nonuniform_layers)
                              .str();
  if (auto hit = cache->LookupAs<CachedLayers>(key)) {
    if (!hit->status.ok()) return hit->status;
    return hit->assignment;
  }
  Result<LayerAssignment> r = AssignLayers(rates, sizes, micro_batch,
                                           dp_degree, cost, nonuniform_layers);
  CachedLayers entry;
  if (r.ok()) {
    entry.assignment = *r;
  } else {
    entry.status = r.status();
  }
  cache->InsertAs(key, std::move(entry));
  return r;
}

}  // namespace

Result<OrchestratedPipeline> OrderAndAssignLayers(
    const std::vector<int>& group_indices, const GroupingResult& grouping,
    const model::CostModel& cost, int micro_batch, int dp_degree,
    bool nonuniform_layers, std::vector<int>* removed,
    solver::SolveCache* solve_cache) {
  std::vector<int> working = group_indices;
  if (working.empty()) {
    return Status::InvalidArgument("pipeline has no groups");
  }

  while (true) {
    // Bundle equal-size groups; sort by rate descending inside each bundle.
    std::map<int, std::vector<int>> bundles;
    for (int g : working) {
      bundles[grouping.groups[g].size()].push_back(g);
    }
    for (auto& [size, bundle] : bundles) {
      std::sort(bundle.begin(), bundle.end(), [&](int a, int b) {
        if (grouping.rates[a] != grouping.rates[b]) {
          return grouping.rates[a] > grouping.rates[b];
        }
        return a < b;
      });
    }
    std::vector<int> size_order;
    for (const auto& [size, bundle] : bundles) size_order.push_back(size);
    std::sort(size_order.begin(), size_order.end());

    // Enumerate bundle orders (at most 4! since sizes are in {1,2,4,8}).
    bool found = false;
    OrchestratedPipeline best;
    do {
      const std::vector<int> stages = StagesForSizeOrder(bundles, size_order);
      std::vector<double> rates;
      std::vector<int> sizes;
      for (int g : stages) {
        rates.push_back(grouping.rates[g]);
        sizes.push_back(grouping.groups[g].size());
      }
      Result<LayerAssignment> assigned =
          CachedAssignLayers(rates, sizes, micro_batch, dp_degree, cost,
                             nonuniform_layers, solve_cache);
      if (!assigned.ok()) continue;
      if (!found || assigned->bottleneck < best.bottleneck) {
        found = true;
        best.group_indices = stages;
        best.layers = assigned->layers;
        best.bottleneck = assigned->bottleneck;
      }
    } while (std::next_permutation(size_order.begin(), size_order.end()));

    if (!found) {
      return Status::Infeasible(
          "no stage ordering fits the model in memory");
    }

    // Drop zero-layer groups (removed stragglers) and re-solve: the memory
    // coefficients depend on the stage count, so the assignment changes.
    std::vector<int> kept;
    bool dropped = false;
    for (size_t j = 0; j < best.group_indices.size(); ++j) {
      if (best.layers[j] == 0) {
        if (removed != nullptr) removed->push_back(best.group_indices[j]);
        dropped = true;
      } else {
        kept.push_back(best.group_indices[j]);
      }
    }
    if (!dropped) return best;
    if (kept.empty()) {
      return Status::Infeasible("all groups were assigned zero layers");
    }
    working = std::move(kept);
  }
}

namespace {

// The uncached orchestration body; Orchestrate() below adds memoization.
Result<OrchestrationResult> OrchestrateImpl(
    const GroupingResult& grouping, const model::CostModel& cost,
    int micro_batch, int dp_degree, int64_t total_micro,
    const OrchestrationOptions& options) {
  const int num_groups = static_cast<int>(grouping.groups.size());
  if (dp_degree <= 0) {
    return Status::InvalidArgument("DP degree must be positive");
  }
  if (num_groups < dp_degree) {
    return Status::Infeasible("fewer TP groups than pipelines");
  }
  if (total_micro < dp_degree) {
    return Status::Infeasible("fewer micro-batches than pipelines");
  }

  OrchestrationResult out;
  std::vector<std::vector<int>> membership(dp_degree);

  if (!options.nonuniform_stages) {
    // Uniform orchestration: identical pipeline shapes, groups dealt
    // round-robin in rate order so every pipeline sees a similar mix.
    if (num_groups % dp_degree != 0) {
      return Status::Infeasible(
          StrFormat("%d groups do not divide into %d uniform pipelines",
                    num_groups, dp_degree));
    }
    std::vector<int> order(num_groups);
    for (int g = 0; g < num_groups; ++g) order[g] = g;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (grouping.rates[a] != grouping.rates[b]) {
        return grouping.rates[a] > grouping.rates[b];
      }
      return a < b;
    });
    for (int g = 0; g < num_groups; ++g) {
      membership[g % dp_degree].push_back(order[g]);
    }
  } else {
    // Elect the fast majority rate y-hat.
    std::vector<std::pair<double, int>> counted;  // (rate, count)
    for (double y : grouping.rates) {
      bool merged = false;
      for (auto& [rate, count] : counted) {
        if (std::fabs(rate - y) < kRateTolerance) {
          ++count;
          merged = true;
          break;
        }
      }
      if (!merged) counted.push_back({y, 1});
    }
    std::pair<double, int> fast = counted[0];
    for (const auto& c : counted) {
      if (c.second > fast.second ||
          (c.second == fast.second && c.first < fast.first)) {
        fast = c;
      }
    }
    const double fast_rate = fast.first;

    std::vector<int> fast_groups, slow_groups;
    for (int g = 0; g < num_groups; ++g) {
      if (std::fabs(grouping.rates[g] - fast_rate) < kRateTolerance) {
        fast_groups.push_back(g);
      } else {
        slow_groups.push_back(g);
      }
    }
    const int fast_size =
        fast_groups.empty() ? 1 : grouping.groups[fast_groups[0]].size();

    solver::DivisionProblem problem;
    problem.num_pipelines = dp_degree;
    problem.num_fast_groups = static_cast<int>(fast_groups.size());
    problem.fast_rate = fast_rate;
    for (int g : slow_groups) problem.slow_rates.push_back(grouping.rates[g]);
    problem.total_microbatches = total_micro;
    problem.max_nodes = options.max_division_nodes;
    const int num_layers = cost.spec().num_layers;
    // The capacity check depends only on the multiset of group sizes, and
    // the division search probes the same shapes over and over; memoize.
    auto feasibility_cache =
        std::make_shared<std::map<std::vector<int>, bool>>();
    problem.pipeline_feasible = [&, fast_size, num_layers,
                                 feasibility_cache](
                                    int num_fast,
                                    const std::vector<int>& slow_local) {
      std::vector<int> sizes(num_fast, fast_size);
      for (int s : slow_local) {
        sizes.push_back(grouping.groups[slow_groups[s]].size());
      }
      // Most permissive order for the capacity check: mu_j shrinks toward
      // the later stages, so total capacity sum k_j/mu_j is maximized by
      // pairing the big groups with the cheap late stages (rearrangement
      // inequality) - sizes ascending.
      std::sort(sizes.begin(), sizes.end());
      auto it = feasibility_cache->find(sizes);
      if (it != feasibility_cache->end()) return it->second;
      const std::vector<int64_t> caps =
          StageLayerCapacities(sizes, micro_batch, dp_degree, cost);
      int64_t total = 0;
      for (int64_t c : caps) total += c;
      const bool feasible = total >= num_layers;
      (*feasibility_cache)[sizes] = feasible;
      return feasible;
    };

    const auto div_start = std::chrono::steady_clock::now();
    Result<solver::DivisionResult> division = solver::SolveDivision(problem);
    out.division_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      div_start)
            .count();
    if (!division.ok()) return division.status();
    out.division_exact = division->exact;
    out.division_nodes = division->nodes_explored;

    size_t next_fast = 0;
    for (int i = 0; i < dp_degree; ++i) {
      const auto& pipe = division->pipelines[i];
      for (int f = 0; f < pipe.num_fast; ++f) {
        membership[i].push_back(fast_groups[next_fast++]);
      }
      for (int s : pipe.slow_indices) {
        membership[i].push_back(slow_groups[s]);
      }
    }
    MALLEUS_CHECK_EQ(next_fast, fast_groups.size());
  }

  const auto order_start = std::chrono::steady_clock::now();
  for (int i = 0; i < dp_degree; ++i) {
    Result<OrchestratedPipeline> pipe = OrderAndAssignLayers(
        membership[i], grouping, cost, micro_batch, dp_degree,
        options.nonuniform_layers, &out.removed_groups,
        options.solve_cache);
    if (!pipe.ok()) return pipe.status();
    out.pipelines.push_back(std::move(pipe).ValueOrDie());
  }
  out.ordering_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    order_start)
          .count();
  return out;
}

}  // namespace

Result<OrchestrationResult> Orchestrate(const GroupingResult& grouping,
                                        const model::CostModel& cost,
                                        int micro_batch, int dp_degree,
                                        int64_t total_micro,
                                        const OrchestrationOptions& options) {
  if (options.solve_cache == nullptr) {
    return OrchestrateImpl(grouping, cost, micro_batch, dp_degree,
                           total_micro, options);
  }
  // The outcome depends only on the grouping's (rate, size) profile and the
  // scalar candidate parameters (plus the cost model, fixed per cache —
  // see OrchestrationOptions::solve_cache).
  std::vector<int> sizes;
  sizes.reserve(grouping.groups.size());
  for (const plan::TpGroup& g : grouping.groups) sizes.push_back(g.size());
  const std::string key = solver::CacheKey()
                              .Tag('O')
                              .Doubles(grouping.rates)
                              .Ints(sizes)
                              .Int(micro_batch)
                              .Int(dp_degree)
                              .Int(total_micro)
                              .Bool(options.nonuniform_layers)
                              .Bool(options.nonuniform_stages)
                              .Int(options.max_division_nodes)
                              .str();
  if (auto hit = options.solve_cache->LookupAs<CachedOrchestration>(key)) {
    if (!hit->status.ok()) return hit->status;
    OrchestrationResult replay = hit->result;
    // A replay spends no solver time; report what this call actually cost.
    replay.division_seconds = 0.0;
    replay.ordering_seconds = 0.0;
    return replay;
  }
  Result<OrchestrationResult> r = OrchestrateImpl(
      grouping, cost, micro_batch, dp_degree, total_micro, options);
  CachedOrchestration entry;
  if (r.ok()) {
    entry.result = *r;
  } else {
    entry.status = r.status();
  }
  options.solve_cache->InsertAs(key, std::move(entry));
  return r;
}

}  // namespace core
}  // namespace malleus
