// The lower-level problem (paper S4.2): joint layer + data assignment.
//
// Eq. (1) decomposes exactly (Appendix B.5) into one layer-assignment ILP
// per pipeline (Eq. (2)) and one data-assignment ILP across pipelines
// (Eq. (3)); both are bottleneck allocations solved exactly by
// solver/minmax.h. Memory capacities come from the Appendix B.4 cost model.

#ifndef MALLEUS_CORE_WORK_ASSIGNMENT_H_
#define MALLEUS_CORE_WORK_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "model/cost_model.h"

namespace malleus {
namespace core {

/// Solution of Eq. (2) for one pipeline.
struct LayerAssignment {
  std::vector<int> layers;   ///< l_{i,j} per stage.
  double bottleneck = 0.0;   ///< o_i = max_j y_j * l_j (tau excluded).
};

/// Maximum layers stage j can host: floor((k_j * usable - nu_j) / mu_j),
/// per Appendix B.4. `stage_sizes` are the TP group sizes k_{i,j}.
std::vector<int64_t> StageLayerCapacities(const std::vector<int>& stage_sizes,
                                          int micro_batch, int dp_degree,
                                          const model::CostModel& cost);

/// Solves Eq. (2): min max_j y_j * l_j s.t. sum l_j = L and memory caps.
/// With `nonuniform` false, layers are split evenly (remainder to the later
/// stages) and only checked against the caps - the Megatron-style baseline
/// used in the Figure 9 ablation.
Result<LayerAssignment> AssignLayers(const std::vector<double>& stage_rates,
                                     const std::vector<int>& stage_sizes,
                                     int micro_batch, int dp_degree,
                                     const model::CostModel& cost,
                                     bool nonuniform = true);

/// Solves Eq. (3): min max_i o_i * m_i s.t. sum m_i = total and m_i >= 1
/// (every orchestrated pipeline must carry data). With `nonuniform` false
/// the micro-batches are split evenly.
Result<std::vector<int64_t>> AssignData(
    const std::vector<double>& pipeline_bottlenecks, int64_t total_micro,
    bool nonuniform = true);

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_WORK_ASSIGNMENT_H_
