#include "core/cache_codec.h"

#include <memory>
#include <string>

#include "common/hash.h"

namespace malleus {
namespace core {

namespace {

using solver::wire::PutDouble;
using solver::wire::PutInts;
using solver::wire::PutString;
using solver::wire::PutU32;
using solver::wire::PutU64;
using solver::wire::Reader;

void EncodeStatus(const Status& status, std::string* out) {
  PutU32(out, static_cast<uint32_t>(status.code()));
  PutString(out, status.message());
}

bool DecodeStatus(Reader* reader, Status* status) {
  uint32_t code;
  std::string message;
  if (!reader->U32(&code) || !reader->String(&message)) return false;
  if (code > static_cast<uint32_t>(StatusCode::kNotImplemented)) return false;
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

void EncodeLayers(const void* value, std::string* out) {
  const auto& entry = *static_cast<const CachedLayers*>(value);
  EncodeStatus(entry.status, out);
  PutInts(out, entry.assignment.layers);
  PutDouble(out, entry.assignment.bottleneck);
}

std::shared_ptr<const void> DecodeLayers(const char* data, size_t size) {
  Reader reader(data, size);
  auto entry = std::make_shared<CachedLayers>();
  if (!DecodeStatus(&reader, &entry->status) ||
      !reader.Ints(&entry->assignment.layers) ||
      !reader.Double(&entry->assignment.bottleneck) ||
      !reader.AtEnd()) {
    return nullptr;
  }
  return entry;
}

void EncodeOrchestration(const void* value, std::string* out) {
  const auto& entry = *static_cast<const CachedOrchestration*>(value);
  EncodeStatus(entry.status, out);
  const OrchestrationResult& r = entry.result;
  PutU32(out, static_cast<uint32_t>(r.pipelines.size()));
  for (const OrchestratedPipeline& p : r.pipelines) {
    PutInts(out, p.group_indices);
    PutInts(out, p.layers);
    PutDouble(out, p.bottleneck);
  }
  PutInts(out, r.removed_groups);
  PutU32(out, r.division_exact ? 1 : 0);
  PutU64(out, static_cast<uint64_t>(r.division_nodes));
  // Solver wall times are a property of the filling run, not the solution;
  // replays report zero anyway (see Orchestrate), so they are not stored.
}

std::shared_ptr<const void> DecodeOrchestration(const char* data,
                                                size_t size) {
  Reader reader(data, size);
  auto entry = std::make_shared<CachedOrchestration>();
  if (!DecodeStatus(&reader, &entry->status)) return nullptr;
  OrchestrationResult& r = entry->result;
  uint32_t num_pipelines;
  if (!reader.U32(&num_pipelines)) return nullptr;
  for (uint32_t i = 0; i < num_pipelines; ++i) {
    OrchestratedPipeline p;
    if (!reader.Ints(&p.group_indices) || !reader.Ints(&p.layers) ||
        !reader.Double(&p.bottleneck)) {
      return nullptr;
    }
    r.pipelines.push_back(std::move(p));
  }
  uint32_t exact;
  uint64_t nodes;
  if (!reader.Ints(&r.removed_groups) || !reader.U32(&exact) ||
      !reader.U64(&nodes) || !reader.AtEnd()) {
    return nullptr;
  }
  if (exact > 1) return nullptr;
  r.division_exact = exact == 1;
  r.division_nodes = static_cast<int64_t>(nodes);
  r.division_seconds = 0.0;
  r.ordering_seconds = 0.0;
  return entry;
}

}  // namespace

const solver::CacheCodec& OrchestrationCacheCodec() {
  static const solver::CacheCodec* codec = [] {
    auto* c = new solver::CacheCodec();
    c->Register('L', EncodeLayers, DecodeLayers);
    c->Register('O', EncodeOrchestration, DecodeOrchestration);
    return c;
  }();
  return *codec;
}

uint64_t PlannerCacheFingerprint(const topo::ClusterSpec& cluster,
                                 const model::CostModel& cost) {
  uint64_t h = Fnv1a64(cluster.ToString());
  h = Fnv1a64(cost.spec().ToString(), h);
  return h;
}

}  // namespace core
}  // namespace malleus
