// The Malleus engine: the overall routine of paper S3.2.
//
//   (1) start from a planner-deduced (or user-provided) initial plan;
//   (2) the executor instantiates it and carries out training;
//   (3) the profiler tracks per-GPU rates from the step measurements and
//       probes standby devices;
//   (4) when any rate shifts by more than 5%, re-planning runs concurrently
//       with training (S5.3) and the executor migrates states on the fly.
//
// GPU failures (straggling rate = infinity) are handled by reloading the
// latest checkpoint onto the remaining GPUs (S5.1).

#ifndef MALLEUS_CORE_ENGINE_H_
#define MALLEUS_CORE_ENGINE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "core/executor.h"
#include "core/planner.h"
#include "core/profiler.h"
#include "sim/pipeline_sim.h"
#include "sim/restart.h"

namespace malleus {
namespace core {

struct EngineOptions {
  PlannerOptions planner;
  ProfilerOptions profiler;
  sim::SimOptions sim;
  sim::RestartCostConfig restart_cost;
  /// Keep the DP degree fixed after initialization (paper footnote 2).
  bool keep_dp_degree = true;
  /// When >= 0, StepReport::planning_seconds uses this fixed value instead
  /// of the planner's measured wall time. Measured time is the honest
  /// overlap model (S5.3) but makes step reports -- and thus trace/JSONL
  /// exports -- vary run to run; tools that need byte-reproducible output
  /// for a fixed seed set a representative constant here.
  double planning_seconds_override = -1.0;
  uint64_t seed = 42;
};

/// What happened during one engine step.
struct StepReport {
  /// Training time of the iteration itself.
  double step_seconds = 0.0;
  /// Time spent migrating model states after re-planning (not overlapped).
  double migration_seconds = 0.0;
  /// Checkpoint-reload time after a failure (not overlapped).
  double recovery_seconds = 0.0;
  /// Wall time of the planner run; overlapped with training (S5.3) except
  /// for `planning_overflow_seconds` = max(0, planning - step).
  double planning_seconds = 0.0;
  double planning_overflow_seconds = 0.0;
  bool replanned = false;
  std::string note;
  /// Fingerprint of the plan adopted this step (plan::ParallelPlan::
  /// Signature()); set only when a re-plan installed a different plan.
  std::string plan_signature;

  /// Total wall-clock cost of the step including transition overheads.
  double TotalSeconds() const {
    return step_seconds + migration_seconds + recovery_seconds +
           planning_overflow_seconds;
  }
};

class MalleusEngine {
 public:
  MalleusEngine(const topo::ClusterSpec& cluster,
                const model::CostModel& cost,
                EngineOptions options = EngineOptions());

  /// Plans for a healthy cluster and installs the initial plan.
  Status Initialize(int64_t global_batch);

  /// Installs a user-provided initial plan instead.
  Status InitializeWithPlan(plan::ParallelPlan p);

  /// Executes one training iteration under the true (hidden) situation.
  /// The engine only observes it through simulated measurements.
  Result<StepReport> Step(const straggler::Situation& truth);

  const plan::ParallelPlan& current_plan() const {
    return executor_.current_plan();
  }
  const Profiler& profiler() const { return *profiler_; }

  /// The engine's planner (and through it the solve cache). Mutable access
  /// exists so hosts can warm or persist the cache around the engine's own
  /// replans (scenario_cli --cache-save/--cache-load, malleus::serve).
  Planner& planner() { return planner_; }
  const Planner& planner() const { return planner_; }

 private:
  /// Devices not participating in training under the current plan.
  std::vector<topo::GpuId> InactiveGpus() const;

  /// Runs the planner on the profiler's estimated situation.
  Result<PlanResult> Replan();

  /// Measured planner wall time, or the configured deterministic override.
  double PlanningSeconds(const PlannerTimings& timings) const {
    return options_.planning_seconds_override >= 0
               ? options_.planning_seconds_override
               : timings.total_seconds;
  }

  /// Failure path: mark dead GPUs, replan, reload from checkpoint.
  Result<StepReport> RecoverFromFailure(const straggler::Situation& truth);

  const topo::ClusterSpec& cluster_;
  const model::CostModel& cost_;
  EngineOptions options_;
  Planner planner_;
  Executor executor_;
  std::unique_ptr<Profiler> profiler_;
  Rng rng_;
  int64_t global_batch_ = 0;
  int pinned_dp_ = 0;
  bool initialized_ = false;
};

}  // namespace core
}  // namespace malleus

#endif  // MALLEUS_CORE_ENGINE_H_
