// Error-level structural checks over a ParallelPlan, emitted as
// malleus::lint diagnostics. These are the invariants ParallelPlan::
// Validate has always enforced (Appendix B.4 constraints plus structural
// sanity); Validate is now a thin wrapper that runs them in fail-fast mode
// and converts the first finding back to a Status, so its accept/reject
// behaviour — including the exact message — is unchanged. Collect-all
// callers (the planner, tools/malleus_lint) run the same pass with a
// regular sink and get every violation at once.

#ifndef MALLEUS_PLAN_PLAN_CHECKS_H_
#define MALLEUS_PLAN_PLAN_CHECKS_H_

#include "common/status.h"
#include "lint/diagnostic.h"
#include "model/cost_model.h"
#include "plan/plan.h"
#include "topology/cluster.h"

namespace malleus {
namespace plan {

// Diagnostic codes of the structural (error-level) plan checks, in the
// order Validate evaluates them. Kept as named constants so tests and the
// pass registry cannot drift from the implementation.
inline constexpr char kLintPlanNoPipelines[] = "plan.no-pipelines";
inline constexpr char kLintPlanBadMicroBatch[] = "plan.bad-micro-batch";
inline constexpr char kLintPlanDuplicateStandby[] = "plan.duplicate-standby";
inline constexpr char kLintPlanEmptyPipeline[] = "plan.empty-pipeline";
inline constexpr char kLintPlanNoMicrobatches[] = "plan.no-microbatches";
inline constexpr char kLintPlanLayerCoverage[] = "plan.layer-coverage";
inline constexpr char kLintPlanEmptyStage[] = "plan.empty-stage";
inline constexpr char kLintPlanBadTpDegree[] = "plan.bad-tp-degree";
inline constexpr char kLintPlanNegativeLayers[] = "plan.negative-layers";
inline constexpr char kLintPlanInvalidGpu[] = "plan.invalid-gpu";
inline constexpr char kLintPlanTpSpansNodes[] = "plan.tp-spans-nodes";
inline constexpr char kLintPlanGpuReused[] = "plan.gpu-reused";
inline constexpr char kLintPlanMemoryCapacity[] = "plan.memory-capacity";
inline constexpr char kLintPlanBatchCoverage[] = "plan.batch-coverage";

/// Runs every structural check over `p`, reporting one error-level
/// diagnostic per violation. Honors `sink->fail_fast()`: with it set the
/// traversal stops at the first error, reproducing Validate's historical
/// first-error-wins semantics exactly (same traversal order, same message
/// text). Without it, checks that would make later checks meaningless
/// (e.g. the memory model on an empty TP group) are skipped per-stage, so
/// a single malformed plan yields a complete, finite report.
void LintPlanStructure(const ParallelPlan& p, const topo::ClusterSpec& cluster,
                       const model::CostModel& cost,
                       lint::DiagnosticSink* sink);

/// Maps a structural plan diagnostic back to the Status that Validate
/// historically returned for it: kResourceExhausted for
/// plan.memory-capacity, kInvalidArgument for everything else, with the
/// diagnostic's message verbatim.
Status StatusFromPlanDiagnostic(const lint::Diagnostic& d);

}  // namespace plan
}  // namespace malleus

#endif  // MALLEUS_PLAN_PLAN_CHECKS_H_
