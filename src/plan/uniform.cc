#include "plan/uniform.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"
#include "plan/estimator.h"
#include "straggler/situation.h"

namespace malleus {
namespace plan {

Result<ParallelPlan> BuildUniformPlan(const topo::ClusterSpec& cluster,
                                      const model::CostModel& cost,
                                      const std::vector<topo::GpuId>& gpus,
                                      const UniformConfig& config) {
  const int dp = config.dp, tp = config.tp, pp = config.pp;
  if (dp <= 0 || tp <= 0 || pp <= 0) {
    return Status::InvalidArgument("parallel degrees must be positive");
  }
  if (!model::IsValidTpDegree(tp)) {
    return Status::InvalidArgument(StrFormat("invalid TP degree %d", tp));
  }
  if (static_cast<int>(gpus.size()) != dp * tp * pp) {
    return Status::InvalidArgument(
        StrFormat("need %d GPUs for DP%d x TP%d x PP%d, got %zu",
                  dp * tp * pp, dp, tp, pp, gpus.size()));
  }
  const int L = cost.spec().num_layers;
  if (pp > L) {
    return Status::InvalidArgument("more stages than layers");
  }
  if (config.global_batch % config.micro_batch_size != 0) {
    return Status::InvalidArgument(
        "global batch must divide by micro-batch size");
  }
  const int64_t total_micro = config.global_batch / config.micro_batch_size;
  if (total_micro % dp != 0 && !config.allow_uneven_data) {
    return Status::InvalidArgument(
        StrFormat("micro-batch count %lld does not divide by DP=%d",
                  static_cast<long long>(total_micro), dp));
  }
  if (total_micro < dp) {
    return Status::InvalidArgument("fewer micro-batches than pipelines");
  }

  // Chunk consecutive GPUs into TP groups; each group must be intra-node.
  const int num_groups = dp * pp;
  std::vector<TpGroup> groups(num_groups);
  for (int g = 0; g < num_groups; ++g) {
    for (int k = 0; k < tp; ++k) {
      groups[g].gpus.push_back(gpus[g * tp + k]);
    }
    for (topo::GpuId id : groups[g].gpus) {
      if (!cluster.SameNode(id, groups[g].gpus[0])) {
        return Status::InvalidArgument(
            StrFormat("TP group %d would span nodes", g));
      }
    }
  }

  // Layer split: as even as possible, remainder to the later stages (they
  // stash fewer in-flight activations).
  const int base = L / pp;
  const int rem = L % pp;

  ParallelPlan out;
  out.micro_batch_size = config.micro_batch_size;
  out.global_batch = config.global_batch;
  out.activation_checkpointing = config.activation_checkpointing;
  out.pipelines.resize(dp);
  for (int i = 0; i < dp; ++i) {
    Pipeline& pipe = out.pipelines[i];
    pipe.num_microbatches =
        total_micro / dp + (i < total_micro % dp ? 1 : 0);
    pipe.stages.resize(pp);
    for (int j = 0; j < pp; ++j) {
      pipe.stages[j].group = groups[static_cast<size_t>(j) * dp + i];
      pipe.stages[j].num_layers = base + (j >= pp - rem ? 1 : 0);
    }
  }
  return out;
}

Result<ParallelPlan> TuneUniformPlan(const topo::ClusterSpec& cluster,
                                     const model::CostModel& cost,
                                     const std::vector<topo::GpuId>& gpus,
                                     int64_t global_batch,
                                     int max_micro_batch,
                                     bool allow_uneven_data) {
  const int n = static_cast<int>(gpus.size());
  const straggler::Situation healthy(cluster.num_gpus());

  bool found = false;
  ParallelPlan best;
  double best_time = std::numeric_limits<double>::infinity();

  for (int tp : {1, 2, 4, 8}) {
    if (tp > cluster.gpus_per_node() || n % tp != 0) continue;
    const int num_groups = n / tp;
    for (int pp = 1; pp <= num_groups; ++pp) {
      if (num_groups % pp != 0) continue;
      const int dp = num_groups / pp;
      for (int b = 1; b <= max_micro_batch; ++b) {
        if (global_batch % b != 0) continue;
        const int64_t total_micro = global_batch / b;
        if (total_micro % dp != 0 && !allow_uneven_data) continue;
        if (total_micro < dp) continue;
        for (bool ac : {false, true}) {
          UniformConfig cfg;
          cfg.dp = dp;
          cfg.tp = tp;
          cfg.pp = pp;
          cfg.micro_batch_size = b;
          cfg.global_batch = global_batch;
          cfg.allow_uneven_data = allow_uneven_data;
          cfg.activation_checkpointing = ac;
          Result<ParallelPlan> built =
              BuildUniformPlan(cluster, cost, gpus, cfg);
          if (!built.ok()) continue;
          if (!built->Validate(cluster, cost).ok()) continue;  // e.g. OOM.
          // AC costs ~33% compute, so the estimate only prefers it when
          // the AC-free variant does not fit in memory.
          const StepEstimate est = EstimateStep(*built, cost, healthy);
          if (est.step_seconds < best_time) {
            best_time = est.step_seconds;
            best = std::move(built).ValueOrDie();
            found = true;
          }
        }
      }
    }
  }
  if (!found) {
    return Status::Infeasible(
        StrFormat("no feasible uniform configuration over %d GPUs", n));
  }
  return best;
}

}  // namespace plan
}  // namespace malleus
