#include "plan/plan_checks.h"

#include <cstdint>
#include <set>

#include "common/string_util.h"

namespace malleus {
namespace plan {

namespace {

std::string PipelineLoc(size_t i) { return StrFormat("pipeline[%zu]", i); }

std::string StageLoc(size_t i, size_t j) {
  return StrFormat("pipeline[%zu].stage[%zu]", i, j);
}

}  // namespace

void LintPlanStructure(const ParallelPlan& p, const topo::ClusterSpec& cluster,
                       const model::CostModel& cost,
                       lint::DiagnosticSink* sink) {
  using lint::Severity;
  if (p.pipelines.empty()) {
    sink->Report(Severity::kError, kLintPlanNoPipelines, "",
                 "plan has no pipelines");
  }
  if (sink->ShouldStop()) return;
  if (p.micro_batch_size <= 0) {
    sink->Report(Severity::kError, kLintPlanBadMicroBatch, "",
                 "micro-batch size must be positive",
                 {{"micro_batch_size", StrFormat("%d", p.micro_batch_size)}});
  }
  if (sink->ShouldStop()) return;

  const int L = cost.spec().num_layers;
  int64_t data = 0;
  std::set<topo::GpuId> seen(p.standby_gpus.begin(), p.standby_gpus.end());
  if (seen.size() != p.standby_gpus.size()) {
    sink->Report(Severity::kError, kLintPlanDuplicateStandby, "standby",
                 "duplicate standby GPU");
  }
  if (sink->ShouldStop()) return;

  for (size_t i = 0; i < p.pipelines.size(); ++i) {
    const Pipeline& pipe = p.pipelines[i];
    if (pipe.stages.empty()) {
      sink->Report(Severity::kError, kLintPlanEmptyPipeline, PipelineLoc(i),
                   StrFormat("pipeline %zu has no stages", i));
    }
    if (sink->ShouldStop()) return;
    if (pipe.num_microbatches <= 0) {
      sink->Report(
          Severity::kError, kLintPlanNoMicrobatches, PipelineLoc(i),
          StrFormat("pipeline %zu has no micro-batches", i),
          {{"num_microbatches",
            StrFormat("%lld", static_cast<long long>(pipe.num_microbatches))}});
    }
    if (sink->ShouldStop()) return;
    if (pipe.TotalLayers() != L) {
      sink->Report(Severity::kError, kLintPlanLayerCoverage, PipelineLoc(i),
                   StrFormat("pipeline %zu covers %d layers, model has %d", i,
                             pipe.TotalLayers(), L),
                   {{"covered", StrFormat("%d", pipe.TotalLayers())},
                    {"model_layers", StrFormat("%d", L)}});
    }
    if (sink->ShouldStop()) return;
    data += pipe.num_microbatches * p.micro_batch_size;

    for (size_t j = 0; j < pipe.stages.size(); ++j) {
      const Stage& stage = pipe.stages[j];
      // In collect-all mode a stage that fails its basic shape checks
      // skips the checks that presuppose the shape (node placement needs a
      // first GPU; the memory model divides by the group size).
      bool stage_shape_ok = true;
      if (stage.group.gpus.empty()) {
        sink->Report(Severity::kError, kLintPlanEmptyStage, StageLoc(i, j),
                     StrFormat("pipeline %zu stage %zu has no GPUs", i, j));
        stage_shape_ok = false;
      }
      if (sink->ShouldStop()) return;
      if (!model::IsValidTpDegree(stage.group.size())) {
        sink->Report(Severity::kError, kLintPlanBadTpDegree, StageLoc(i, j),
                     StrFormat("pipeline %zu stage %zu has TP degree %d", i,
                               j, stage.group.size()),
                     {{"tp_degree", StrFormat("%d", stage.group.size())}});
      }
      if (sink->ShouldStop()) return;
      if (stage.num_layers < 0) {
        sink->Report(Severity::kError, kLintPlanNegativeLayers, StageLoc(i, j),
                     "negative layer count",
                     {{"num_layers", StrFormat("%d", stage.num_layers)}});
      }
      if (sink->ShouldStop()) return;
      if (stage_shape_ok) {
        // The node anchor is only meaningful when the first GPU id is in
        // range; otherwise the span check is skipped in collect-all mode
        // (fail-fast has already returned on the invalid-gpu error).
        const bool anchor_valid = cluster.ValidGpu(stage.group.gpus[0]);
        const topo::NodeId node =
            anchor_valid ? cluster.NodeOf(stage.group.gpus[0]) : -1;
        for (topo::GpuId g : stage.group.gpus) {
          if (!cluster.ValidGpu(g)) {
            sink->Report(Severity::kError, kLintPlanInvalidGpu, StageLoc(i, j),
                         StrFormat("invalid GPU id %d", g),
                         {{"gpu", StrFormat("%d", g)}});
            stage_shape_ok = false;
            if (sink->ShouldStop()) return;
            continue;  // Node/reuse checks need an in-range id.
          }
          if (anchor_valid && cluster.NodeOf(g) != node) {
            sink->Report(Severity::kError, kLintPlanTpSpansNodes,
                         StageLoc(i, j),
                         StrFormat("TP group spans nodes (GPU %d)", g),
                         {{"gpu", StrFormat("%d", g)}});
          }
          if (sink->ShouldStop()) return;
          if (!seen.insert(g).second) {
            sink->Report(Severity::kError, kLintPlanGpuReused, StageLoc(i, j),
                         StrFormat("GPU %d used more than once", g),
                         {{"gpu", StrFormat("%d", g)}});
          }
          if (sink->ShouldStop()) return;
        }
      }
      if (stage_shape_ok && p.micro_batch_size > 0) {
        const double used = StageMemoryBytesPerGpu(
            p, static_cast<int>(i), static_cast<int>(j), cost);
        const double cap = static_cast<double>(cost.gpu().UsableBytes());
        if (used > cap * (1.0 + 1e-9)) {
          sink->Report(
              Severity::kError, kLintPlanMemoryCapacity, StageLoc(i, j),
              StrFormat("pipeline %zu stage %zu needs %s/GPU, capacity %s", i,
                        j, FormatBytes(static_cast<uint64_t>(used)).c_str(),
                        FormatBytes(static_cast<uint64_t>(cap)).c_str()),
              {{"used_bytes", StrFormat("%.0f", used)},
               {"capacity_bytes", StrFormat("%.0f", cap)}});
        }
        if (sink->ShouldStop()) return;
      }
    }
  }
  if (data != p.global_batch) {
    sink->Report(
        Severity::kError, kLintPlanBatchCoverage, "",
        StrFormat("plan covers %lld samples, global batch is %lld",
                  static_cast<long long>(data),
                  static_cast<long long>(p.global_batch)),
        {{"covered", StrFormat("%lld", static_cast<long long>(data))},
         {"global_batch",
          StrFormat("%lld", static_cast<long long>(p.global_batch))}});
  }
}

Status StatusFromPlanDiagnostic(const lint::Diagnostic& d) {
  if (d.code == kLintPlanMemoryCapacity) {
    return Status::ResourceExhausted(d.message);
  }
  return Status::InvalidArgument(d.message);
}

}  // namespace plan
}  // namespace malleus
