#include "plan/plan.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"

namespace malleus {
namespace plan {

double TpGroup::Rate(const model::CostModel& cost,
                     const straggler::Situation& situation) const {
  std::vector<double> xs;
  xs.reserve(gpus.size());
  for (topo::GpuId g : gpus) {
    MALLEUS_CHECK(g >= 0 && g < situation.num_gpus())
        << "situation does not cover GPU " << g;
    xs.push_back(situation.rate(g));
  }
  return cost.GroupRate(xs);
}

std::string TpGroup::ToString() const {
  std::vector<std::string> parts;
  for (topo::GpuId g : gpus) parts.push_back(StrFormat("x%d", g));
  std::string out = "{";
  out += Join(parts, ",");
  out += "}";
  return out;
}

int Pipeline::TotalLayers() const {
  int total = 0;
  for (const Stage& s : stages) total += s.num_layers;
  return total;
}

std::vector<topo::GpuId> Pipeline::Gpus() const {
  std::vector<topo::GpuId> out;
  for (const Stage& s : stages) {
    out.insert(out.end(), s.group.gpus.begin(), s.group.gpus.end());
  }
  return out;
}

std::vector<topo::GpuId> ParallelPlan::ActiveGpus() const {
  std::vector<topo::GpuId> out;
  for (const Pipeline& p : pipelines) {
    auto g = p.Gpus();
    out.insert(out.end(), g.begin(), g.end());
  }
  return out;
}

double StageMemoryBytesPerGpu(const ParallelPlan& p, int pipeline_index,
                              int stage_index, const model::CostModel& cost) {
  const Pipeline& pipe = p.pipelines[pipeline_index];
  const Stage& stage = pipe.stages[stage_index];
  const int pp = pipe.num_stages();
  const int dp = p.dp_degree();
  const int j = stage_index + 1;  // 1-based as in the paper.
  const double mu = cost.MuBytes(p.micro_batch_size, j, pp, dp,
                                 p.activation_checkpointing);
  const double nu = cost.NuBytes(p.micro_batch_size, j, pp, dp);
  return (stage.num_layers * mu + nu) / stage.group.size();
}

Status ParallelPlan::Validate(const topo::ClusterSpec& cluster,
                              const model::CostModel& cost) const {
  if (pipelines.empty()) {
    return Status::InvalidArgument("plan has no pipelines");
  }
  if (micro_batch_size <= 0) {
    return Status::InvalidArgument("micro-batch size must be positive");
  }
  const int L = cost.spec().num_layers;
  int64_t data = 0;
  std::set<topo::GpuId> seen(standby_gpus.begin(), standby_gpus.end());
  const size_t standby_unique = seen.size();
  if (standby_unique != standby_gpus.size()) {
    return Status::InvalidArgument("duplicate standby GPU");
  }

  for (size_t i = 0; i < pipelines.size(); ++i) {
    const Pipeline& pipe = pipelines[i];
    if (pipe.stages.empty()) {
      return Status::InvalidArgument(
          StrFormat("pipeline %zu has no stages", i));
    }
    if (pipe.num_microbatches <= 0) {
      return Status::InvalidArgument(
          StrFormat("pipeline %zu has no micro-batches", i));
    }
    if (pipe.TotalLayers() != L) {
      return Status::InvalidArgument(
          StrFormat("pipeline %zu covers %d layers, model has %d", i,
                    pipe.TotalLayers(), L));
    }
    data += pipe.num_microbatches * micro_batch_size;

    for (size_t j = 0; j < pipe.stages.size(); ++j) {
      const Stage& stage = pipe.stages[j];
      if (stage.group.gpus.empty()) {
        return Status::InvalidArgument(
            StrFormat("pipeline %zu stage %zu has no GPUs", i, j));
      }
      if (!model::IsValidTpDegree(stage.group.size())) {
        return Status::InvalidArgument(
            StrFormat("pipeline %zu stage %zu has TP degree %d", i, j,
                      stage.group.size()));
      }
      if (stage.num_layers < 0) {
        return Status::InvalidArgument("negative layer count");
      }
      const topo::NodeId node = cluster.NodeOf(stage.group.gpus[0]);
      for (topo::GpuId g : stage.group.gpus) {
        if (!cluster.ValidGpu(g)) {
          return Status::InvalidArgument(StrFormat("invalid GPU id %d", g));
        }
        if (cluster.NodeOf(g) != node) {
          return Status::InvalidArgument(
              StrFormat("TP group spans nodes (GPU %d)", g));
        }
        if (!seen.insert(g).second) {
          return Status::InvalidArgument(
              StrFormat("GPU %d used more than once", g));
        }
      }
      const double used = StageMemoryBytesPerGpu(
          *this, static_cast<int>(i), static_cast<int>(j), cost);
      const double cap = static_cast<double>(cost.gpu().UsableBytes());
      if (used > cap * (1.0 + 1e-9)) {
        return Status::ResourceExhausted(StrFormat(
            "pipeline %zu stage %zu needs %s/GPU, capacity %s", i, j,
            FormatBytes(static_cast<uint64_t>(used)).c_str(),
            FormatBytes(static_cast<uint64_t>(cap)).c_str()));
      }
    }
  }
  if (data != global_batch) {
    return Status::InvalidArgument(
        StrFormat("plan covers %lld samples, global batch is %lld",
                  static_cast<long long>(data),
                  static_cast<long long>(global_batch)));
  }
  return Status::OK();
}

std::string ParallelPlan::ToString() const {
  std::string out = StrFormat("ParallelPlan(b=%d, B=%lld, DP=%d)\n",
                              micro_batch_size,
                              static_cast<long long>(global_batch),
                              dp_degree());
  for (size_t i = 0; i < pipelines.size(); ++i) {
    const Pipeline& pipe = pipelines[i];
    out += StrFormat("  pipeline %zu: m=%lld (%d stages)\n", i + 1,
                     static_cast<long long>(pipe.num_microbatches),
                     pipe.num_stages());
    for (size_t j = 0; j < pipe.stages.size(); ++j) {
      const Stage& s = pipe.stages[j];
      out += StrFormat("    stage %zu: %s  l=%d\n", j + 1,
                       s.group.ToString().c_str(), s.num_layers);
    }
  }
  if (!standby_gpus.empty()) {
    std::vector<std::string> parts;
    for (topo::GpuId g : standby_gpus) parts.push_back(StrFormat("x%d", g));
    out += "  standby: " + Join(parts, ",") + "\n";
  }
  return out;
}

std::string ParallelPlan::Signature() const {
  std::string sig = StrFormat("b%d%s|", micro_batch_size,
                              activation_checkpointing ? "ac" : "");
  for (const Pipeline& pipe : pipelines) {
    sig += StrFormat("m%lld[", static_cast<long long>(pipe.num_microbatches));
    for (const Stage& s : pipe.stages) {
      sig += StrFormat("l%d(", s.num_layers);
      for (topo::GpuId g : s.group.gpus) sig += StrFormat("%d,", g);
      sig += ")";
    }
    sig += "]";
  }
  return sig;
}

}  // namespace plan
}  // namespace malleus
