#include "plan/plan.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "plan/plan_checks.h"

namespace malleus {
namespace plan {

double TpGroup::Rate(const model::CostModel& cost,
                     const straggler::Situation& situation) const {
  std::vector<double> xs;
  xs.reserve(gpus.size());
  for (topo::GpuId g : gpus) {
    MALLEUS_CHECK(g >= 0 && g < situation.num_gpus())
        << "situation does not cover GPU " << g;
    xs.push_back(situation.rate(g));
  }
  return cost.GroupRate(xs);
}

std::string TpGroup::ToString() const {
  std::vector<std::string> parts;
  for (topo::GpuId g : gpus) parts.push_back(StrFormat("x%d", g));
  std::string out = "{";
  out += Join(parts, ",");
  out += "}";
  return out;
}

int Pipeline::TotalLayers() const {
  int total = 0;
  for (const Stage& s : stages) total += s.num_layers;
  return total;
}

std::vector<topo::GpuId> Pipeline::Gpus() const {
  std::vector<topo::GpuId> out;
  for (const Stage& s : stages) {
    out.insert(out.end(), s.group.gpus.begin(), s.group.gpus.end());
  }
  return out;
}

std::vector<topo::GpuId> ParallelPlan::ActiveGpus() const {
  std::vector<topo::GpuId> out;
  for (const Pipeline& p : pipelines) {
    auto g = p.Gpus();
    out.insert(out.end(), g.begin(), g.end());
  }
  return out;
}

double StageMemoryBytesPerGpu(const ParallelPlan& p, int pipeline_index,
                              int stage_index, const model::CostModel& cost) {
  MALLEUS_CHECK(pipeline_index >= 0 &&
                pipeline_index < static_cast<int>(p.pipelines.size()))
      << "StageMemoryBytesPerGpu: pipeline index " << pipeline_index
      << " out of range [0, " << p.pipelines.size() << ")";
  const Pipeline& pipe = p.pipelines[pipeline_index];
  MALLEUS_CHECK(stage_index >= 0 &&
                stage_index < static_cast<int>(pipe.stages.size()))
      << "StageMemoryBytesPerGpu: stage index " << stage_index
      << " out of range [0, " << pipe.stages.size() << ") in pipeline "
      << pipeline_index;
  const Stage& stage = pipe.stages[stage_index];
  const int pp = pipe.num_stages();
  const int dp = p.dp_degree();
  const int j = stage_index + 1;  // 1-based as in the paper.
  const double mu = cost.MuBytes(p.micro_batch_size, j, pp, dp,
                                 p.activation_checkpointing);
  const double nu = cost.NuBytes(p.micro_batch_size, j, pp, dp);
  return (stage.num_layers * mu + nu) / stage.group.size();
}

Status ParallelPlan::Validate(const topo::ClusterSpec& cluster,
                              const model::CostModel& cost) const {
  // Thin wrapper over the lint pass: run the structural checks in
  // fail-fast mode and convert the first finding back to the Status this
  // method has always returned (same traversal order, same message).
  lint::DiagnosticSink sink;
  sink.set_fail_fast(true);
  LintPlanStructure(*this, cluster, cost, &sink);
  if (sink.HasErrors()) {
    return StatusFromPlanDiagnostic(sink.diagnostics().front());
  }
  return Status::OK();
}

std::string ParallelPlan::ToString() const {
  std::string out = StrFormat("ParallelPlan(b=%d, B=%lld, DP=%d)\n",
                              micro_batch_size,
                              static_cast<long long>(global_batch),
                              dp_degree());
  for (size_t i = 0; i < pipelines.size(); ++i) {
    const Pipeline& pipe = pipelines[i];
    out += StrFormat("  pipeline %zu: m=%lld (%d stages)\n", i + 1,
                     static_cast<long long>(pipe.num_microbatches),
                     pipe.num_stages());
    for (size_t j = 0; j < pipe.stages.size(); ++j) {
      const Stage& s = pipe.stages[j];
      out += StrFormat("    stage %zu: %s  l=%d\n", j + 1,
                       s.group.ToString().c_str(), s.num_layers);
    }
  }
  if (!standby_gpus.empty()) {
    std::vector<std::string> parts;
    for (topo::GpuId g : standby_gpus) parts.push_back(StrFormat("x%d", g));
    out += "  standby: " + Join(parts, ",") + "\n";
  }
  return out;
}

std::string ParallelPlan::Signature() const {
  std::string sig = StrFormat("b%d%s|", micro_batch_size,
                              activation_checkpointing ? "ac" : "");
  for (const Pipeline& pipe : pipelines) {
    sig += StrFormat("m%lld[", static_cast<long long>(pipe.num_microbatches));
    for (const Stage& s : pipe.stages) {
      sig += StrFormat("l%d(", s.num_layers);
      for (topo::GpuId g : s.group.gpus) sig += StrFormat("%d,", g);
      sig += ")";
    }
    sig += "]";
  }
  if (!standby_gpus.empty()) {
    sig += "s(";
    for (topo::GpuId g : standby_gpus) sig += StrFormat("%d,", g);
    sig += ")";
  }
  return sig;
}

}  // namespace plan
}  // namespace malleus
