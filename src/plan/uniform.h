// Builders for uniform (Megatron-LM-style) 3D-parallel plans. Used for the
// baselines, for Malleus' straggler-free initial plan (the paper notes the
// planner reproduces Megatron's configuration when all rates are 1), and as
// a reference point in tests.

#ifndef MALLEUS_PLAN_UNIFORM_H_
#define MALLEUS_PLAN_UNIFORM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "model/cost_model.h"
#include "plan/plan.h"
#include "topology/cluster.h"

namespace malleus {
namespace plan {

/// Configuration of a uniform 3D-parallel plan.
struct UniformConfig {
  int dp = 1;
  int tp = 1;
  int pp = 1;
  int micro_batch_size = 1;
  int64_t global_batch = 64;
  /// When the global batch does not divide by dp, distribute the remainder
  /// round-robin (true) or fail (false, Megatron semantics).
  bool allow_uneven_data = false;
  /// Trade extra compute for activation memory ("+AC" in Tables 6-7).
  bool activation_checkpointing = false;
};

/// Builds a uniform plan over `gpus` (must contain exactly dp*tp*pp ids,
/// and each TP group of consecutive ids must be intra-node). Layers are
/// split as evenly as possible (the remainder goes to the later stages,
/// which need less activation memory).
Result<ParallelPlan> BuildUniformPlan(const topo::ClusterSpec& cluster,
                                      const model::CostModel& cost,
                                      const std::vector<topo::GpuId>& gpus,
                                      const UniformConfig& config);

/// Enumerates all memory-feasible uniform configurations over `gpus` for
/// micro-batch sizes in [1, max_micro_batch] and returns the one with the
/// lowest estimated straggler-free step time. This is the "tuned" Megatron
/// configuration of the paper's protocol (S7.1).
Result<ParallelPlan> TuneUniformPlan(const topo::ClusterSpec& cluster,
                                     const model::CostModel& cost,
                                     const std::vector<topo::GpuId>& gpus,
                                     int64_t global_batch,
                                     int max_micro_batch = 4,
                                     bool allow_uneven_data = false);

}  // namespace plan
}  // namespace malleus

#endif  // MALLEUS_PLAN_UNIFORM_H_
