// Parallelization plans (S3.1): the output of the planner and the input of
// the executor. A plan captures the four non-uniform partitionings:
//   (1) GPU grouping        - TP groups of possibly different sizes,
//   (2) stage partitioning  - pipelines of possibly different depths,
//   (3) layer assignment    - l_{i,j} layers per stage,
//   (4) data assignment     - m_i micro-batches per pipeline.

#ifndef MALLEUS_PLAN_PLAN_H_
#define MALLEUS_PLAN_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/cost_model.h"
#include "model/model_spec.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace plan {

/// A tensor-parallel group: the unit that executes one pipeline stage.
/// All member GPUs must live on the same node (S2.1).
struct TpGroup {
  std::vector<topo::GpuId> gpus;

  int size() const { return static_cast<int>(gpus.size()); }

  /// Group straggling rate y = rho_n * max{x} under `situation`.
  double Rate(const model::CostModel& cost,
              const straggler::Situation& situation) const;

  std::string ToString() const;
};

/// One pipeline stage: a TP group plus its layer range.
struct Stage {
  TpGroup group;
  int num_layers = 0;  ///< l_{i,j}.
};

/// One training pipeline (a model replica).
struct Pipeline {
  std::vector<Stage> stages;
  int64_t num_microbatches = 0;  ///< m_i.

  int num_stages() const { return static_cast<int>(stages.size()); }
  int TotalLayers() const;
  std::vector<topo::GpuId> Gpus() const;
};

/// \brief A complete parallelization plan.
struct ParallelPlan {
  std::vector<Pipeline> pipelines;
  int micro_batch_size = 1;     ///< b.
  int64_t global_batch = 64;    ///< B; sum_i m_i * b == B must hold.
  /// Re-compute forward activations during backward (trades ~33% extra
  /// compute for a small resident activation footprint). Used by the
  /// memory-starved baseline configurations (e.g. Megatron 32B "TP8+AC").
  bool activation_checkpointing = false;
  /// GPUs deliberately excluded from training (heavy stragglers kept on
  /// standby for elastic re-inclusion, S5.2).
  std::vector<topo::GpuId> standby_gpus;

  int dp_degree() const { return static_cast<int>(pipelines.size()); }

  /// All GPUs participating in training.
  std::vector<topo::GpuId> ActiveGpus() const;

  /// Checks the structural invariants: per-pipeline layers sum to L, data
  /// sums to B, groups are intra-node with power-of-two sizes, no GPU is
  /// used twice, and every stage fits in memory (Appendix B.4 constraints).
  /// Thin wrapper over plan::LintPlanStructure (plan_checks.h) in
  /// fail-fast mode; returns the first violation as a Status. Callers that
  /// want every violation at once (or the warn-level quality passes) use
  /// malleus::lint directly.
  Status Validate(const topo::ClusterSpec& cluster,
                  const model::CostModel& cost) const;

  /// Renders the plan in the style of the paper's Table 4 case studies.
  std::string ToString() const;

  /// A stable fingerprint for change detection after re-planning.
  std::string Signature() const;
};

/// Per-stage memory usage (bytes, per GPU) implied by the plan; used by
/// validation and by tests. Aborts with a descriptive message when
/// `pipeline_index` or `stage_index` is out of range (a programming error;
/// callers iterating a plan they did not build should bounds-check first).
double StageMemoryBytesPerGpu(const ParallelPlan& p, int pipeline_index,
                              int stage_index, const model::CostModel& cost);

}  // namespace plan
}  // namespace malleus

#endif  // MALLEUS_PLAN_PLAN_H_
