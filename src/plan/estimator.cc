#include "plan/estimator.h"

#include <algorithm>

#include "net/flow_sim.h"

namespace malleus {
namespace plan {

namespace {

// True iff two stages' layer ranges [a0, a1) and [b0, b1) intersect.
bool Overlaps(int a0, int a1, int b0, int b1) { return a0 < b1 && b0 < a1; }

// Bottleneck bandwidth of a ring over `gpus`: the NIC when any hop leaves
// a node, the NVLink port otherwise. (Mirrors the simulator's
// GroupBottleneckBandwidth; kept local because plan/ sits below sim/.)
double RingBottleneckBandwidth(const topo::ClusterSpec& cluster,
                               const std::vector<topo::GpuId>& gpus) {
  bool cross_node = false;
  for (topo::GpuId g : gpus) {
    if (!cluster.SameNode(g, gpus[0])) {
      cross_node = true;
      break;
    }
  }
  const double gbps = cross_node ? cluster.link().inter_node_gbps
                                 : cluster.link().intra_node_gbps;
  return gbps * 1e9;
}

}  // namespace

double StageTimePerMicrobatch(const Stage& stage, int micro_batch_size,
                              const model::CostModel& cost,
                              const straggler::Situation& situation) {
  if (stage.num_layers == 0) return 0.0;
  const double y = stage.group.Rate(cost, situation);
  return y * stage.num_layers * cost.TauSeconds(micro_batch_size);
}

StepEstimate EstimateStep(const ParallelPlan& p, const model::CostModel& cost,
                          const straggler::Situation& situation) {
  StepEstimate est;
  const double ac_factor = p.activation_checkpointing
                               ? cost.config().ac_compute_overhead
                               : 1.0;
  for (const Pipeline& pipe : p.pipelines) {
    double max_t = 0.0;
    double sum_t = 0.0;
    for (const Stage& s : pipe.stages) {
      const double t =
          ac_factor *
          StageTimePerMicrobatch(s, p.micro_batch_size, cost, situation);
      max_t = std::max(max_t, t);
      sum_t += t;
    }
    const double m = static_cast<double>(pipe.num_microbatches);
    const double full = (m - 1.0) * max_t + sum_t;
    const double simplified = m * max_t;
    est.pipeline_seconds.push_back(full);
    est.step_seconds = std::max(est.step_seconds, full);
    est.simplified_seconds = std::max(est.simplified_seconds, simplified);
  }
  return est;
}

std::vector<GradSyncRing> CollectGradSyncRings(
    const ParallelPlan& p, const model::CostModel& cost,
    const topo::ClusterSpec& cluster) {
  const int dp = p.dp_degree();
  // Precompute each stage's layer offset within its pipeline.
  std::vector<std::vector<int>> offsets(dp);
  for (int i = 0; i < dp; ++i) {
    int off = 0;
    for (const Stage& s : p.pipelines[i].stages) {
      offsets[i].push_back(off);
      off += s.num_layers;
    }
  }
  std::vector<GradSyncRing> rings;
  if (dp <= 1) return rings;
  for (int i = 0; i < dp; ++i) {
    const Pipeline& pipe = p.pipelines[i];
    for (int j = 0; j < pipe.num_stages(); ++j) {
      const Stage& s = pipe.stages[j];
      if (s.num_layers == 0) continue;
      const int lo = offsets[i][j];
      const int hi = lo + s.num_layers;
      GradSyncRing ring;
      ring.pipeline = i;
      ring.stage = j;
      // DP peers: the representative GPU of every overlapping stage in
      // the other pipelines (the slice owners the ring passes through).
      ring.peers = {s.group.gpus.front()};
      for (int i2 = 0; i2 < dp; ++i2) {
        if (i2 == i) continue;
        const Pipeline& other = p.pipelines[i2];
        for (int j2 = 0; j2 < other.num_stages(); ++j2) {
          const Stage& s2 = other.stages[j2];
          if (Overlaps(lo, hi, offsets[i2][j2],
                       offsets[i2][j2] + s2.num_layers)) {
            ring.peers.push_back(s2.group.gpus.front());
          }
        }
      }
      for (size_t q = 1; q < ring.peers.size(); ++q) {
        ring.hop_latency = std::max(
            ring.hop_latency,
            cluster.LatencySec(ring.peers[0], ring.peers[q]));
      }
      // Per-GPU traffic: bf16 gradients out + bf16 parameters back.
      ring.bytes_per_gpu = 2.0 * s.num_layers *
                           cost.GradSyncBytesPerLayer() / s.group.size();
      rings.push_back(std::move(ring));
    }
  }
  return rings;
}

double EstimateGradSyncSeconds(const ParallelPlan& p,
                               const model::CostModel& cost,
                               const topo::ClusterSpec& cluster,
                               net::NetModel model) {
  const std::vector<GradSyncRing> rings =
      CollectGradSyncRings(p, cost, cluster);
  if (rings.empty()) return 0.0;
  const double dp = static_cast<double>(p.dp_degree());
  if (model == net::NetModel::kAnalytic) {
    double sync = 0.0;
    for (const GradSyncRing& ring : rings) {
      const double bw = RingBottleneckBandwidth(cluster, ring.peers);
      const double t = ring.bytes_per_gpu * ((dp - 1.0) / dp) / bw +
                       2.0 * dp * ring.hop_latency;
      sync = std::max(sync, t);
    }
    return sync;
  }
  // Flow model: all rings start together in one fabric session, so rings
  // from different stages contend for shared NVLink ports and node NICs.
  const net::Fabric fabric(cluster);
  net::FlowSim fs(fabric);
  for (const GradSyncRing& ring : rings) {
    net::SubmitRing(&fs, ring.peers,
                    ring.bytes_per_gpu * ((dp - 1.0) / dp),
                    /*start_seconds=*/0.0, 2.0 * dp * ring.hop_latency);
  }
  fs.Run();
  return fs.MakespanSeconds();
}

}  // namespace plan
}  // namespace malleus
