#include "plan/estimator.h"

#include <algorithm>

namespace malleus {
namespace plan {

double StageTimePerMicrobatch(const Stage& stage, int micro_batch_size,
                              const model::CostModel& cost,
                              const straggler::Situation& situation) {
  if (stage.num_layers == 0) return 0.0;
  const double y = stage.group.Rate(cost, situation);
  return y * stage.num_layers * cost.TauSeconds(micro_batch_size);
}

StepEstimate EstimateStep(const ParallelPlan& p, const model::CostModel& cost,
                          const straggler::Situation& situation) {
  StepEstimate est;
  const double ac_factor = p.activation_checkpointing
                               ? cost.config().ac_compute_overhead
                               : 1.0;
  for (const Pipeline& pipe : p.pipelines) {
    double max_t = 0.0;
    double sum_t = 0.0;
    for (const Stage& s : pipe.stages) {
      const double t =
          ac_factor *
          StageTimePerMicrobatch(s, p.micro_batch_size, cost, situation);
      max_t = std::max(max_t, t);
      sum_t += t;
    }
    const double m = static_cast<double>(pipe.num_microbatches);
    const double full = (m - 1.0) * max_t + sum_t;
    const double simplified = m * max_t;
    est.pipeline_seconds.push_back(full);
    est.step_seconds = std::max(est.step_seconds, full);
    est.simplified_seconds = std::max(est.simplified_seconds, simplified);
  }
  return est;
}

}  // namespace plan
}  // namespace malleus
