// Closed-form step-time estimation (the paper's S4.2 cost model). This is
// what the planner optimizes and what Table 3 reports as R_est; the
// discrete-event simulator (src/sim) provides the "actual" time R_actual.

#ifndef MALLEUS_PLAN_ESTIMATOR_H_
#define MALLEUS_PLAN_ESTIMATOR_H_

#include <vector>

#include "model/cost_model.h"
#include "net/fabric.h"
#include "plan/plan.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace plan {

/// Estimated timing of one training step under a plan.
struct StepEstimate {
  /// Full pipeline model: T_i = (m_i - 1) * max_j t_{i,j} + sum_j t_{i,j}.
  double step_seconds = 0.0;
  /// Simplified planner objective: T_i ~= m_i * max_j t_{i,j}.
  double simplified_seconds = 0.0;
  /// Per-pipeline times (full model).
  std::vector<double> pipeline_seconds;
};

/// Evaluates the paper's cost model for `p` under `situation`.
/// Stages with zero layers contribute no time.
StepEstimate EstimateStep(const ParallelPlan& p, const model::CostModel& cost,
                          const straggler::Situation& situation);

/// t_{i,j} = y_{i,j} * l_{i,j} * tau(b) for one stage.
double StageTimePerMicrobatch(const Stage& stage, int micro_batch_size,
                              const model::CostModel& cost,
                              const straggler::Situation& situation);

/// One stage's ZeRO-1 gradient-sync ring: the representative GPU of every
/// stage whose layer range overlaps this one's, across all pipelines.
/// This is plan structure, not simulation: the peers and byte volumes are
/// fully determined by the plan, the cost model, and the cluster. The step
/// simulator plays these rings through its fabric; the estimator prices
/// them in closed form.
struct GradSyncRing {
  std::vector<topo::GpuId> peers;
  double bytes_per_gpu = 0.0;  // bf16 gradients out + parameters back.
  double hop_latency = 0.0;    // Worst peer latency from the owner.
  int pipeline = 0;
  int stage = 0;
};

/// The grad-sync rings of `p` (one per non-empty stage; empty when DP = 1).
std::vector<GradSyncRing> CollectGradSyncRings(
    const ParallelPlan& p, const model::CostModel& cost,
    const topo::ClusterSpec& cluster);

/// Estimated duration of the ZeRO-1 gradient-sync phase of one step (the
/// max over rings; rings run concurrently). With `kAnalytic` each ring is
/// priced in isolation at its group's bottleneck bandwidth — this is what
/// the planner's inner loop assumes and stays cheap enough for solver use.
/// With `kFlow` all rings are submitted to one contention-aware
/// net::FlowSim, so rings crossing the same node NIC split its bandwidth;
/// use this to audit how optimistic the analytic assumption is for a
/// candidate plan before adopting it.
double EstimateGradSyncSeconds(const ParallelPlan& p,
                               const model::CostModel& cost,
                               const topo::ClusterSpec& cluster,
                               net::NetModel model);

}  // namespace plan
}  // namespace malleus

#endif  // MALLEUS_PLAN_ESTIMATOR_H_
