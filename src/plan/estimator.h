// Closed-form step-time estimation (the paper's S4.2 cost model). This is
// what the planner optimizes and what Table 3 reports as R_est; the
// discrete-event simulator (src/sim) provides the "actual" time R_actual.

#ifndef MALLEUS_PLAN_ESTIMATOR_H_
#define MALLEUS_PLAN_ESTIMATOR_H_

#include <vector>

#include "model/cost_model.h"
#include "plan/plan.h"
#include "straggler/situation.h"

namespace malleus {
namespace plan {

/// Estimated timing of one training step under a plan.
struct StepEstimate {
  /// Full pipeline model: T_i = (m_i - 1) * max_j t_{i,j} + sum_j t_{i,j}.
  double step_seconds = 0.0;
  /// Simplified planner objective: T_i ~= m_i * max_j t_{i,j}.
  double simplified_seconds = 0.0;
  /// Per-pipeline times (full model).
  std::vector<double> pipeline_seconds;
};

/// Evaluates the paper's cost model for `p` under `situation`.
/// Stages with zero layers contribute no time.
StepEstimate EstimateStep(const ParallelPlan& p, const model::CostModel& cost,
                          const straggler::Situation& situation);

/// t_{i,j} = y_{i,j} * l_{i,j} * tau(b) for one stage.
double StageTimePerMicrobatch(const Stage& stage, int micro_batch_size,
                              const model::CostModel& cost,
                              const straggler::Situation& situation);

}  // namespace plan
}  // namespace malleus

#endif  // MALLEUS_PLAN_ESTIMATOR_H_
