#include "model/model_spec.h"

#include "common/string_util.h"

namespace malleus {
namespace model {

uint64_t ModelSpec::ParamsPerLayer() const {
  const uint64_t h = hidden_size;
  const uint64_t f = ffn_hidden_size;
  const uint64_t head_dim = h / num_heads;
  // Attention: Q and O are h x h; K and V are h x (kv_heads * head_dim).
  const uint64_t attn = 2 * h * h + 2 * h * (num_kv_heads * head_dim);
  // SwiGLU MLP: gate, up (h x f each) and down (f x h).
  const uint64_t mlp = 3 * h * f;
  // Two RMSNorm weight vectors.
  const uint64_t norms = 2 * h;
  return attn + mlp + norms;
}

uint64_t ModelSpec::EmbeddingParams() const {
  // Untied input embedding + LM head.
  return 2ULL * vocab_size * hidden_size;
}

uint64_t ModelSpec::TotalParams() const {
  return static_cast<uint64_t>(num_layers) * ParamsPerLayer() +
         EmbeddingParams();
}

double ModelSpec::TrainFlopsPerLayer(int micro_batch_size) const {
  const double tokens = static_cast<double>(micro_batch_size) * seq_len;
  // Matmuls: 2 FLOPs per parameter per token forward; backward costs 2x
  // forward, so 6 per parameter per token in total.
  const double matmul = 6.0 * static_cast<double>(ParamsPerLayer()) * tokens;
  // Attention scores (QK^T and AV): 4*s*h FLOPs per token forward (causal
  // masking halves it), tripled for forward+backward.
  const double attn =
      3.0 * 2.0 * static_cast<double>(seq_len) * hidden_size * tokens;
  return matmul + attn;
}

double ModelSpec::TrainFlopsPerMicroBatch(int micro_batch_size) const {
  const double tokens = static_cast<double>(micro_batch_size) * seq_len;
  const double lm_head =
      6.0 * static_cast<double>(vocab_size) * hidden_size * tokens;
  return num_layers * TrainFlopsPerLayer(micro_batch_size) + lm_head;
}

Status ModelSpec::Validate() const {
  if (num_layers <= 0 || hidden_size <= 0 || ffn_hidden_size <= 0 ||
      num_heads <= 0 || num_kv_heads <= 0 || vocab_size <= 0 ||
      seq_len <= 0) {
    return Status::InvalidArgument("model dimensions must be positive");
  }
  if (hidden_size % num_heads != 0) {
    return Status::InvalidArgument("hidden_size must divide by num_heads");
  }
  if (num_heads % num_kv_heads != 0) {
    return Status::InvalidArgument("num_heads must divide by num_kv_heads");
  }
  return Status::OK();
}

std::string ModelSpec::ToString() const {
  return StrFormat("%s(L=%d, h=%d, ffn=%d, heads=%d/%d, seq=%d, %.1fB params)",
                   name.c_str(), num_layers, hidden_size, ffn_hidden_size,
                   num_heads, num_kv_heads, seq_len,
                   static_cast<double>(TotalParams()) / 1e9);
}

ModelSpec ModelSpec::Llama32B() {
  ModelSpec m;
  m.name = "llama-32b";
  m.num_layers = 60;
  m.hidden_size = 6656;
  m.ffn_hidden_size = 17920;
  m.num_heads = 52;
  m.num_kv_heads = 52;
  return m;
}

ModelSpec ModelSpec::Llama70B() {
  ModelSpec m;
  m.name = "llama-70b";
  m.num_layers = 80;
  m.hidden_size = 8192;
  m.ffn_hidden_size = 28672;
  m.num_heads = 64;
  m.num_kv_heads = 8;
  return m;
}

ModelSpec ModelSpec::Llama110B() {
  ModelSpec m;
  m.name = "llama-110b";
  m.num_layers = 80;
  m.hidden_size = 10240;
  m.ffn_hidden_size = 30720;
  m.num_heads = 80;
  m.num_kv_heads = 80;
  return m;
}

ModelSpec ModelSpec::Tiny(int num_layers, int hidden) {
  ModelSpec m;
  m.name = "tiny";
  m.num_layers = num_layers;
  m.hidden_size = hidden;
  m.ffn_hidden_size = hidden * 4;
  m.num_heads = hidden / 64;
  m.num_kv_heads = m.num_heads;
  m.seq_len = 1024;
  return m;
}

}  // namespace model
}  // namespace malleus
