// Analytic cost model: compute time, TP-degree efficiency, and memory.
//
// This is the profiled information the paper's planner consumes (S4.2):
//   - tau(b):   fwd+bwd time of one layer at group straggling rate 1,
//   - rho_n:    efficiency-degradation coefficient of a TP group of n GPUs,
//   - y:        group straggling rate, y = rho_n * max{x_k} (S4.2),
//   - mu/nu/C:  the memory-constraint coefficients of Appendix B.4.
//
// In the paper these come from profiling real kernels; here they come from a
// roofline model of the same GPU (FLOPs / (peak * kernel-efficiency), with a
// per-TP-degree communication overhead), which preserves every *relative*
// quantity the planner reasons about.

#ifndef MALLEUS_MODEL_COST_MODEL_H_
#define MALLEUS_MODEL_COST_MODEL_H_

#include <vector>

#include "common/result.h"
#include "model/model_spec.h"
#include "topology/cluster.h"

namespace malleus {
namespace model {

/// Tunable constants of the analytic model.
struct CostModelConfig {
  /// Fraction of peak FLOPS achieved by the fused kernels (per-kernel
  /// efficiency, excluding pipeline bubbles / DP sync which the event
  /// simulator accounts for separately).
  double kernel_efficiency = 0.65;

  /// TP communication overhead epsilon_n for n = 1, 2, 4, 8 (indexed by
  /// log2 n): zeta_n = flops * (1 + eps_n) / (n * peak * kernel_efficiency).
  double tp_overhead[4] = {0.0, 0.05, 0.12, 0.22};

  /// Activation bytes per token per layer = attn_coeff * h + mlp_coeff * ffn
  /// (bf16 intermediates, FlashAttention so no s x s score tensor).
  double act_bytes_attn_coeff = 16.0;
  double act_bytes_mlp_coeff = 4.0;

  /// Peak fwd+bwd activation memory relative to the stashed fwd activations
  /// (activation gradients + kernel workspaces live alongside the stash).
  double fwd_bwd_act_factor = 2.0;

  /// Bytes per parameter that are replicated on every DP rank
  /// (bf16 weights + fp32 gradient-accumulation buffers).
  double replicated_bytes_per_param = 6.0;
  /// Bytes per parameter that ZeRO-1 shards across DP ranks
  /// (fp32 master weights + Adam moments).
  double sharded_bytes_per_param = 12.0;

  /// Bytes per parameter written to a checkpoint (weights + optimizer).
  double checkpoint_bytes_per_param = 14.0;

  /// Fraction of usable memory the *planner* may budget (GroupCapacityBytes).
  /// Keeping headroom avoids razor-edge plans that leave re-planning with
  /// no feasible moves; final plan validation still checks 100%.
  double planning_memory_headroom = 0.94;

  /// Activation checkpointing: fraction of the stashed activations that
  /// remain resident (layer-boundary tensors only) and the compute
  /// overhead of re-running the forward pass during backward.
  double ac_act_fraction = 0.15;
  double ac_compute_overhead = 4.0 / 3.0;
};

/// \brief Profiled-equivalent cost model for one (model, GPU) pair.
///
/// All "k = 1 perspective" memory quantities follow Appendix B.4: mu/nu are
/// full-layer quantities as seen by a single GPU, and the group capacity is
/// C_{i,j} = k_{i,j} * (min_X C_X - G).
class CostModel {
 public:
  CostModel(ModelSpec spec, topo::GpuSpec gpu,
            CostModelConfig config = CostModelConfig());

  const ModelSpec& spec() const { return spec_; }
  const topo::GpuSpec& gpu() const { return gpu_; }
  const CostModelConfig& config() const { return config_; }

  // ----- Compute time -----

  /// zeta_n(b): fwd+bwd time of one layer with micro-batch b on a TP group
  /// of `tp_degree` healthy GPUs. tp_degree must be a power of two in [1,8].
  double ZetaSeconds(int tp_degree, int micro_batch) const;

  /// rho_n = zeta_n / max_n' zeta_n' (= zeta_n / zeta_1); rho_1 == 1.
  double Rho(int tp_degree) const;

  /// tau(b): per-layer fwd+bwd time at group straggling rate y = 1
  /// (i.e. the TP = 1, non-straggler reference).
  double TauSeconds(int micro_batch) const;

  /// Group straggling rate y = rho_n * max{x_k} for a TP group whose GPUs
  /// have straggling rates `gpu_rates` (S4.2). Empty groups are invalid.
  double GroupRate(const std::vector<double>& gpu_rates) const;

  // ----- Memory ("k = 1 perspective", bytes) -----

  /// s: model states of one full layer (weights + grads + the ZeRO-1 shard
  /// of optimizer states at DP degree `dp_degree`).
  double StateBytesPerLayer(int dp_degree) const;

  /// b * a_f: stashed forward activations of one layer for micro-batch b.
  /// With `activation_ckpt` only layer-boundary tensors stay resident.
  double ActBytesFwd(int micro_batch, bool activation_ckpt = false) const;

  /// b * a_{f+b}: peak fwd+bwd activation memory of one layer.
  double ActBytesFwdBwd(int micro_batch, bool activation_ckpt = false) const;

  /// mu_{i,j}(b): per-layer memory coefficient of the j-th of `num_stages`
  /// stages in 1F1B execution (stage_index is 1-based as in the paper).
  double MuBytes(int micro_batch, int stage_index, int num_stages,
                 int dp_degree, bool activation_ckpt = false) const;

  /// nu_{i,j}(b): layer-independent memory of the stage (embedding table on
  /// the first stage, LM head + logits on the last, 0 elsewhere).
  double NuBytes(int micro_batch, int stage_index, int num_stages,
                 int dp_degree) const;

  /// C_{i,j}: capacity of a group of `group_size` GPUs whose smallest
  /// usable memory is min_usable_bytes (already excludes the reserved gap).
  double GroupCapacityBytes(int group_size, double min_usable_bytes) const;

  /// Convenience: capacity with homogeneous GPUs from the GpuSpec.
  double GroupCapacityBytes(int group_size) const;

  // ----- Communication volumes -----

  /// Bytes of activations sent between consecutive pipeline stages for one
  /// micro-batch (bf16 hidden states).
  double P2pActivationBytes(int micro_batch) const;

  /// Per-layer gradient bytes reduce-scattered across DP (bf16), equal to
  /// the parameter bytes all-gathered back after the update.
  double GradSyncBytesPerLayer() const;

  /// Full checkpoint size (weights + optimizer states).
  double CheckpointBytes() const;

  // ----- Derived metrics -----

  /// Model FLOPs utilization for a measured step time over `num_gpus`.
  double Mfu(double step_seconds, int global_batch, int num_gpus) const;

 private:
  ModelSpec spec_;
  topo::GpuSpec gpu_;
  CostModelConfig config_;
};

/// Maximum TP degree considered anywhere in the system (paper: 8).
inline constexpr int kMaxTpDegree = 8;

/// Returns true iff n is one of the candidate TP degrees {1, 2, 4, 8}.
bool IsValidTpDegree(int n);

}  // namespace model
}  // namespace malleus

#endif  // MALLEUS_MODEL_COST_MODEL_H_
