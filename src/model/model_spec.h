// Model architecture descriptions (LLaMA-2-style decoder transformers).
//
// The paper trains 32B / 70B / 110B LLaMA-2-architecture models with 4K
// context. The 32B model has 60 transformer layers and the 70B/110B have 80
// (both facts are pinned down by the paper's Appendix A.1 and Table 4).

#ifndef MALLEUS_MODEL_MODEL_SPEC_H_
#define MALLEUS_MODEL_MODEL_SPEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace malleus {
namespace model {

/// \brief Architecture of a decoder-only transformer.
///
/// Only quantities that matter to parallelization planning are captured:
/// layer count, matmul dimensions (for FLOPs/bytes), and sequence length.
struct ModelSpec {
  std::string name;
  int num_layers = 0;        ///< L: number of identical transformer layers.
  int hidden_size = 0;       ///< h.
  int ffn_hidden_size = 0;   ///< SwiGLU intermediate size.
  int num_heads = 0;
  int num_kv_heads = 0;      ///< < num_heads means grouped-query attention.
  int vocab_size = 32000;
  int seq_len = 4096;        ///< Training context length.

  /// Parameters in one transformer layer (attention + gated MLP + norms).
  uint64_t ParamsPerLayer() const;

  /// Parameters in the embedding table (and, untied, the LM head).
  uint64_t EmbeddingParams() const;

  /// Total parameter count.
  uint64_t TotalParams() const;

  /// Forward+backward FLOPs of one transformer layer for a micro-batch of
  /// size b at this spec's sequence length (matmuls + attention scores).
  double TrainFlopsPerLayer(int micro_batch_size) const;

  /// Forward+backward FLOPs of one full model pass for a micro-batch of
  /// size b, including the LM head projection.
  double TrainFlopsPerMicroBatch(int micro_batch_size) const;

  Status Validate() const;
  std::string ToString() const;

  // --- The paper's three evaluation models. ---

  /// 32B: 60 layers, hidden 6656 (trained on 32 GPUs in the paper).
  static ModelSpec Llama32B();
  /// 70B: LLaMA-2-70B (80 layers, hidden 8192, GQA, trained on 64 GPUs).
  static ModelSpec Llama70B();
  /// 110B: 80 layers, hidden 10240 (trained on 64 GPUs in the paper).
  static ModelSpec Llama110B();
  /// A small model for tests and the quickstart example.
  static ModelSpec Tiny(int num_layers = 16, int hidden = 1024);
};

}  // namespace model
}  // namespace malleus

#endif  // MALLEUS_MODEL_MODEL_SPEC_H_
