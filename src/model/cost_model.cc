#include "model/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace malleus {
namespace model {

bool IsValidTpDegree(int n) { return n == 1 || n == 2 || n == 4 || n == 8; }

namespace {
int Log2Exact(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}
}  // namespace

CostModel::CostModel(ModelSpec spec, topo::GpuSpec gpu, CostModelConfig config)
    : spec_(std::move(spec)), gpu_(gpu), config_(config) {
  MALLEUS_CHECK_OK(spec_.Validate());
}

double CostModel::ZetaSeconds(int tp_degree, int micro_batch) const {
  MALLEUS_CHECK(IsValidTpDegree(tp_degree)) << "tp_degree=" << tp_degree;
  MALLEUS_CHECK_GT(micro_batch, 0);
  const double flops = spec_.TrainFlopsPerLayer(micro_batch);
  const double eps = config_.tp_overhead[Log2Exact(tp_degree)];
  const double throughput =
      tp_degree * gpu_.peak_tflops * 1e12 * config_.kernel_efficiency;
  return flops * (1.0 + eps) / throughput;
}

double CostModel::Rho(int tp_degree) const {
  // zeta is maximal at TP = 1, so rho_n = zeta_n / zeta_1. Micro-batch size
  // cancels in the ratio.
  return ZetaSeconds(tp_degree, 1) / ZetaSeconds(1, 1);
}

double CostModel::TauSeconds(int micro_batch) const {
  return ZetaSeconds(1, micro_batch);
}

double CostModel::GroupRate(const std::vector<double>& gpu_rates) const {
  MALLEUS_CHECK(!gpu_rates.empty());
  const int n = static_cast<int>(gpu_rates.size());
  const double max_x = *std::max_element(gpu_rates.begin(), gpu_rates.end());
  return Rho(n) * max_x;
}

double CostModel::StateBytesPerLayer(int dp_degree) const {
  MALLEUS_CHECK_GT(dp_degree, 0);
  const double per_param = config_.replicated_bytes_per_param +
                           config_.sharded_bytes_per_param / dp_degree;
  return static_cast<double>(spec_.ParamsPerLayer()) * per_param;
}

double CostModel::ActBytesFwd(int micro_batch, bool activation_ckpt) const {
  const double per_token = config_.act_bytes_attn_coeff * spec_.hidden_size +
                           config_.act_bytes_mlp_coeff * spec_.ffn_hidden_size;
  const double full =
      static_cast<double>(micro_batch) * spec_.seq_len * per_token;
  return activation_ckpt ? full * config_.ac_act_fraction : full;
}

double CostModel::ActBytesFwdBwd(int micro_batch,
                                 bool activation_ckpt) const {
  // Under checkpointing only one layer at a time re-materializes its full
  // working set; that transient buffer is amortized into the reserved gap,
  // so the per-layer peak scales with the resident fraction.
  return config_.fwd_bwd_act_factor * ActBytesFwd(micro_batch,
                                                  activation_ckpt);
}

double CostModel::MuBytes(int micro_batch, int stage_index, int num_stages,
                          int dp_degree, bool activation_ckpt) const {
  MALLEUS_CHECK_GE(stage_index, 1);
  MALLEUS_CHECK_LE(stage_index, num_stages);
  // mu_j(b) = b * [a_f * (PP - j) + a_{f+b}] + s   (Appendix B.4; the j = PP
  // case degenerates to b * a_{f+b} + s).
  const int stashed_rounds = num_stages - stage_index;
  return ActBytesFwd(micro_batch, activation_ckpt) * stashed_rounds +
         ActBytesFwdBwd(micro_batch, activation_ckpt) +
         StateBytesPerLayer(dp_degree);
}

double CostModel::NuBytes(int micro_batch, int stage_index, int num_stages,
                          int dp_degree) const {
  MALLEUS_CHECK_GE(stage_index, 1);
  MALLEUS_CHECK_LE(stage_index, num_stages);
  const double per_param = config_.replicated_bytes_per_param +
                           config_.sharded_bytes_per_param / dp_degree;
  const double emb_states =
      static_cast<double>(spec_.vocab_size) * spec_.hidden_size * per_param;
  const double tokens = static_cast<double>(micro_batch) * spec_.seq_len;
  double nu = 0.0;
  if (stage_index == 1) {
    // Input embedding: states + stashed bf16 embedding outputs per in-flight
    // micro-batch.
    const double emb_act = tokens * 2.0 * spec_.hidden_size;
    nu += emb_states + emb_act * num_stages;
  }
  if (stage_index == num_stages) {
    // LM head: states + chunked logits/grad working set (~1 byte per vocab
    // entry per token amortized thanks to chunking) + final hidden states.
    const double head_act =
        tokens * (2.0 * spec_.hidden_size + 1.0 * spec_.vocab_size);
    nu += emb_states + head_act;
  }
  return nu;
}

double CostModel::GroupCapacityBytes(int group_size,
                                     double min_usable_bytes) const {
  MALLEUS_CHECK_GT(group_size, 0);
  // C_{i,j} = k_{i,j} * (min_X C_X - G); UsableBytes already removes G.
  return group_size * min_usable_bytes * config_.planning_memory_headroom;
}

double CostModel::GroupCapacityBytes(int group_size) const {
  return GroupCapacityBytes(group_size,
                            static_cast<double>(gpu_.UsableBytes()));
}

double CostModel::P2pActivationBytes(int micro_batch) const {
  return static_cast<double>(micro_batch) * spec_.seq_len * 2.0 *
         spec_.hidden_size;
}

double CostModel::GradSyncBytesPerLayer() const {
  return 2.0 * static_cast<double>(spec_.ParamsPerLayer());
}

double CostModel::CheckpointBytes() const {
  return config_.checkpoint_bytes_per_param *
         static_cast<double>(spec_.TotalParams());
}

double CostModel::Mfu(double step_seconds, int global_batch,
                      int num_gpus) const {
  MALLEUS_CHECK_GT(step_seconds, 0.0);
  const double flops = global_batch * spec_.TrainFlopsPerMicroBatch(1);
  return flops / (step_seconds * num_gpus * gpu_.peak_tflops * 1e12);
}

}  // namespace model
}  // namespace malleus
