// Straggler modeling: per-GPU straggling rates, the paper's six canonical
// situations (S1-S6), and situation traces.
//
// The paper injects stragglers by launching k in {1,2,3,8} extra compute
// processes on a GPU ("level-k" stragglers). We substitute the processes
// with their measured effect: a straggling rate x = 1 + 1.44 * k, which fits
// every concrete rate the paper reports (level-1: 2.57-2.62, level-2:
// 3.75-3.8, level-3: 5.42, level-8: 12.53; see Table 4 and Appendix B.7).

#ifndef MALLEUS_STRAGGLER_SITUATION_H_
#define MALLEUS_STRAGGLER_SITUATION_H_

#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "topology/cluster.h"

namespace malleus {
namespace straggler {

/// Straggling rate of a GPU running k extra compute processes.
/// Level 0 means not a straggler (rate 1.0).
double RateForLevel(int level);

/// Rate used to mark a completely failed (unresponsive) GPU.
inline constexpr double kFailedRate = std::numeric_limits<double>::infinity();

/// The paper's canonical straggler situations (S7.1).
enum class SituationId {
  kNormal,  ///< No stragglers.
  kS1,      ///< One level-1 straggler.
  kS2,      ///< One level-3 straggler.
  kS3,      ///< One level-1 + one level-3, on different nodes.
  kS4,      ///< Level-1 + level-2 + level-3, on three different nodes.
  kS5,      ///< Eight level-1 on one node + one level-2 on another node.
  kS6,      ///< Eight level-1 on one node.
};

const char* SituationName(SituationId id);

/// \brief A snapshot of the straggler state: one rate per GPU.
///
/// Rates are >= 1.0 for live GPUs; kFailedRate marks a dead GPU.
class Situation {
 public:
  Situation() = default;
  /// All GPUs healthy.
  explicit Situation(int num_gpus) : rates_(num_gpus, 1.0) {}

  /// Builds one of the canonical situations on `cluster`. Stragglers are
  /// placed deterministically: the most severe level on GPU 0, then the
  /// first GPU of each subsequent node (matching the placements implied by
  /// the paper's Table 4 case studies).
  static Result<Situation> Canonical(const topo::ClusterSpec& cluster,
                                     SituationId id);

  int num_gpus() const { return static_cast<int>(rates_.size()); }
  double rate(topo::GpuId gpu) const { return rates_[gpu]; }
  const std::vector<double>& rates() const { return rates_; }

  /// Sets the rate of one GPU.
  void SetRate(topo::GpuId gpu, double rate) { rates_[gpu] = rate; }
  /// Sets the rate of one GPU from a straggler level.
  void SetLevel(topo::GpuId gpu, int level) {
    rates_[gpu] = RateForLevel(level);
  }
  /// Marks a GPU as failed.
  void Fail(topo::GpuId gpu) { rates_[gpu] = kFailedRate; }

  bool IsStraggler(topo::GpuId gpu) const { return rates_[gpu] > 1.0 + 1e-9; }
  bool IsFailed(topo::GpuId gpu) const {
    return rates_[gpu] == kFailedRate;
  }

  /// Ids of all GPUs with rate > 1.
  std::vector<topo::GpuId> Stragglers() const;

  /// Theoretic-optimum slowdown ratio N / ((N - n) + sum 1/x_i) from S7.2:
  /// the best achievable time-with-stragglers over time-without, if capacity
  /// were perfectly divisible.
  double TheoreticSlowdown() const;

  std::string ToString() const;

 private:
  std::vector<double> rates_;
};

/// One phase of a trace: hold `situation` for `steps` training iterations.
struct TracePhase {
  SituationId id = SituationId::kNormal;
  int steps = 10;
};

/// The end-to-end evaluation trace from Figure 7:
/// Normal -> S1 -> S2 -> S3 -> S4 -> S5 -> S6 -> Normal.
std::vector<TracePhase> StandardTrace(int steps_per_phase = 10);

}  // namespace straggler
}  // namespace malleus

#endif  // MALLEUS_STRAGGLER_SITUATION_H_
