#include "straggler/situation.h"

#include <cmath>

#include "common/string_util.h"

namespace malleus {
namespace straggler {

namespace {
// Slope of the level -> rate fit; see the header comment.
constexpr double kLevelRateSlope = 1.44;
}  // namespace

double RateForLevel(int level) {
  if (level <= 0) return 1.0;
  return 1.0 + kLevelRateSlope * level;
}

const char* SituationName(SituationId id) {
  switch (id) {
    case SituationId::kNormal:
      return "Normal";
    case SituationId::kS1:
      return "S1";
    case SituationId::kS2:
      return "S2";
    case SituationId::kS3:
      return "S3";
    case SituationId::kS4:
      return "S4";
    case SituationId::kS5:
      return "S5";
    case SituationId::kS6:
      return "S6";
  }
  return "?";
}

Result<Situation> Situation::Canonical(const topo::ClusterSpec& cluster,
                                       SituationId id) {
  MALLEUS_RETURN_NOT_OK(cluster.Validate());
  const int per_node = cluster.gpus_per_node();
  Situation s(cluster.num_gpus());
  auto need_nodes = [&](int n) -> Status {
    if (cluster.num_nodes() < n) {
      return Status::InvalidArgument(
          StrFormat("situation %s needs >= %d nodes, cluster has %d",
                    SituationName(id), n, cluster.num_nodes()));
    }
    return Status::OK();
  };
  switch (id) {
    case SituationId::kNormal:
      break;
    case SituationId::kS1:
      s.SetLevel(0, 1);
      break;
    case SituationId::kS2:
      s.SetLevel(0, 3);
      break;
    case SituationId::kS3:
      MALLEUS_RETURN_NOT_OK(need_nodes(2));
      s.SetLevel(0, 3);
      s.SetLevel(per_node, 1);
      break;
    case SituationId::kS4:
      MALLEUS_RETURN_NOT_OK(need_nodes(3));
      s.SetLevel(0, 3);
      s.SetLevel(per_node, 2);
      s.SetLevel(2 * per_node, 1);
      break;
    case SituationId::kS5:
      MALLEUS_RETURN_NOT_OK(need_nodes(2));
      for (int i = 0; i < per_node; ++i) s.SetLevel(i, 1);
      s.SetLevel(per_node, 2);
      break;
    case SituationId::kS6:
      for (int i = 0; i < per_node; ++i) s.SetLevel(i, 1);
      break;
  }
  return s;
}

std::vector<topo::GpuId> Situation::Stragglers() const {
  std::vector<topo::GpuId> out;
  for (int g = 0; g < num_gpus(); ++g) {
    if (IsStraggler(g)) out.push_back(g);
  }
  return out;
}

double Situation::TheoreticSlowdown() const {
  const double n_total = static_cast<double>(num_gpus());
  double capacity = 0.0;
  for (double x : rates_) {
    if (x == kFailedRate) continue;  // Dead GPU contributes nothing.
    capacity += 1.0 / x;
  }
  if (capacity <= 0) return std::numeric_limits<double>::infinity();
  return n_total / capacity;
}

std::string Situation::ToString() const {
  std::vector<std::string> parts;
  for (int g = 0; g < num_gpus(); ++g) {
    if (IsStraggler(g)) {
      parts.push_back(IsFailed(g) ? StrFormat("x%d=FAILED", g)
                                  : StrFormat("x%d=%.2f", g, rates_[g]));
    }
  }
  if (parts.empty()) return "Situation(no stragglers)";
  return "Situation(" + Join(parts, ", ") + ")";
}

std::vector<TracePhase> StandardTrace(int steps_per_phase) {
  return {
      {SituationId::kNormal, steps_per_phase},
      {SituationId::kS1, steps_per_phase},
      {SituationId::kS2, steps_per_phase},
      {SituationId::kS3, steps_per_phase},
      {SituationId::kS4, steps_per_phase},
      {SituationId::kS5, steps_per_phase},
      {SituationId::kS6, steps_per_phase},
      {SituationId::kNormal, steps_per_phase},
  };
}

}  // namespace straggler
}  // namespace malleus
