#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <utility>

#include "common/logging.h"

namespace malleus {
namespace exec {

void WaitGroup::Add(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  count_ += n;
  MALLEUS_CHECK_GE(count_, 0);
}

void WaitGroup::Done() {
  std::lock_guard<std::mutex> lock(mu_);
  MALLEUS_CHECK_GT(count_, 0);
  if (--count_ == 0) cv_.notify_all();
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return count_ == 0; });
}

ThreadPool::ThreadPool(int num_threads) {
  MALLEUS_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t target;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    target = next_worker_;
    next_worker_ = (next_worker_ + 1) % workers_.size();
    ++queued_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->queue.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::TakeTask(int worker_index) {
  const size_t n = workers_.size();
  // Own deque first, newest task first (LIFO).
  {
    Worker& own = *workers_[worker_index];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.queue.empty()) {
      std::function<void()> task = std::move(own.queue.back());
      own.queue.pop_back();
      return task;
    }
  }
  // Steal from siblings, oldest task first (FIFO), scanning from the next
  // worker so steals spread instead of hammering worker 0.
  for (size_t d = 1; d < n; ++d) {
    Worker& victim = *workers_[(worker_index + d) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.queue.empty()) {
      std::function<void()> task = std::move(victim.queue.front());
      victim.queue.pop_front();
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(int worker_index) {
  while (true) {
    std::function<void()> task = TakeTask(worker_index);
    if (task) {
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        --queued_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

int DefaultPlannerThreads() {
  if (const char* env = std::getenv("MALLEUS_PLANNER_THREADS");
      env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int ConcurrencyCap() {
  const unsigned hw = std::thread::hardware_concurrency();
  int cap = hw >= 1 ? static_cast<int>(hw) : 1;
  if (const char* env = std::getenv("MALLEUS_PLANNER_THREADS");
      env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) cap = std::max(cap, static_cast<int>(parsed));
  }
  return cap;
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& body) {
  if (pool == nullptr || n <= 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  // One runner per worker (never more runners than iterations); each runner
  // claims iterations from the shared counter until the range drains.
  const int64_t runners = std::min<int64_t>(pool->num_threads(), n);
  std::atomic<int64_t> next(0);
  WaitGroup wg;
  wg.Add(runners);
  for (int64_t r = 0; r < runners; ++r) {
    pool->Submit([&body, &wg, &next, n] {
      for (int64_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
      wg.Done();
    });
  }
  wg.Wait();
}

}  // namespace exec
}  // namespace malleus
