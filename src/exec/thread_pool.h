// malleus::exec — a small work-stealing thread pool for CPU-bound search
// workloads (the planner's candidate sweep is the primary user).
//
// Design: every worker owns a deque; Submit() round-robins new tasks over
// the worker deques, workers pop their own deque LIFO (cache-friendly for
// recursively submitted work) and steal FIFO from their siblings when their
// own deque drains. Completion is tracked by the caller through WaitGroup,
// mirroring Go's sync.WaitGroup: Add() before submitting, Done() inside the
// task, Wait() to block until everything finished.
//
// The pool makes no fairness or ordering guarantees; callers that need
// deterministic results must make their tasks independent and reduce the
// collected outputs in a deterministic order (see core::Planner::Plan).

#ifndef MALLEUS_EXEC_THREAD_POOL_H_
#define MALLEUS_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace malleus {
namespace exec {

/// Go-style completion latch: Add(n) before handing out n tasks, Done()
/// as each finishes, Wait() blocks until the count returns to zero.
class WaitGroup {
 public:
  void Add(int64_t n = 1);
  void Done();
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t count_ = 0;
};

/// \brief Fixed-size work-stealing thread pool.
///
/// Tasks submitted with Submit() run on one of `num_threads` workers; the
/// destructor drains every queued task before joining. A pool of one thread
/// still runs tasks on its single worker, so Submit() never executes the
/// task inline on the calling thread.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution; thread-safe, including from inside a
  /// running task (the nested task is queued like any other and runs on
  /// some worker — never inline in the submitter).
  void Submit(std::function<void()> task);

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> queue;
  };

  void WorkerLoop(int worker_index);
  /// Pops from the worker's own deque (back) or steals from a sibling
  /// (front). Returns an empty function when no task is available.
  std::function<void()> TakeTask(int worker_index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleep/wake state: `queued_` counts tasks sitting in deques (not yet
  // started); workers sleep on `wake_cv_` when it reaches zero.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  int64_t queued_ = 0;
  bool stop_ = false;

  // Round-robin submission cursor (guarded by wake_mu_).
  size_t next_worker_ = 0;
};

/// Number of planner worker threads to use when the caller does not pin one:
/// the MALLEUS_PLANNER_THREADS environment variable when set to a positive
/// integer, otherwise the hardware concurrency (at least 1).
int DefaultPlannerThreads();

/// Upper bound on worker threads that can actually run concurrently: the
/// hardware concurrency (at least 1), except that a positive
/// MALLEUS_PLANNER_THREADS raises the cap to its value when that is larger.
/// The override keeps forced-concurrency runs honest — the TSan stage pins
/// 4 planner threads on any host precisely to interleave them, and capping
/// at the core count would silently serialize what it is trying to race.
int ConcurrencyCap();

/// Runs body(0), ..., body(n-1), distributing the iterations over `pool`
/// and blocking until all complete. With a null pool (or n <= 1) the loop
/// runs inline on the calling thread, in index order. Bodies must not throw.
///
/// Dispatch is chunked: one runner task per pool worker, each draining a
/// shared atomic iteration counter, so the enqueue cost is O(workers)
/// rather than O(n) and idle workers self-balance onto the remaining
/// iterations without per-iteration Submit/notify traffic.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& body);

}  // namespace exec
}  // namespace malleus

#endif  // MALLEUS_EXEC_THREAD_POOL_H_
