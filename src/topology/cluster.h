// Cluster topology: nodes, GPUs, and interconnect characteristics.
//
// This module stands in for the paper's physical testbed (8 servers with
// 8 x A800-80GB each, NVLink 400 GB/s intra-node, InfiniBand 200 GB/s
// inter-node). All other modules reason about devices through ClusterSpec.

#ifndef MALLEUS_TOPOLOGY_CLUSTER_H_
#define MALLEUS_TOPOLOGY_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace malleus {
namespace topo {

/// Global GPU identifier: GPUs are numbered node-major, i.e. GPU g lives on
/// node g / gpus_per_node at local index g % gpus_per_node.
using GpuId = int;
using NodeId = int;

/// Hardware characteristics of one GPU.
struct GpuSpec {
  double peak_tflops = 312.0;       ///< BF16 tensor-core peak (A800-like).
  uint64_t memory_bytes = 80ULL << 30;  ///< HBM capacity (80 GB).
  /// Reserved memory gap G for NCCL/CUDA contexts (paper: 4096 MiB).
  uint64_t reserved_bytes = 4096ULL << 20;

  /// Usable memory for model states + activations.
  uint64_t UsableBytes() const {
    return memory_bytes > reserved_bytes ? memory_bytes - reserved_bytes : 0;
  }
};

/// Interconnect characteristics.
struct LinkSpec {
  double intra_node_gbps = 400.0;  ///< NVLink bandwidth, GB/s per direction.
  double inter_node_gbps = 200.0;  ///< InfiniBand bandwidth, GB/s.
  double intra_node_latency_s = 5e-6;
  double inter_node_latency_s = 12e-6;
};

/// \brief Describes a homogeneous cluster of `num_nodes` servers with
/// `gpus_per_node` GPUs each.
///
/// Heterogeneity (stragglers) is *not* part of the topology; it is overlaid
/// by malleus::straggler at runtime, matching the paper's premise that the
/// hardware is nominally homogeneous but dynamically degrades.
class ClusterSpec {
 public:
  ClusterSpec() = default;
  ClusterSpec(int num_nodes, int gpus_per_node, GpuSpec gpu = GpuSpec(),
              LinkSpec link = LinkSpec())
      : num_nodes_(num_nodes),
        gpus_per_node_(gpus_per_node),
        gpu_(gpu),
        link_(link) {}

  /// Builds the paper's testbed: `num_nodes` x 8 A800-80GB.
  static ClusterSpec A800Cluster(int num_nodes) {
    return ClusterSpec(num_nodes, 8);
  }

  int num_nodes() const { return num_nodes_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int num_gpus() const { return num_nodes_ * gpus_per_node_; }
  const GpuSpec& gpu() const { return gpu_; }
  const LinkSpec& link() const { return link_; }

  NodeId NodeOf(GpuId gpu) const { return gpu / gpus_per_node_; }
  int LocalIndexOf(GpuId gpu) const { return gpu % gpus_per_node_; }
  bool SameNode(GpuId a, GpuId b) const { return NodeOf(a) == NodeOf(b); }
  bool ValidGpu(GpuId gpu) const { return gpu >= 0 && gpu < num_gpus(); }

  /// All GPU ids on `node`, in local-index order.
  std::vector<GpuId> GpusOnNode(NodeId node) const;

  /// All GPU ids in the cluster.
  std::vector<GpuId> AllGpus() const;

  /// Bandwidth (bytes/s) of the narrowest link on the path between two GPUs.
  double BandwidthBytesPerSec(GpuId a, GpuId b) const;

  /// One-way latency (s) between two GPUs.
  double LatencySec(GpuId a, GpuId b) const;

  /// Validates structural invariants.
  Status Validate() const;

  std::string ToString() const;

 private:
  int num_nodes_ = 0;
  int gpus_per_node_ = 0;
  GpuSpec gpu_;
  LinkSpec link_;
};

}  // namespace topo
}  // namespace malleus

#endif  // MALLEUS_TOPOLOGY_CLUSTER_H_
