// Cluster topology: nodes, GPUs, and interconnect characteristics.
//
// This module stands in for the paper's physical testbed (8 servers with
// 8 x A800-80GB each, NVLink 400 GB/s intra-node, InfiniBand 200 GB/s
// inter-node). All other modules reason about devices through ClusterSpec.

#ifndef MALLEUS_TOPOLOGY_CLUSTER_H_
#define MALLEUS_TOPOLOGY_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace malleus {
namespace topo {

/// Global GPU identifier: GPUs are numbered node-major, i.e. GPU g lives on
/// node g / gpus_per_node at local index g % gpus_per_node.
using GpuId = int;
using NodeId = int;

/// Hardware characteristics of one GPU.
struct GpuSpec {
  double peak_tflops = 312.0;       ///< BF16 tensor-core peak (A800-like).
  uint64_t memory_bytes = 80ULL << 30;  ///< HBM capacity (80 GB).
  /// Reserved memory gap G for NCCL/CUDA contexts (paper: 4096 MiB).
  uint64_t reserved_bytes = 4096ULL << 20;

  /// Usable memory for model states + activations.
  uint64_t UsableBytes() const {
    return memory_bytes > reserved_bytes ? memory_bytes - reserved_bytes : 0;
  }
};

/// Interconnect characteristics.
struct LinkSpec {
  double intra_node_gbps = 400.0;  ///< NVLink bandwidth, GB/s per direction.
  double inter_node_gbps = 200.0;  ///< InfiniBand bandwidth, GB/s.
  double intra_node_latency_s = 5e-6;
  double inter_node_latency_s = 12e-6;
};

/// \brief Hierarchical fabric layout above the node tier.
///
/// The seed model is a flat non-blocking fabric: every cross-node path gets
/// the full `inter_node_gbps`. Production clusters are not like that, so two
/// hierarchical shapes are supported:
///
///  - `kFatTree`: nodes are grouped into pods of `nodes_per_pod` leaf-switch
///    neighbours. Intra-pod traffic is non-blocking; cross-pod traffic funnels
///    through a per-pod spine uplink of capacity
///    `nodes_per_pod * inter_node_gbps / oversubscription` and pays
///    `spine_latency_s` extra one-way latency.
///  - `kRail`: rail-optimized IB. Each GPU's NIC attaches to the leaf switch
///    of its rail (= local index), so same-rail cross-node traffic is
///    non-blocking, while cross-rail traffic crosses the spine through a
///    per-rail uplink of capacity
///    `num_nodes * inter_node_gbps / oversubscription`.
///
/// `oversubscription` is the standard taper ratio (1.0 = non-blocking,
/// 4.0 = 4:1 tapered spine).
struct FabricSpec {
  enum class Kind { kFlat, kFatTree, kRail };

  Kind kind = Kind::kFlat;
  int nodes_per_pod = 0;         ///< Fat-tree only; must divide num_nodes.
  double oversubscription = 1.0;  ///< Spine taper ratio, >= 1.
  double spine_latency_s = 2e-6;  ///< Extra one-way latency across the spine.
};

/// Canonical lower-case name for a fabric kind ("flat", "fat-tree", "rail").
const char* FabricKindName(FabricSpec::Kind kind);

/// Parses a fabric kind name; accepts the canonical names plus "fattree" and
/// "fat_tree" aliases.
Result<FabricSpec::Kind> ParseFabricKind(const std::string& name);

/// \brief Describes a homogeneous cluster of `num_nodes` servers with
/// `gpus_per_node` GPUs each.
///
/// Heterogeneity (stragglers) is *not* part of the topology; it is overlaid
/// by malleus::straggler at runtime, matching the paper's premise that the
/// hardware is nominally homogeneous but dynamically degrades.
class ClusterSpec {
 public:
  ClusterSpec() = default;
  ClusterSpec(int num_nodes, int gpus_per_node, GpuSpec gpu = GpuSpec(),
              LinkSpec link = LinkSpec(), FabricSpec fabric = FabricSpec())
      : num_nodes_(num_nodes),
        gpus_per_node_(gpus_per_node),
        gpu_(gpu),
        link_(link),
        fabric_(fabric) {}

  /// Builds the paper's testbed: `num_nodes` x 8 A800-80GB.
  static ClusterSpec A800Cluster(int num_nodes) {
    return ClusterSpec(num_nodes, 8);
  }

  int num_nodes() const { return num_nodes_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int num_gpus() const { return num_nodes_ * gpus_per_node_; }
  const GpuSpec& gpu() const { return gpu_; }
  const LinkSpec& link() const { return link_; }
  const FabricSpec& fabric() const { return fabric_; }

  NodeId NodeOf(GpuId gpu) const { return gpu / gpus_per_node_; }
  int LocalIndexOf(GpuId gpu) const { return gpu % gpus_per_node_; }
  bool SameNode(GpuId a, GpuId b) const { return NodeOf(a) == NodeOf(b); }
  bool ValidGpu(GpuId gpu) const { return gpu >= 0 && gpu < num_gpus(); }

  /// Pod size in nodes. For a fat-tree this is `fabric().nodes_per_pod`; for
  /// flat and rail fabrics the whole cluster is one pod.
  int NodesPerPod() const {
    return (fabric_.kind == FabricSpec::Kind::kFatTree &&
            fabric_.nodes_per_pod > 0)
               ? fabric_.nodes_per_pod
               : num_nodes_;
  }
  int num_pods() const {
    const int per = NodesPerPod();
    return per > 0 ? num_nodes_ / per : 0;
  }
  int PodOf(NodeId node) const { return node / NodesPerPod(); }
  bool SamePod(GpuId a, GpuId b) const {
    return PodOf(NodeOf(a)) == PodOf(NodeOf(b));
  }
  /// Rail index of a GPU (rail-optimized fabrics): its local index.
  int RailOf(GpuId gpu) const { return LocalIndexOf(gpu); }
  bool SameRail(GpuId a, GpuId b) const { return RailOf(a) == RailOf(b); }

  /// Capacity (bytes/s) of one pod's spine uplink (fat-tree fabrics).
  double PodUplinkBytesPerSec() const {
    return NodesPerPod() * link_.inter_node_gbps * 1e9 /
           fabric_.oversubscription;
  }
  /// Capacity (bytes/s) of one rail's spine uplink (rail fabrics).
  double RailUplinkBytesPerSec() const {
    return num_nodes_ * link_.inter_node_gbps * 1e9 /
           fabric_.oversubscription;
  }

  /// All GPU ids on `node`, in local-index order.
  std::vector<GpuId> GpusOnNode(NodeId node) const;

  /// All GPU ids in the cluster.
  std::vector<GpuId> AllGpus() const;

  /// Bandwidth (bytes/s) of the narrowest link on the path between two GPUs.
  double BandwidthBytesPerSec(GpuId a, GpuId b) const;

  /// One-way latency (s) between two GPUs.
  double LatencySec(GpuId a, GpuId b) const;

  /// Validates structural invariants.
  Status Validate() const;

  std::string ToString() const;

 private:
  int num_nodes_ = 0;
  int gpus_per_node_ = 0;
  GpuSpec gpu_;
  LinkSpec link_;
  FabricSpec fabric_;
};

}  // namespace topo
}  // namespace malleus

#endif  // MALLEUS_TOPOLOGY_CLUSTER_H_
