#include "topology/cluster.h"

#include <algorithm>

#include "common/string_util.h"

namespace malleus {
namespace topo {

const char* FabricKindName(FabricSpec::Kind kind) {
  switch (kind) {
    case FabricSpec::Kind::kFlat:
      return "flat";
    case FabricSpec::Kind::kFatTree:
      return "fat-tree";
    case FabricSpec::Kind::kRail:
      return "rail";
  }
  return "flat";
}

Result<FabricSpec::Kind> ParseFabricKind(const std::string& name) {
  if (name == "flat") return FabricSpec::Kind::kFlat;
  if (name == "fat-tree" || name == "fattree" || name == "fat_tree") {
    return FabricSpec::Kind::kFatTree;
  }
  if (name == "rail") return FabricSpec::Kind::kRail;
  return Status::InvalidArgument(
      StrFormat("unknown fabric kind '%s' (expected flat, fat-tree, or rail)",
                name.c_str()));
}

std::vector<GpuId> ClusterSpec::GpusOnNode(NodeId node) const {
  std::vector<GpuId> out;
  out.reserve(gpus_per_node_);
  for (int i = 0; i < gpus_per_node_; ++i) {
    out.push_back(node * gpus_per_node_ + i);
  }
  return out;
}

std::vector<GpuId> ClusterSpec::AllGpus() const {
  std::vector<GpuId> out;
  out.reserve(num_gpus());
  for (int g = 0; g < num_gpus(); ++g) out.push_back(g);
  return out;
}

double ClusterSpec::BandwidthBytesPerSec(GpuId a, GpuId b) const {
  if (SameNode(a, b)) return link_.intra_node_gbps * 1e9;
  double bw = link_.inter_node_gbps * 1e9;
  switch (fabric_.kind) {
    case FabricSpec::Kind::kFlat:
      break;
    case FabricSpec::Kind::kFatTree:
      if (!SamePod(a, b)) bw = std::min(bw, PodUplinkBytesPerSec());
      break;
    case FabricSpec::Kind::kRail:
      if (!SameRail(a, b)) bw = std::min(bw, RailUplinkBytesPerSec());
      break;
  }
  return bw;
}

double ClusterSpec::LatencySec(GpuId a, GpuId b) const {
  if (SameNode(a, b)) return link_.intra_node_latency_s;
  double lat = link_.inter_node_latency_s;
  switch (fabric_.kind) {
    case FabricSpec::Kind::kFlat:
      break;
    case FabricSpec::Kind::kFatTree:
      if (!SamePod(a, b)) lat += fabric_.spine_latency_s;
      break;
    case FabricSpec::Kind::kRail:
      if (!SameRail(a, b)) lat += fabric_.spine_latency_s;
      break;
  }
  return lat;
}

Status ClusterSpec::Validate() const {
  if (num_nodes_ <= 0) {
    return Status::InvalidArgument("cluster must have at least one node");
  }
  if (gpus_per_node_ <= 0) {
    return Status::InvalidArgument("node must have at least one GPU");
  }
  if (gpu_.peak_tflops <= 0) {
    return Status::InvalidArgument("GPU peak TFLOPS must be positive");
  }
  if (gpu_.memory_bytes <= gpu_.reserved_bytes) {
    return Status::InvalidArgument(
        "GPU memory must exceed the reserved gap");
  }
  if (link_.intra_node_gbps <= 0 || link_.inter_node_gbps <= 0) {
    return Status::InvalidArgument("link bandwidths must be positive");
  }
  if (fabric_.oversubscription < 1.0) {
    return Status::InvalidArgument(
        "fabric oversubscription must be >= 1 (1 = non-blocking)");
  }
  if (fabric_.spine_latency_s < 0) {
    return Status::InvalidArgument("fabric spine latency must be >= 0");
  }
  switch (fabric_.kind) {
    case FabricSpec::Kind::kFlat:
      if (fabric_.nodes_per_pod != 0) {
        return Status::InvalidArgument(
            "nodes_per_pod only applies to fat-tree fabrics");
      }
      break;
    case FabricSpec::Kind::kFatTree:
      if (fabric_.nodes_per_pod <= 0) {
        return Status::InvalidArgument(
            "fat-tree fabric requires nodes_per_pod > 0");
      }
      if (num_nodes_ % fabric_.nodes_per_pod != 0) {
        return Status::InvalidArgument(StrFormat(
            "nodes_per_pod=%d must divide num_nodes=%d",
            fabric_.nodes_per_pod, num_nodes_));
      }
      break;
    case FabricSpec::Kind::kRail:
      if (fabric_.nodes_per_pod != 0) {
        return Status::InvalidArgument(
            "nodes_per_pod only applies to fat-tree fabrics");
      }
      break;
  }
  return Status::OK();
}

std::string ClusterSpec::ToString() const {
  std::string out = StrFormat(
      "Cluster(%d nodes x %d GPUs, %.0f TFLOPS, %s HBM, "
      "NVLink %.0f GB/s, IB %.0f GB/s",
      num_nodes_, gpus_per_node_, gpu_.peak_tflops,
      FormatBytes(gpu_.memory_bytes).c_str(), link_.intra_node_gbps,
      link_.inter_node_gbps);
  switch (fabric_.kind) {
    case FabricSpec::Kind::kFlat:
      break;
    case FabricSpec::Kind::kFatTree:
      out += StrFormat(", fat-tree pods of %d @ %.2f:1",
                       fabric_.nodes_per_pod, fabric_.oversubscription);
      break;
    case FabricSpec::Kind::kRail:
      out += StrFormat(", rail-optimized @ %.2f:1", fabric_.oversubscription);
      break;
  }
  out += ")";
  return out;
}

}  // namespace topo
}  // namespace malleus
