#include "topology/cluster.h"

#include "common/string_util.h"

namespace malleus {
namespace topo {

std::vector<GpuId> ClusterSpec::GpusOnNode(NodeId node) const {
  std::vector<GpuId> out;
  out.reserve(gpus_per_node_);
  for (int i = 0; i < gpus_per_node_; ++i) {
    out.push_back(node * gpus_per_node_ + i);
  }
  return out;
}

std::vector<GpuId> ClusterSpec::AllGpus() const {
  std::vector<GpuId> out;
  out.reserve(num_gpus());
  for (int g = 0; g < num_gpus(); ++g) out.push_back(g);
  return out;
}

double ClusterSpec::BandwidthBytesPerSec(GpuId a, GpuId b) const {
  const double gbps =
      SameNode(a, b) ? link_.intra_node_gbps : link_.inter_node_gbps;
  return gbps * 1e9;
}

double ClusterSpec::LatencySec(GpuId a, GpuId b) const {
  return SameNode(a, b) ? link_.intra_node_latency_s
                        : link_.inter_node_latency_s;
}

Status ClusterSpec::Validate() const {
  if (num_nodes_ <= 0) {
    return Status::InvalidArgument("cluster must have at least one node");
  }
  if (gpus_per_node_ <= 0) {
    return Status::InvalidArgument("node must have at least one GPU");
  }
  if (gpu_.peak_tflops <= 0) {
    return Status::InvalidArgument("GPU peak TFLOPS must be positive");
  }
  if (gpu_.memory_bytes <= gpu_.reserved_bytes) {
    return Status::InvalidArgument(
        "GPU memory must exceed the reserved gap");
  }
  if (link_.intra_node_gbps <= 0 || link_.inter_node_gbps <= 0) {
    return Status::InvalidArgument("link bandwidths must be positive");
  }
  return Status::OK();
}

std::string ClusterSpec::ToString() const {
  return StrFormat(
      "Cluster(%d nodes x %d GPUs, %.0f TFLOPS, %s HBM, "
      "NVLink %.0f GB/s, IB %.0f GB/s)",
      num_nodes_, gpus_per_node_, gpu_.peak_tflops,
      FormatBytes(gpu_.memory_bytes).c_str(), link_.intra_node_gbps,
      link_.inter_node_gbps);
}

}  // namespace topo
}  // namespace malleus
