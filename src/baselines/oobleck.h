// Oobleck-style fault-tolerant baseline (paper S7.2, Figure 8).
//
// Oobleck precomputes a limited set of pipeline *templates* (one per node
// count) and recovers from failures by re-instantiating a template. Treating
// stragglers as faults, it can live-migrate only when the straggler-free
// node count shrinks to another templated count; re-adding recovered nodes
// or falling off the template range forces a full restart. Its templates
// also carry a constant fault-tolerance efficiency overhead even with no
// stragglers (the paper measures 1.82-2.49x of Malleus' step time).

#ifndef MALLEUS_BASELINES_OOBLECK_H_
#define MALLEUS_BASELINES_OOBLECK_H_

#include <map>
#include <set>

#include "baselines/baseline.h"
#include "plan/plan.h"
#include "sim/pipeline_sim.h"
#include "sim/restart.h"

namespace malleus {
namespace baselines {

struct OobleckOptions {
  /// Step-time multiplier of the fault-tolerant pipeline templates.
  double template_overhead = 1.9;
  /// Minimum nodes a template may use (smaller counts are not templated).
  int min_template_nodes = 2;
  sim::RestartCostConfig restart_cost;
  sim::SimOptions sim_options;
  uint64_t seed = 3;
};

class OobleckBaseline : public TrainingFramework {
 public:
  OobleckBaseline(const topo::ClusterSpec& cluster,
                  const model::CostModel& cost, OobleckOptions options);

  std::string name() const override { return "Oobleck"; }
  Status Initialize(int64_t global_batch) override;
  Result<TransitionReport> OnSituationChange(
      const straggler::Situation& situation) override;
  Result<double> StepSeconds(const straggler::Situation& situation) override;

  /// Whether the last transition required a restart (for Figure 8).
  bool last_transition_restarted() const { return last_restarted_; }

 private:
  /// Instantiates the template for the given straggler-free nodes.
  Result<plan::ParallelPlan> TemplateFor(
      const std::set<topo::NodeId>& excluded) const;

  const topo::ClusterSpec& cluster_;
  const model::CostModel& cost_;
  OobleckOptions options_;
  int64_t global_batch_ = 0;
  plan::ParallelPlan plan_;
  std::set<topo::NodeId> excluded_nodes_;
  bool last_restarted_ = false;
  Rng rng_;
};

}  // namespace baselines
}  // namespace malleus

#endif  // MALLEUS_BASELINES_OOBLECK_H_
