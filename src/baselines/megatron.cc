#include "baselines/megatron.h"

#include "common/string_util.h"
#include "plan/uniform.h"

namespace malleus {
namespace baselines {

MegatronBaseline::MegatronBaseline(const topo::ClusterSpec& cluster,
                                   const model::CostModel& cost,
                                   MegatronOptions options)
    : cluster_(cluster),
      cost_(cost),
      options_(options),
      rng_(options.seed) {}

std::string MegatronBaseline::name() const {
  return options_.with_restart ? "Megatron-LM w/ Restart"
                               : "Megatron-LM w/o Restart";
}

Status MegatronBaseline::Initialize(int64_t global_batch) {
  global_batch_ = global_batch;
  excluded_nodes_.clear();
  Result<plan::ParallelPlan> tuned = plan::TuneUniformPlan(
      cluster_, cost_, cluster_.AllGpus(), global_batch,
      /*max_micro_batch=*/4, /*allow_uneven_data=*/false);
  if (!tuned.ok()) return tuned.status();
  plan_ = std::move(tuned).ValueOrDie();
  return Status::OK();
}

std::set<topo::NodeId> MegatronBaseline::StragglerNodes(
    const straggler::Situation& situation) const {
  std::set<topo::NodeId> nodes;
  for (topo::GpuId g : situation.Stragglers()) {
    nodes.insert(cluster_.NodeOf(g));
  }
  return nodes;
}

Result<TransitionReport> MegatronBaseline::OnSituationChange(
    const straggler::Situation& situation) {
  TransitionReport report;
  if (!options_.with_restart) {
    report.description = "static plan kept";
    return report;
  }
  const std::set<topo::NodeId> bad = StragglerNodes(situation);
  if (bad == excluded_nodes_) {
    report.description = "node set unchanged";
    return report;
  }
  // Remove (or re-add) whole nodes, re-tune manually, restart the task.
  std::vector<topo::GpuId> gpus;
  int alive_nodes = 0;
  for (topo::NodeId n = 0; n < cluster_.num_nodes(); ++n) {
    if (bad.count(n) != 0) continue;
    ++alive_nodes;
    for (topo::GpuId g : cluster_.GpusOnNode(n)) gpus.push_back(g);
  }
  if (gpus.empty()) {
    return Status::Unavailable("every node hosts a straggler");
  }
  // The paper bumps the global batch when it stops dividing evenly; we model
  // the equivalent by allowing an uneven (round-robin) remainder.
  Result<plan::ParallelPlan> tuned = plan::TuneUniformPlan(
      cluster_, cost_, gpus, global_batch_, /*max_micro_batch=*/4,
      /*allow_uneven_data=*/true);
  if (!tuned.ok()) return tuned.status();
  plan_ = std::move(tuned).ValueOrDie();
  excluded_nodes_ = bad;
  report.restart_seconds =
      sim::RestartSeconds(cost_.CheckpointBytes(), alive_nodes,
                          options_.restart_cost);
  report.description = StrFormat("restarted on %d nodes", alive_nodes);
  return report;
}

Result<double> MegatronBaseline::StepSeconds(
    const straggler::Situation& situation) {
  Result<sim::StepResult> step = sim::SimulateStep(
      cluster_, cost_, plan_, situation, options_.sim_options, &rng_);
  if (!step.ok()) return step.status();
  return step->step_seconds;
}

}  // namespace baselines
}  // namespace malleus
