#include "baselines/trace_runner.h"

#include <algorithm>

#include "core/run_log.h"

namespace malleus {
namespace baselines {

Result<std::vector<PhaseStats>> RunTrace(
    TrainingFramework* framework, const topo::ClusterSpec& cluster,
    const std::vector<straggler::TracePhase>& trace, int64_t global_batch,
    const TraceRunOptions& options) {
  MALLEUS_RETURN_NOT_OK(framework->Initialize(global_batch));

  std::vector<PhaseStats> out;
  for (const straggler::TracePhase& phase : trace) {
    Result<straggler::Situation> situation =
        straggler::Situation::Canonical(cluster, phase.id);
    MALLEUS_RETURN_NOT_OK(situation.status());

    PhaseStats stats;
    stats.situation = phase.id;
    Result<TransitionReport> transition =
        framework->OnSituationChange(*situation);
    MALLEUS_RETURN_NOT_OK(transition.status());
    stats.restart_seconds = transition->restart_seconds;
    stats.migration_seconds = transition->migration_seconds;
    stats.transition_note = transition->description;

    const int steps =
        phase.steps > 0 ? phase.steps : options.steps_per_phase;
    for (int s = 0; s < steps; ++s) {
      Result<double> t = framework->StepSeconds(*situation);
      MALLEUS_RETURN_NOT_OK(t.status());
      stats.step_seconds.push_back(*t);
      if (options.run_log != nullptr) {
        core::StepReport report;
        if (const core::StepReport* last = framework->last_step_report()) {
          report = *last;
        } else {
          report.step_seconds = *t;
        }
        options.run_log->Record(straggler::SituationName(phase.id), report);
      }
    }

    const int warmup = std::max(
        0, std::min<int>(options.warmup_steps,
                         static_cast<int>(stats.step_seconds.size()) - 1));
    double sum = 0.0;
    int count = 0;
    for (size_t s = warmup; s < stats.step_seconds.size(); ++s) {
      sum += stats.step_seconds[s];
      ++count;
    }
    stats.mean_step_seconds = count > 0 ? sum / count : 0.0;
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace baselines
}  // namespace malleus
