#include "baselines/oobleck.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/migration.h"
#include "plan/uniform.h"

namespace malleus {
namespace baselines {

OobleckBaseline::OobleckBaseline(const topo::ClusterSpec& cluster,
                                 const model::CostModel& cost,
                                 OobleckOptions options)
    : cluster_(cluster),
      cost_(cost),
      options_(options),
      rng_(options.seed) {}

Result<plan::ParallelPlan> OobleckBaseline::TemplateFor(
    const std::set<topo::NodeId>& excluded) const {
  const int nodes = cluster_.num_nodes() - static_cast<int>(excluded.size());
  if (nodes < options_.min_template_nodes) {
    return Status::NotFound(
        StrFormat("no pipeline template for %d nodes", nodes));
  }
  std::vector<topo::GpuId> gpus;
  for (topo::NodeId n = 0; n < cluster_.num_nodes(); ++n) {
    if (excluded.count(n) != 0) continue;
    for (topo::GpuId g : cluster_.GpusOnNode(n)) gpus.push_back(g);
  }
  Result<plan::ParallelPlan> tuned = plan::TuneUniformPlan(
      cluster_, cost_, gpus, global_batch_, /*max_micro_batch=*/4,
      /*allow_uneven_data=*/true);
  if (!tuned.ok()) {
    return Status::NotFound(
        StrFormat("no feasible template for %d nodes", nodes));
  }
  return tuned;
}

Status OobleckBaseline::Initialize(int64_t global_batch) {
  global_batch_ = global_batch;
  excluded_nodes_.clear();
  last_restarted_ = false;
  Result<plan::ParallelPlan> t = TemplateFor({});
  if (!t.ok()) return t.status();
  plan_ = std::move(t).ValueOrDie();
  return Status::OK();
}

Result<TransitionReport> OobleckBaseline::OnSituationChange(
    const straggler::Situation& situation) {
  TransitionReport report;
  last_restarted_ = false;
  std::set<topo::NodeId> bad;
  for (topo::GpuId g : situation.Stragglers()) {
    bad.insert(cluster_.NodeOf(g));
  }
  if (bad == excluded_nodes_) {
    report.description = "node set unchanged";
    return report;
  }

  Result<plan::ParallelPlan> next = TemplateFor(bad);
  // Live migration only works when shedding nodes onto an existing
  // template; re-integrating recovered nodes (or leaving the template
  // range) requires a restart. "Shedding" means the excluded set grows
  // monotonically - any recovered node forces the restart path.
  const bool shrinking =
      bad.size() > excluded_nodes_.size() &&
      std::includes(bad.begin(), bad.end(), excluded_nodes_.begin(),
                    excluded_nodes_.end());
  if (next.ok() && shrinking) {
    Result<core::MigrationPlan> migration =
        core::ComputeMigration(plan_, *next, cost_);
    if (migration.ok()) {
      report.migration_seconds = core::MigrationSeconds(
          *migration, cluster_, options_.sim_options.net_model);
      report.description =
          StrFormat("migrated to the %d-node template",
                    cluster_.num_nodes() - static_cast<int>(bad.size()));
      plan_ = std::move(next).ValueOrDie();
      excluded_nodes_ = bad;
      return report;
    }
  }

  // Restart path.
  last_restarted_ = true;
  if (!next.ok()) {
    // No template excludes all stragglers; fall back to the full cluster
    // (stragglers included) after the restart.
    next = TemplateFor({});
    if (!next.ok()) return next.status();
    excluded_nodes_.clear();
  } else {
    excluded_nodes_ = bad;
  }
  plan_ = std::move(next).ValueOrDie();
  const int alive_nodes =
      cluster_.num_nodes() - static_cast<int>(excluded_nodes_.size());
  report.restart_seconds = sim::RestartSeconds(
      cost_.CheckpointBytes(), alive_nodes, options_.restart_cost);
  report.description = StrFormat("restarted on %d nodes", alive_nodes);
  return report;
}

Result<double> OobleckBaseline::StepSeconds(
    const straggler::Situation& situation) {
  Result<sim::StepResult> step = sim::SimulateStep(
      cluster_, cost_, plan_, situation, options_.sim_options, &rng_);
  if (!step.ok()) return step.status();
  return step->step_seconds * options_.template_overhead;
}

}  // namespace baselines
}  // namespace malleus
