// DeepSpeed-style baseline: ZeRO-3 fully-sharded data parallelism with
// Ulysses sequence parallelism and activation checkpointing (the
// configurations of the paper's Table 7).
//
// ZeRO-3 gathers the parameters of every layer in both forward and backward
// passes, which is globally synchronous: a single slow GPU stalls every
// all-gather, and co-located stragglers compound because the gather loses
// its compute overlap. We model the step time analytically:
//
//   T = T_base * ((1 - f) * X_eff + f)
//   X_eff = max over nodes of (max_x_node * (1 + beta * (k_node - 1)))
//
// where f is the communication fraction (large for small models, which is
// why DeepSpeed's 32B MFU is only ~30%) and beta captures the compounding
// of multiple stragglers on one node (calibrated to the paper's S5/S6).

#ifndef MALLEUS_BASELINES_DEEPSPEED_H_
#define MALLEUS_BASELINES_DEEPSPEED_H_

#include <set>

#include "baselines/baseline.h"
#include "sim/restart.h"

namespace malleus {
namespace baselines {

/// A DeepSpeed launch configuration (Table 7 vocabulary).
struct DeepSpeedConfig {
  int dp = 1;                ///< ZeRO-3 data-parallel degree.
  int sp = 1;                ///< Ulysses sequence-parallel degree.
  int micro_batch = 1;       ///< mbs.
  bool activation_ckpt = true;
  std::string ToString() const;
};

struct DeepSpeedOptions {
  bool with_restart = false;
  /// Asymptotic MFU of the analytic throughput curve
  /// mfu(P) = mfu_max * (1 - exp(-P / mfu_scale_params)).
  double mfu_max = 0.54;
  double mfu_scale_params = 42e9;
  /// Straggler compounding per extra co-located straggler (see header).
  double co_straggler_beta = 0.3;
  /// Communication fraction for small / large models.
  double comm_fraction_small = 0.35;
  double comm_fraction_large = 0.10;
  double small_model_params = 40e9;
  sim::RestartCostConfig restart_cost;
  uint64_t seed = 1;
};

class DeepSpeedBaseline : public TrainingFramework {
 public:
  DeepSpeedBaseline(const topo::ClusterSpec& cluster,
                    const model::CostModel& cost, DeepSpeedOptions options);

  std::string name() const override;
  Status Initialize(int64_t global_batch) override;
  Result<TransitionReport> OnSituationChange(
      const straggler::Situation& situation) override;
  Result<double> StepSeconds(const straggler::Situation& situation) override;

  const DeepSpeedConfig& current_config() const { return config_; }

  /// Tunes (sp, mbs, AC) for `num_gpus` devices; exposed for the Table 7
  /// configuration dump.
  Result<DeepSpeedConfig> TuneConfig(int num_gpus) const;

  /// The zero-straggler MFU of the analytic model (for Table 2's column).
  double HealthyMfu() const;

 private:
  double BaseStepSeconds(int num_gpus) const;
  double CommFraction() const;

  const topo::ClusterSpec& cluster_;
  const model::CostModel& cost_;
  DeepSpeedOptions options_;
  int64_t global_batch_ = 0;
  DeepSpeedConfig config_;
  std::set<topo::NodeId> excluded_nodes_;
  int active_gpus_ = 0;
  Rng rng_;
};

}  // namespace baselines
}  // namespace malleus

#endif  // MALLEUS_BASELINES_DEEPSPEED_H_
