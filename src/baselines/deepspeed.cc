#include "baselines/deepspeed.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace malleus {
namespace baselines {

std::string DeepSpeedConfig::ToString() const {
  return StrFormat("DP%dSP%d%s, mbs%d", dp, sp,
                   activation_ckpt ? "+AC" : "", micro_batch);
}

DeepSpeedBaseline::DeepSpeedBaseline(const topo::ClusterSpec& cluster,
                                     const model::CostModel& cost,
                                     DeepSpeedOptions options)
    : cluster_(cluster),
      cost_(cost),
      options_(options),
      rng_(options.seed) {}

std::string DeepSpeedBaseline::name() const {
  return options_.with_restart ? "DeepSpeed w/ Restart"
                               : "DeepSpeed w/o Restart";
}

double DeepSpeedBaseline::HealthyMfu() const {
  const double params = static_cast<double>(cost_.spec().TotalParams());
  return options_.mfu_max *
         (1.0 - std::exp(-params / options_.mfu_scale_params));
}

double DeepSpeedBaseline::CommFraction() const {
  const double params = static_cast<double>(cost_.spec().TotalParams());
  return params < options_.small_model_params
             ? options_.comm_fraction_small
             : options_.comm_fraction_large;
}

double DeepSpeedBaseline::BaseStepSeconds(int num_gpus) const {
  const double flops =
      global_batch_ * cost_.spec().TrainFlopsPerMicroBatch(1);
  return flops /
         (num_gpus * cost_.gpu().peak_tflops * 1e12 * HealthyMfu());
}

Result<DeepSpeedConfig> DeepSpeedBaseline::TuneConfig(int num_gpus) const {
  const model::ModelSpec& spec = cost_.spec();
  const double usable = static_cast<double>(cost_.gpu().UsableBytes());
  const double total_params = static_cast<double>(spec.TotalParams());
  const double layer_params = static_cast<double>(spec.ParamsPerLayer());

  bool found = false;
  DeepSpeedConfig best;
  double best_score = -1.0;
  for (int sp : {1, 2, 4, 8}) {
    if (num_gpus % sp != 0) continue;
    const int dp = num_gpus / sp;
    for (int mbs : {1, 2, 4, 6, 8}) {
      // Each ZeRO rank must have work: B >= dp sequences per mbs batch.
      if (static_cast<int64_t>(dp) * mbs > global_batch_) continue;
      for (bool ac : {true, false}) {
        // ZeRO-3 states are fully sharded; two layers' worth of gathered
        // bf16 parameters stay resident for prefetch overlap.
        const double states = 16.0 * total_params / num_gpus;
        const double gathered = 2.0 * 2.0 * layer_params;
        const double act_full =
            cost_.ActBytesFwd(mbs) / sp * spec.num_layers;
        const double act_ckpt =
            (2.0 * spec.seq_len * spec.hidden_size * mbs / sp) *
                spec.num_layers +
            cost_.ActBytesFwdBwd(mbs) / sp;
        const double mem = states + gathered + (ac ? act_ckpt : act_full);
        if (mem > usable) continue;
        const double score = (1.0 - 0.15 / mbs) *
                             (1.0 - 0.02 * (sp - 1)) * (ac ? 0.85 : 1.0);
        if (score > best_score) {
          best_score = score;
          best = DeepSpeedConfig{dp, sp, mbs, ac};
          found = true;
        }
      }
    }
  }
  if (!found) {
    return Status::Infeasible(
        StrFormat("no DeepSpeed config fits on %d GPUs", num_gpus));
  }
  return best;
}

Status DeepSpeedBaseline::Initialize(int64_t global_batch) {
  global_batch_ = global_batch;
  excluded_nodes_.clear();
  active_gpus_ = cluster_.num_gpus();
  Result<DeepSpeedConfig> tuned = TuneConfig(active_gpus_);
  if (!tuned.ok()) return tuned.status();
  config_ = std::move(tuned).ValueOrDie();
  return Status::OK();
}

Result<TransitionReport> DeepSpeedBaseline::OnSituationChange(
    const straggler::Situation& situation) {
  TransitionReport report;
  if (!options_.with_restart) {
    report.description = "static config kept";
    return report;
  }
  std::set<topo::NodeId> bad;
  for (topo::GpuId g : situation.Stragglers()) {
    bad.insert(cluster_.NodeOf(g));
  }
  if (bad == excluded_nodes_) {
    report.description = "node set unchanged";
    return report;
  }
  const int alive_nodes = cluster_.num_nodes() - static_cast<int>(bad.size());
  if (alive_nodes <= 0) {
    return Status::Unavailable("every node hosts a straggler");
  }
  const int gpus = alive_nodes * cluster_.gpus_per_node();
  Result<DeepSpeedConfig> tuned = TuneConfig(gpus);
  if (!tuned.ok()) return tuned.status();
  config_ = std::move(tuned).ValueOrDie();
  excluded_nodes_ = bad;
  active_gpus_ = gpus;
  report.restart_seconds = sim::RestartSeconds(
      cost_.CheckpointBytes(), alive_nodes, options_.restart_cost);
  report.description = StrFormat("restarted on %d nodes", alive_nodes);
  return report;
}

Result<double> DeepSpeedBaseline::StepSeconds(
    const straggler::Situation& situation) {
  if (active_gpus_ <= 0) {
    return Status::FailedPrecondition("not initialized");
  }
  // Effective slowdown: per node, co-located stragglers compound because
  // the per-layer all-gather loses its compute overlap.
  double x_eff = 1.0;
  for (topo::NodeId n = 0; n < cluster_.num_nodes(); ++n) {
    if (excluded_nodes_.count(n) != 0) continue;
    int k = 0;
    double mx = 1.0;
    for (topo::GpuId g : cluster_.GpusOnNode(n)) {
      if (situation.IsFailed(g)) {
        return Status::Unavailable(StrFormat("GPU %d unresponsive", g));
      }
      if (situation.IsStraggler(g)) {
        ++k;
        mx = std::max(mx, situation.rate(g));
      }
    }
    if (k > 0) {
      x_eff = std::max(
          x_eff, mx * (1.0 + options_.co_straggler_beta * (k - 1)));
    }
  }
  const double f = CommFraction();
  const double jitter = std::max(0.5, 1.0 + rng_.Normal(0.0, 0.01));
  return BaseStepSeconds(active_gpus_) * ((1.0 - f) * x_eff + f) * jitter;
}

}  // namespace baselines
}  // namespace malleus
