// Megatron-LM-style baseline: static uniform 3D parallelism (DP x TP x PP),
// tuned once for the healthy cluster, optionally with the manual
// remove-straggler-nodes-and-restart strategy of S7.1 ("w/ Restart").

#ifndef MALLEUS_BASELINES_MEGATRON_H_
#define MALLEUS_BASELINES_MEGATRON_H_

#include <set>

#include "baselines/baseline.h"
#include "plan/plan.h"
#include "sim/pipeline_sim.h"
#include "sim/restart.h"

namespace malleus {
namespace baselines {

struct MegatronOptions {
  /// Remove nodes hosting stragglers and restart with a re-tuned uniform
  /// configuration (the paper's "Megatron-LM w/ Restart").
  bool with_restart = false;
  /// Restart cost parameters (framework init + checkpoint I/O).
  sim::RestartCostConfig restart_cost;
  sim::SimOptions sim_options;
  uint64_t seed = 1;
};

class MegatronBaseline : public TrainingFramework {
 public:
  MegatronBaseline(const topo::ClusterSpec& cluster,
                   const model::CostModel& cost, MegatronOptions options);

  std::string name() const override;
  Status Initialize(int64_t global_batch) override;
  Result<TransitionReport> OnSituationChange(
      const straggler::Situation& situation) override;
  Result<double> StepSeconds(const straggler::Situation& situation) override;

  /// The active uniform plan (exposed for the Table 6 configuration dump).
  const plan::ParallelPlan& current_plan() const { return plan_; }

 private:
  /// Nodes that currently host at least one straggler.
  std::set<topo::NodeId> StragglerNodes(
      const straggler::Situation& situation) const;

  const topo::ClusterSpec& cluster_;
  const model::CostModel& cost_;
  MegatronOptions options_;
  int64_t global_batch_ = 0;
  plan::ParallelPlan plan_;
  std::set<topo::NodeId> excluded_nodes_;
  Rng rng_;
};

}  // namespace baselines
}  // namespace malleus

#endif  // MALLEUS_BASELINES_MEGATRON_H_
