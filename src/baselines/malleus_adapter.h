// Adapts the Malleus engine to the TrainingFramework interface so it can be
// driven through the same trace harness as the baselines. Unlike the
// baselines, Malleus ignores the oracle situation handed to
// OnSituationChange: it detects shifts itself through the profiler.

#ifndef MALLEUS_BASELINES_MALLEUS_ADAPTER_H_
#define MALLEUS_BASELINES_MALLEUS_ADAPTER_H_

#include "baselines/baseline.h"
#include "core/engine.h"

namespace malleus {
namespace baselines {

class MalleusFramework : public TrainingFramework {
 public:
  MalleusFramework(const topo::ClusterSpec& cluster,
                   const model::CostModel& cost,
                   core::EngineOptions options = core::EngineOptions())
      : engine_(cluster, cost, options) {}

  std::string name() const override { return "Malleus"; }

  Status Initialize(int64_t global_batch) override {
    return engine_.Initialize(global_batch);
  }

  /// Malleus is self-detecting: the oracle change notice is ignored.
  Result<TransitionReport> OnSituationChange(
      const straggler::Situation& situation) override {
    (void)situation;
    TransitionReport report;
    report.description = "self-detected via profiler";
    return report;
  }

  Result<double> StepSeconds(const straggler::Situation& situation) override {
    Result<core::StepReport> step = engine_.Step(situation);
    if (!step.ok()) return step.status();
    last_report_ = *step;
    return step->TotalSeconds();
  }

  core::MalleusEngine& engine() { return engine_; }
  const core::StepReport& last_report() const { return last_report_; }
  const core::StepReport* last_step_report() const override {
    return &last_report_;
  }

 private:
  core::MalleusEngine engine_;
  core::StepReport last_report_;
};

}  // namespace baselines
}  // namespace malleus

#endif  // MALLEUS_BASELINES_MALLEUS_ADAPTER_H_
