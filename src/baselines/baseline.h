// Common interface of the competitor frameworks evaluated against Malleus
// (S7.1): Megatron-LM, DeepSpeed (both with and without restarts), and the
// Oobleck-like fault-tolerant system. Each baseline is driven through the
// same simulated trace as Malleus and reports per-step times plus any
// transition overhead (restart or migration).

#ifndef MALLEUS_BASELINES_BASELINE_H_
#define MALLEUS_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/engine.h"
#include "model/cost_model.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace baselines {

/// What happened at a situation transition.
struct TransitionReport {
  /// Seconds lost to restarting (checkpoint save + init + load).
  double restart_seconds = 0.0;
  /// Seconds lost to live migration (Oobleck / Malleus style).
  double migration_seconds = 0.0;
  std::string description;
};

/// \brief A training framework under evaluation.
///
/// Protocol: Initialize() once, then for each phase of the trace call
/// OnSituationChange() followed by StepSeconds() for each iteration.
class TrainingFramework {
 public:
  virtual ~TrainingFramework() = default;

  virtual std::string name() const = 0;

  /// Prepares the initial configuration (no stragglers assumed).
  virtual Status Initialize(int64_t global_batch) = 0;

  /// Reacts to a change in the straggler situation. Frameworks that cannot
  /// react return a zero-overhead report and simply keep running.
  virtual Result<TransitionReport> OnSituationChange(
      const straggler::Situation& situation) = 0;

  /// Simulated wall time of one training step under `situation`.
  virtual Result<double> StepSeconds(
      const straggler::Situation& situation) = 0;

  /// The detailed report of the most recent StepSeconds() call, for
  /// frameworks that produce one (Malleus does); nullptr otherwise. Used by
  /// the trace runner to feed a core::RunLog.
  virtual const core::StepReport* last_step_report() const {
    return nullptr;
  }
};

}  // namespace baselines
}  // namespace malleus

#endif  // MALLEUS_BASELINES_BASELINE_H_
