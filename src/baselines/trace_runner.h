// Drives a TrainingFramework through a straggler-situation trace (the
// Figure 7 protocol) and collects per-phase statistics.

#ifndef MALLEUS_BASELINES_TRACE_RUNNER_H_
#define MALLEUS_BASELINES_TRACE_RUNNER_H_

#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {

namespace core {
class RunLog;
}  // namespace core

namespace baselines {

/// Statistics of one trace phase for one framework.
struct PhaseStats {
  straggler::SituationId situation = straggler::SituationId::kNormal;
  /// Mean per-step time, excluding the first `warmup_steps` steps after a
  /// transition (Malleus needs a step or two to detect + migrate).
  double mean_step_seconds = 0.0;
  /// Per-step times of every step of the phase.
  std::vector<double> step_seconds;
  /// Overheads paid at the transition into this phase.
  double restart_seconds = 0.0;
  double migration_seconds = 0.0;
  std::string transition_note;
};

struct TraceRunOptions {
  int steps_per_phase = 10;
  /// Steps excluded from the phase mean (adaptation transient).
  int warmup_steps = 3;
  /// When set, every step is also recorded here under the phase's
  /// situation name. Frameworks that expose a detailed StepReport (see
  /// TrainingFramework::last_step_report) contribute it verbatim; others
  /// contribute a report carrying just the step time.
  core::RunLog* run_log = nullptr;
};

/// Runs `framework` through `trace` and returns per-phase statistics.
Result<std::vector<PhaseStats>> RunTrace(
    TrainingFramework* framework, const topo::ClusterSpec& cluster,
    const std::vector<straggler::TracePhase>& trace, int64_t global_batch,
    const TraceRunOptions& options = TraceRunOptions());

}  // namespace baselines
}  // namespace malleus

#endif  // MALLEUS_BASELINES_TRACE_RUNNER_H_
