// Typed span/instant event recording with a Chrome trace-event JSON
// exporter (loadable in Perfetto / chrome://tracing). This is the timeline
// half of the observability layer: the step simulator records every 1F1B
// stage task, P2P activation transfer and grad-sync phase, and the engine
// records re-planning / migration / recovery transitions, so pipeline
// bubbles and straggler stalls become visually inspectable per step.
//
// Tracks: Chrome traces group events by (pid, tid) pairs; Track() maps a
// (process name, thread name) pair - e.g. ("pipeline 0", "stage 2") - onto
// stable ids and the exporter emits the matching process_name/thread_name
// metadata. Timestamps are *simulated* seconds (converted to microseconds
// on export), never wall clock, so exports are deterministic for a fixed
// seed.

#ifndef MALLEUS_OBS_TRACE_H_
#define MALLEUS_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace malleus {
namespace obs {

/// One key plus a pre-rendered JSON literal value.
struct TraceArg {
  std::string key;
  std::string json_value;

  static TraceArg Str(std::string key, const std::string& value);
  static TraceArg Num(std::string key, double value);
  static TraceArg Int(std::string key, int64_t value);
};

/// A (pid, tid) pair identifying one horizontal track of the timeline.
struct TrackId {
  int pid = 0;
  int tid = 0;
};

/// One recorded event. `duration_us` is meaningful for spans only.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';  ///< Chrome phase: 'X' complete span, 'i' instant.
  TrackId track;
  double start_us = 0.0;
  double duration_us = 0.0;
  std::vector<TraceArg> args;
};

/// \brief Collects spans/instants and exports Chrome trace-event JSON.
///
/// Thread-safe; events are exported in recording order (stable for a fixed
/// seed because the simulator's scheduling loops are deterministic).
class TraceRecorder {
 public:
  /// Maps a (process, thread) name pair onto a stable track id, creating
  /// the track on first use. Ids are assigned in first-use order.
  TrackId Track(const std::string& process, const std::string& thread);

  /// Records a complete span of `duration_seconds` starting at
  /// `start_seconds` (simulated time).
  void AddSpan(std::string name, std::string category, TrackId track,
               double start_seconds, double duration_seconds,
               std::vector<TraceArg> args = {});

  /// Records an instant event at `at_seconds` (simulated time).
  void AddInstant(std::string name, std::string category, TrackId track,
                  double at_seconds, std::vector<TraceArg> args = {});

  /// The full export: {"traceEvents":[...],"displayTimeUnit":"ms"} with
  /// process_name/thread_name metadata first, then events in order.
  std::string ToChromeTraceJson() const;

  size_t num_events() const;
  /// Number of recorded events whose category is `category`.
  size_t CountCategory(const std::string& category) const;
  /// Copy of the recorded events, for inspection in tests.
  std::vector<TraceEvent> Events() const;

  /// Drops all events and tracks.
  void Clear();

 private:
  struct Process {
    std::string name;
    std::vector<std::string> threads;
  };

  mutable std::mutex mu_;
  std::vector<Process> processes_;
  std::vector<TraceEvent> events_;
};

}  // namespace obs
}  // namespace malleus

#endif  // MALLEUS_OBS_TRACE_H_
