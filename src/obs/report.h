// Ranked attribution reports: the output side of the what-if engine.
//
// A report attributes a baseline quantity (one simulated training step's
// wall time) to causes, one row per counterfactual: "removing the level-3
// straggler on GPU 0 saves 3.1 s/step (41% of the step)". The obs layer
// owns the rendering only — rows are plain strings and doubles — so the
// renderers stay reusable for any future attribution surface (per-link
// contention reports, policy comparisons) without dragging planner types
// into obs.
//
// Determinism contract: the renderers are pure functions of the report
// struct; callers that order rows deterministically and exclude wall-clock
// quantities get byte-identical JSON and CSV across runs. Floats render
// through JsonNumber (JSON, `null` for non-finite) and with fixed
// significant digits in the CSV.

#ifndef MALLEUS_OBS_REPORT_H_
#define MALLEUS_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace malleus {
namespace obs {

/// One ranked cause.
struct AttributionRow {
  std::string cause;  ///< Human-readable label, e.g. "remove_straggler gpu=0".
  std::string kind;   ///< Machine-stable category, e.g. "remove_straggler".
  /// The primary ranking value: seconds of baseline step time attributed
  /// to this cause (what applying the counterfactual saves per step).
  double attributed_seconds = 0.0;
  /// attributed_seconds as a fraction of the baseline step [0, 1]; may be
  /// negative when the counterfactual makes the step slower.
  double attributed_fraction = 0.0;
  /// Step seconds under the counterfactual with the recorded plan replayed
  /// unchanged, and with the planner re-run (NaN renders as null when a
  /// mode does not apply to the counterfactual).
  double replay_step_seconds = 0.0;
  double replan_step_seconds = 0.0;
  /// Span-diff decomposition vs the baseline timeline: positive values are
  /// seconds of aggregate span time the counterfactual removed from each
  /// category ("compute" 1F1B stage tasks, "comm" P2P transfers, "sync"
  /// grad-sync phases).
  double compute_delta_seconds = 0.0;
  double comm_delta_seconds = 0.0;
  double sync_delta_seconds = 0.0;
  /// Signature of the re-planned plan; empty when re-planning was off or
  /// failed. `plan_changed` says whether it differs from the baseline plan.
  std::string plan_signature;
  bool plan_changed = false;
  /// Empty for evaluated rows; the failure text for rows that could not be
  /// evaluated (these rank last and attribute 0 seconds).
  std::string error;
};

/// \brief A ranked attribution report plus its provenance.
struct AttributionReport {
  std::string title;       ///< e.g. "what-if attribution".
  std::string scenario;    ///< Scenario source (file name or description).
  std::string phase;       ///< Situation label the analysis ran under.
  std::string net_model;   ///< "analytic" / "flow".
  double baseline_step_seconds = 0.0;
  /// Baseline aggregate span seconds per category (see AttributionRow).
  double baseline_compute_seconds = 0.0;
  double baseline_comm_seconds = 0.0;
  double baseline_sync_seconds = 0.0;
  /// Solver-cache traffic of the sweep that produced the report. Rendered
  /// in the text output and consumed by bench_whatif only — never in the
  /// JSON/CSV, whose bytes must not depend on sweep interleaving (racing
  /// workers can double-miss a key, so these counts are nondeterministic).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// Rows, already ranked (most attributed seconds first).
  std::vector<AttributionRow> rows;
};

/// The full report as one JSON object:
/// {"title":...,"baseline":{...},"causes":[{...},...]}.
/// Keys appear in fixed order; floats use `digits` significant digits.
std::string RenderAttributionJson(const AttributionReport& report,
                                  int digits = 9);

/// RFC 4180 CSV, one row per cause, with a fixed header:
/// rank,cause,kind,attributed_seconds,attributed_pct,replay_step_seconds,
/// replan_step_seconds,compute_delta_seconds,comm_delta_seconds,
/// sync_delta_seconds,plan_changed,plan_signature,error
std::string RenderAttributionCsv(const AttributionReport& report,
                                 int digits = 9);

/// Human-readable ranked table of the top `top_n` rows (all when <= 0).
std::string RenderAttributionText(const AttributionReport& report,
                                  int top_n = 0);

}  // namespace obs
}  // namespace malleus

#endif  // MALLEUS_OBS_REPORT_H_
