#include "obs/bundle.h"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/string_util.h"

namespace malleus {
namespace obs {

namespace {

std::string HashHex(uint64_t h) { return StrFormat("%016" PRIx64, h); }

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

Status WriteFileBytes(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Unavailable("cannot open " + path + " for write");
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return Status::Unavailable("short write to " + path);
  return Status::OK();
}

bool ValidMemberName(const std::string& name) {
  if (name.empty() || name == kBundleManifestName) return false;
  return name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos;
}

// One "file = NAME size=N hash=H" manifest line, parsed back by the
// loader. NAME carries no spaces in practice (canonical members), but the
// parser still handles them by anchoring on the trailing two fields.
std::string ManifestLine(const BundleFile& f) {
  return StrFormat("file = %s size=%zu hash=%s\n", f.name.c_str(),
                   f.content.size(), HashHex(Fnv1a64(f.content)).c_str());
}

}  // namespace

const std::string* RunBundle::Find(const std::string& name) const {
  for (const BundleFile& f : files) {
    if (f.name == name) return &f.content;
  }
  return nullptr;
}

uint64_t BundleContentHash(const RunBundle& bundle) {
  std::vector<const BundleFile*> sorted;
  sorted.reserve(bundle.files.size());
  for (const BundleFile& f : bundle.files) sorted.push_back(&f);
  std::sort(sorted.begin(), sorted.end(),
            [](const BundleFile* a, const BundleFile* b) {
              return a->name < b->name;
            });
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis.
  for (const BundleFile* f : sorted) {
    const std::string line = f->name + ":" + HashHex(Fnv1a64(f->content)) +
                             "\n";
    h = Fnv1a64(line, h);
  }
  return h;
}

Status WriteRunBundle(const std::string& dir, const RunBundle& bundle) {
  for (const BundleFile& f : bundle.files) {
    if (!ValidMemberName(f.name)) {
      return Status::InvalidArgument("invalid bundle member name: '" +
                                     f.name + "'");
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable("cannot create bundle directory " + dir +
                               ": " + ec.message());
  }

  RunBundle sorted = bundle;
  std::sort(sorted.files.begin(), sorted.files.end(),
            [](const BundleFile& a, const BundleFile& b) {
              return a.name < b.name;
            });

  std::string manifest;
  manifest += "# malleus recorded-run bundle\n";
  manifest += StrFormat("version = %d\n", sorted.version);
  manifest += StrFormat("producer = %s\n", sorted.producer.c_str());
  for (const BundleFile& f : sorted.files) manifest += ManifestLine(f);
  manifest += StrFormat("content_hash = %s\n",
                        HashHex(BundleContentHash(sorted)).c_str());

  for (const BundleFile& f : sorted.files) {
    Status s = WriteFileBytes(dir + "/" + f.name, f.content);
    if (!s.ok()) return s;
  }
  // Manifest last: a readable manifest implies complete members.
  return WriteFileBytes(dir + "/" + kBundleManifestName, manifest);
}

Result<RunBundle> LoadRunBundle(const std::string& dir) {
  std::string manifest;
  if (!ReadFileBytes(dir + "/" + kBundleManifestName, &manifest)) {
    return Status::NotFound("no bundle manifest at " + dir + "/" +
                            kBundleManifestName);
  }

  RunBundle bundle;
  bundle.version = -1;
  struct Listed {
    std::string name;
    size_t size = 0;
    std::string hash;
  };
  std::vector<Listed> listed;
  std::string declared_content_hash;

  std::istringstream lines(manifest);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find(" = ");
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("bundle manifest line %d is not 'key = value': %s",
                    line_no, line.c_str()));
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 3);
    if (key == "version") {
      bundle.version = std::atoi(value.c_str());
    } else if (key == "producer") {
      bundle.producer = value;
    } else if (key == "content_hash") {
      declared_content_hash = value;
    } else if (key == "file") {
      // "NAME size=N hash=H" — anchor on the trailing fields so a name
      // containing spaces still parses.
      const size_t hash_pos = value.rfind(" hash=");
      const size_t size_pos = value.rfind(" size=", hash_pos);
      if (hash_pos == std::string::npos || size_pos == std::string::npos ||
          size_pos >= hash_pos) {
        return Status::InvalidArgument(
            StrFormat("bundle manifest line %d: malformed file entry: %s",
                      line_no, value.c_str()));
      }
      Listed f;
      f.name = value.substr(0, size_pos);
      f.size = static_cast<size_t>(
          std::strtoull(value.c_str() + size_pos + 6, nullptr, 10));
      f.hash = value.substr(hash_pos + 6);
      if (!ValidMemberName(f.name) || f.hash.size() != 16) {
        return Status::InvalidArgument(
            StrFormat("bundle manifest line %d: invalid member '%s'",
                      line_no, f.name.c_str()));
      }
      listed.push_back(std::move(f));
    } else {
      return Status::InvalidArgument(
          StrFormat("bundle manifest line %d: unknown key '%s'", line_no,
                    key.c_str()));
    }
  }

  if (bundle.version != kBundleVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported bundle version %d (this build reads %d)",
                  bundle.version, kBundleVersion));
  }
  if (listed.empty()) {
    return Status::InvalidArgument("bundle manifest lists no files");
  }
  if (declared_content_hash.empty()) {
    return Status::InvalidArgument("bundle manifest has no content_hash");
  }

  for (const Listed& f : listed) {
    BundleFile member;
    member.name = f.name;
    if (!ReadFileBytes(dir + "/" + f.name, &member.content)) {
      return Status::NotFound("bundle member missing: " + f.name);
    }
    if (member.content.size() != f.size) {
      return Status::InvalidArgument(StrFormat(
          "bundle member %s truncated or grown: manifest says %zu bytes, "
          "file has %zu",
          f.name.c_str(), f.size, member.content.size()));
    }
    const std::string actual = HashHex(Fnv1a64(member.content));
    if (actual != f.hash) {
      return Status::InvalidArgument(StrFormat(
          "bundle member %s corrupt: manifest hash %s, content hash %s",
          f.name.c_str(), f.hash.c_str(), actual.c_str()));
    }
    bundle.files.push_back(std::move(member));
  }

  const std::string actual_content =
      HashHex(BundleContentHash(bundle));
  if (actual_content != declared_content_hash) {
    return Status::InvalidArgument(StrFormat(
        "bundle content hash mismatch: manifest %s, members %s",
        declared_content_hash.c_str(), actual_content.c_str()));
  }
  return bundle;
}

}  // namespace obs
}  // namespace malleus
