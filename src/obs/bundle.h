// Recorded-run bundles: a durable, self-describing directory capturing one
// engine run — the scenario that produced it, the chosen plan's snapshot,
// the Chrome trace, the metrics snapshot and the run-log events — so
// offline query tools (tools/malleus_whatif) can replay the run long after
// the process that recorded it exited.
//
// Layout: a bundle is a directory of named byte files plus a MANIFEST in
// the repo's key=value idiom. The manifest pins the format version, the
// producing tool, every member file's size and 64-bit FNV-1a hash, and an
// overall content hash over the (sorted) member digests, so truncation,
// corruption and partial copies are detected at load time with a Status —
// never a crash. The obs layer treats member contents as opaque bytes;
// interpreting them (parsing the scenario, diffing the trace) is the
// caller's business, which keeps this module dependent on nothing but
// malleus_common.
//
//   MANIFEST
//   run.scenario     serialized scenario::ScenarioSpec
//   snapshot.txt     testkit::RenderGoldenSnapshot of the scenario
//   trace.json       Chrome trace-event JSON (TraceRecorder export)
//   metrics.json     MetricsRegistry::ToJson at the end of the run
//   events.jsonl     core::RunLog::ToJsonl
//   run.csv          core::RunLog::ToCsv
//
// The canonical member names above are what scenario_cli --record-out
// writes; LoadRunBundle accepts any member set the manifest lists.

#ifndef MALLEUS_OBS_BUNDLE_H_
#define MALLEUS_OBS_BUNDLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace malleus {
namespace obs {

/// Canonical member names written by scenario_cli --record-out.
inline constexpr char kBundleManifestName[] = "MANIFEST";
inline constexpr char kBundleScenarioName[] = "run.scenario";
inline constexpr char kBundleSnapshotName[] = "snapshot.txt";
inline constexpr char kBundleTraceName[] = "trace.json";
inline constexpr char kBundleMetricsName[] = "metrics.json";
inline constexpr char kBundleEventsName[] = "events.jsonl";
inline constexpr char kBundleCsvName[] = "run.csv";

/// The manifest format version this build reads and writes.
inline constexpr int kBundleVersion = 1;

/// One member file of a bundle.
struct BundleFile {
  std::string name;     ///< Member file name (no directory separators).
  std::string content;  ///< Raw bytes.
};

/// \brief An in-memory recorded-run bundle.
struct RunBundle {
  int version = kBundleVersion;
  /// The tool that recorded the run (e.g. "scenario_cli"), free-form.
  std::string producer;
  /// Member files, kept sorted by name (WriteRunBundle sorts; LoadRunBundle
  /// preserves manifest order, which is sorted for bundles we wrote).
  std::vector<BundleFile> files;

  /// The content of member `name`, or nullptr when absent.
  const std::string* Find(const std::string& name) const;
};

/// FNV-1a digest over the bundle's members: each member contributes
/// "name:hash\n" (hash in fixed 16-hex-digit form) in sorted-name order.
/// Identical member sets hash identically regardless of insertion order.
uint64_t BundleContentHash(const RunBundle& bundle);

/// Writes `bundle` as a directory at `dir` (created if needed; existing
/// member files are overwritten). Member names must be non-empty and free
/// of path separators. The manifest is written last, so a bundle with a
/// readable manifest always has all its members on disk.
Status WriteRunBundle(const std::string& dir, const RunBundle& bundle);

/// Loads and verifies the bundle at `dir`: the manifest must parse, every
/// listed member must exist with the recorded size and FNV-1a hash, and
/// the overall content hash must match. Any mismatch (truncated file,
/// edited bytes, missing member, unsupported version) fails with a Status
/// naming the offending member.
Result<RunBundle> LoadRunBundle(const std::string& dir);

}  // namespace obs
}  // namespace malleus

#endif  // MALLEUS_OBS_BUNDLE_H_
