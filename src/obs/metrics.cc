#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace malleus {
namespace obs {

void Counter::Increment(double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  value_ += delta;
}

double Counter::Value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return value_;
}

void Counter::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  value_ = 0.0;
}

void Gauge::Set(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  value_ = value;
}

void Gauge::Add(double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  value_ += delta;
}

double Gauge::Value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return value_;
}

void Gauge::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  value_ = 0.0;
}

Histogram::Histogram(HistogramOptions options)
    : options_(options), log_growth_(std::log(options.growth)) {
  MALLEUS_CHECK_GT(options_.min_bound, 0.0);
  MALLEUS_CHECK_GT(options_.growth, 1.0);
  MALLEUS_CHECK_GT(options_.num_buckets, 0);
  buckets_.assign(options_.num_buckets + 1, 0);
}

int Histogram::BucketIndex(double value) const {
  if (!(value > options_.min_bound)) return 0;  // Also catches NaN.
  // Bucket i holds (min_bound * growth^(i-1), min_bound * growth^i].
  const int idx = static_cast<int>(
      std::ceil(std::log(value / options_.min_bound) / log_growth_ - 1e-12));
  return std::min(std::max(idx, 0), options_.num_buckets);
}

double Histogram::BucketMid(int index) const {
  if (index == 0) {
    return options_.min_bound / std::sqrt(options_.growth);
  }
  // Geometric midpoint of (bound[index-1], bound[index]].
  return options_.min_bound *
         std::pow(options_.growth, index - 0.5);
}

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the requested quantile, 1-based (nearest-rank definition).
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * count_)));
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Clamp the estimate into the observed range so tiny samples do not
      // report values outside [min, max].
      const double mid = BucketMid(static_cast<int>(i));
      return std::min(std::max(mid, min_), max_);
    }
  }
  return max_;
}

int64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.count = count_;
    snap.sum = sum_;
    snap.min = count_ > 0 ? min_ : 0.0;
    snap.max = count_ > 0 ? max_ : 0.0;
  }
  snap.p50 = Quantile(0.50);
  snap.p95 = Quantile(0.95);
  snap.p99 = Quantile(0.99);
  return snap;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

namespace {

// Innermost MetricsScope override for this thread (null = Global()).
thread_local MetricsRegistry* current_registry = nullptr;

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry& MetricsRegistry::Current() {
  return current_registry != nullptr ? *current_registry : Global();
}

MetricsScope::MetricsScope(MetricsRegistry* registry)
    : previous_(current_registry) {
  MALLEUS_CHECK(registry != nullptr) << "MetricsScope requires a registry";
  current_registry = registry;
}

MetricsScope::~MetricsScope() { current_registry = previous_; }

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  MALLEUS_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered as another kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  MALLEUS_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered as another kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  MALLEUS_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0)
      << "metric '" << name << "' already registered as another kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(options);
  return slot.get();
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += StrFormat("counter   %-44s %.6g\n", name.c_str(),
                     counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out += StrFormat("gauge     %-44s %.6g\n", name.c_str(), gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot s = histogram->Snapshot();
    out += StrFormat(
        "histogram %-44s count=%lld sum=%.6g min=%.6g p50=%.6g p95=%.6g "
        "p99=%.6g max=%.6g\n",
        name.c_str(), static_cast<long long>(s.count), s.sum, s.min, s.p50,
        s.p95, s.p99, s.max);
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%s", JsonEscape(name).c_str(),
                     JsonNumber(counter->Value()).c_str());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%s", JsonEscape(name).c_str(),
                     JsonNumber(gauge->Value()).c_str());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    const HistogramSnapshot s = histogram->Snapshot();
    out += StrFormat(
        "\"%s\":{\"count\":%lld,\"sum\":%s,\"min\":%s,\"max\":%s,"
        "\"p50\":%s,\"p95\":%s,\"p99\":%s}",
        JsonEscape(name).c_str(), static_cast<long long>(s.count),
        JsonNumber(s.sum).c_str(), JsonNumber(s.min).c_str(),
        JsonNumber(s.max).c_str(), JsonNumber(s.p50).c_str(),
        JsonNumber(s.p95).c_str(), JsonNumber(s.p99).c_str());
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second->Reset();
  for (auto& kv : gauges_) kv.second->Reset();
  for (auto& kv : histograms_) kv.second->Reset();
}

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ScopedTimer::ScopedTimer(Histogram* histogram)
    : histogram_(histogram), start_ns_(NowNanos()) {}

double ScopedTimer::ElapsedSeconds() const {
  return static_cast<double>(NowNanos() - start_ns_) * 1e-9;
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ != nullptr) histogram_->Observe(ElapsedSeconds());
}

}  // namespace obs
}  // namespace malleus
