// Process-global metrics: counters, gauges and log-scale histograms with a
// registry that renders text and JSON snapshots. This is the aggregate half
// of the observability layer (the event half is trace.h); the planner,
// profiler, engine and solvers record into the global registry so examples
// and benches can dump where the time and the re-planning activity went.
//
// All operations are thread-safe: each metric guards its state with its own
// mutex, and the registry guards the name->metric maps. Metric objects are
// owned by the registry and live until process exit, so cached pointers from
// GetCounter()/GetGauge()/GetHistogram() stay valid forever.

#ifndef MALLEUS_OBS_METRICS_H_
#define MALLEUS_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace malleus {
namespace obs {

/// Monotonically increasing value (double so second-valued accumulators
/// like "overlap seconds saved" fit alongside plain event counts).
class Counter {
 public:
  void Increment(double delta = 1.0);
  double Value() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  double value_ = 0.0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value);
  void Add(double delta);
  double Value() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  double value_ = 0.0;
};

/// Options of the fixed log-scale bucket layout.
struct HistogramOptions {
  /// Upper bound of the first bucket; observations at or below it land
  /// there. The default suits second-valued timings down to a microsecond.
  double min_bound = 1e-6;
  /// Ratio between consecutive bucket bounds.
  double growth = 1.25;
  /// Number of finite buckets; one overflow bucket is added on top. The
  /// default covers [1e-6, 1e-6 * 1.25^128) ~ [1us, 2.7e6 s).
  int num_buckets = 128;
};

/// Point-in-time view of a histogram (what exporters consume).
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// \brief Fixed log-scale bucket histogram with quantile estimation.
///
/// Quantiles are estimated as the geometric midpoint of the bucket the
/// requested rank falls into, so their relative error is bounded by
/// sqrt(growth) (~12% at the default 1.25 growth).
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = HistogramOptions());

  void Observe(double value);
  /// Estimated value at quantile `q` in [0, 1]; 0 when empty.
  double Quantile(double q) const;
  int64_t Count() const;
  double Sum() const;
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  // Index of the bucket `value` falls into (callers hold mu_).
  int BucketIndex(double value) const;
  // Geometric midpoint of bucket `index` (callers hold mu_).
  double BucketMid(int index) const;

  const HistogramOptions options_;
  const double log_growth_;
  mutable std::mutex mu_;
  std::vector<int64_t> buckets_;  // num_buckets + 1 (overflow).
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Name -> metric registry with deterministic (sorted) exports.
class MetricsRegistry {
 public:
  /// The process-wide registry. Recording code should prefer Current(),
  /// which resolves to this unless a MetricsScope overrides it.
  static MetricsRegistry& Global();

  /// The registry the calling thread records into: the innermost
  /// MetricsScope installed on this thread, or Global(). This is what
  /// makes the planner/solver/engine stack re-entrant for serving — each
  /// concurrent request runs under its own scope, so two requests'
  /// series never interleave in one registry.
  static MetricsRegistry& Current();

  /// Returns the named metric, creating it on first use. Requesting the
  /// same name as two different kinds is a programming error (checked).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          HistogramOptions options = HistogramOptions());

  /// Human-readable dump, one metric per line, sorted by name.
  std::string ToText() const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,p50,p95,p99}}} with keys sorted by name.
  std::string ToJson() const;

  /// Zeroes every registered metric (the metrics stay registered).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief Redirects this thread's metric recording to another registry.
///
/// RAII and nestable: construction pushes `registry` as the thread's
/// MetricsRegistry::Current(), destruction restores the previous one.
/// Thread-local by design — a scope installed on one thread does not
/// affect others, so code that fans work out to a pool must install a
/// scope inside each task (core::Planner::Plan does this for its
/// candidate sweep). Used by malleus::serve to give every in-flight
/// request its own registry, keyed by request id at the serving layer.
class MetricsScope {
 public:
  /// `registry` must be non-null and outlive the scope.
  explicit MetricsScope(MetricsRegistry* registry);
  ~MetricsScope();

  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Observes the wall-clock lifetime of a scope into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed since construction.
  double ElapsedSeconds() const;

 private:
  Histogram* histogram_;
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace malleus

#endif  // MALLEUS_OBS_METRICS_H_
