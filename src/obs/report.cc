#include "obs/report.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "common/table.h"

namespace malleus {
namespace obs {

namespace {

std::string JsonStr(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

}  // namespace

std::string RenderAttributionJson(const AttributionReport& report,
                                  int digits) {
  std::string out = "{";
  out += "\"title\":" + JsonStr(report.title);
  out += ",\"scenario\":" + JsonStr(report.scenario);
  out += ",\"phase\":" + JsonStr(report.phase);
  out += ",\"net_model\":" + JsonStr(report.net_model);
  out += ",\"baseline\":{";
  out += "\"step_seconds\":" +
         JsonNumber(report.baseline_step_seconds, digits);
  out += ",\"compute_span_seconds\":" +
         JsonNumber(report.baseline_compute_seconds, digits);
  out += ",\"comm_span_seconds\":" +
         JsonNumber(report.baseline_comm_seconds, digits);
  out += ",\"sync_span_seconds\":" +
         JsonNumber(report.baseline_sync_seconds, digits);
  out += "}";
  // Cache hit/miss counts are deliberately NOT rendered: under a parallel
  // sweep two workers can race on the same key and both miss, so the
  // counts vary run to run — like wall-clock, they are provenance, not
  // result. They stay in the struct for the text render and the bench.
  out += ",\"causes\":[";
  for (size_t i = 0; i < report.rows.size(); ++i) {
    const AttributionRow& r = report.rows[i];
    if (i > 0) out += ",";
    out += "{";
    out += StrFormat("\"rank\":%zu", i + 1);
    out += ",\"cause\":" + JsonStr(r.cause);
    out += ",\"kind\":" + JsonStr(r.kind);
    out += ",\"attributed_seconds\":" +
           JsonNumber(r.attributed_seconds, digits);
    out += ",\"attributed_fraction\":" +
           JsonNumber(r.attributed_fraction, digits);
    out += ",\"replay_step_seconds\":" +
           JsonNumber(r.replay_step_seconds, digits);
    out += ",\"replan_step_seconds\":" +
           JsonNumber(r.replan_step_seconds, digits);
    out += ",\"compute_delta_seconds\":" +
           JsonNumber(r.compute_delta_seconds, digits);
    out += ",\"comm_delta_seconds\":" +
           JsonNumber(r.comm_delta_seconds, digits);
    out += ",\"sync_delta_seconds\":" +
           JsonNumber(r.sync_delta_seconds, digits);
    out += ",\"plan_signature\":" + JsonStr(r.plan_signature);
    out += std::string(",\"plan_changed\":") +
           (r.plan_changed ? "true" : "false");
    out += ",\"error\":" + JsonStr(r.error);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string RenderAttributionCsv(const AttributionReport& report,
                                 int digits) {
  std::string out =
      "rank,cause,kind,attributed_seconds,attributed_pct,"
      "replay_step_seconds,replan_step_seconds,compute_delta_seconds,"
      "comm_delta_seconds,sync_delta_seconds,plan_changed,plan_signature,"
      "error\r\n";
  // CSV numbers reuse the JSON rendering (minus its `null` spelling):
  // fixed significant digits, empty cell for non-finite.
  auto num = [digits](double v) {
    const std::string s = JsonNumber(v, digits);
    return s == "null" ? std::string() : s;
  };
  for (size_t i = 0; i < report.rows.size(); ++i) {
    const AttributionRow& r = report.rows[i];
    std::vector<std::string> cells = {
        StrFormat("%zu", i + 1),
        CsvEscape(r.cause),
        CsvEscape(r.kind),
        num(r.attributed_seconds),
        num(r.attributed_fraction * 100.0),
        num(r.replay_step_seconds),
        num(r.replan_step_seconds),
        num(r.compute_delta_seconds),
        num(r.comm_delta_seconds),
        num(r.sync_delta_seconds),
        r.plan_changed ? "true" : "false",
        CsvEscape(r.plan_signature),
        CsvEscape(r.error),
    };
    out += Join(cells, ",") + "\r\n";
  }
  return out;
}

std::string RenderAttributionText(const AttributionReport& report,
                                  int top_n) {
  TablePrinter table(StrFormat(
      "%s — %s / %s (%s), baseline step %.4f s",
      report.title.c_str(), report.scenario.c_str(), report.phase.c_str(),
      report.net_model.c_str(), report.baseline_step_seconds));
  table.SetHeader({"#", "cause", "saved s/step", "% of step", "replay s",
                   "replan s", "plan"});
  const size_t n =
      top_n > 0 ? std::min<size_t>(report.rows.size(),
                                   static_cast<size_t>(top_n))
                : report.rows.size();
  for (size_t i = 0; i < n; ++i) {
    const AttributionRow& r = report.rows[i];
    if (!r.error.empty()) {
      table.AddRow({StrFormat("%zu", i + 1), r.cause, "-", "-", "-", "-",
                    "error: " + r.error});
      continue;
    }
    auto cell = [](double v) {
      return std::isfinite(v) ? StrFormat("%.4f", v) : std::string("-");
    };
    table.AddRow({StrFormat("%zu", i + 1), r.cause,
                  cell(r.attributed_seconds),
                  StrFormat("%.1f%%", r.attributed_fraction * 100.0),
                  cell(r.replay_step_seconds), cell(r.replan_step_seconds),
                  r.plan_changed ? "changed" : "kept"});
  }
  if (n < report.rows.size()) {
    table.AddRow({"...", StrFormat("(%zu more)", report.rows.size() - n),
                  "", "", "", "", ""});
  }
  std::string out = table.ToString();
  const int64_t lookups = report.cache_hits + report.cache_misses;
  if (lookups > 0) {
    out += StrFormat("solve cache: %lld hits / %lld lookups (%.1f%%)\n",
                     static_cast<long long>(report.cache_hits),
                     static_cast<long long>(lookups),
                     100.0 * static_cast<double>(report.cache_hits) /
                         static_cast<double>(lookups));
  }
  return out;
}

}  // namespace obs
}  // namespace malleus
