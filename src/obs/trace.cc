#include "obs/trace.h"

#include <cmath>

#include "common/string_util.h"

namespace malleus {
namespace obs {

namespace {

// Microseconds with fixed sub-ns precision: deterministic text for
// deterministic inputs, and fine-grained enough for any simulated span.
// Routed through the shared JSON helper so a non-finite timestamp (a bug
// upstream) degrades to `null` instead of invalid JSON.
std::string FormatMicros(double us) { return JsonFixed(us, 4); }

void AppendArgs(const std::vector<TraceArg>& args, std::string* out) {
  *out += "{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) *out += ",";
    *out += StrFormat("\"%s\":%s", JsonEscape(args[i].key).c_str(),
                      args[i].json_value.c_str());
  }
  *out += "}";
}

}  // namespace

TraceArg TraceArg::Str(std::string key, const std::string& value) {
  return {std::move(key), "\"" + JsonEscape(value) + "\""};
}

TraceArg TraceArg::Num(std::string key, double value) {
  return {std::move(key), JsonNumber(value)};
}

TraceArg TraceArg::Int(std::string key, int64_t value) {
  return {std::move(key), StrFormat("%lld", static_cast<long long>(value))};
}

TrackId TraceRecorder::Track(const std::string& process,
                             const std::string& thread) {
  std::lock_guard<std::mutex> lock(mu_);
  TrackId id;
  for (size_t p = 0; p < processes_.size(); ++p) {
    if (processes_[p].name != process) continue;
    id.pid = static_cast<int>(p);
    for (size_t t = 0; t < processes_[p].threads.size(); ++t) {
      if (processes_[p].threads[t] == thread) {
        id.tid = static_cast<int>(t);
        return id;
      }
    }
    id.tid = static_cast<int>(processes_[p].threads.size());
    processes_[p].threads.push_back(thread);
    return id;
  }
  id.pid = static_cast<int>(processes_.size());
  id.tid = 0;
  processes_.push_back({process, {thread}});
  return id;
}

void TraceRecorder::AddSpan(std::string name, std::string category,
                            TrackId track, double start_seconds,
                            double duration_seconds,
                            std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'X';
  e.track = track;
  e.start_us = start_seconds * 1e6;
  e.duration_us = duration_seconds * 1e6;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void TraceRecorder::AddInstant(std::string name, std::string category,
                               TrackId track, double at_seconds,
                               std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'i';
  e.track = track;
  e.start_us = at_seconds * 1e6;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&out, &first]() {
    if (!first) out += ",";
    first = false;
  };
  // Track-naming metadata. sort_index keeps the Perfetto track order equal
  // to the first-use order instead of alphabetical.
  for (size_t p = 0; p < processes_.size(); ++p) {
    sep();
    out += StrFormat(
        "{\"ph\":\"M\",\"pid\":%zu,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"%s\"}}",
        p, JsonEscape(processes_[p].name).c_str());
    sep();
    out += StrFormat(
        "{\"ph\":\"M\",\"pid\":%zu,\"tid\":0,\"name\":\"process_sort_index\","
        "\"args\":{\"sort_index\":%zu}}",
        p, p);
    for (size_t t = 0; t < processes_[p].threads.size(); ++t) {
      sep();
      out += StrFormat(
          "{\"ph\":\"M\",\"pid\":%zu,\"tid\":%zu,\"name\":\"thread_name\","
          "\"args\":{\"name\":\"%s\"}}",
          p, t, JsonEscape(processes_[p].threads[t]).c_str());
      sep();
      out += StrFormat(
          "{\"ph\":\"M\",\"pid\":%zu,\"tid\":%zu,"
          "\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%zu}}",
          p, t, t);
    }
  }
  for (const TraceEvent& e : events_) {
    sep();
    out += StrFormat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":%d,"
        "\"tid\":%d,\"ts\":%s",
        JsonEscape(e.name).c_str(), JsonEscape(e.category).c_str(), e.phase,
        e.track.pid, e.track.tid, FormatMicros(e.start_us).c_str());
    if (e.phase == 'X') {
      out += StrFormat(",\"dur\":%s", FormatMicros(e.duration_us).c_str());
    }
    if (e.phase == 'i') {
      out += ",\"s\":\"t\"";  // Instant scope: thread.
    }
    if (!e.args.empty()) {
      out += ",\"args\":";
      AppendArgs(e.args, &out);
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t TraceRecorder::CountCategory(const std::string& category) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.category == category) ++n;
  }
  return n;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  processes_.clear();
  events_.clear();
}

}  // namespace obs
}  // namespace malleus
