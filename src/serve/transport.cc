#include "serve/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace malleus {
namespace serve {

uint64_t OrderedWriter::NextSeq() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_++;
}

void OrderedWriter::Deliver(uint64_t seq, std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  ready_[seq] = std::move(line);
  while (true) {
    auto it = ready_.find(next_write_);
    if (it == ready_.end()) break;
    write_line_(it->second);
    ready_.erase(it);
    ++next_write_;
  }
}

bool OrderedWriter::Idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_.empty() && next_write_ == next_seq_;
}

namespace {

bool BlankLine(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

Status ServeStdio(Server* server, std::istream& in, std::ostream& out) {
  std::mutex out_mu;
  OrderedWriter writer([&out, &out_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(out_mu);
    out << line << "\n";
    out.flush();
  });
  std::string line;
  while (!server->shutdown_requested() && std::getline(in, line)) {
    if (BlankLine(line)) continue;
    const uint64_t seq = writer.NextSeq();
    server->Submit(line, [&writer, seq](std::string response) {
      writer.Deliver(seq, std::move(response));
    });
  }
  // Every claimed slot must flush before `writer` goes out of scope.
  server->Drain();
  MALLEUS_CHECK(writer.Idle()) << "responses pending after drain";
  return Status::OK();
}

TcpServer::~TcpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status TcpServer::Listen(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(
        StrFormat("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Unavailable(
        StrFormat("bind(127.0.0.1:%d): %s", port, std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) < 0) {
    return Status::Unavailable(
        StrFormat("listen(): %s", std::strerror(errno)));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return Status::Unavailable(
        StrFormat("getsockname(): %s", std::strerror(errno)));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status TcpServer::Serve() {
  MALLEUS_CHECK_GE(listen_fd_, 0) << "Listen() first";
  while (!stop_.load() && !server_->shutdown_requested()) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(
          StrFormat("poll(): %s", std::strerror(errno)));
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(
          StrFormat("accept(): %s", std::strerror(errno)));
    }
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
  // Let in-flight work answer, then join the connection readers (their
  // clients have the responses by now or hung up).
  server_->Drain();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) t.join();
  return Status::OK();
}

void TcpServer::ServeConnection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::mutex send_mu;
  OrderedWriter writer([fd, &send_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(send_mu);
    std::string framed = line;
    framed.push_back('\n');
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;  // Client hung up; drop the rest of this response.
      }
      sent += static_cast<size_t>(n);
    }
  });

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stop_.load()) {
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      // Idle tick: once the server is draining there is nothing more to
      // read from this client.
      if (server_->shutdown_requested()) break;
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF or error: stop reading.
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    while (true) {
      const size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (BlankLine(line)) continue;
      const uint64_t seq = writer.NextSeq();
      server_->Submit(std::move(line), [&writer, seq](std::string response) {
        writer.Deliver(seq, std::move(response));
      });
    }
    buffer.erase(0, start);
  }
  // All of this connection's submissions must deliver before `writer`
  // leaves scope.
  server_->Drain();
  ::close(fd);
}

}  // namespace serve
}  // namespace malleus
