// Client library for the malleus::serve protocol: a blocking JSONL
// request/response channel over TCP. One Client is one connection and one
// id sequence; it is NOT thread-safe (callers wanting concurrency open
// one Client per thread — ids are per-connection, so that composes).

#ifndef MALLEUS_SERVE_CLIENT_H_
#define MALLEUS_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "serve/json.h"

namespace malleus {
namespace serve {

/// Maps a wire error code string back to the closest StatusCode.
/// DEADLINE_EXCEEDED maps to kUnavailable (transient: retry with a larger
/// budget); unknown codes map to kInternal.
StatusCode StatusCodeFromWire(const std::string& code);

/// \brief Blocking protocol client over one TCP connection.
class Client {
 public:
  static Result<std::unique_ptr<Client>> ConnectTcp(const std::string& host,
                                                    int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `method` (params_json empty = no params; deadline_ms < 0 =
  /// none) and returns the raw response line. Only transport failures are
  /// a Status here; wire errors come back as the response line.
  Result<std::string> CallRaw(const std::string& method,
                              const std::string& params_json,
                              int64_t deadline_ms = -1);

  /// CallRaw + parse: returns the response's `result` value, or the wire
  /// error mapped back to a Status (message prefixed with the wire code).
  Result<JsonValue> Call(const std::string& method,
                         const std::string& params_json,
                         int64_t deadline_ms = -1);

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Next full line from the connection (newline stripped).
  Result<std::string> ReadLine();

  int fd_;
  int64_t next_id_ = 1;
  std::string buffer_;
};

}  // namespace serve
}  // namespace malleus

#endif  // MALLEUS_SERVE_CLIENT_H_
