#include "serve/protocol.h"

#include "common/string_util.h"

namespace malleus {
namespace serve {

Result<Request> ParseRequest(const std::string& line, int64_t* id_out) {
  *id_out = 0;
  MALLEUS_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  Request request;
  const JsonValue* id = doc.Find("id");
  if (id == nullptr || !id->IsInt64() || id->Int64() < 0) {
    return Status::InvalidArgument(
        "request 'id' must be a non-negative integer");
  }
  request.id = id->Int64();
  *id_out = request.id;

  const JsonValue* version = doc.Find("v");
  if (version == nullptr || !version->IsInt64()) {
    return Status::InvalidArgument("request 'v' must be an integer");
  }
  if (version->Int64() != kProtocolVersion) {
    return Status::FailedPrecondition(
        StrFormat("protocol version %lld unsupported (this server speaks %d)",
                  static_cast<long long>(version->Int64()),
                  kProtocolVersion));
  }

  const JsonValue* method = doc.Find("method");
  if (method == nullptr || !method->is_string() ||
      method->string_value().empty()) {
    return Status::InvalidArgument(
        "request 'method' must be a non-empty string");
  }
  request.method = method->string_value();

  const JsonValue* params = doc.Find("params");
  if (params != nullptr) {
    if (!params->is_object()) {
      return Status::InvalidArgument("request 'params' must be an object");
    }
    request.params = *params;
  } else {
    request.params = JsonValue::Object({});
  }

  const JsonValue* deadline = doc.Find("deadline_ms");
  if (deadline != nullptr) {
    if (!deadline->IsInt64() || deadline->Int64() < 0) {
      return Status::InvalidArgument(
          "request 'deadline_ms' must be a non-negative integer");
    }
    request.has_deadline = true;
    request.deadline_ms = deadline->Int64();
  }
  return request;
}

const char* WireErrorCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInfeasible: return "INFEASIBLE";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kNotImplemented: return "NOT_IMPLEMENTED";
  }
  return "INTERNAL";
}

std::string OkResponse(int64_t id, const std::string& result_json) {
  return StrFormat("{\"v\":%d,\"id\":%lld,\"ok\":true,\"result\":%s}",
                   kProtocolVersion, static_cast<long long>(id),
                   result_json.c_str());
}

std::string ErrorResponse(int64_t id, const Status& status) {
  return ErrorResponseCode(id, WireErrorCode(status.code()),
                           status.message());
}

std::string ErrorResponseCode(int64_t id, const char* code,
                              const std::string& message) {
  return StrFormat(
      "{\"v\":%d,\"id\":%lld,\"ok\":false,"
      "\"error\":{\"code\":\"%s\",\"message\":\"%s\"}}",
      kProtocolVersion, static_cast<long long>(id), code,
      JsonEscape(message).c_str());
}

std::string RequestLine(int64_t id, const std::string& method,
                        const std::string& params_json, int64_t deadline_ms) {
  std::string line =
      StrFormat("{\"v\":%d,\"id\":%lld,\"method\":\"%s\"", kProtocolVersion,
                static_cast<long long>(id), JsonEscape(method).c_str());
  if (!params_json.empty()) {
    line += ",\"params\":" + params_json;
  }
  if (deadline_ms >= 0) {
    line += StrFormat(",\"deadline_ms\":%lld",
                      static_cast<long long>(deadline_ms));
  }
  line += "}";
  return line;
}

}  // namespace serve
}  // namespace malleus
