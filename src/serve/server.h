// The serving core: admission control, batched asynchronous execution and
// request dispatch, independent of any transport.
//
// Life of a request line:
//
//   Submit(line, done)
//     -> parse + validate envelope        (reject inline: typed error)
//     -> admission check                  (queue full -> RESOURCE_EXHAUSTED)
//     -> FIFO queue                       (bounded by options.max_queue)
//     -> drainer task on exec::ThreadPool (batches of up to max_batch)
//     -> deadline check at dequeue        (expired -> DEADLINE_EXCEEDED)
//     -> per-request MetricsScope         (re-entrant planner metrics)
//     -> method handler                   (plan/replan/estimate/lint/...)
//     -> done(response line)              (exactly once, any thread)
//
// Re-entrancy: every request runs under a MetricsScope over its own local
// registry, so two concurrent requests' planner/solver series never
// interleave; the scope-tagged series are folded into the server's own
// registry (serve.* metrics) after the handler returns. Planner state is
// per-session and internally synchronized; the server itself keeps no
// per-request mutable globals.
//
// Cache persistence: Start() warm-loads options.cache_load_path (a corrupt
// or missing file logs and cold-starts — never fails startup), sections
// are matched to sessions by fingerprint at register time, and Shutdown()
// (or the save_cache method) writes every session's cache back out,
// carrying still-unmatched sections forward.

#ifndef MALLEUS_SERVE_SERVER_H_
#define MALLEUS_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/session.h"

namespace malleus {
namespace serve {

struct ServerOptions {
  /// Concurrent request executors (drainer tasks on the pool).
  int num_workers = 2;
  /// Threads each planner sweep may use. 1 (inline) is the right default
  /// for a loaded server: cross-request parallelism beats intra-request.
  int planner_threads = 1;
  /// Admission bound: requests beyond this many queued are rejected with
  /// RESOURCE_EXHAUSTED instead of growing the queue without bound.
  int max_queue = 64;
  /// Requests one drainer claims per queue visit.
  int max_batch = 8;
  /// Warm-load source checked by Start(); empty = cold start.
  std::string cache_load_path;
  /// Save target for Shutdown() and the parameterless save_cache method;
  /// empty = don't persist.
  std::string cache_save_path;
};

/// \brief Transport-independent serving core.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the executor pool and warm-loads the cache file, if any.
  Status Start();

  /// Response consumer; invoked exactly once per Submit, possibly on an
  /// executor thread (inline on the caller for rejected requests).
  using DoneFn = std::function<void(std::string response)>;

  /// Admits one raw request line. Never blocks on execution.
  void Submit(std::string line, DoneFn done);

  /// Synchronous convenience for tests, benches and in-process clients:
  /// Submit + wait for the response.
  std::string Handle(std::string line);

  /// Blocks until every admitted request has been answered.
  void Drain();

  /// Drains, persists the cache (when configured), stops the executors.
  /// Idempotent.
  Status Shutdown();

  /// Set once a `shutdown` request was processed; transports stop
  /// accepting and unwind to their caller, which calls Shutdown().
  bool shutdown_requested() const { return shutdown_requested_.load(); }

  /// Serializes every session's solve cache (plus carried-forward
  /// sections) to `path` in the solver::cache_io format.
  Status SaveCache(const std::string& path);

  /// The server's own registry (serve.* series). Request-scoped planner
  /// metrics are folded in here after each request.
  obs::MetricsRegistry& metrics() { return metrics_; }

  SessionRegistry& registry() { return registry_; }
  const ServerOptions& options() const { return options_; }

 private:
  struct Pending {
    Request request;
    DoneFn done;
    std::chrono::steady_clock::time_point admitted;
  };

  /// Drains queued requests in batches until the queue is empty.
  void DrainerLoop();
  /// Executes one admitted request and returns the response line.
  std::string Process(Pending* pending);
  /// Routes a validated request to its method handler.
  std::string Dispatch(const Request& request);

  // Method handlers return the `result` JSON on success; a Status becomes
  // a typed error response.
  Result<std::string> HandleRegister(const JsonValue& params);
  Result<std::string> HandlePlan(const JsonValue& params, bool replan);
  Result<std::string> HandleEstimate(const JsonValue& params);
  Result<std::string> HandleLint(const JsonValue& params);
  Result<std::string> HandleStatus();
  Result<std::string> HandleSaveCache(const JsonValue& params);
  Result<std::string> HandleShutdown();

  /// Folds one finished request's scoped registry into metrics_.
  void FoldRequestMetrics(obs::MetricsRegistry* request_metrics);

  const ServerOptions options_;
  SessionRegistry registry_;
  obs::MetricsRegistry metrics_;

  std::unique_ptr<exec::ThreadPool> pool_;

  std::mutex mu_;
  std::condition_variable idle_cv_;
  std::deque<Pending> queue_;
  int active_drainers_ = 0;
  int64_t in_flight_ = 0;  ///< Dequeued, response not yet delivered.
  bool accepting_ = false;

  std::atomic<bool> shutdown_requested_{false};
  bool stopped_ = false;  // Shutdown() ran (guarded by mu_).
};

}  // namespace serve
}  // namespace malleus

#endif  // MALLEUS_SERVE_SERVER_H_
