// Minimal JSON document model and recursive-descent parser for the serve
// wire protocol. The repo already renders JSON (common/string_util.h's
// JsonEscape/JsonNumber and the hand-built writers in bench/); this header
// adds the missing read side so the daemon can accept requests without an
// external dependency.
//
// Scope is deliberately the protocol's needs, not a general library:
// full JSON grammar (null/bool/number/string/array/object, \uXXXX escapes
// with surrogate pairs), a parse depth limit, and Status errors naming the
// byte offset. Object member order is preserved; duplicate keys keep the
// first occurrence (Find returns it), matching the protocol's "first key
// wins" rule.

#ifndef MALLEUS_SERVE_JSON_H_
#define MALLEUS_SERVE_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace malleus {
namespace serve {

/// \brief One parsed JSON value (an immutable tree).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses `text` as exactly one JSON document (trailing non-whitespace
  /// is an error). Errors name the byte offset of the problem.
  static Result<JsonValue> Parse(const std::string& text);

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one on a value is a programming
  /// error (checked). Protocol code tests kind first and returns typed
  /// wire errors instead of tripping these.
  bool bool_value() const;
  double number() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& array() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// True iff the number is integral and fits an int64 exactly.
  bool IsInt64() const;
  /// The number as int64 (requires IsInt64()).
  int64_t Int64() const;

  /// Object member lookup; null when absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;

  // Construction helpers (used by tests; the server renders responses as
  // strings directly and never builds trees).
  static JsonValue Null();
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::vector<std::pair<std::string, JsonValue>> m);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace serve
}  // namespace malleus

#endif  // MALLEUS_SERVE_JSON_H_
