#include "serve/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "serve/protocol.h"

namespace malleus {
namespace serve {

StatusCode StatusCodeFromWire(const std::string& code) {
  if (code == "INVALID_ARGUMENT") return StatusCode::kInvalidArgument;
  if (code == "OUT_OF_RANGE") return StatusCode::kOutOfRange;
  if (code == "NOT_FOUND") return StatusCode::kNotFound;
  if (code == "ALREADY_EXISTS") return StatusCode::kAlreadyExists;
  if (code == "FAILED_PRECONDITION") return StatusCode::kFailedPrecondition;
  if (code == "RESOURCE_EXHAUSTED") return StatusCode::kResourceExhausted;
  if (code == "INFEASIBLE") return StatusCode::kInfeasible;
  if (code == "UNAVAILABLE") return StatusCode::kUnavailable;
  if (code == "NOT_IMPLEMENTED") return StatusCode::kNotImplemented;
  if (code == kDeadlineExceeded) return StatusCode::kUnavailable;
  return StatusCode::kInternal;
}

Result<std::unique_ptr<Client>> Client::ConnectTcp(const std::string& host,
                                                   int port) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string service = StrFormat("%d", port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &found);
  if (rc != 0) {
    return Status::Unavailable(StrFormat("resolve %s: %s", host.c_str(),
                                         ::gai_strerror(rc)));
  }
  int fd = -1;
  Status error = Status::Unavailable(
      StrFormat("no usable address for %s:%d", host.c_str(), port));
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    error = Status::Unavailable(StrFormat("connect %s:%d: %s", host.c_str(),
                                          port, std::strerror(errno)));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) return error;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> Client::ReadLine() {
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(
          StrFormat("recv: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::Unavailable("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> Client::CallRaw(const std::string& method,
                                    const std::string& params_json,
                                    int64_t deadline_ms) {
  const int64_t id = next_id_++;
  std::string line = RequestLine(id, method, params_json, deadline_ms);
  line.push_back('\n');
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Unavailable(
          StrFormat("send: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return ReadLine();
}

Result<JsonValue> Client::Call(const std::string& method,
                               const std::string& params_json,
                               int64_t deadline_ms) {
  const int64_t expected_id = next_id_;  // CallRaw consumes it.
  MALLEUS_ASSIGN_OR_RETURN(std::string line,
                           CallRaw(method, params_json, deadline_ms));
  MALLEUS_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(line));
  const JsonValue* id = doc.Find("id");
  if (id == nullptr || !id->IsInt64() || id->Int64() != expected_id) {
    return Status::Internal("response id does not match request");
  }
  const JsonValue* ok = doc.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::Internal("response missing 'ok'");
  }
  if (!ok->bool_value()) {
    const JsonValue* error = doc.Find("error");
    std::string code = "INTERNAL";
    std::string message = "malformed error response";
    if (error != nullptr && error->is_object()) {
      const JsonValue* c = error->Find("code");
      if (c != nullptr && c->is_string()) code = c->string_value();
      const JsonValue* m = error->Find("message");
      if (m != nullptr && m->is_string()) message = m->string_value();
    }
    return Status(StatusCodeFromWire(code),
                  StrFormat("%s: %s", code.c_str(), message.c_str()));
  }
  const JsonValue* result = doc.Find("result");
  if (result == nullptr) return Status::Internal("response missing 'result'");
  return *result;
}

}  // namespace serve
}  // namespace malleus
