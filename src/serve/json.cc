#include "serve/json.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace malleus {
namespace serve {

namespace {

// Nesting bound: a hostile request cannot drive the parser's recursion
// past this many levels (the protocol itself needs three).
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWs();
    MALLEUS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at byte %zu", what, pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Peek(char* c) const {
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    char c;
    if (!Peek(&c)) return Error("unexpected end of input");
    switch (c) {
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        return JsonValue::Null();
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        return JsonValue::Bool(true);
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        return JsonValue::Bool(false);
      case '"': {
        MALLEUS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    MALLEUS_CHECK(Consume('['));
    std::vector<JsonValue> items;
    SkipWs();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      SkipWs();
      MALLEUS_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
      items.push_back(std::move(item));
      SkipWs();
      if (Consume(']')) return JsonValue::Array(std::move(items));
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    MALLEUS_CHECK(Consume('{'));
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWs();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWs();
      char c;
      if (!Peek(&c) || c != '"') return Error("expected object key string");
      MALLEUS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWs();
      MALLEUS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return JsonValue::Object(std::move(members));
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<std::string> ParseString() {
    MALLEUS_CHECK(Consume('"'));
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // Backslash.
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          uint32_t code;
          if (!ParseHex4(&code)) return Error("invalid \\u escape");
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            uint32_t low;
            if (!Consume('\\') || !Consume('u') || !ParseHex4(&low) ||
                low < 0xDC00 || low > 0xDFFF) {
              return Error("unpaired surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t begin = pos_;
    if (Consume('-')) {
      // Sign consumed; digits validated below.
    }
    char c;
    if (!Peek(&c) || c < '0' || c > '9') return Error("invalid number");
    if (c == '0') {
      ++pos_;  // A leading zero must stand alone ("01" is invalid).
    } else {
      while (Peek(&c) && c >= '0' && c <= '9') ++pos_;
    }
    if (Consume('.')) {
      if (!Peek(&c) || c < '0' || c > '9') {
        return Error("digits required after decimal point");
      }
      while (Peek(&c) && c >= '0' && c <= '9') ++pos_;
    }
    if (Peek(&c) && (c == 'e' || c == 'E')) {
      ++pos_;
      if (Peek(&c) && (c == '+' || c == '-')) ++pos_;
      if (!Peek(&c) || c < '0' || c > '9') {
        return Error("digits required in exponent");
      }
      while (Peek(&c) && c >= '0' && c <= '9') ++pos_;
    }
    const std::string token = text_.substr(begin, pos_ - begin);
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return Error("number out of range");
    return JsonValue::Number(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

bool JsonValue::bool_value() const {
  MALLEUS_CHECK(kind_ == Kind::kBool) << "not a bool";
  return bool_;
}

double JsonValue::number() const {
  MALLEUS_CHECK(kind_ == Kind::kNumber) << "not a number";
  return number_;
}

const std::string& JsonValue::string_value() const {
  MALLEUS_CHECK(kind_ == Kind::kString) << "not a string";
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  MALLEUS_CHECK(kind_ == Kind::kArray) << "not an array";
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  MALLEUS_CHECK(kind_ == Kind::kObject) << "not an object";
  return members_;
}

bool JsonValue::IsInt64() const {
  if (kind_ != Kind::kNumber) return false;
  // Exact int64 range representable without rounding surprises: compare
  // against the double-exact bound.
  if (number_ < -9.223372036854775e18 || number_ > 9.223372036854775e18) {
    return false;
  }
  return number_ == std::floor(number_);
}

int64_t JsonValue::Int64() const {
  MALLEUS_CHECK(IsInt64()) << "not an integral number";
  return static_cast<int64_t>(number_);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

}  // namespace serve
}  // namespace malleus
