// Serving sessions: one registered cluster (scenario) with its own
// CostModel, Planner and solve cache, plus the registry that keys sessions
// by name and by cluster signature.
//
// Two registrations whose (cluster, cost-model) fingerprints match share
// one Session — and therefore one solver cache — under both names; the
// fingerprint is core::PlannerCacheFingerprint, the same key the cache
// persistence format uses, so a warm-load section matches exactly the
// sessions it is valid for. Sessions are handed out as shared_ptr and are
// internally synchronized: many in-flight requests may plan against one
// session concurrently (the planner is const and the solve cache is
// thread-safe; only the "last plan" slot needs the session mutex).

#ifndef MALLEUS_SERVE_SESSION_H_
#define MALLEUS_SERVE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/planner.h"
#include "model/cost_model.h"
#include "plan/plan.h"
#include "scenario/scenario.h"
#include "solver/cache_io.h"

namespace malleus {
namespace serve {

/// \brief One registered cluster and its planning state.
class Session {
 public:
  /// Builds the session from a resolved scenario. `resolved` must come
  /// from ResolveScenario(spec).
  Session(std::string name, scenario::ScenarioSpec spec,
          scenario::ResolvedScenario resolved);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The name this session was first registered under.
  const std::string& name() const { return name_; }
  const scenario::ScenarioSpec& spec() const { return spec_; }
  const scenario::ResolvedScenario& resolved() const { return resolved_; }
  const topo::ClusterSpec& cluster() const { return resolved_.cluster; }
  const model::CostModel& cost() const { return cost_; }
  const core::Planner& planner() const { return planner_; }
  uint64_t fingerprint() const { return fingerprint_; }

  /// The plan most recently produced by `plan`/`replan` for this session
  /// (re-plans pin its DP degree, per the paper's footnote 2).
  struct LastPlan {
    bool valid = false;
    plan::ParallelPlan plan;
    std::string signature;
  };
  LastPlan last_plan() const;
  void set_last_plan(const plan::ParallelPlan& plan);

  /// Plans served (plan + replan) against this session, for `status`.
  int64_t plans_served() const;
  void IncrementPlansServed();

 private:
  const std::string name_;
  const scenario::ScenarioSpec spec_;
  const scenario::ResolvedScenario resolved_;
  const model::CostModel cost_;       // Owns spec/gpu copies.
  const core::Planner planner_;       // References resolved_.cluster, cost_.
  const uint64_t fingerprint_;

  mutable std::mutex mu_;
  LastPlan last_plan_;
  int64_t plans_served_ = 0;
};

/// \brief Name- and fingerprint-keyed session registry with warm-load
/// support.
///
/// Thread-safe. Pending cache sections (from a --cache-load file) are held
/// until a session with a matching fingerprint registers; unmatched
/// sections ride through SnapshotSections() so a save never drops cache
/// state the server merely hasn't re-registered yet.
class SessionRegistry {
 public:
  struct RegisterOutcome {
    std::shared_ptr<Session> session;
    /// True when the name was attached to a pre-existing session (same
    /// fingerprint registered before, possibly under another name).
    bool shared = false;
    /// True when the session's solve cache was warm-loaded from a pending
    /// cache section.
    bool warm = false;
    /// Solve-cache entries loaded when `warm`.
    int64_t warm_entries = 0;
  };

  /// Registers `name` for the scenario. Re-registering an existing name
  /// with an equal fingerprint is idempotent; with a different fingerprint
  /// it is AlreadyExists.
  Result<RegisterOutcome> Register(const std::string& name,
                                   scenario::ScenarioSpec spec);

  /// The session registered under `name`, or NotFound.
  Result<std::shared_ptr<Session>> Find(const std::string& name) const;

  /// Sessions in name order (aliases appear once per name).
  std::vector<std::pair<std::string, std::shared_ptr<Session>>> List() const;

  /// Parks cache-file sections for future registrations.
  void AddPendingSections(std::vector<solver::CacheFileSection> sections);

  /// Every live session's cache serialized as a section (label = first
  /// name, fingerprint = session fingerprint) plus all still-unmatched
  /// pending sections, in fingerprint order.
  std::vector<solver::CacheFileSection> SnapshotSections() const;

  int64_t num_pending_sections() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Session>> by_name_;
  std::map<uint64_t, std::shared_ptr<Session>> by_fingerprint_;
  std::map<uint64_t, solver::CacheFileSection> pending_;
};

}  // namespace serve
}  // namespace malleus

#endif  // MALLEUS_SERVE_SESSION_H_
