// The malleus::serve wire protocol: versioned JSONL request/response
// envelopes plus the StatusCode <-> wire error-code mapping.
//
// One request per line, one response per line, both UTF-8 JSON objects:
//
//   -> {"v":1,"id":7,"method":"plan","params":{...},"deadline_ms":2000}
//   <- {"v":1,"id":7,"ok":true,"result":{...}}
//   <- {"v":1,"id":7,"ok":false,
//       "error":{"code":"NOT_FOUND","message":"..."}}
//
// Envelope rules (DESIGN.md section 13 has the full grammar):
//   * `v` must equal kProtocolVersion (1); anything else is
//     FAILED_PRECONDITION so old clients fail loud, not weird.
//   * `id` is a non-negative integer chosen by the client and echoed
//     verbatim. Responses to unparsable requests carry id 0.
//   * `method` selects the handler; `params` is an optional object.
//   * `deadline_ms` is an optional queueing budget relative to admission;
//     a request still queued past it answers DEADLINE_EXCEEDED (the one
//     wire code with no StatusCode, since the library never times out).
//     0 means "expires immediately" (useful in tests); negative is
//     INVALID_ARGUMENT.
//
// Responses for one connection are written in request order even though
// execution overlaps, so scripted JSONL sessions are deterministic.

#ifndef MALLEUS_SERVE_PROTOCOL_H_
#define MALLEUS_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "serve/json.h"

namespace malleus {
namespace serve {

/// Version stamped on every request and response line.
inline constexpr int kProtocolVersion = 1;

/// The one wire error with no StatusCode counterpart.
inline constexpr char kDeadlineExceeded[] = "DEADLINE_EXCEEDED";

/// A validated request envelope.
struct Request {
  int64_t id = 0;
  std::string method;
  JsonValue params;  ///< Object; an empty object when absent.
  bool has_deadline = false;
  int64_t deadline_ms = 0;  ///< Meaningful iff has_deadline.
};

/// Parses and validates one request line. Errors are InvalidArgument
/// (malformed JSON / bad envelope field) or FailedPrecondition (version
/// mismatch); when the id could be recovered before the error it is
/// reported via `*id_out` so the error response can echo it.
Result<Request> ParseRequest(const std::string& line, int64_t* id_out);

/// "INVALID_ARGUMENT", "NOT_FOUND", ... for the wire `error.code` field.
/// kOk maps to "OK" (never sent).
const char* WireErrorCode(StatusCode code);

/// `{"v":1,"id":ID,"ok":true,"result":RESULT_JSON}` — `result_json` must
/// already be a serialized JSON value.
std::string OkResponse(int64_t id, const std::string& result_json);

/// Error response from a Status (non-OK).
std::string ErrorResponse(int64_t id, const Status& status);

/// Error response with an explicit wire code (DEADLINE_EXCEEDED).
std::string ErrorResponseCode(int64_t id, const char* code,
                              const std::string& message);

/// Renders a request envelope line (the client side of ParseRequest).
/// `params_json` must be a serialized JSON object or empty (omitted).
std::string RequestLine(int64_t id, const std::string& method,
                        const std::string& params_json, int64_t deadline_ms);

}  // namespace serve
}  // namespace malleus

#endif  // MALLEUS_SERVE_PROTOCOL_H_
