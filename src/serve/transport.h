// Transports: they move JSONL lines between a byte stream and the serving
// core, nothing more. Two are provided — stdio (scripted sessions, the
// smoke test, debugging through a pipe) and TCP (the real daemon).
//
// Ordering: execution overlaps across requests, but each connection's
// responses are written in request order (OrderedWriter buffers
// out-of-order completions), so a scripted session's output is
// reproducible byte for byte.
//
// Shutdown: transports poll Server::shutdown_requested() — set when a
// `shutdown` request is processed — stop reading, drain, and return to
// the caller, which owns the Server and calls Server::Shutdown().

#ifndef MALLEUS_SERVE_TRANSPORT_H_
#define MALLEUS_SERVE_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/server.h"

namespace malleus {
namespace serve {

/// \brief Reorders concurrently-completed responses into request order.
///
/// Thread-safe. Claim a slot with NextSeq() in reading order, Deliver()
/// from any thread; `write_line` runs under the writer's lock, already in
/// order, one call per line.
class OrderedWriter {
 public:
  explicit OrderedWriter(std::function<void(const std::string&)> write_line)
      : write_line_(std::move(write_line)) {}

  uint64_t NextSeq();
  void Deliver(uint64_t seq, std::string line);

  /// True once every claimed slot has been written.
  bool Idle() const;

 private:
  const std::function<void(const std::string&)> write_line_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::string> ready_;
  uint64_t next_seq_ = 0;
  uint64_t next_write_ = 0;
};

/// Serves JSONL request lines from `in` to `out` until EOF or a processed
/// `shutdown` request; blank lines are ignored. Drains before returning,
/// so every admitted request's response is written.
Status ServeStdio(Server* server, std::istream& in, std::ostream& out);

/// \brief TCP JSONL listener: one reader thread per connection, responses
/// in per-connection request order.
class TcpServer {
 public:
  explicit TcpServer(Server* server) : server_(server) {}
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()).
  Status Listen(int port);
  int port() const { return port_; }

  /// Accepts and serves connections until a `shutdown` request is
  /// processed (or Stop() is called), then drains and returns.
  Status Serve();

  /// Asks Serve() to unwind; safe from any thread.
  void Stop() { stop_.store(true); }

 private:
  void ServeConnection(int fd);

  Server* const server_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::mutex threads_mu_;
  std::vector<std::thread> threads_;
};

}  // namespace serve
}  // namespace malleus

#endif  // MALLEUS_SERVE_TRANSPORT_H_
