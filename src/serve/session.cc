#include "serve/session.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/cache_codec.h"

namespace malleus {
namespace serve {

Session::Session(std::string name, scenario::ScenarioSpec spec,
                 scenario::ResolvedScenario resolved)
    : name_(std::move(name)),
      spec_(std::move(spec)),
      resolved_(std::move(resolved)),
      cost_(resolved_.spec, resolved_.cluster.gpu()),
      planner_(resolved_.cluster, cost_),
      fingerprint_(core::PlannerCacheFingerprint(resolved_.cluster, cost_)) {}

Session::LastPlan Session::last_plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_plan_;
}

void Session::set_last_plan(const plan::ParallelPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  last_plan_.valid = true;
  last_plan_.plan = plan;
  last_plan_.signature = plan.Signature();
}

int64_t Session::plans_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_served_;
}

void Session::IncrementPlansServed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++plans_served_;
}

Result<SessionRegistry::RegisterOutcome> SessionRegistry::Register(
    const std::string& name, scenario::ScenarioSpec spec) {
  if (name.empty()) {
    return Status::InvalidArgument("cluster name must not be empty");
  }
  // Resolve outside the lock: it validates against the library types and
  // can fail without touching registry state.
  MALLEUS_ASSIGN_OR_RETURN(scenario::ResolvedScenario resolved,
                           scenario::ResolveScenario(spec));
  // Build a candidate session up-front so the fingerprint is available for
  // the aliasing decision; discarded when an equal fingerprint exists.
  auto candidate = std::make_shared<Session>(name, std::move(spec),
                                             std::move(resolved));

  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t fingerprint = candidate->fingerprint();
  auto named = by_name_.find(name);
  if (named != by_name_.end()) {
    if (named->second->fingerprint() != fingerprint) {
      return Status::AlreadyExists(StrFormat(
          "cluster '%s' already registered with a different signature",
          name.c_str()));
    }
    RegisterOutcome outcome;
    outcome.session = named->second;
    outcome.shared = true;
    return outcome;
  }

  RegisterOutcome outcome;
  auto existing = by_fingerprint_.find(fingerprint);
  if (existing != by_fingerprint_.end()) {
    outcome.session = existing->second;
    outcome.shared = true;
  } else {
    outcome.session = candidate;
    by_fingerprint_[fingerprint] = candidate;
    // Warm the fresh session from a parked cache section, if one matches.
    auto pending = pending_.find(fingerprint);
    if (pending != pending_.end()) {
      const Status loaded = candidate->planner().solve_cache().Deserialize(
          pending->second.blob, core::OrchestrationCacheCodec());
      if (loaded.ok()) {
        outcome.warm = true;
        outcome.warm_entries =
            static_cast<int64_t>(candidate->planner().solve_cache().size());
      } else {
        // Corrupt section: cold start is the contract; the section is
        // dropped so the next save replaces it with healthy bytes.
        MALLEUS_LOG(Warning)
            << "discarding cache section for cluster '" << name
            << "': " << loaded.ToString();
      }
      pending_.erase(pending);
    }
  }
  by_name_[name] = outcome.session;
  return outcome;
}

Result<std::shared_ptr<Session>> SessionRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound(
        StrFormat("cluster '%s' is not registered", name.c_str()));
  }
  return it->second;
}

std::vector<std::pair<std::string, std::shared_ptr<Session>>>
SessionRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::shared_ptr<Session>>> out;
  out.reserve(by_name_.size());
  for (const auto& [name, session] : by_name_) {
    out.emplace_back(name, session);
  }
  return out;
}

void SessionRegistry::AddPendingSections(
    std::vector<solver::CacheFileSection> sections) {
  std::lock_guard<std::mutex> lock(mu_);
  for (solver::CacheFileSection& section : sections) {
    pending_[section.fingerprint] = std::move(section);
  }
}

std::vector<solver::CacheFileSection> SessionRegistry::SnapshotSections()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  // Fingerprint-ordered map so repeated saves of identical state produce
  // identical files.
  std::map<uint64_t, solver::CacheFileSection> sections = pending_;
  for (const auto& [fingerprint, session] : by_fingerprint_) {
    solver::CacheFileSection section;
    section.fingerprint = fingerprint;
    section.label = session->name();
    section.blob = session->planner().solve_cache().Serialize(
        core::OrchestrationCacheCodec());
    sections[fingerprint] = std::move(section);
  }
  std::vector<solver::CacheFileSection> out;
  out.reserve(sections.size());
  for (auto& [fingerprint, section] : sections) {
    out.push_back(std::move(section));
  }
  return out;
}

int64_t SessionRegistry::num_pending_sections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(pending_.size());
}

}  // namespace serve
}  // namespace malleus
