#include "serve/server.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/scenario_lint.h"
#include "lint/diagnostic.h"
#include "plan/estimator.h"
#include "solver/cache_io.h"
#include "straggler/situation.h"

namespace malleus {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point since, Clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(now - since)
      .count();
}

std::string IntArrayJson(const std::vector<int>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%d", values[i]);
  }
  out += "]";
  return out;
}

std::string DoubleArrayJson(const std::vector<double>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonNumber(values[i]);
  }
  out += "]";
  return out;
}

// Param extraction helpers: each returns a typed wire error naming the key
// so clients can tell which field they got wrong.

Result<std::string> RequireString(const JsonValue& params, const char* key) {
  const JsonValue* value = params.Find(key);
  if (value == nullptr || !value->is_string()) {
    return Status::InvalidArgument(
        StrFormat("param '%s' must be a string", key));
  }
  return value->string_value();
}

Result<int64_t> OptionalInt(const JsonValue& params, const char* key,
                            int64_t fallback) {
  const JsonValue* value = params.Find(key);
  if (value == nullptr) return fallback;
  if (!value->IsInt64()) {
    return Status::InvalidArgument(
        StrFormat("param '%s' must be an integer", key));
  }
  return value->Int64();
}

Result<bool> OptionalBool(const JsonValue& params, const char* key,
                          bool fallback) {
  const JsonValue* value = params.Find(key);
  if (value == nullptr) return fallback;
  if (!value->is_bool()) {
    return Status::InvalidArgument(
        StrFormat("param '%s' must be a boolean", key));
  }
  return value->bool_value();
}

// Builds the straggler situation a plan/replan/estimate runs under:
// optional canonical name (or "overlay" for the scenario's custom one),
// then per-GPU overrides from `stragglers` and `failed`.
Result<straggler::Situation> BuildSituation(const Session& session,
                                            const JsonValue& params) {
  straggler::Situation situation(session.cluster().num_gpus());
  const JsonValue* name = params.Find("situation");
  if (name != nullptr) {
    if (!name->is_string()) {
      return Status::InvalidArgument("param 'situation' must be a string");
    }
    const std::string& label = name->string_value();
    if (label == "overlay") {
      if (!session.resolved().has_overlay) {
        return Status::FailedPrecondition(
            "scenario defines no straggler overlay");
      }
      situation = session.resolved().overlay;
    } else {
      MALLEUS_ASSIGN_OR_RETURN(straggler::SituationId id,
                               scenario::SituationIdByName(label));
      MALLEUS_ASSIGN_OR_RETURN(
          situation, straggler::Situation::Canonical(session.cluster(), id));
    }
  }
  const int num_gpus = session.cluster().num_gpus();
  const JsonValue* stragglers = params.Find("stragglers");
  if (stragglers != nullptr) {
    if (!stragglers->is_array()) {
      return Status::InvalidArgument("param 'stragglers' must be an array");
    }
    for (const JsonValue& entry : stragglers->array()) {
      if (!entry.is_object()) {
        return Status::InvalidArgument(
            "each 'stragglers' entry must be an object");
      }
      const JsonValue* gpu = entry.Find("gpu");
      if (gpu == nullptr || !gpu->IsInt64() || gpu->Int64() < 0 ||
          gpu->Int64() >= num_gpus) {
        return Status::OutOfRange(StrFormat(
            "straggler 'gpu' must be an integer in [0, %d)", num_gpus));
      }
      const topo::GpuId id = static_cast<topo::GpuId>(gpu->Int64());
      const JsonValue* level = entry.Find("level");
      const JsonValue* rate = entry.Find("rate");
      if ((level != nullptr) == (rate != nullptr)) {
        return Status::InvalidArgument(
            "each 'stragglers' entry needs exactly one of 'level'/'rate'");
      }
      if (level != nullptr) {
        if (!level->IsInt64() || level->Int64() < 1 || level->Int64() > 6) {
          return Status::OutOfRange(
              "straggler 'level' must be an integer in [1, 6]");
        }
        situation.SetLevel(id, static_cast<int>(level->Int64()));
      } else {
        if (!rate->is_number() || rate->number() < 1.0) {
          return Status::OutOfRange("straggler 'rate' must be >= 1.0");
        }
        situation.SetRate(id, rate->number());
      }
    }
  }
  const JsonValue* failed = params.Find("failed");
  if (failed != nullptr) {
    if (!failed->is_array()) {
      return Status::InvalidArgument("param 'failed' must be an array");
    }
    for (const JsonValue& gpu : failed->array()) {
      if (!gpu.IsInt64() || gpu.Int64() < 0 || gpu.Int64() >= num_gpus) {
        return Status::OutOfRange(StrFormat(
            "'failed' entries must be integers in [0, %d)", num_gpus));
      }
      situation.Fail(static_cast<topo::GpuId>(gpu.Int64()));
    }
  }
  return situation;
}

// Renders the deterministic plan-response body. Wall-clock timings and
// cache statistics are deliberately absent: responses must be
// byte-identical for identical requests at any worker/thread count.
std::string RenderPlanJson(const std::string& cluster_name,
                           const core::PlanResult& result,
                           bool plan_changed) {
  const plan::ParallelPlan& p = result.plan;
  std::string out = StrFormat(
      "{\"cluster\":\"%s\",\"signature\":\"%s\",\"plan_changed\":%s,"
      "\"batch\":%lld,\"micro_batch\":%d,\"tp\":%d,\"dp\":%d,"
      "\"estimated_seconds\":%s,\"estimated_full_seconds\":%s,"
      "\"warnings\":%d,\"pipelines\":[",
      JsonEscape(cluster_name).c_str(), JsonEscape(p.Signature()).c_str(),
      plan_changed ? "true" : "false",
      static_cast<long long>(p.global_batch), p.micro_batch_size,
      result.chosen_tp, p.dp_degree(),
      JsonNumber(result.estimated_seconds).c_str(),
      JsonNumber(result.estimated_full_seconds).c_str(),
      result.diagnostics.num_warnings());
  for (size_t i = 0; i < p.pipelines.size(); ++i) {
    const plan::Pipeline& pipe = p.pipelines[i];
    if (i > 0) out += ",";
    out += StrFormat("{\"microbatches\":%lld,\"stages\":[",
                     static_cast<long long>(pipe.num_microbatches));
    for (size_t j = 0; j < pipe.stages.size(); ++j) {
      const plan::Stage& stage = pipe.stages[j];
      if (j > 0) out += ",";
      out += StrFormat("{\"layers\":%d,\"gpus\":%s}", stage.num_layers,
                       IntArrayJson(stage.group.gpus).c_str());
    }
    out += "]}";
  }
  out += StrFormat("],\"standby\":%s}", IntArrayJson(p.standby_gpus).c_str());
  return out;
}

std::string RenderDiagnosticsJson(const lint::DiagnosticSink& sink) {
  std::string out =
      StrFormat("{\"errors\":%d,\"warnings\":%d,\"notes\":%d,"
                "\"diagnostics\":[",
                sink.num_errors(), sink.num_warnings(), sink.num_notes());
  for (size_t i = 0; i < sink.diagnostics().size(); ++i) {
    const lint::Diagnostic& d = sink.diagnostics()[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "{\"severity\":\"%s\",\"code\":\"%s\",\"location\":\"%s\","
        "\"message\":\"%s\"}",
        lint::SeverityName(d.severity), JsonEscape(d.code).c_str(),
        JsonEscape(d.location).c_str(), JsonEscape(d.message).c_str());
  }
  out += "]}";
  return out;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  MALLEUS_CHECK_GT(options_.num_workers, 0);
  MALLEUS_CHECK_GT(options_.planner_threads, 0);
  MALLEUS_CHECK_GT(options_.max_queue, 0);
  MALLEUS_CHECK_GT(options_.max_batch, 0);
}

Server::~Server() {
  const Status status = Shutdown();
  if (!status.ok()) {
    MALLEUS_LOG(Warning) << "server shutdown: " << status.ToString();
  }
}

Status Server::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MALLEUS_CHECK(pool_ == nullptr) << "Start() called twice";
    accepting_ = true;
  }
  pool_ = std::make_unique<exec::ThreadPool>(options_.num_workers);
  if (!options_.cache_load_path.empty()) {
    Result<std::vector<solver::CacheFileSection>> sections =
        solver::ReadCacheFile(options_.cache_load_path);
    if (sections.ok()) {
      MALLEUS_LOG(Info) << "warm-loaded " << sections->size()
                        << " cache section(s) from "
                        << options_.cache_load_path;
      registry_.AddPendingSections(std::move(*sections));
    } else if (sections.status().code() == StatusCode::kNotFound) {
      MALLEUS_LOG(Info) << "no cache file at " << options_.cache_load_path
                        << ", starting cold";
    } else {
      // Corrupt / unreadable: cold start is the contract, never a crash
      // and never a startup failure.
      MALLEUS_LOG(Warning) << "ignoring cache file: "
                           << sections.status().ToString();
    }
  }
  return Status::OK();
}

void Server::Submit(std::string line, DoneFn done) {
  int64_t id = 0;
  Result<Request> parsed = ParseRequest(line, &id);
  if (!parsed.ok()) {
    metrics_.GetCounter("serve.parse_errors")->Increment();
    done(ErrorResponse(id, parsed.status()));
    return;
  }

  bool spawn = false;
  Status rejection = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) {
      rejection = Status::Unavailable("server is not accepting requests");
    } else if (queue_.size() >= static_cast<size_t>(options_.max_queue)) {
      rejection = Status::ResourceExhausted(
          StrFormat("admission queue full (%d pending)", options_.max_queue));
    } else {
      Pending pending;
      pending.request = std::move(*parsed);
      pending.done = std::move(done);
      pending.admitted = Clock::now();
      queue_.push_back(std::move(pending));
      metrics_.GetGauge("serve.queue_depth")
          ->Set(static_cast<double>(queue_.size()));
      if (active_drainers_ < options_.num_workers) {
        ++active_drainers_;
        spawn = true;
      }
    }
  }
  if (!rejection.ok()) {
    metrics_.GetCounter("serve.rejected")->Increment();
    done(ErrorResponse(id, rejection));
    return;
  }
  if (spawn) {
    pool_->Submit([this] { DrainerLoop(); });
  }
}

std::string Server::Handle(std::string line) {
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::string response;
  bool ready = false;
  Submit(std::move(line), [&](std::string r) {
    std::lock_guard<std::mutex> lock(done_mu);
    response = std::move(r);
    ready = true;
    done_cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return ready; });
  return response;
}

void Server::DrainerLoop() {
  while (true) {
    std::vector<Pending> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (!queue_.empty() &&
             batch.size() < static_cast<size_t>(options_.max_batch)) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (batch.empty()) {
        --active_drainers_;
        idle_cv_.notify_all();
        return;
      }
      in_flight_ += static_cast<int64_t>(batch.size());
      metrics_.GetGauge("serve.queue_depth")
          ->Set(static_cast<double>(queue_.size()));
    }
    for (Pending& pending : batch) {
      std::string response = Process(&pending);
      pending.done(std::move(response));
      {
        std::lock_guard<std::mutex> lock(mu_);
        --in_flight_;
        if (in_flight_ == 0 && queue_.empty()) idle_cv_.notify_all();
      }
    }
  }
}

std::string Server::Process(Pending* pending) {
  const Request& request = pending->request;
  const Clock::time_point start = Clock::now();
  if (request.has_deadline) {
    const int64_t waited_ms = ElapsedMs(pending->admitted, start);
    if (waited_ms >= request.deadline_ms) {
      metrics_.GetCounter("serve.deadline_exceeded")->Increment();
      return ErrorResponseCode(
          request.id, kDeadlineExceeded,
          StrFormat("deadline of %lld ms expired after %lld ms in queue",
                    static_cast<long long>(request.deadline_ms),
                    static_cast<long long>(waited_ms)));
    }
  }

  // The request's own registry: everything the planner/solver stack
  // records while handling this request lands here (keyed to the request,
  // not the process), then gets folded into the server's serve.* series.
  obs::MetricsRegistry request_metrics;
  std::string response;
  {
    obs::MetricsScope scope(&request_metrics);
    response = Dispatch(request);
  }
  FoldRequestMetrics(&request_metrics);

  metrics_.GetCounter("serve.requests")->Increment();
  metrics_.GetHistogram("serve.request_seconds")
      ->Observe(std::chrono::duration<double>(Clock::now() - start).count());
  return response;
}

std::string Server::Dispatch(const Request& request) {
  Result<std::string> result = [&]() -> Result<std::string> {
    if (request.method == "register") {
      return HandleRegister(request.params);
    }
    if (request.method == "plan") {
      return HandlePlan(request.params, /*replan=*/false);
    }
    if (request.method == "replan") {
      return HandlePlan(request.params, /*replan=*/true);
    }
    if (request.method == "estimate") return HandleEstimate(request.params);
    if (request.method == "lint") return HandleLint(request.params);
    if (request.method == "status") return HandleStatus();
    if (request.method == "save_cache") {
      return HandleSaveCache(request.params);
    }
    if (request.method == "shutdown") return HandleShutdown();
    return Status::NotImplemented(
        StrFormat("unknown method '%s'", request.method.c_str()));
  }();
  if (!result.ok()) {
    metrics_.GetCounter("serve.errors")->Increment();
    return ErrorResponse(request.id, result.status());
  }
  return OkResponse(request.id, *result);
}

Result<std::string> Server::HandleRegister(const JsonValue& params) {
  MALLEUS_ASSIGN_OR_RETURN(std::string name, RequireString(params, "name"));
  MALLEUS_ASSIGN_OR_RETURN(std::string text,
                           RequireString(params, "scenario"));
  MALLEUS_ASSIGN_OR_RETURN(scenario::ScenarioSpec spec,
                           scenario::ParseScenarioString(text));
  // Static lint before resolution so a bad scenario is one clear
  // INVALID_ARGUMENT instead of whatever resolution trips over first.
  lint::DiagnosticSink sink;
  core::ScenarioLintOptions lint_options;
  lint_options.with_plan = false;
  MALLEUS_RETURN_NOT_OK(core::LintScenarioSpec(spec, lint_options, &sink));
  if (sink.HasErrors()) {
    for (const lint::Diagnostic& d : sink.diagnostics()) {
      if (d.severity == lint::Severity::kError) {
        return Status::InvalidArgument(StrFormat(
            "scenario failed lint (%d error(s), first: %s)",
            sink.num_errors(), d.ToString().c_str()));
      }
    }
  }
  MALLEUS_ASSIGN_OR_RETURN(SessionRegistry::RegisterOutcome outcome,
                           registry_.Register(name, std::move(spec)));
  return StrFormat(
      "{\"cluster\":\"%s\",\"fingerprint\":\"%016llx\",\"gpus\":%d,"
      "\"shared\":%s,\"warm\":%s,\"warm_entries\":%lld}",
      JsonEscape(name).c_str(),
      static_cast<unsigned long long>(outcome.session->fingerprint()),
      outcome.session->cluster().num_gpus(),
      outcome.shared ? "true" : "false", outcome.warm ? "true" : "false",
      static_cast<long long>(outcome.warm_entries));
}

Result<std::string> Server::HandlePlan(const JsonValue& params, bool replan) {
  MALLEUS_ASSIGN_OR_RETURN(std::string name,
                           RequireString(params, "cluster"));
  MALLEUS_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                           registry_.Find(name));
  MALLEUS_ASSIGN_OR_RETURN(
      int64_t batch, OptionalInt(params, "batch", session->spec().batch));
  if (batch <= 0) {
    return Status::InvalidArgument("param 'batch' must be positive");
  }
  MALLEUS_ASSIGN_OR_RETURN(straggler::Situation situation,
                           BuildSituation(*session, params));

  core::PlannerOptions popts;
  popts.num_threads = options_.planner_threads;
  const Session::LastPlan previous = session->last_plan();
  if (replan) {
    // Footnote 2 of the paper: re-planning keeps the DP degree (model
    // state memory depends on it). Pin it from the prior plan, or from an
    // explicit 'dp' when a restarted client re-plans into a fresh session.
    MALLEUS_ASSIGN_OR_RETURN(int64_t dp, OptionalInt(params, "dp", 0));
    if (dp < 0) return Status::InvalidArgument("param 'dp' must be >= 1");
    if (dp == 0) {
      if (!previous.valid) {
        return Status::FailedPrecondition(
            "replan requires a prior plan for this cluster (or an explicit "
            "'dp')");
      }
      dp = previous.plan.dp_degree();
    }
    popts.dp_degree = static_cast<int>(dp);
  }

  MALLEUS_ASSIGN_OR_RETURN(core::PlanResult result,
                           session->planner().Plan(situation, batch, popts));
  const std::string signature = result.plan.Signature();
  const bool plan_changed = !previous.valid || signature != previous.signature;
  session->set_last_plan(result.plan);
  session->IncrementPlansServed();
  return RenderPlanJson(name, result, plan_changed);
}

Result<std::string> Server::HandleEstimate(const JsonValue& params) {
  MALLEUS_ASSIGN_OR_RETURN(std::string name,
                           RequireString(params, "cluster"));
  MALLEUS_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                           registry_.Find(name));
  const Session::LastPlan last = session->last_plan();
  if (!last.valid) {
    return Status::FailedPrecondition(
        "estimate requires a prior plan for this cluster");
  }
  MALLEUS_ASSIGN_OR_RETURN(straggler::Situation situation,
                           BuildSituation(*session, params));
  const plan::StepEstimate estimate =
      plan::EstimateStep(last.plan, session->cost(), situation);
  return StrFormat(
      "{\"cluster\":\"%s\",\"signature\":\"%s\",\"step_seconds\":%s,"
      "\"simplified_seconds\":%s,\"pipeline_seconds\":%s}",
      JsonEscape(name).c_str(), JsonEscape(last.signature).c_str(),
      JsonNumber(estimate.step_seconds).c_str(),
      JsonNumber(estimate.simplified_seconds).c_str(),
      DoubleArrayJson(estimate.pipeline_seconds).c_str());
}

Result<std::string> Server::HandleLint(const JsonValue& params) {
  MALLEUS_ASSIGN_OR_RETURN(std::string text,
                           RequireString(params, "scenario"));
  MALLEUS_ASSIGN_OR_RETURN(bool with_plan,
                           OptionalBool(params, "with_plan", true));
  MALLEUS_ASSIGN_OR_RETURN(scenario::ScenarioSpec spec,
                           scenario::ParseScenarioString(text));
  lint::DiagnosticSink sink;
  core::ScenarioLintOptions lint_options;
  lint_options.with_plan = with_plan;
  MALLEUS_RETURN_NOT_OK(core::LintScenarioSpec(spec, lint_options, &sink));
  return RenderDiagnosticsJson(sink);
}

Result<std::string> Server::HandleStatus() {
  size_t queue_depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = queue_.size();
  }
  obs::Histogram* latency = metrics_.GetHistogram("serve.request_seconds");
  std::string out = StrFormat(
      "{\"protocol\":%d,\"workers\":%d,\"planner_threads\":%d,"
      "\"queue_depth\":%zu,\"max_queue\":%d,"
      "\"requests\":%.0f,\"rejected\":%.0f,\"deadline_exceeded\":%.0f,"
      "\"errors\":%.0f,\"parse_errors\":%.0f,"
      "\"latency_ms\":{\"p50\":%s,\"p95\":%s,\"p99\":%s},"
      "\"planner_solves\":%.0f,\"cache_hits\":%.0f,\"cache_misses\":%.0f,"
      "\"pending_cache_sections\":%lld,\"sessions\":[",
      kProtocolVersion, options_.num_workers, options_.planner_threads,
      queue_depth, options_.max_queue,
      metrics_.GetCounter("serve.requests")->Value(),
      metrics_.GetCounter("serve.rejected")->Value(),
      metrics_.GetCounter("serve.deadline_exceeded")->Value(),
      metrics_.GetCounter("serve.errors")->Value(),
      metrics_.GetCounter("serve.parse_errors")->Value(),
      JsonNumber(latency->Quantile(0.50) * 1e3, 4).c_str(),
      JsonNumber(latency->Quantile(0.95) * 1e3, 4).c_str(),
      JsonNumber(latency->Quantile(0.99) * 1e3, 4).c_str(),
      metrics_.GetCounter("serve.planner_solves")->Value(),
      metrics_.GetCounter("serve.planner_cache_hits")->Value(),
      metrics_.GetCounter("serve.planner_cache_misses")->Value(),
      static_cast<long long>(registry_.num_pending_sections()));
  const auto sessions = registry_.List();
  for (size_t i = 0; i < sessions.size(); ++i) {
    const auto& [name, session] = sessions[i];
    if (i > 0) out += ",";
    const solver::SolveCache::Stats stats =
        session->planner().solve_cache().stats();
    out += StrFormat(
        "{\"name\":\"%s\",\"fingerprint\":\"%016llx\",\"gpus\":%d,"
        "\"plans_served\":%lld,\"has_plan\":%s,\"cache_entries\":%zu,"
        "\"cache_hits\":%lld,\"cache_misses\":%lld}",
        JsonEscape(name).c_str(),
        static_cast<unsigned long long>(session->fingerprint()),
        session->cluster().num_gpus(),
        static_cast<long long>(session->plans_served()),
        session->last_plan().valid ? "true" : "false",
        session->planner().solve_cache().size(),
        static_cast<long long>(stats.hits),
        static_cast<long long>(stats.misses));
  }
  out += "]}";
  return out;
}

Result<std::string> Server::HandleSaveCache(const JsonValue& params) {
  const JsonValue* path_param = params.Find("path");
  std::string path;
  if (path_param != nullptr) {
    if (!path_param->is_string()) {
      return Status::InvalidArgument("param 'path' must be a string");
    }
    path = path_param->string_value();
  } else {
    path = options_.cache_save_path;
  }
  if (path.empty()) {
    return Status::FailedPrecondition(
        "no 'path' given and the server has no --cache-save path");
  }
  const std::vector<solver::CacheFileSection> sections =
      registry_.SnapshotSections();
  MALLEUS_RETURN_NOT_OK(solver::WriteCacheFile(path, sections));
  return StrFormat("{\"path\":\"%s\",\"sections\":%zu}",
                   JsonEscape(path).c_str(), sections.size());
}

Result<std::string> Server::HandleShutdown() {
  shutdown_requested_.store(true);
  return std::string("{\"draining\":true}");
}

void Server::FoldRequestMetrics(obs::MetricsRegistry* request_metrics) {
  // Fold the request's planner activity into the serve.* aggregates. The
  // scoped registry creates these counters lazily, so absent series read
  // as zero.
  const double solves =
      request_metrics->GetCounter("planner.solves")->Value();
  const double hits =
      request_metrics->GetCounter("planner.cache_hits")->Value();
  const double misses =
      request_metrics->GetCounter("planner.cache_misses")->Value();
  if (solves > 0) {
    metrics_.GetCounter("serve.planner_solves")->Increment(solves);
  }
  if (hits > 0) {
    metrics_.GetCounter("serve.planner_cache_hits")->Increment(hits);
  }
  if (misses > 0) {
    metrics_.GetCounter("serve.planner_cache_misses")->Increment(misses);
  }
}

void Server::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return queue_.empty() && in_flight_ == 0 && active_drainers_ == 0;
  });
}

Status Server::SaveCache(const std::string& path) {
  return solver::WriteCacheFile(path, registry_.SnapshotSections());
}

Status Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::OK();
    accepting_ = false;
  }
  Drain();
  Status saved = Status::OK();
  if (!options_.cache_save_path.empty()) {
    saved = SaveCache(options_.cache_save_path);
    if (saved.ok()) {
      MALLEUS_LOG(Info) << "saved solver cache to "
                        << options_.cache_save_path;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  pool_.reset();  // Joins the executor threads.
  return saved;
}

}  // namespace serve
}  // namespace malleus
