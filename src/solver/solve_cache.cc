#include "solver/solve_cache.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace malleus {
namespace solver {

namespace wire {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, 8);
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutInts(std::string* out, const std::vector<int>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (int x : v) PutU64(out, static_cast<uint64_t>(static_cast<int64_t>(x)));
}

void PutDoubles(std::string* out, const std::vector<double>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (double x : v) PutDouble(out, x);
}

bool Reader::U32(uint32_t* v) {
  if (size_ - pos_ < 4) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *v = r;
  return true;
}

bool Reader::U64(uint64_t* v) {
  if (size_ - pos_ < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *v = r;
  return true;
}

bool Reader::Double(double* v) {
  uint64_t bits;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool Reader::String(std::string* s) {
  uint32_t size;
  if (!U32(&size)) return false;
  if (size_ - pos_ < size) return false;
  s->assign(data_ + pos_, size);
  pos_ += size;
  return true;
}

bool Reader::Ints(std::vector<int>* v) {
  uint32_t count;
  if (!U32(&count)) return false;
  if (size_ - pos_ < static_cast<size_t>(count) * 8) return false;
  v->clear();
  v->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t raw;
    if (!U64(&raw)) return false;
    v->push_back(static_cast<int>(static_cast<int64_t>(raw)));
  }
  return true;
}

bool Reader::Doubles(std::vector<double>* v) {
  uint32_t count;
  if (!U32(&count)) return false;
  if (size_ - pos_ < static_cast<size_t>(count) * 8) return false;
  v->clear();
  v->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    double d;
    if (!Double(&d)) return false;
    v->push_back(d);
  }
  return true;
}

}  // namespace wire

namespace {

// Field type markers; distinct from plausible Tag() characters is not
// required (Tag has its own marker byte), only mutual distinctness is.
enum : char {
  kMarkTag = 'T',
  kMarkBool = 'B',
  kMarkInt = 'I',
  kMarkDouble = 'D',
  kMarkIntVec = 'i',
  kMarkDoubleVec = 'd',
};

}  // namespace

void CacheKey::AppendRaw64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  bytes_.append(buf, 8);
}

CacheKey& CacheKey::Tag(char tag) {
  bytes_.push_back(kMarkTag);
  bytes_.push_back(tag);
  return *this;
}

CacheKey& CacheKey::Bool(bool v) {
  bytes_.push_back(kMarkBool);
  bytes_.push_back(v ? 1 : 0);
  return *this;
}

CacheKey& CacheKey::Int(int64_t v) {
  bytes_.push_back(kMarkInt);
  AppendRaw64(static_cast<uint64_t>(v));
  return *this;
}

CacheKey& CacheKey::Double(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  bytes_.push_back(kMarkDouble);
  AppendRaw64(bits);
  return *this;
}

CacheKey& CacheKey::Ints(const std::vector<int>& v) {
  bytes_.push_back(kMarkIntVec);
  AppendRaw64(v.size());
  for (int x : v) AppendRaw64(static_cast<uint64_t>(static_cast<int64_t>(x)));
  return *this;
}

CacheKey& CacheKey::Doubles(const std::vector<double>& v) {
  bytes_.push_back(kMarkDoubleVec);
  AppendRaw64(v.size());
  for (double x : v) {
    uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    AppendRaw64(bits);
  }
  return *this;
}

std::shared_ptr<const void> SolveCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void SolveCache::Insert(const std::string& key,
                        std::shared_ptr<const void> value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() >= max_entries_ && entries_.count(key) == 0) {
    entries_.clear();
  }
  entries_.emplace(key, std::move(value));
}

SolveCache::Stats SolveCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_};
}

size_t SolveCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SolveCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

void CacheCodec::Register(char tag, EncodeFn encode, DecodeFn decode) {
  entries_[tag] = {std::move(encode), std::move(decode)};
}

const CacheCodec::EncodeFn* CacheCodec::encoder(char tag) const {
  auto it = entries_.find(tag);
  return it == entries_.end() ? nullptr : &it->second.first;
}

const CacheCodec::DecodeFn* CacheCodec::decoder(char tag) const {
  auto it = entries_.find(tag);
  return it == entries_.end() ? nullptr : &it->second.second;
}

char SolveCache::KeyTag(const std::string& key) {
  if (key.size() < 2 || key[0] != kMarkTag) return '\0';
  return key[1];
}

std::string SolveCache::Serialize(const CacheCodec& codec) const {
  // Snapshot the encodable entries, then sort outside the lock.
  std::vector<std::pair<std::string, std::shared_ptr<const void>>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(entries_.size());
    for (const auto& [key, value] : entries_) {
      if (codec.Has(KeyTag(key))) snapshot.emplace_back(key, value);
    }
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::string out;
  wire::PutU64(&out, snapshot.size());
  std::string value_bytes;
  for (const auto& [key, value] : snapshot) {
    value_bytes.clear();
    (*codec.encoder(KeyTag(key)))(value.get(), &value_bytes);
    wire::PutString(&out, key);
    wire::PutString(&out, value_bytes);
  }
  return out;
}

Status SolveCache::Deserialize(const std::string& blob,
                               const CacheCodec& codec) {
  wire::Reader reader(blob.data(), blob.size());
  uint64_t count;
  if (!reader.U64(&count)) {
    return Status::InvalidArgument("cache blob truncated: no entry count");
  }
  // Decode everything before touching the cache, so corruption can never
  // leave a half-loaded state behind.
  std::vector<std::pair<std::string, std::shared_ptr<const void>>> decoded;
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    std::string value_bytes;
    if (!reader.String(&key) || !reader.String(&value_bytes)) {
      return Status::InvalidArgument(
          StrFormat("cache blob truncated at entry %llu of %llu",
                    static_cast<unsigned long long>(i),
                    static_cast<unsigned long long>(count)));
    }
    const char tag = KeyTag(key);
    if (tag == '\0') {
      return Status::InvalidArgument(
          StrFormat("cache blob entry %llu has an untagged key",
                    static_cast<unsigned long long>(i)));
    }
    const CacheCodec::DecodeFn* decode = codec.decoder(tag);
    if (decode == nullptr) continue;  // Unknown domain: skip, not an error.
    std::shared_ptr<const void> value =
        (*decode)(value_bytes.data(), value_bytes.size());
    if (value == nullptr) {
      return Status::InvalidArgument(
          StrFormat("cache blob entry %llu ('%c') failed to decode",
                    static_cast<unsigned long long>(i), tag));
    }
    decoded.emplace_back(std::move(key), std::move(value));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("cache blob has trailing bytes");
  }
  for (auto& [key, value] : decoded) {
    Insert(key, std::move(value));
  }
  return Status::OK();
}

}  // namespace solver
}  // namespace malleus
