#include "solver/solve_cache.h"

#include <cstring>

namespace malleus {
namespace solver {

namespace {

// Field type markers; distinct from plausible Tag() characters is not
// required (Tag has its own marker byte), only mutual distinctness is.
enum : char {
  kMarkTag = 'T',
  kMarkBool = 'B',
  kMarkInt = 'I',
  kMarkDouble = 'D',
  kMarkIntVec = 'i',
  kMarkDoubleVec = 'd',
};

}  // namespace

void CacheKey::AppendRaw64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  bytes_.append(buf, 8);
}

CacheKey& CacheKey::Tag(char tag) {
  bytes_.push_back(kMarkTag);
  bytes_.push_back(tag);
  return *this;
}

CacheKey& CacheKey::Bool(bool v) {
  bytes_.push_back(kMarkBool);
  bytes_.push_back(v ? 1 : 0);
  return *this;
}

CacheKey& CacheKey::Int(int64_t v) {
  bytes_.push_back(kMarkInt);
  AppendRaw64(static_cast<uint64_t>(v));
  return *this;
}

CacheKey& CacheKey::Double(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  bytes_.push_back(kMarkDouble);
  AppendRaw64(bits);
  return *this;
}

CacheKey& CacheKey::Ints(const std::vector<int>& v) {
  bytes_.push_back(kMarkIntVec);
  AppendRaw64(v.size());
  for (int x : v) AppendRaw64(static_cast<uint64_t>(static_cast<int64_t>(x)));
  return *this;
}

CacheKey& CacheKey::Doubles(const std::vector<double>& v) {
  bytes_.push_back(kMarkDoubleVec);
  AppendRaw64(v.size());
  for (double x : v) {
    uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    AppendRaw64(bits);
  }
  return *this;
}

std::shared_ptr<const void> SolveCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void SolveCache::Insert(const std::string& key,
                        std::shared_ptr<const void> value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() >= max_entries_ && entries_.count(key) == 0) {
    entries_.clear();
  }
  entries_.emplace(key, std::move(value));
}

SolveCache::Stats SolveCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_};
}

size_t SolveCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SolveCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace solver
}  // namespace malleus
