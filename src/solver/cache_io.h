// Persistent solve-cache files: the on-disk format behind malleus_served
// --cache-save/--cache-load and scenario_cli's matching flags.
//
// A file holds one section per solve cache. Sections are tagged with the
// producing planner's context fingerprint (cluster + cost model, see
// core::PlannerCacheFingerprint): a SolveCache is only valid for the cost
// model it was filled under, so loaders match sections by fingerprint and
// ignore the rest. The file ends in an FNV-1a hash over everything before
// it; any truncation or bit flip fails the load with a clean Status (the
// caller cold-starts), and a version bump is rejected before the hash is
// even checked so future formats fail with a version message instead of
// "corrupt".
//
// Layout (all integers little-endian, see solver::wire):
//   "MLSCACHE"                     8-byte magic
//   u32 version                    currently 1
//   u64 section_count
//   per section:
//     u64 fingerprint
//     u32 label_size, label        human-readable provenance
//     u32 blob_size, blob          a SolveCache::Serialize() blob
//   u64 fnv1a64                    over every preceding byte

#ifndef MALLEUS_SOLVER_CACHE_IO_H_
#define MALLEUS_SOLVER_CACHE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace malleus {
namespace solver {

inline constexpr uint32_t kCacheFileVersion = 1;

/// One persisted cache: the owning planner context's fingerprint, a
/// human-readable label (session name, CLI invocation), and the entry blob.
struct CacheFileSection {
  uint64_t fingerprint = 0;
  std::string label;
  std::string blob;
};

/// Renders sections into the file format (the full file as bytes).
std::string EncodeCacheFile(const std::vector<CacheFileSection>& sections);

/// Parses a cache file image. Fails with FailedPrecondition on a version
/// mismatch and InvalidArgument on bad magic, truncation, or a hash
/// mismatch — never crashes on hostile bytes.
Result<std::vector<CacheFileSection>> DecodeCacheFile(
    const std::string& bytes);

/// Writes `sections` to `path` (atomic enough for our purposes: full
/// rewrite; partial writes are caught by the hash on the next load).
Status WriteCacheFile(const std::string& path,
                      const std::vector<CacheFileSection>& sections);

/// Reads and decodes `path`. NotFound when the file does not exist.
Result<std::vector<CacheFileSection>> ReadCacheFile(const std::string& path);

}  // namespace solver
}  // namespace malleus

#endif  // MALLEUS_SOLVER_CACHE_IO_H_
