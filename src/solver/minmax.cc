#include "solver/minmax.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/string_util.h"

namespace malleus {
namespace solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Units assignable to one entity are never needed beyond this bound; it
// also guards the int64 cast against floor(inf).
constexpr int64_t kUnitsCeiling = int64_t{1} << 40;

// Max units assignable to entity j when the bottleneck must stay <= t.
int64_t MaxUnitsAt(double rate, int64_t cap, double t) {
  if (rate == kInf) return 0;
  // floor(t / rate) with a tolerance so that t == rate * k counts k.
  const double units = std::floor(t / rate + 1e-9);
  int64_t by_rate = units >= static_cast<double>(kUnitsCeiling)
                        ? kUnitsCeiling
                        : static_cast<int64_t>(units);
  if (by_rate < 0) by_rate = 0;
  if (cap >= 0) by_rate = std::min(by_rate, cap);
  return by_rate;
}

int64_t TotalUnitsAt(const std::vector<double>& rates,
                     const std::vector<int64_t>& caps, double t) {
  int64_t total = 0;
  for (size_t j = 0; j < rates.size(); ++j) {
    total += MaxUnitsAt(rates[j], caps[j], t);
  }
  return total;  // Bounded by n * kUnitsCeiling; no overflow.
}

}  // namespace

Result<BottleneckSolution> SolveBottleneckAllocation(
    const std::vector<double>& rates, const std::vector<int64_t>& caps,
    int64_t total) {
  const size_t n = rates.size();
  if (n == 0) return Status::InvalidArgument("no entities to assign to");
  if (caps.size() != n) {
    return Status::InvalidArgument("rates/caps size mismatch");
  }
  if (total < 0) return Status::InvalidArgument("total must be >= 0");
  for (double r : rates) {
    if (!(r > 0)) {
      return Status::InvalidArgument("rates must be positive (or +inf)");
    }
  }

  BottleneckSolution sol;
  sol.amounts.assign(n, 0);
  if (total == 0) {
    sol.bottleneck = 0.0;
    return sol;
  }

  // Feasibility: the loosest possible bottleneck assigns cap everywhere.
  if (TotalUnitsAt(rates, caps, kInf) < total) {
    return Status::Infeasible(
        StrFormat("capacities admit fewer than %lld units",
                  static_cast<long long>(total)));
  }

  // The optimal bottleneck is rate_j * k for some entity j and integer
  // k <= total. Binary search on k per candidate rate is wasteful; instead
  // binary-search the scalar t over the merged candidate space:
  // first bracket t in (lo, hi], then resolve the exact candidate.
  double hi = 0.0;
  for (size_t j = 0; j < rates.size(); ++j) {
    if (rates[j] != kInf) {
      hi = std::max(hi, rates[j] * static_cast<double>(total));
    }
  }
  double lo = 0.0;
  // 60 halvings give full double precision on the bracket.
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (TotalUnitsAt(rates, caps, mid) >= total) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Snap hi to the exact achieved bottleneck (the largest used product).
  double t = hi;

  // Assign maximal units at t, then trim the excess starting from the
  // highest-rate entities so the secondary sum of products shrinks most.
  std::vector<int64_t>& out = sol.amounts;
  int64_t assigned = 0;
  for (size_t j = 0; j < n; ++j) {
    out[j] = MaxUnitsAt(rates[j], caps[j], t);
    assigned += out[j];
  }
  int64_t excess = assigned - total;
  if (excess > 0) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return rates[a] > rates[b];
    });
    for (size_t idx : order) {
      if (excess == 0) break;
      const int64_t cut = std::min(excess, out[idx]);
      out[idx] -= cut;
      excess -= cut;
    }
  }

  double bottleneck = 0.0;
  for (size_t j = 0; j < n; ++j) {
    if (out[j] > 0) {
      bottleneck = std::max(bottleneck, rates[j] * out[j]);
    }
  }
  sol.bottleneck = bottleneck;
  return sol;
}

Result<BottleneckSolution> SolveBottleneckAllocation(
    const std::vector<double>& rates, int64_t total) {
  std::vector<int64_t> caps(rates.size(), -1);
  return SolveBottleneckAllocation(rates, caps, total);
}

}  // namespace solver
}  // namespace malleus
