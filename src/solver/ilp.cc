#include "solver/ilp.h"

#include <cmath>
#include <limits>
#include <memory>

#include "obs/metrics.h"

namespace malleus {
namespace solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
};

class BranchAndBound {
 public:
  BranchAndBound(const IntegerProgram& ip, const IlpOptions& opts)
      : ip_(ip), opts_(opts) {}

  Result<IlpSolution> Solve() {
    best_obj_ = kInf;
    nodes_ = 0;

    Node root;
    root.lower = ip_.lp.lower_bounds;
    root.upper = ip_.lp.upper_bounds;
    root.lower.resize(ip_.lp.num_vars(), 0.0);
    root.upper.resize(ip_.lp.num_vars(), kInf);

    MALLEUS_RETURN_NOT_OK(Explore(root));

    if (!std::isfinite(best_obj_)) {
      return Status::Infeasible("no integral feasible solution");
    }
    IlpSolution sol;
    sol.x = best_x_;
    sol.objective = best_obj_;
    sol.nodes_explored = nodes_;
    return sol;
  }

 private:
  Status Explore(const Node& node) {  // NOLINT(misc-no-recursion)
    if (++nodes_ > opts_.max_nodes) {
      return Status::ResourceExhausted("branch-and-bound node limit hit");
    }

    LinearProgram relax = ip_.lp;
    relax.lower_bounds = node.lower;
    relax.upper_bounds = node.upper;
    // Infeasible bound boxes can arise from branching.
    for (int j = 0; j < relax.num_vars(); ++j) {
      if (relax.lower_bounds[j] > relax.upper_bounds[j]) {
        return Status::OK();  // Prune.
      }
    }

    Result<LpSolution> relaxed = SolveLp(relax);
    if (!relaxed.ok()) {
      if (relaxed.status().IsInfeasible()) return Status::OK();  // Prune.
      return relaxed.status();
    }
    const LpSolution& lp_sol = *relaxed;
    if (lp_sol.objective >= best_obj_ - 1e-9) return Status::OK();  // Bound.

    // Find the most fractional integral variable.
    int branch_var = -1;
    double branch_frac = 0.0;
    for (int j = 0; j < ip_.lp.num_vars(); ++j) {
      if (j >= static_cast<int>(ip_.integral.size()) || !ip_.integral[j]) {
        continue;
      }
      const double v = lp_sol.x[j];
      const double frac = std::fabs(v - std::round(v));
      if (frac > opts_.integrality_tol && frac > branch_frac) {
        branch_frac = frac;
        branch_var = j;
      }
    }

    if (branch_var < 0) {
      // Integral (round off numeric noise on integral vars) and recompute
      // the objective from the rounded vector so the reported value equals
      // c^T x of the returned solution.
      std::vector<double> x = lp_sol.x;
      double obj = 0.0;
      for (int j = 0; j < ip_.lp.num_vars(); ++j) {
        if (j < static_cast<int>(ip_.integral.size()) && ip_.integral[j]) {
          x[j] = std::round(x[j]);
        }
        obj += ip_.lp.objective[j] * x[j];
      }
      if (obj < best_obj_) {
        best_obj_ = obj;
        best_x_ = std::move(x);
      }
      return Status::OK();
    }

    const double v = lp_sol.x[branch_var];
    // Down branch: x <= floor(v).
    Node down = node;
    down.upper[branch_var] = std::floor(v);
    MALLEUS_RETURN_NOT_OK(Explore(down));
    // Up branch: x >= ceil(v).
    Node up = node;
    up.lower[branch_var] = std::ceil(v);
    return Explore(up);
  }

 public:
  int nodes() const { return nodes_; }

 private:
  const IntegerProgram& ip_;
  const IlpOptions& opts_;
  double best_obj_ = kInf;
  std::vector<double> best_x_;
  int nodes_ = 0;
};

}  // namespace

IntegerProgram IntegerProgram::Create(int num_vars) {
  IntegerProgram ip;
  ip.lp = LinearProgram::Create(num_vars);
  ip.integral.assign(num_vars, true);
  return ip;
}

Result<IlpSolution> SolveIlp(const IntegerProgram& ip,
                             const IlpOptions& options) {
  BranchAndBound bnb(ip, options);
  Result<IlpSolution> result = bnb.Solve();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("solver.ilp.solves")->Increment();
  registry.GetCounter("solver.ilp.nodes_explored")->Increment(bnb.nodes());
  return result;
}

}  // namespace solver
}  // namespace malleus
