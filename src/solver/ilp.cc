#include "solver/ilp.h"

#include <cmath>
#include <limits>
#include <memory>
#include <queue>

#include "obs/metrics.h"

namespace malleus {
namespace solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// An open node of the branch-and-bound tree: a bound box plus the LP
// objective of its parent's relaxation (a valid lower bound on every
// integral solution inside the box, since child boxes only shrink).
struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double bound = -kInf;
  int64_t id = 0;  // Creation sequence number; tie-break for determinism.
};

// Best-first order: lowest bound pops first so the search hits strong
// incumbents early and the `bound >= best` prune fires as often as
// possible; equal bounds pop in creation order, making the exploration
// (and the node accounting) fully deterministic.
struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.id > b.id;
  }
};

// LP-relaxation branch-and-bound over an explicit best-first node queue.
// The explicit frontier (instead of recursion) keeps deep branchings off
// the call stack and makes the node-limit accounting exact: every node
// counted was popped and had its relaxation solved, and the search stops
// the moment the budget is exceeded.
class BranchAndBound {
 public:
  BranchAndBound(const IntegerProgram& ip, const IlpOptions& opts)
      : ip_(ip), opts_(opts) {}

  Result<IlpSolution> Solve() {
    best_obj_ = kInf;
    nodes_ = 0;

    Node root;
    root.lower = ip_.lp.lower_bounds;
    root.upper = ip_.lp.upper_bounds;
    root.lower.resize(ip_.lp.num_vars(), 0.0);
    root.upper.resize(ip_.lp.num_vars(), kInf);
    root.bound = -kInf;
    root.id = next_id_++;

    std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
    open.push(std::move(root));

    while (!open.empty()) {
      Node node = open.top();
      open.pop();
      // A node queued before the incumbent improved may be prunable now.
      if (node.bound >= best_obj_ - 1e-9) continue;
      if (++nodes_ > opts_.max_nodes) {
        return Status::ResourceExhausted("branch-and-bound node limit hit");
      }
      MALLEUS_RETURN_NOT_OK(Expand(node, &open));
    }

    if (!std::isfinite(best_obj_)) {
      return Status::Infeasible("no integral feasible solution");
    }
    IlpSolution sol;
    sol.x = best_x_;
    sol.objective = best_obj_;
    sol.nodes_explored = static_cast<int>(nodes_);
    return sol;
  }

  int nodes() const { return static_cast<int>(nodes_); }

 private:
  // Solves the node's relaxation and either records an integral incumbent
  // or pushes the two child boxes of the most fractional variable.
  Status Expand(const Node& node,
                std::priority_queue<Node, std::vector<Node>, NodeOrder>* open) {
    LinearProgram relax = ip_.lp;
    relax.lower_bounds = node.lower;
    relax.upper_bounds = node.upper;
    // Infeasible bound boxes can arise from branching.
    for (int j = 0; j < relax.num_vars(); ++j) {
      if (relax.lower_bounds[j] > relax.upper_bounds[j]) {
        return Status::OK();  // Prune.
      }
    }

    Result<LpSolution> relaxed = SolveLp(relax);
    if (!relaxed.ok()) {
      if (relaxed.status().IsInfeasible()) return Status::OK();  // Prune.
      return relaxed.status();
    }
    const LpSolution& lp_sol = *relaxed;
    if (lp_sol.objective >= best_obj_ - 1e-9) return Status::OK();  // Bound.

    // Find the most fractional integral variable.
    int branch_var = -1;
    double branch_frac = 0.0;
    for (int j = 0; j < ip_.lp.num_vars(); ++j) {
      if (j >= static_cast<int>(ip_.integral.size()) || !ip_.integral[j]) {
        continue;
      }
      const double v = lp_sol.x[j];
      const double frac = std::fabs(v - std::round(v));
      if (frac > opts_.integrality_tol && frac > branch_frac) {
        branch_frac = frac;
        branch_var = j;
      }
    }

    if (branch_var < 0) {
      // Integral (round off numeric noise on integral vars) and recompute
      // the objective from the rounded vector so the reported value equals
      // c^T x of the returned solution.
      std::vector<double> x = lp_sol.x;
      double obj = 0.0;
      for (int j = 0; j < ip_.lp.num_vars(); ++j) {
        if (j < static_cast<int>(ip_.integral.size()) && ip_.integral[j]) {
          x[j] = std::round(x[j]);
        }
        obj += ip_.lp.objective[j] * x[j];
      }
      if (obj < best_obj_) {
        best_obj_ = obj;
        best_x_ = std::move(x);
      }
      return Status::OK();
    }

    const double v = lp_sol.x[branch_var];
    // Down branch: x <= floor(v).
    Node down;
    down.lower = node.lower;
    down.upper = node.upper;
    down.upper[branch_var] = std::floor(v);
    down.bound = lp_sol.objective;
    down.id = next_id_++;
    open->push(std::move(down));
    // Up branch: x >= ceil(v).
    Node up;
    up.lower = node.lower;
    up.upper = node.upper;
    up.lower[branch_var] = std::ceil(v);
    up.bound = lp_sol.objective;
    up.id = next_id_++;
    open->push(std::move(up));
    return Status::OK();
  }

  const IntegerProgram& ip_;
  const IlpOptions& opts_;
  double best_obj_ = kInf;
  std::vector<double> best_x_;
  int64_t nodes_ = 0;
  int64_t next_id_ = 0;
};

}  // namespace

IntegerProgram IntegerProgram::Create(int num_vars) {
  IntegerProgram ip;
  ip.lp = LinearProgram::Create(num_vars);
  ip.integral.assign(num_vars, true);
  return ip;
}

Result<IlpSolution> SolveIlp(const IntegerProgram& ip,
                             const IlpOptions& options) {
  BranchAndBound bnb(ip, options);
  Result<IlpSolution> result = bnb.Solve();
  auto& registry = obs::MetricsRegistry::Current();
  registry.GetCounter("solver.ilp.solves")->Increment();
  registry.GetCounter("solver.ilp.nodes_explored")->Increment(bnb.nodes());
  return result;
}

}  // namespace solver
}  // namespace malleus
