#include "solver/division.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "solver/minmax.h"

namespace malleus {
namespace solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Internal working state: slow groups sorted by descending rate with a map
// back to the caller's indices.
struct Workspace {
  explicit Workspace(const DivisionProblem& p) : problem(p) {}

  const DivisionProblem& problem;
  std::vector<int> sorted_to_orig;   // sorted slow position -> original index
  std::vector<double> sorted_rates;  // descending
  // Best complete solution found so far.
  double best_obj = kInf;
  std::vector<int> best_assign;      // slow (sorted pos) -> pipeline
  std::vector<int> best_fast;        // pipeline -> #fast groups
  std::vector<int64_t> best_micro;   // pipeline -> m_i
  int64_t nodes = 0;
  bool budget_hit = false;
};

// Capacity contribution of pipeline i for a given slow assignment + fast
// counts: S_i = h_i / y_hat + sum 1/y_k.
std::vector<double> Capacities(const Workspace& ws,
                               const std::vector<int>& assign,
                               const std::vector<int>& fast) {
  const int dp = ws.problem.num_pipelines;
  std::vector<double> cap(dp, 0.0);
  for (int i = 0; i < dp; ++i) {
    cap[i] = fast[i] / ws.problem.fast_rate;
  }
  for (size_t k = 0; k < assign.size(); ++k) {
    cap[assign[k]] += 1.0 / ws.sorted_rates[k];
  }
  return cap;
}

bool PipelineFeasible(const Workspace& ws, const std::vector<int>& assign,
                      int pipeline, int num_fast) {
  if (!ws.problem.pipeline_feasible) return true;
  std::vector<int> slow;
  for (size_t k = 0; k < assign.size(); ++k) {
    if (assign[k] == pipeline) slow.push_back(ws.sorted_to_orig[k]);
  }
  return ws.problem.pipeline_feasible(num_fast, slow);
}

// Exact integer micro-batch allocation for fixed capacities. Returns the
// objective max_i m_i / S_i, or +inf if some pipeline has zero capacity.
double AllocateMicrobatches(const Workspace& ws,
                            const std::vector<double>& caps,
                            std::vector<int64_t>* micro) {
  const int dp = ws.problem.num_pipelines;
  std::vector<double> rates(dp);
  for (int i = 0; i < dp; ++i) {
    if (caps[i] <= 0.0) return kInf;  // Empty pipeline: no feasible plan.
    rates[i] = 1.0 / caps[i];
  }
  Result<BottleneckSolution> r =
      SolveBottleneckAllocation(rates, ws.problem.total_microbatches);
  if (!r.ok()) return kInf;
  // Every pipeline must process at least one micro-batch, otherwise its
  // GPUs idle for the whole step; fold zero-load pipelines into infeasible.
  for (int i = 0; i < dp; ++i) {
    if (r->amounts[i] == 0) return kInf;
  }
  *micro = r->amounts;
  return r->bottleneck;
}

// Distributes the fast groups over pipelines by water-filling on capacity,
// respecting feasibility; when `improve` is set, additionally runs
// single-group exchange improvement (only worth its cost on the winning
// assignment, so the DFS evaluates leaves with improve=false).
// Returns the achieved objective (or +inf) and fills fast/micro.
double DistributeFastAndEvaluate(Workspace& ws, const std::vector<int>& assign,
                                 bool improve, std::vector<int>* fast_out,
                                 std::vector<int64_t>* micro_out) {
  const int dp = ws.problem.num_pipelines;
  const int f_total = ws.problem.num_fast_groups;
  std::vector<int> fast(dp, 0);
  std::vector<int> slow_count(dp, 0);
  for (int p : assign) ++slow_count[p];

  // Pipelines with no slow group need at least one fast group.
  int remaining = f_total;
  for (int i = 0; i < dp; ++i) {
    if (slow_count[i] == 0) {
      if (remaining == 0) return kInf;
      fast[i] = 1;
      --remaining;
    }
  }
  // Water-fill the rest onto the pipeline with the smallest capacity.
  std::vector<double> caps = Capacities(ws, assign, fast);
  for (int g = 0; g < remaining; ++g) {
    int argmin = 0;
    for (int i = 1; i < dp; ++i) {
      if (caps[i] < caps[argmin]) argmin = i;
    }
    ++fast[argmin];
    caps[argmin] += 1.0 / ws.problem.fast_rate;
  }

  // Feasibility repair: shift fast groups toward infeasible pipelines from
  // the most capacious feasible donors. In the worst case every fast group
  // must move once, so the budget scales with f_total.
  for (int round = 0; round < f_total + 4 * dp + 8; ++round) {
    int bad = -1;
    for (int i = 0; i < dp; ++i) {
      if (!PipelineFeasible(ws, assign, i, fast[i])) {
        bad = i;
        break;
      }
    }
    if (bad < 0) break;
    int donor = -1;
    for (int i = 0; i < dp; ++i) {
      if (i == bad) continue;
      const int keep = slow_count[i] == 0 ? 1 : 0;
      if (fast[i] > keep && (donor < 0 || caps[i] > caps[donor])) donor = i;
    }
    if (donor < 0) return kInf;
    --fast[donor];
    ++fast[bad];
    caps[donor] -= 1.0 / ws.problem.fast_rate;
    caps[bad] += 1.0 / ws.problem.fast_rate;
  }
  for (int i = 0; i < dp; ++i) {
    if (!PipelineFeasible(ws, assign, i, fast[i])) return kInf;
  }

  std::vector<int64_t> micro;
  double best = AllocateMicrobatches(ws, caps, &micro);

  // Exchange improvement on the fast-group counts.
  bool improved = improve;
  int guard = 0;
  while (improved && ++guard <= 16) {
    improved = false;
    for (int from = 0; from < dp; ++from) {
      const int keep = slow_count[from] == 0 ? 1 : 0;
      for (int to = 0; to < dp; ++to) {
        if (to == from) continue;
        if (fast[from] <= keep) break;  // Re-check: kept moves drain it.
        --fast[from];
        ++fast[to];
        if (PipelineFeasible(ws, assign, from, fast[from]) &&
            PipelineFeasible(ws, assign, to, fast[to])) {
          std::vector<double> c2 = Capacities(ws, assign, fast);
          std::vector<int64_t> m2;
          const double obj2 = AllocateMicrobatches(ws, c2, &m2);
          if (obj2 < best - 1e-12) {
            best = obj2;
            micro = std::move(m2);
            improved = true;
            continue;  // Keep the move.
          }
        }
        ++fast[from];  // Revert.
        --fast[to];
      }
    }
  }

  if (best == kInf) return kInf;
  *fast_out = std::move(fast);
  *micro_out = std::move(micro);
  return best;
}

void EvaluateLeaf(Workspace& ws, const std::vector<int>& assign) {
  std::vector<int> fast;
  std::vector<int64_t> micro;
  const double obj =
      DistributeFastAndEvaluate(ws, assign, /*improve=*/false, &fast,
                                &micro);
  if (obj < ws.best_obj) {
    ws.best_obj = obj;
    ws.best_assign = assign;
    ws.best_fast = std::move(fast);
    ws.best_micro = std::move(micro);
  }
}

// Re-evaluates the best-known assignment with exchange improvement on.
void PolishBest(Workspace& ws) {
  if (ws.best_obj == kInf) return;
  std::vector<int> fast;
  std::vector<int64_t> micro;
  const double obj = DistributeFastAndEvaluate(
      ws, ws.best_assign, /*improve=*/true, &fast, &micro);
  if (obj < ws.best_obj) {
    ws.best_obj = obj;
    ws.best_fast = std::move(fast);
    ws.best_micro = std::move(micro);
  }
}

// Depth-first enumeration of canonical slow-group placements.
// Canonical form: group k may open at most one new pipeline (first-use
// order), and equal-rate groups are placed in non-decreasing pipeline order.
void Dfs(Workspace& ws, std::vector<int>& assign, int k, int used) {
  if (ws.budget_hit) return;
  if (++ws.nodes > ws.problem.max_nodes) {
    ws.budget_hit = true;
    return;
  }
  const int ms = static_cast<int>(ws.sorted_rates.size());
  const int dp = ws.problem.num_pipelines;
  if (k == ms) {
    EvaluateLeaf(ws, assign);
    return;
  }
  const int first_allowed =
      (k > 0 && ws.sorted_rates[k] == ws.sorted_rates[k - 1]) ? assign[k - 1]
                                                              : 0;
  const int limit = std::min(dp - 1, used);  // used == next fresh pipeline
  for (int p = first_allowed; p <= limit; ++p) {
    assign[k] = p;
    Dfs(ws, assign, k + 1, std::max(used, p + 1));
    if (ws.budget_hit) return;
  }
}

// Greedy construction + move/swap local search, used when the exact
// enumeration exceeds its node budget.
void LocalSearch(Workspace& ws) {
  const int ms = static_cast<int>(ws.sorted_rates.size());
  const int dp = ws.problem.num_pipelines;
  std::vector<int> assign(ms, 0);
  // Greedy: heaviest slow group to the pipeline with least slow mass.
  std::vector<double> mass(dp, 0.0);
  for (int k = 0; k < ms; ++k) {
    int argmin = 0;
    for (int i = 1; i < dp; ++i) {
      if (mass[i] < mass[argmin]) argmin = i;
    }
    assign[k] = argmin;
    mass[argmin] += 1.0 / ws.sorted_rates[k];  // Capacity mass.
  }
  EvaluateLeaf(ws, assign);

  bool improved = true;
  int guard = 0;
  while (improved && ++guard <= 256) {
    improved = false;
    const double before = ws.best_obj;
    // Moves.
    for (int k = 0; k < ms; ++k) {
      const int old = assign[k];
      for (int p = 0; p < dp; ++p) {
        if (p == old) continue;
        assign[k] = p;
        EvaluateLeaf(ws, assign);
      }
      assign[k] = ws.best_obj < before ? ws.best_assign[k] : old;
    }
    // Swaps.
    for (int a = 0; a < ms; ++a) {
      for (int b = a + 1; b < ms; ++b) {
        if (assign[a] == assign[b]) continue;
        std::swap(assign[a], assign[b]);
        EvaluateLeaf(ws, assign);
        if (ws.best_assign == assign) continue;  // Keep improving swap.
        std::swap(assign[a], assign[b]);
      }
    }
    if (ws.best_obj < before - 1e-12) {
      assign = ws.best_assign;
      improved = true;
    }
  }
}

}  // namespace

Result<DivisionResult> SolveDivision(const DivisionProblem& problem) {
  if (problem.num_pipelines <= 0) {
    return Status::InvalidArgument("need at least one pipeline");
  }
  if (problem.num_fast_groups < 0) {
    return Status::InvalidArgument("negative fast group count");
  }
  if (problem.fast_rate <= 0) {
    return Status::InvalidArgument("fast_rate must be positive");
  }
  if (problem.total_microbatches <= 0) {
    return Status::InvalidArgument("need at least one micro-batch");
  }
  const int total_groups = problem.num_fast_groups +
                           static_cast<int>(problem.slow_rates.size());
  if (total_groups < problem.num_pipelines) {
    return Status::Infeasible("fewer groups than pipelines");
  }
  for (double y : problem.slow_rates) {
    if (!(y > 0)) {
      return Status::InvalidArgument("slow rates must be positive");
    }
  }

  Workspace ws(problem);
  const int ms = static_cast<int>(problem.slow_rates.size());
  ws.sorted_to_orig.resize(ms);
  std::iota(ws.sorted_to_orig.begin(), ws.sorted_to_orig.end(), 0);
  std::sort(ws.sorted_to_orig.begin(), ws.sorted_to_orig.end(),
            [&](int a, int b) {
              return problem.slow_rates[a] > problem.slow_rates[b];
            });
  ws.sorted_rates.resize(ms);
  for (int k = 0; k < ms; ++k) {
    ws.sorted_rates[k] = problem.slow_rates[ws.sorted_to_orig[k]];
  }

  std::vector<int> assign(ms, 0);
  Dfs(ws, assign, 0, 0);
  const bool exact = !ws.budget_hit;
  if (ws.budget_hit) {
    LocalSearch(ws);
  }
  PolishBest(ws);

  if (ws.best_obj == kInf) {
    return Status::Infeasible("no feasible pipeline division");
  }

  DivisionResult out;
  out.objective = ws.best_obj;
  out.exact = exact;
  out.nodes_explored = ws.nodes;
  out.pipelines.resize(problem.num_pipelines);
  for (int i = 0; i < problem.num_pipelines; ++i) {
    out.pipelines[i].num_fast = ws.best_fast[i];
    out.pipelines[i].microbatches = ws.best_micro[i];
  }
  for (int k = 0; k < ms; ++k) {
    out.pipelines[ws.best_assign[k]].slow_indices.push_back(
        ws.sorted_to_orig[k]);
  }
  std::vector<double> caps = Capacities(ws, ws.best_assign, ws.best_fast);
  for (int i = 0; i < problem.num_pipelines; ++i) {
    out.pipelines[i].capacity = caps[i];
    std::sort(out.pipelines[i].slow_indices.begin(),
              out.pipelines[i].slow_indices.end());
  }
  return out;
}

}  // namespace solver
}  // namespace malleus
