// Branch-and-bound integer linear programming on top of the simplex solver.

#ifndef MALLEUS_SOLVER_ILP_H_
#define MALLEUS_SOLVER_ILP_H_

#include <vector>

#include "common/result.h"
#include "solver/lp.h"

namespace malleus {
namespace solver {

/// \brief An ILP: a LinearProgram plus per-variable integrality flags.
struct IntegerProgram {
  LinearProgram lp;
  /// integral[j] == true requires x[j] to be an integer.
  std::vector<bool> integral;

  /// Creates a pure ILP (all variables integral) with n variables.
  static IntegerProgram Create(int num_vars);
};

/// Solution of an ILP; x holds integral values for integral variables.
struct IlpSolution {
  std::vector<double> x;
  double objective = 0.0;
  /// Number of branch-and-bound nodes explored (for benchmarking).
  int nodes_explored = 0;
};

/// Options controlling the branch-and-bound search.
struct IlpOptions {
  int max_nodes = 200000;
  double integrality_tol = 1e-6;
};

/// Solves the ILP exactly by LP-relaxation branch-and-bound.
/// Returns Status::Infeasible if no integral feasible point exists.
Result<IlpSolution> SolveIlp(const IntegerProgram& ip,
                             const IlpOptions& options = IlpOptions());

}  // namespace solver
}  // namespace malleus

#endif  // MALLEUS_SOLVER_ILP_H_
