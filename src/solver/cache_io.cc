#include "solver/cache_io.h"

#include <cstdio>

#include "common/hash.h"
#include "common/string_util.h"
#include "solver/solve_cache.h"

namespace malleus {
namespace solver {

namespace {

constexpr char kMagic[] = "MLSCACHE";  // 8 bytes, NUL excluded.
constexpr size_t kMagicSize = 8;

}  // namespace

std::string EncodeCacheFile(const std::vector<CacheFileSection>& sections) {
  std::string out(kMagic, kMagicSize);
  wire::PutU32(&out, kCacheFileVersion);
  wire::PutU64(&out, sections.size());
  for (const CacheFileSection& section : sections) {
    wire::PutU64(&out, section.fingerprint);
    wire::PutString(&out, section.label);
    wire::PutString(&out, section.blob);
  }
  wire::PutU64(&out, Fnv1a64(out));
  return out;
}

Result<std::vector<CacheFileSection>> DecodeCacheFile(
    const std::string& bytes) {
  if (bytes.size() < kMagicSize + 4 + 8 + 8 ||
      bytes.compare(0, kMagicSize, kMagic, kMagicSize) != 0) {
    return Status::InvalidArgument("not a malleus cache file (bad magic)");
  }
  // Version before hash: a future format may move the hash, so the only
  // field this reader may interpret first is the version itself.
  wire::Reader header(bytes.data() + kMagicSize, bytes.size() - kMagicSize);
  uint32_t version;
  if (!header.U32(&version)) {
    return Status::InvalidArgument("cache file truncated in header");
  }
  if (version != kCacheFileVersion) {
    return Status::FailedPrecondition(
        StrFormat("cache file version %u unsupported (this build reads %u)",
                  version, kCacheFileVersion));
  }
  const size_t body_size = bytes.size() - 8;
  wire::Reader footer(bytes.data() + body_size, 8);
  uint64_t stored_hash;
  footer.U64(&stored_hash);
  const uint64_t actual_hash = Fnv1a64(bytes.data(), body_size);
  if (stored_hash != actual_hash) {
    return Status::InvalidArgument(
        "cache file corrupt: content hash mismatch");
  }

  wire::Reader reader(bytes.data() + kMagicSize + 4,
                      body_size - kMagicSize - 4);
  uint64_t count;
  if (!reader.U64(&count)) {
    return Status::InvalidArgument("cache file truncated: no section count");
  }
  std::vector<CacheFileSection> sections;
  for (uint64_t i = 0; i < count; ++i) {
    CacheFileSection section;
    if (!reader.U64(&section.fingerprint) ||
        !reader.String(&section.label) || !reader.String(&section.blob)) {
      return Status::InvalidArgument(
          StrFormat("cache file truncated in section %llu of %llu",
                    static_cast<unsigned long long>(i),
                    static_cast<unsigned long long>(count)));
    }
    sections.push_back(std::move(section));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("cache file has trailing section bytes");
  }
  return sections;
}

Status WriteCacheFile(const std::string& path,
                      const std::vector<CacheFileSection>& sections) {
  const std::string bytes = EncodeCacheFile(sections);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open cache file for write: " + path);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != bytes.size() || !closed_ok) {
    return Status::Unavailable("short write to cache file: " + path);
  }
  return Status::OK();
}

Result<std::vector<CacheFileSection>> ReadCacheFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cache file not found: " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Unavailable("read error on cache file: " + path);
  }
  Result<std::vector<CacheFileSection>> sections = DecodeCacheFile(bytes);
  if (!sections.ok()) {
    return Status(sections.status().code(),
                  path + ": " + sections.status().message());
  }
  return sections;
}

}  // namespace solver
}  // namespace malleus
