// Dense two-phase simplex solver for small linear programs.
//
// The paper solves its planning sub-problems with PuLP/Pyomo; this module is
// the from-scratch replacement. Problems are tiny (tens of variables), so a
// dense tableau simplex with Bland's anti-cycling rule is plenty.

#ifndef MALLEUS_SOLVER_LP_H_
#define MALLEUS_SOLVER_LP_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace malleus {
namespace solver {

/// A linear constraint sum_j coeffs[j] * x[j] (op) rhs.
struct LinearConstraint {
  enum class Op { kLessEqual, kGreaterEqual, kEqual };
  std::vector<double> coeffs;
  Op op = Op::kLessEqual;
  double rhs = 0.0;
};

/// \brief minimize c^T x subject to linear constraints and variable bounds.
///
/// Variables are continuous here; integrality is layered on by the ILP
/// branch-and-bound (see ilp.h).
struct LinearProgram {
  /// Objective coefficients; the problem is a minimization.
  std::vector<double> objective;
  std::vector<LinearConstraint> constraints;
  /// Per-variable lower bounds (default 0) and upper bounds (default +inf).
  std::vector<double> lower_bounds;
  std::vector<double> upper_bounds;

  int num_vars() const { return static_cast<int>(objective.size()); }

  /// Creates a program with n variables, zero objective, bounds [0, +inf).
  static LinearProgram Create(int num_vars);

  /// Adds sum coeffs*x <= rhs.
  void AddLessEqual(std::vector<double> coeffs, double rhs);
  /// Adds sum coeffs*x >= rhs.
  void AddGreaterEqual(std::vector<double> coeffs, double rhs);
  /// Adds sum coeffs*x == rhs.
  void AddEqual(std::vector<double> coeffs, double rhs);
};

/// Solution of an LP.
struct LpSolution {
  std::vector<double> x;
  double objective = 0.0;
};

/// Solves the LP. Returns Status::Infeasible if no feasible point exists and
/// Status::OutOfRange if the objective is unbounded below.
Result<LpSolution> SolveLp(const LinearProgram& lp);

}  // namespace solver
}  // namespace malleus

#endif  // MALLEUS_SOLVER_LP_H_
