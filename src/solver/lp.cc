#include "solver/lp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "obs/metrics.h"

namespace malleus {
namespace solver {

namespace {

constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

// Standard-form tableau simplex. We convert the problem to
//   minimize c^T z   s.t.  A z = b, z >= 0
// by (1) shifting variables by their finite lower bounds, (2) adding upper
// bounds as explicit <= rows, (3) adding slack/surplus variables, and
// (4) running phase 1 with artificial variables.
class Simplex {
 public:
  explicit Simplex(const LinearProgram& lp) : lp_(lp) {}

  Result<LpSolution> Solve() {
    MALLEUS_RETURN_NOT_OK(Prepare());
    MALLEUS_RETURN_NOT_OK(Phase1());
    MALLEUS_RETURN_NOT_OK(Phase2());
    return Extract();
  }

 private:
  Status Prepare() {
    const int n = lp_.num_vars();
    if (n == 0) return Status::InvalidArgument("LP has no variables");
    shift_ = lp_.lower_bounds;
    shift_.resize(n, 0.0);
    for (double lb : shift_) {
      if (!std::isfinite(lb)) {
        return Status::InvalidArgument("lower bounds must be finite");
      }
    }

    // Build rows: user constraints with shifted rhs, then upper bounds.
    struct Row {
      std::vector<double> a;
      LinearConstraint::Op op;
      double rhs;
    };
    std::vector<Row> rows;
    for (const auto& c : lp_.constraints) {
      if (static_cast<int>(c.coeffs.size()) != n) {
        return Status::InvalidArgument("constraint arity mismatch");
      }
      double rhs = c.rhs;
      for (int j = 0; j < n; ++j) rhs -= c.coeffs[j] * shift_[j];
      rows.push_back(Row{c.coeffs, c.op, rhs});
    }
    for (int j = 0; j < n; ++j) {
      double ub = j < static_cast<int>(lp_.upper_bounds.size())
                      ? lp_.upper_bounds[j]
                      : kInf;
      if (std::isfinite(ub)) {
        std::vector<double> a(n, 0.0);
        a[j] = 1.0;
        rows.push_back(
            Row{std::move(a), LinearConstraint::Op::kLessEqual,
                ub - shift_[j]});
      }
    }

    const int m = static_cast<int>(rows.size());
    // Count slacks: one per inequality row.
    int num_slack = 0;
    for (const auto& r : rows) {
      if (r.op != LinearConstraint::Op::kEqual) ++num_slack;
    }
    num_struct_ = n;
    num_cols_ = n + num_slack + m;  // structural + slack + artificial
    art_offset_ = n + num_slack;
    num_rows_ = m;

    tab_.assign(m, std::vector<double>(num_cols_ + 1, 0.0));
    basis_.assign(m, -1);

    int slack = n;
    for (int i = 0; i < m; ++i) {
      Row& r = rows[i];
      double sign = 1.0;
      if (r.rhs < 0) sign = -1.0;  // Make rhs nonnegative.
      for (int j = 0; j < n; ++j) tab_[i][j] = sign * r.a[j];
      tab_[i][num_cols_] = sign * r.rhs;
      if (r.op != LinearConstraint::Op::kEqual) {
        double s = (r.op == LinearConstraint::Op::kLessEqual) ? 1.0 : -1.0;
        tab_[i][slack] = sign * s;
        ++slack;
      }
      // Artificial variable for this row.
      tab_[i][art_offset_ + i] = 1.0;
      basis_[i] = art_offset_ + i;
    }
    return Status::OK();
  }

  // Minimizes the sum of artificial variables.
  Status Phase1() {
    std::vector<double> cost(num_cols_, 0.0);
    for (int i = 0; i < num_rows_; ++i) cost[art_offset_ + i] = 1.0;
    MALLEUS_RETURN_NOT_OK(RunSimplex(cost, /*forbid_artificial=*/false));
    double art_sum = 0.0;
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[i] >= art_offset_) art_sum += tab_[i][num_cols_];
    }
    if (art_sum > 1e-7) {
      return Status::Infeasible("LP is infeasible");
    }
    // Drive remaining (degenerate) artificials out of the basis.
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[i] < art_offset_) continue;
      int pivot_col = -1;
      for (int j = 0; j < art_offset_; ++j) {
        if (std::fabs(tab_[i][j]) > kEps) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) Pivot(i, pivot_col);
      // Else the row is all-zero and redundant; leave the artificial basic
      // at value ~0.
    }
    return Status::OK();
  }

  Status Phase2() {
    std::vector<double> cost(num_cols_, 0.0);
    for (int j = 0; j < num_struct_; ++j) cost[j] = lp_.objective[j];
    return RunSimplex(cost, /*forbid_artificial=*/true);
  }

  // Runs the simplex method on the current tableau with reduced costs
  // derived from `cost`. Uses Bland's rule to avoid cycling.
  Status RunSimplex(const std::vector<double>& cost, bool forbid_artificial) {
    const int col_limit = forbid_artificial ? art_offset_ : num_cols_;
    const int max_iters = 50000;
    for (int iter = 0; iter < max_iters; ++iter) {
      // Reduced costs: r_j = c_j - c_B^T B^-1 A_j, computed directly from
      // the tableau (columns are already B^-1 A).
      int enter = -1;
      for (int j = 0; j < col_limit; ++j) {
        double r = cost[j];
        for (int i = 0; i < num_rows_; ++i) {
          r -= cost[basis_[i]] * tab_[i][j];
        }
        if (r < -1e-8) {
          enter = j;  // Bland: smallest index.
          break;
        }
      }
      if (enter < 0) return Status::OK();  // Optimal.

      int leave = -1;
      double best_ratio = kInf;
      for (int i = 0; i < num_rows_; ++i) {
        if (tab_[i][enter] > kEps) {
          const double ratio = tab_[i][num_cols_] / tab_[i][enter];
          if (ratio < best_ratio - kEps) {
            best_ratio = ratio;
            leave = i;
          } else if (ratio < best_ratio + kEps &&
                     (leave < 0 || basis_[i] < basis_[leave])) {
            // Tie within tolerance: Bland's rule picks the smallest basis
            // index, but the recorded minimum must not drift upward.
            best_ratio = std::min(best_ratio, ratio);
            leave = i;
          }
        }
      }
      if (leave < 0) {
        return Status::OutOfRange("LP objective is unbounded");
      }
      Pivot(leave, enter);
    }
    return Status::Internal("simplex iteration limit exceeded");
  }

  void Pivot(int row, int col) {
    ++pivots_;
    const double p = tab_[row][col];
    for (int j = 0; j <= num_cols_; ++j) tab_[row][j] /= p;
    for (int i = 0; i < num_rows_; ++i) {
      if (i == row) continue;
      const double f = tab_[i][col];
      if (std::fabs(f) < kEps) continue;
      for (int j = 0; j <= num_cols_; ++j) {
        tab_[i][j] -= f * tab_[row][j];
      }
    }
    basis_[row] = col;
  }

  Result<LpSolution> Extract() const {
    LpSolution sol;
    sol.x.assign(num_struct_, 0.0);
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[i] < num_struct_) {
        sol.x[basis_[i]] = tab_[i][num_cols_];
      }
    }
    sol.objective = 0.0;
    for (int j = 0; j < num_struct_; ++j) {
      sol.x[j] += shift_[j];
      sol.objective += lp_.objective[j] * sol.x[j];
    }
    return sol;
  }

 public:
  int pivots() const { return pivots_; }

 private:
  const LinearProgram& lp_;
  int pivots_ = 0;
  std::vector<std::vector<double>> tab_;
  std::vector<int> basis_;
  std::vector<double> shift_;
  int num_struct_ = 0;
  int num_cols_ = 0;
  int num_rows_ = 0;
  int art_offset_ = 0;
};

}  // namespace

LinearProgram LinearProgram::Create(int num_vars) {
  LinearProgram lp;
  lp.objective.assign(num_vars, 0.0);
  lp.lower_bounds.assign(num_vars, 0.0);
  lp.upper_bounds.assign(num_vars, kInf);
  return lp;
}

void LinearProgram::AddLessEqual(std::vector<double> coeffs, double rhs) {
  constraints.push_back(
      {std::move(coeffs), LinearConstraint::Op::kLessEqual, rhs});
}

void LinearProgram::AddGreaterEqual(std::vector<double> coeffs, double rhs) {
  constraints.push_back(
      {std::move(coeffs), LinearConstraint::Op::kGreaterEqual, rhs});
}

void LinearProgram::AddEqual(std::vector<double> coeffs, double rhs) {
  constraints.push_back({std::move(coeffs), LinearConstraint::Op::kEqual, rhs});
}

Result<LpSolution> SolveLp(const LinearProgram& lp) {
  Simplex simplex(lp);
  Result<LpSolution> result = simplex.Solve();
  auto& registry = obs::MetricsRegistry::Current();
  registry.GetCounter("solver.lp.solves")->Increment();
  registry.GetCounter("solver.lp.pivots")->Increment(simplex.pivots());
  return result;
}

}  // namespace solver
}  // namespace malleus
