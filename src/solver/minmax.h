// Exact specialized solvers for the paper's two ILP sub-problem families:
//
//   Eq. (2)  layer assignment:  min max_j { y_j * l_j }
//            s.t. sum_j l_j = L,  0 <= l_j <= cap_j,  l_j integer
//
//   Eq. (3)  data assignment:   min max_i { o_i * m_i }
//            s.t. sum_i m_i = M,  m_i >= 0 integer
//
// Both are bottleneck allocation problems solved exactly by a parametric
// feasibility search: for a threshold t, the assignment l_j = min(cap_j,
// floor(t / y_j)) maximizes the total at bottleneck <= t, so t is feasible
// iff that total reaches the demand. The optimum lies in the finite set
// { y_j * k } and is found by binary search over it. These run orders of
// magnitude faster than generic branch-and-bound; tests cross-check them
// against SolveIlp on random instances.

#ifndef MALLEUS_SOLVER_MINMAX_H_
#define MALLEUS_SOLVER_MINMAX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace malleus {
namespace solver {

/// Result of a bottleneck allocation.
struct BottleneckSolution {
  std::vector<int64_t> amounts;  ///< l_j (or m_i) per entity.
  double bottleneck = 0.0;       ///< max_j rate_j * amounts_j.
};

/// \brief Solves min max_j rate_j * n_j s.t. sum n_j = total,
/// 0 <= n_j <= cap_j (cap_j < 0 means unbounded), n_j integer.
///
/// Entities with rate == +inf can only receive 0. After reaching the optimal
/// bottleneck, the secondary objective pushes work onto low-rate entities
/// (trimming excess from the highest-rate ones first), which minimizes the
/// warm-up/cool-down term sum_j rate_j * n_j among bottleneck-optimal
/// assignments.
///
/// Returns Status::Infeasible when sum cap_j < total.
Result<BottleneckSolution> SolveBottleneckAllocation(
    const std::vector<double>& rates, const std::vector<int64_t>& caps,
    int64_t total);

/// Convenience overload with no capacity limits (Eq. (3)).
Result<BottleneckSolution> SolveBottleneckAllocation(
    const std::vector<double>& rates, int64_t total);

}  // namespace solver
}  // namespace malleus

#endif  // MALLEUS_SOLVER_MINMAX_H_
