// Thread-safe memoization of solver results across a planner sweep.
//
// The planner re-solves structurally identical subproblems dozens of times
// per Plan() call (the same stage composition appears in many pipelines and
// bundle permutations) and re-solves the exact same orchestration problems
// on every re-planning event when the straggler situation has not changed.
// SolveCache stores those results behind a canonical byte-string key built
// with CacheKey.
//
// Keying contract: the key must encode EVERY input that affects the solver's
// output. Inputs that are fixed for the cache's lifetime (most importantly
// the model::CostModel, which core::Planner fixes per instance) may be left
// out of the key, which is why a SolveCache must never be shared between
// planners with different cost models.
//
// Thread-safety: all operations are guarded by one internal mutex. Two
// threads racing on the same missing key will both solve and both insert;
// the solvers are deterministic, so both compute identical values and the
// cache contents are well-defined regardless of interleaving (only the
// hit/miss statistics can vary run to run).

#ifndef MALLEUS_SOLVER_SOLVE_CACHE_H_
#define MALLEUS_SOLVER_SOLVE_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace malleus {
namespace solver {

/// Fixed-width little-endian primitives shared by cache serialization and
/// its value codecs. Everything is length-prefixed and bounds-checked on
/// the way back in, so a truncated or bit-flipped blob fails decoding
/// instead of reading out of range.
namespace wire {

void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutDouble(std::string* out, double v);          // By bit pattern.
void PutString(std::string* out, const std::string& s);
void PutInts(std::string* out, const std::vector<int>& v);
void PutDoubles(std::string* out, const std::vector<double>& v);

/// Bounds-checked sequential reader over a byte span. Every accessor
/// returns false (leaving the output untouched) once the span is
/// exhausted or a length prefix exceeds the remaining bytes.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool Double(double* v);
  bool String(std::string* s);
  bool Ints(std::vector<int>* v);
  bool Doubles(std::vector<double>* v);

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace wire

/// \brief Canonical, collision-free byte encoding of a subproblem.
///
/// Every appended field is prefixed with a one-byte type marker and vectors
/// additionally with their length, so distinct field sequences can never
/// encode to the same bytes (e.g. rates=[1,2],sizes=[3] differs from
/// rates=[1],sizes=[2,3]). Doubles are encoded by bit pattern: keys
/// distinguish values that compare equal but differ in representation
/// (-0.0 vs 0.0), which is the conservative direction for a cache.
class CacheKey {
 public:
  /// Domain tag separating key spaces (e.g. 'O' orchestration, 'L' layers).
  CacheKey& Tag(char tag);
  CacheKey& Bool(bool v);
  CacheKey& Int(int64_t v);
  CacheKey& Double(double v);
  CacheKey& Ints(const std::vector<int>& v);
  CacheKey& Doubles(const std::vector<double>& v);

  const std::string& str() const { return bytes_; }

 private:
  void AppendRaw64(uint64_t v);

  std::string bytes_;
};

/// \brief Per-tag value encoders/decoders for cache persistence.
///
/// The cache stores values type-erased, so serialization needs help from
/// whoever knows the concrete types: one codec entry per CacheKey::Tag
/// domain. Encoders append the value's bytes (use the wire:: helpers);
/// decoders rebuild a value from those bytes, returning null when the
/// bytes are malformed. Tags without a codec are simply skipped on save
/// and on load, which is how a reader degrades gracefully on entry kinds
/// it does not understand (e.g. a newer producer's).
class CacheCodec {
 public:
  using EncodeFn = std::function<void(const void* value, std::string* out)>;
  using DecodeFn =
      std::function<std::shared_ptr<const void>(const char* data, size_t size)>;

  void Register(char tag, EncodeFn encode, DecodeFn decode);
  bool Has(char tag) const { return entries_.count(tag) != 0; }
  /// Null when `tag` is unregistered.
  const EncodeFn* encoder(char tag) const;
  const DecodeFn* decoder(char tag) const;

 private:
  std::map<char, std::pair<EncodeFn, DecodeFn>> entries_;
};

/// \brief Thread-safe key -> solved-result store.
///
/// Values are stored type-erased as shared_ptr<const void>; the typed
/// LookupAs/InsertAs helpers cast them back. Callers must namespace their
/// keys with CacheKey::Tag so two value types never share a key.
class SolveCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
  };

  /// `max_entries` bounds memory: when an insert would exceed it, the whole
  /// cache is dropped (simple and good enough for sweep workloads whose
  /// working set is far below the bound).
  explicit SolveCache(size_t max_entries = 1 << 20)
      : max_entries_(max_entries) {}

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Returns the value stored under `key`, or nullptr. Counts a hit/miss.
  std::shared_ptr<const void> Lookup(const std::string& key);
  /// Stores `value` under `key` (first insert wins on a race; both racers
  /// computed the same value, see header comment).
  void Insert(const std::string& key, std::shared_ptr<const void> value);

  /// Typed lookup; T must match the type inserted under this key's tag.
  template <typename T>
  std::shared_ptr<const T> LookupAs(const std::string& key) {
    return std::static_pointer_cast<const T>(Lookup(key));
  }
  /// Typed insert; returns the stored pointer for immediate use.
  template <typename T>
  std::shared_ptr<const T> InsertAs(const std::string& key, T value) {
    auto ptr = std::make_shared<const T>(std::move(value));
    Insert(key, ptr);
    return ptr;
  }

  Stats stats() const;
  size_t size() const;
  void Clear();

  /// Domain tag of a CacheKey-built key ('L', 'O', ...), or '\0' when the
  /// key does not start with a Tag() field.
  static char KeyTag(const std::string& key);

  /// Serializes every entry whose tag `codec` can encode, sorted by key,
  /// so caches with equal contents serialize byte-identically regardless
  /// of insertion order. Entries with unregistered tags are skipped.
  std::string Serialize(const CacheCodec& codec) const;

  /// Decodes a Serialize() blob and inserts its entries (existing entries
  /// under the same keys are kept — first insert wins, matching Insert's
  /// racing semantics). The blob is validated in full before anything is
  /// inserted, so a malformed blob returns a Status and leaves the cache
  /// untouched. Entries whose tag has no decoder are skipped; an entry
  /// whose decoder rejects its bytes fails the whole load (the blob is
  /// corrupt, not merely newer).
  Status Deserialize(const std::string& blob, const CacheCodec& codec);

 private:
  const size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const void>> entries_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace solver
}  // namespace malleus

#endif  // MALLEUS_SOLVER_SOLVE_CACHE_H_
