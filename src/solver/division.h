// Solver for the pipeline-division MINLP (paper Eq. (4), Appendix B.6):
//
//   min max_i  m_i / S_i     with  S_i = h_i / y_hat + sum_k q_{i,k} / y_k
//   s.t. sum_i m_i = M, sum_i h_i = F, each slow group in exactly one
//        pipeline, m_i/h_i nonnegative integers, q binary.
//
// The (relaxed) capacity S_i is the reciprocal-rate mass of the groups in
// pipeline i; the objective is the bottleneck pipeline's micro-batch load
// per unit capacity (tau(b) and L factor out). Instances are small (DP and
// the number of slow groups are both modest), so we solve exactly by
// depth-first enumeration of slow-group placements with two symmetry
// reductions (interchangeable pipelines; interchangeable equal-rate
// groups), falling back to greedy + local search beyond a node budget.
// Within each placement, fast groups are distributed by water-filling (the
// winning placement additionally gets single-move exchange improvement)
// and the integer m_i allocation is solved exactly (solver/minmax.h).
// The placement dimension is therefore exact while the fast-distribution
// dimension is near-optimal: property tests bound the gap against brute
// force at a few percent, comparable to a time-bounded MINLP solve.

#ifndef MALLEUS_SOLVER_DIVISION_H_
#define MALLEUS_SOLVER_DIVISION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"

namespace malleus {
namespace solver {

/// Decides whether a pipeline made of `num_fast` fast groups plus the slow
/// groups at `slow_indices` can host the model (memory feasibility).
using PipelineFeasibleFn =
    std::function<bool(int num_fast, const std::vector<int>& slow_indices)>;

struct DivisionProblem {
  int num_pipelines = 1;   ///< DP-bar: the (fixed) number of pipelines.
  int num_fast_groups = 0; ///< Count of majority groups sharing fast_rate.
  double fast_rate = 1.0;  ///< y-hat of the fast groups.
  /// Group straggling rates of the minority (slow) groups.
  std::vector<double> slow_rates;
  int64_t total_microbatches = 1;  ///< M = B / b.
  /// Optional memory-feasibility check; all pipelines pass if unset.
  PipelineFeasibleFn pipeline_feasible;
  /// Node budget before falling back to local search.
  int64_t max_nodes = 2'000'000;
};

struct DivisionResult {
  struct Pipeline {
    int num_fast = 0;
    std::vector<int> slow_indices;  ///< Indices into slow_rates.
    int64_t microbatches = 0;       ///< m_i.
    double capacity = 0.0;          ///< S_i.
  };
  std::vector<Pipeline> pipelines;
  /// max_i m_i / S_i — multiply by L * tau(b) for an absolute time estimate.
  double objective = 0.0;
  /// True when the exact enumeration completed within the node budget.
  bool exact = false;
  int64_t nodes_explored = 0;
};

/// Solves the division problem. Returns Status::Infeasible if no placement
/// passes the feasibility callback.
Result<DivisionResult> SolveDivision(const DivisionProblem& problem);

}  // namespace solver
}  // namespace malleus

#endif  // MALLEUS_SOLVER_DIVISION_H_
