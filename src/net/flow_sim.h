// Flow-level event simulator over a Fabric with progressive max–min
// fair-share bandwidth allocation.
//
// A flow is a (src GPU, dst GPU, bytes) transfer that becomes eligible at
// `start_seconds`, waits one path latency, then streams its bytes along
// Fabric::Route(src, dst). Whenever the active-flow set changes (a flow
// arrives or drains), the per-flow rates are recomputed by water-filling:
// repeatedly find the most-contended link, freeze every flow crossing it
// at the link's equal share, subtract, and continue until all flows are
// rated. Between consecutive events rates are constant, so completion
// times follow in closed form — there is no time-stepping, no randomness,
// and the result is bit-deterministic for a given submission sequence.
//
// An isolated flow therefore finishes in exactly
//   start + latency + bytes / min-capacity-on-path,
// matching the analytic model, while k flows crossing one saturated link
// each observe capacity/k — the contention the analytic model cannot see.

#ifndef MALLEUS_NET_FLOW_SIM_H_
#define MALLEUS_NET_FLOW_SIM_H_

#include <cstdint>
#include <vector>

#include "net/fabric.h"
#include "topology/cluster.h"

namespace malleus {
namespace net {

/// One transfer submitted to the simulator.
struct Flow {
  topo::GpuId src = 0;
  topo::GpuId dst = 0;
  double bytes = 0.0;
  /// Simulated time at which the flow becomes eligible to start.
  double start_seconds = 0.0;
  /// Fixed serialization delay before bytes move. Negative (the default)
  /// means "use the cluster's src->dst path latency"; collective lowerings
  /// override it with their ring latency so an uncontended lowering
  /// reproduces the analytic closed form exactly.
  double latency_seconds = -1.0;
  /// Caller-owned label, carried through to the result (e.g. the index of
  /// the pipeline transfer this flow models).
  int64_t tag = 0;
};

/// Completion record of one flow, in submission order.
struct FlowOutcome {
  Flow flow;
  double end_seconds = 0.0;
  /// end_seconds - flow.start_seconds (latency + transfer time + any time
  /// spent throttled by contention).
  double seconds = 0.0;
};

/// Aggregate per-link accounting over one Run().
struct LinkUsage {
  double bytes = 0.0;             ///< Total bytes carried.
  double peak_utilization = 0.0;  ///< Max over time of rate-sum/capacity.
};

/// Which Run() engine to use. Both produce bit-identical results; kLegacy
/// is the seed's from-scratch O(events x links x flows) water-filling, kept
/// as the reference implementation for the testkit differential oracle.
/// kIncremental re-shares only the connected component of links whose
/// active-flow set changed and pulls arrivals from an indexed event queue.
enum class FlowSimMode {
  kIncremental,
  kLegacy,
};

/// The process-wide default: the MALLEUS_FLOWSIM environment variable
/// ("incremental" / "legacy") when set and valid, otherwise kIncremental.
/// Read once and cached for the process lifetime.
FlowSimMode DefaultFlowSimMode();

/// \brief Runs a set of concurrent flows to completion under progressive
/// max–min fair sharing. Submit all flows, call Run() once, then read the
/// outcomes. The Fabric must outlive the simulator.
class FlowSim {
 public:
  explicit FlowSim(const Fabric& fabric);
  FlowSim(const Fabric& fabric, FlowSimMode mode);

  /// Registers a flow; returns its index (also the index into outcomes()).
  /// Must not be called after Run().
  int64_t Submit(const Flow& flow);

  /// Plays every submitted flow to completion. Call exactly once.
  void Run();

  const std::vector<FlowOutcome>& outcomes() const { return outcomes_; }
  const FlowOutcome& outcome(int64_t id) const { return outcomes_[id]; }

  /// Time the last flow drained (0 when nothing was submitted).
  double MakespanSeconds() const { return makespan_seconds_; }

  /// Total bytes moved across all flows.
  double TotalBytes() const { return total_bytes_; }

  /// Per-link usage, indexed by LinkId (size == fabric.num_links()).
  const std::vector<LinkUsage>& link_usage() const { return link_usage_; }

  const Fabric& fabric() const { return *fabric_; }

 private:
  void RunLegacy();
  void RunIncremental();

  const Fabric* fabric_;
  FlowSimMode mode_;
  std::vector<Flow> flows_;
  std::vector<FlowOutcome> outcomes_;
  std::vector<LinkUsage> link_usage_;
  double makespan_seconds_ = 0.0;
  double total_bytes_ = 0.0;
  bool ran_ = false;
};

/// Lowers one ring pass over `gpus` onto `sim`: each GPU streams
/// `bytes_per_hop` to its ring successor, all starting at `start_seconds`
/// with the given fixed `latency_seconds` (pass the collective's aggregate
/// ring latency so an uncontended ring reproduces the analytic closed
/// form). Returns the submitted flow ids. Rings of fewer than two distinct
/// GPUs submit nothing.
std::vector<int64_t> SubmitRing(FlowSim* sim,
                                const std::vector<topo::GpuId>& gpus,
                                double bytes_per_hop, double start_seconds,
                                double latency_seconds);

/// Records a completed FlowSim run into the global metrics registry:
///   <prefix>.flows / <prefix>.bytes_total        counters
///   <prefix>.flow_seconds                        histogram of FCTs
///   <prefix>.peak_link_utilization               gauge (max so far)
///   <prefix>.link.<name>.bytes                   counter per used link
///   <prefix>.link.<name>.peak_utilization        gauge (max so far)
/// Links that carried no bytes are skipped so the registry stays bounded
/// by the links actually exercised. `prefix` is typically "net".
void RecordFlowSimMetrics(const FlowSim& sim, const char* prefix = "net");

}  // namespace net
}  // namespace malleus

#endif  // MALLEUS_NET_FLOW_SIM_H_
