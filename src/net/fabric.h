// Explicit link-graph model of the cluster's communication fabric.
//
// The analytic collective model (src/sim/collective.h) prices every
// transfer against the narrowest link on its path in isolation; overlapping
// transfers never interact. malleus::net makes the fabric explicit so a
// flow-level simulator (flow_sim.h) can charge concurrent transfers for the
// links they *share*: each GPU owns a directional NVLink egress/ingress
// port pair (full duplex, intra-node bandwidth) and each node owns a
// directional InfiniBand NIC pair (inter-node bandwidth). The switch cores
// (NVSwitch intra-node, IB spine inter-node) are assumed non-blocking, as
// on the paper's testbed.
//
// Routes are directional: an intra-node transfer crosses the sender's
// egress port and the receiver's ingress port; a cross-node transfer
// additionally crosses both nodes' NIC (egress on the source node, ingress
// on the destination). A single isolated flow therefore sees exactly the
// bandwidth the analytic model uses (min over its path), while two flows
// that cross the same directional link split it max–min fairly.

#ifndef MALLEUS_NET_FABRIC_H_
#define MALLEUS_NET_FABRIC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "topology/cluster.h"

namespace malleus {
namespace net {

/// Which communication cost model a component uses.
///
/// kAnalytic is the closed-form isolated-link model (cheap; the planner's
/// solver inner loops evaluate thousands of candidates per solve).
/// kFlow runs transfers through the contention-aware flow simulator
/// (what the step simulator and the executor use by default).
enum class NetModel {
  kAnalytic,
  kFlow,
};

/// "analytic" or "flow".
const char* NetModelName(NetModel model);

/// Parses "analytic" / "flow" (case-sensitive).
Result<NetModel> ParseNetModel(const std::string& name);

/// The process-wide default: the MALLEUS_NET_MODEL environment variable
/// ("analytic" / "flow") when set and valid, otherwise the compile-time
/// default (kAnalytic, or kFlow when built with
/// -DMALLEUS_DEFAULT_NET_MODEL_FLOW=1; the `flow-sim` CMake preset sets
/// this). Read once and cached for the process lifetime.
NetModel DefaultNetModel();

/// Index into Fabric's link table.
using LinkId = int;

/// One directional link of the fabric.
struct Link {
  std::string name;           ///< e.g. "gpu3.out", "node1.nic.in".
  double capacity_bps = 0.0;  ///< Bytes per second.
};

/// \brief The directional link graph of a ClusterSpec.
///
/// Link layout (ids are stable for a given cluster shape; sections are
/// fabric-kind dependent but always in this order):
///   [0, 2G)            per-GPU NVLink ports, alternating out/in (all kinds);
///   flat / fat-tree:
///     [2G, 2G + 2N)    per-node NIC ports, alternating out/in;
///     fat-tree only:
///     [2G + 2N, 2G + 2N + 2P)  per-pod spine uplinks, alternating up/down;
///   rail-optimized:
///     [2G, 4G)         per-GPU NIC ports, alternating out/in;
///     [4G, 4G + 2R)    per-rail spine uplinks, alternating up/down
/// with G = num_gpus, N = num_nodes, P = num_pods, R = gpus_per_node.
///
/// Hierarchical routes are deterministic: a cross-pod fat-tree transfer
/// always crosses exactly pod(src).up then pod(dst).down (single logical
/// spine), and a cross-rail transfer crosses rail(src).up then
/// rail(dst).down. Oversubscription shows up as reduced uplink capacity,
/// not as routing randomness, which keeps FlowSim bit-deterministic.
class Fabric {
 public:
  /// Builds the fabric of `cluster` (which must outlive the Fabric).
  explicit Fabric(const topo::ClusterSpec& cluster);

  const topo::ClusterSpec& cluster() const { return *cluster_; }
  int num_links() const { return static_cast<int>(links_.size()); }
  const Link& link(LinkId id) const { return links_[id]; }

  LinkId GpuOut(topo::GpuId gpu) const { return 2 * gpu; }
  LinkId GpuIn(topo::GpuId gpu) const { return 2 * gpu + 1; }
  /// Per-node NIC ports (flat and fat-tree fabrics only).
  LinkId NicOut(topo::NodeId node) const;
  LinkId NicIn(topo::NodeId node) const;
  /// Per-pod spine uplinks (fat-tree fabrics only).
  LinkId PodUp(int pod) const;
  LinkId PodDown(int pod) const;
  /// Per-GPU NIC ports (rail-optimized fabrics only).
  LinkId GpuNicOut(topo::GpuId gpu) const;
  LinkId GpuNicIn(topo::GpuId gpu) const;
  /// Per-rail spine uplinks (rail-optimized fabrics only).
  LinkId RailUp(int rail) const;
  LinkId RailDown(int rail) const;

  /// The directional links a `src` -> `dst` transfer crosses, in path
  /// order. Empty when src == dst (loopback moves no bytes).
  std::vector<LinkId> Route(topo::GpuId src, topo::GpuId dst) const;

  /// Narrowest capacity on Route(src, dst); +inf when src == dst.
  /// Matches topo::ClusterSpec::BandwidthBytesPerSec for distinct GPUs.
  double PathBandwidth(topo::GpuId src, topo::GpuId dst) const;

 private:
  const topo::ClusterSpec* cluster_;
  std::vector<Link> links_;
  int nic_base_ = 0;
  int pod_base_ = 0;
  int rail_base_ = 0;
};

}  // namespace net
}  // namespace malleus

#endif  // MALLEUS_NET_FABRIC_H_
