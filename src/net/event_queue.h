// Indexed d-ary min-heap used as FlowSim's arrival queue.
//
// The seed FlowSim found the next pending arrival with an O(n) scan over
// every submitted flow at every event. Arrival times are known at submit
// and never change, so a plain min-heap retires that scan: peek is O(1),
// push/pop are O(log_d n). A 4-ary layout keeps the tree shallow and the
// children of a node in one cache line, which beats a binary heap on the
// flat sift-down-heavy workload of an event loop.
//
// Ties are broken by ascending id so the pop order is fully deterministic,
// independent of insertion order.

#ifndef MALLEUS_NET_EVENT_QUEUE_H_
#define MALLEUS_NET_EVENT_QUEUE_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace malleus {
namespace net {

/// Min-heap of (key, id) pairs with deterministic (key, id) ordering.
class EventQueue {
 public:
  void Reserve(size_t n) { heap_.reserve(n); }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  double top_key() const {
    MALLEUS_CHECK(!heap_.empty());
    return heap_[0].key;
  }
  int top_id() const {
    MALLEUS_CHECK(!heap_.empty());
    return heap_[0].id;
  }

  void Push(double key, int id) {
    heap_.push_back({key, id});
    SiftUp(heap_.size() - 1);
  }

  /// Removes and returns the id with the smallest (key, id).
  int PopMin() {
    MALLEUS_CHECK(!heap_.empty());
    const int id = heap_[0].id;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
    return id;
  }

 private:
  static constexpr size_t kArity = 4;

  struct Entry {
    double key;
    int id;
  };

  static bool Less(const Entry& a, const Entry& b) {
    return a.key < b.key || (a.key == b.key && a.id < b.id);
  }

  void SiftUp(size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!Less(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void SiftDown(size_t i) {
    Entry e = heap_[i];
    const size_t n = heap_.size();
    while (true) {
      const size_t first = kArity * i + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t last = first + kArity < n ? first + kArity : n;
      for (size_t c = first + 1; c < last; ++c) {
        if (Less(heap_[c], heap_[best])) best = c;
      }
      if (!Less(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Entry> heap_;
};

}  // namespace net
}  // namespace malleus

#endif  // MALLEUS_NET_EVENT_QUEUE_H_
