#include "net/flow_sim.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/logging.h"
#include "net/event_queue.h"
#include "obs/metrics.h"

namespace malleus {
namespace net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A flow counts as drained once its residue is below one millionth of a
// byte (or a relative 1e-12 for huge transfers), absorbing the float error
// accumulated by rate * dt updates.
bool Drained(double remaining, double original) {
  return remaining <= std::max(1e-6, 1e-12 * original);
}

}  // namespace

FlowSimMode DefaultFlowSimMode() {
  static const FlowSimMode cached = [] {
    FlowSimMode mode = FlowSimMode::kIncremental;
    if (const char* env = std::getenv("MALLEUS_FLOWSIM");
        env != nullptr && *env != '\0') {
      const std::string name(env);
      if (name == "legacy") {
        mode = FlowSimMode::kLegacy;
      } else if (name == "incremental") {
        mode = FlowSimMode::kIncremental;
      } else {
        MALLEUS_LOG(Warning) << "ignoring MALLEUS_FLOWSIM=" << name
                             << " (expected incremental or legacy)";
      }
    }
    return mode;
  }();
  return cached;
}

FlowSim::FlowSim(const Fabric& fabric)
    : FlowSim(fabric, DefaultFlowSimMode()) {}

FlowSim::FlowSim(const Fabric& fabric, FlowSimMode mode)
    : fabric_(&fabric), mode_(mode), link_usage_(fabric.num_links()) {}

int64_t FlowSim::Submit(const Flow& flow) {
  MALLEUS_CHECK(!ran_) << "Submit after Run";
  MALLEUS_CHECK(fabric_->cluster().ValidGpu(flow.src));
  MALLEUS_CHECK(fabric_->cluster().ValidGpu(flow.dst));
  MALLEUS_CHECK_GE(flow.bytes, 0.0);
  flows_.push_back(flow);
  return static_cast<int64_t>(flows_.size()) - 1;
}

void FlowSim::Run() {
  MALLEUS_CHECK(!ran_) << "Run called twice";
  ran_ = true;
  if (mode_ == FlowSimMode::kLegacy) {
    RunLegacy();
  } else {
    RunIncremental();
  }
  const int n = static_cast<int>(flows_.size());
  for (int i = 0; i < n; ++i) {
    outcomes_[i].seconds =
        outcomes_[i].end_seconds - outcomes_[i].flow.start_seconds;
  }
}

// The seed implementation: from-scratch water-filling over the full active
// set at every arrival/completion, O(events x links x flows). Kept as the
// reference the incremental engine must match bitwise (the testkit
// differential oracle runs both). The only change from the seed is that the
// per-event scratch vectors (`finish`, `unfrozen`, `keep`) are hoisted out
// of the loop; `finish` needs no re-initialisation because only entries of
// flows active in the current event are ever written or read.
void FlowSim::RunLegacy() {
  const int n = static_cast<int>(flows_.size());
  outcomes_.resize(n);

  // Per-flow playback state. `ready` is when bytes may start moving;
  // degenerate flows (loopback or zero bytes) complete immediately.
  std::vector<std::vector<LinkId>> routes(n);
  std::vector<double> ready(n, 0.0), remaining(n, 0.0), rate(n, 0.0);
  enum class Phase { kPending, kActive, kDone };
  std::vector<Phase> phase(n, Phase::kPending);
  int not_done = 0;
  for (int i = 0; i < n; ++i) {
    const Flow& f = flows_[i];
    outcomes_[i].flow = f;
    if (f.src == f.dst) {
      outcomes_[i].end_seconds = f.start_seconds;
      phase[i] = Phase::kDone;
      continue;
    }
    const double latency =
        f.latency_seconds >= 0.0
            ? f.latency_seconds
            : fabric_->cluster().LatencySec(f.src, f.dst);
    ready[i] = f.start_seconds + latency;
    if (f.bytes <= 0.0) {
      outcomes_[i].end_seconds = ready[i];
      phase[i] = Phase::kDone;
      continue;
    }
    routes[i] = fabric_->Route(f.src, f.dst);
    remaining[i] = f.bytes;
    total_bytes_ += f.bytes;
    for (LinkId l : routes[i]) link_usage_[l].bytes += f.bytes;
    ++not_done;
  }
  for (int i = 0; i < n; ++i) {
    makespan_seconds_ = std::max(makespan_seconds_, outcomes_[i].end_seconds);
  }

  // Water-filling max–min rate allocation over the active set. Rates are
  // recomputed from scratch at every flow arrival/completion (progressive
  // filling); iteration order is by link id then flow id, so the result is
  // deterministic.
  std::vector<double> cap(fabric_->num_links());
  std::vector<int> cnt(fabric_->num_links());
  std::vector<double> rate_sum(fabric_->num_links());
  std::vector<int> unfrozen, keep;
  const auto recompute_rates = [&] {
    for (int l = 0; l < fabric_->num_links(); ++l) {
      cap[l] = fabric_->link(l).capacity_bps;
      cnt[l] = 0;
      rate_sum[l] = 0.0;
    }
    unfrozen.clear();
    for (int i = 0; i < n; ++i) {
      if (phase[i] != Phase::kActive) continue;
      unfrozen.push_back(i);
      for (LinkId l : routes[i]) ++cnt[l];
    }
    while (!unfrozen.empty()) {
      double best_share = kInf;
      LinkId best_link = -1;
      for (int l = 0; l < fabric_->num_links(); ++l) {
        if (cnt[l] == 0) continue;
        // Exact arithmetic keeps cap >= 0; clamp to a sliver of the link's
        // capacity so float cancellation can never hand out a zero rate.
        const double floor = fabric_->link(l).capacity_bps * 1e-9;
        const double share = std::max(cap[l], floor) / cnt[l];
        if (share < best_share) {
          best_share = share;
          best_link = l;
        }
      }
      MALLEUS_CHECK(best_link >= 0);
      keep.clear();
      for (int i : unfrozen) {
        const bool crosses =
            std::find(routes[i].begin(), routes[i].end(), best_link) !=
            routes[i].end();
        if (!crosses) {
          keep.push_back(i);
          continue;
        }
        rate[i] = best_share;
        for (LinkId l : routes[i]) {
          cap[l] -= best_share;
          --cnt[l];
          rate_sum[l] += best_share;
        }
      }
      unfrozen.swap(keep);
    }
    for (int l = 0; l < fabric_->num_links(); ++l) {
      if (rate_sum[l] <= 0.0) continue;
      link_usage_[l].peak_utilization =
          std::max(link_usage_[l].peak_utilization,
                   rate_sum[l] / fabric_->link(l).capacity_bps);
    }
  };

  std::vector<double> finish(n, kInf);
  double now = 0.0;
  while (not_done > 0) {
    bool have_active = false;
    for (int i = 0; i < n; ++i) have_active |= phase[i] == Phase::kActive;
    if (!have_active) {
      // Idle fabric: jump to the earliest pending arrival.
      double next_ready = kInf;
      for (int i = 0; i < n; ++i) {
        if (phase[i] == Phase::kPending) {
          next_ready = std::min(next_ready, ready[i]);
        }
      }
      MALLEUS_CHECK(next_ready < kInf) << "flow sim stalled";
      now = next_ready;
    }

    // Activate arrivals due now, then (re)fill rates.
    for (int i = 0; i < n; ++i) {
      if (phase[i] == Phase::kPending && ready[i] <= now) {
        phase[i] = Phase::kActive;
      }
    }
    recompute_rates();

    // Time of the next event: first pending arrival or first drain.
    double next_ready = kInf;
    for (int i = 0; i < n; ++i) {
      if (phase[i] == Phase::kPending) {
        next_ready = std::min(next_ready, ready[i]);
      }
    }
    double next_drain = kInf;
    for (int i = 0; i < n; ++i) {
      if (phase[i] == Phase::kActive) {
        MALLEUS_CHECK(rate[i] > 0.0);
        finish[i] = now + remaining[i] / rate[i];
        next_drain = std::min(next_drain, finish[i]);
      }
    }
    const double t_next = std::min(next_ready, next_drain);
    MALLEUS_CHECK(t_next < kInf) << "flow sim stalled";

    // Advance active flows to t_next and retire the drained ones. A flow
    // whose residue drains within a relative whisker of t_next completes
    // *at* t_next: this is what guarantees forward progress even when a
    // tiny residue's drain interval underflows against `now`.
    const double horizon = t_next + 1e-9 * std::max(1.0, std::abs(t_next));
    for (int i = 0; i < n; ++i) {
      if (phase[i] != Phase::kActive) continue;
      if (finish[i] <= horizon || Drained(remaining[i] - rate[i] * (t_next - now),
                                          flows_[i].bytes)) {
        phase[i] = Phase::kDone;
        outcomes_[i].end_seconds = t_next;
        makespan_seconds_ = std::max(makespan_seconds_, t_next);
        --not_done;
      } else {
        remaining[i] -= rate[i] * (t_next - now);
      }
    }
    now = t_next;
  }
}

// Incremental engine. Identical arithmetic to RunLegacy, restructured so the
// per-event cost scales with what actually changed:
//
//  - Arrivals sit in an indexed 4-ary min-heap (their ready times are fixed
//    at submit), replacing the O(n) next-arrival scans.
//  - Water-filling is recomputed only over the connected component (in the
//    flow/link bipartite graph) of links whose active-flow set changed.
//    Progressive filling decomposes across components: freezing a link in
//    one component never touches another component's cap/cnt state, and the
//    strict `<` + lowest-link-id tie-break restricted to a component picks
//    the same freeze order the global scan would, so per-flow rates — and
//    the peak-utilization accounting — stay bitwise identical.
//  - Untouched links keep their rate_sum, so their peak-utilization
//    max-update would be a no-op; only component links are re-checked.
//
// What deliberately does NOT change: the per-event advance of every active
// flow (`remaining -= rate * dt`, `finish = now + remaining / rate`). The
// legacy engine performs that arithmetic for every active flow at every
// event, and lazy/stale variants differ in ulps, so the O(active) fused
// finish/advance scan is the price of bit-identity. The win is removing the
// O(links x flows) from-scratch refill, which dominates at scale.
void FlowSim::RunIncremental() {
  const int n = static_cast<int>(flows_.size());
  const int num_links = fabric_->num_links();
  outcomes_.resize(n);

  std::vector<std::vector<LinkId>> routes(n);
  std::vector<double> ready(n, 0.0), remaining(n, 0.0), rate(n, 0.0);
  EventQueue pending;
  pending.Reserve(flows_.size());
  int not_done = 0;
  for (int i = 0; i < n; ++i) {
    const Flow& f = flows_[i];
    outcomes_[i].flow = f;
    if (f.src == f.dst) {
      outcomes_[i].end_seconds = f.start_seconds;
      continue;
    }
    const double latency =
        f.latency_seconds >= 0.0
            ? f.latency_seconds
            : fabric_->cluster().LatencySec(f.src, f.dst);
    ready[i] = f.start_seconds + latency;
    if (f.bytes <= 0.0) {
      outcomes_[i].end_seconds = ready[i];
      continue;
    }
    routes[i] = fabric_->Route(f.src, f.dst);
    remaining[i] = f.bytes;
    total_bytes_ += f.bytes;
    for (LinkId l : routes[i]) link_usage_[l].bytes += f.bytes;
    pending.Push(ready[i], i);
    ++not_done;
  }
  for (int i = 0; i < n; ++i) {
    makespan_seconds_ = std::max(makespan_seconds_, outcomes_[i].end_seconds);
  }

  // Active flows, compactly (swap-removal; order never affects results —
  // every consumer either sorts or reduces with min/max). Per-link active
  // flow lists with per-flow back-pointers give O(route length) membership
  // updates. `dirty` collects the links whose flow set changed this event.
  std::vector<int> active;
  active.reserve(flows_.size());
  std::vector<int> active_pos(n, -1);  // index into `active`, -1 = not active
  std::vector<std::vector<int>> link_flows(num_links);
  std::vector<std::vector<int>> link_pos(n);  // position within link_flows
  std::vector<LinkId> dirty;

  const auto activate = [&](int i) {
    active_pos[i] = static_cast<int>(active.size());
    active.push_back(i);
    link_pos[i].resize(routes[i].size());
    for (size_t k = 0; k < routes[i].size(); ++k) {
      const LinkId l = routes[i][k];
      link_pos[i][k] = static_cast<int>(link_flows[l].size());
      link_flows[l].push_back(i);
      dirty.push_back(l);
    }
  };

  const auto retire = [&](int i) {
    for (size_t k = 0; k < routes[i].size(); ++k) {
      const LinkId l = routes[i][k];
      const int p = link_pos[i][k];
      const int moved = link_flows[l].back();
      link_flows[l][p] = moved;
      link_flows[l].pop_back();
      if (moved != i) {
        for (size_t km = 0; km < routes[moved].size(); ++km) {
          if (routes[moved][km] == l) {
            link_pos[moved][km] = p;
            break;
          }
        }
      }
      dirty.push_back(l);
    }
    const int p = active_pos[i];
    const int moved = active.back();
    active[p] = moved;
    active.pop_back();
    active_pos[moved] = p;
    active_pos[i] = -1;
  };

  // Component-restricted water-filling. Epoch stamps avoid clearing the
  // visited arrays; cap/cnt/rate_sum persist across events and are
  // re-initialised only for the component's links.
  std::vector<double> cap(num_links);
  std::vector<int> cnt(num_links, 0);
  std::vector<double> rate_sum(num_links, 0.0);
  std::vector<int> link_epoch(num_links, 0), flow_epoch(n, 0);
  int epoch = 0;
  std::vector<LinkId> comp_links, bfs;
  std::vector<int> comp_flows, unfrozen, keep;

  const auto recompute_dirty = [&] {
    if (dirty.empty()) return;
    ++epoch;
    comp_links.clear();
    comp_flows.clear();
    bfs.clear();
    for (LinkId l : dirty) {
      if (link_epoch[l] == epoch) continue;
      link_epoch[l] = epoch;
      comp_links.push_back(l);
      bfs.push_back(l);
    }
    dirty.clear();
    while (!bfs.empty()) {
      const LinkId l = bfs.back();
      bfs.pop_back();
      for (int i : link_flows[l]) {
        if (flow_epoch[i] == epoch) continue;
        flow_epoch[i] = epoch;
        comp_flows.push_back(i);
        for (LinkId l2 : routes[i]) {
          if (link_epoch[l2] == epoch) continue;
          link_epoch[l2] = epoch;
          comp_links.push_back(l2);
          bfs.push_back(l2);
        }
      }
    }
    // Ascending order reproduces the legacy scan order within the
    // component: flows by id when seeding `unfrozen`, links by id in the
    // best-share argmin (ties go to the lowest link id).
    std::sort(comp_links.begin(), comp_links.end());
    std::sort(comp_flows.begin(), comp_flows.end());
    for (LinkId l : comp_links) {
      cap[l] = fabric_->link(l).capacity_bps;
      cnt[l] = 0;
      rate_sum[l] = 0.0;
    }
    unfrozen.clear();
    for (int i : comp_flows) {
      unfrozen.push_back(i);
      for (LinkId l : routes[i]) ++cnt[l];
    }
    while (!unfrozen.empty()) {
      double best_share = kInf;
      LinkId best_link = -1;
      for (LinkId l : comp_links) {
        if (cnt[l] == 0) continue;
        const double floor = fabric_->link(l).capacity_bps * 1e-9;
        const double share = std::max(cap[l], floor) / cnt[l];
        if (share < best_share) {
          best_share = share;
          best_link = l;
        }
      }
      MALLEUS_CHECK(best_link >= 0);
      keep.clear();
      for (int i : unfrozen) {
        const bool crosses =
            std::find(routes[i].begin(), routes[i].end(), best_link) !=
            routes[i].end();
        if (!crosses) {
          keep.push_back(i);
          continue;
        }
        rate[i] = best_share;
        for (LinkId l : routes[i]) {
          cap[l] -= best_share;
          --cnt[l];
          rate_sum[l] += best_share;
        }
      }
      unfrozen.swap(keep);
    }
    for (LinkId l : comp_links) {
      if (rate_sum[l] <= 0.0) continue;
      link_usage_[l].peak_utilization =
          std::max(link_usage_[l].peak_utilization,
                   rate_sum[l] / fabric_->link(l).capacity_bps);
    }
  };

  std::vector<double> finish(n, kInf);
  double now = 0.0;
  while (not_done > 0) {
    if (active.empty()) {
      // Idle fabric: jump to the earliest pending arrival.
      MALLEUS_CHECK(!pending.empty()) << "flow sim stalled";
      now = pending.top_key();
    }

    // Activate arrivals due now, then re-share their components.
    while (!pending.empty() && pending.top_key() <= now) {
      activate(pending.PopMin());
    }
    recompute_dirty();

    // Time of the next event: first pending arrival or first drain.
    const double next_ready = pending.empty() ? kInf : pending.top_key();
    double next_drain = kInf;
    for (int i : active) {
      MALLEUS_CHECK(rate[i] > 0.0);
      finish[i] = now + remaining[i] / rate[i];
      next_drain = std::min(next_drain, finish[i]);
    }
    const double t_next = std::min(next_ready, next_drain);
    MALLEUS_CHECK(t_next < kInf) << "flow sim stalled";

    // Advance active flows to t_next and retire the drained ones (same
    // whisker rule as RunLegacy).
    const double horizon = t_next + 1e-9 * std::max(1.0, std::abs(t_next));
    for (size_t a = 0; a < active.size();) {
      const int i = active[a];
      if (finish[i] <= horizon || Drained(remaining[i] - rate[i] * (t_next - now),
                                          flows_[i].bytes)) {
        outcomes_[i].end_seconds = t_next;
        makespan_seconds_ = std::max(makespan_seconds_, t_next);
        --not_done;
        retire(i);  // swap-removes active[a]; re-examine the moved entry
      } else {
        remaining[i] -= rate[i] * (t_next - now);
        ++a;
      }
    }
    now = t_next;
  }
}

std::vector<int64_t> SubmitRing(FlowSim* sim,
                                const std::vector<topo::GpuId>& gpus,
                                double bytes_per_hop, double start_seconds,
                                double latency_seconds) {
  std::vector<int64_t> ids;
  if (gpus.size() < 2) return ids;
  ids.reserve(gpus.size());
  for (size_t i = 0; i < gpus.size(); ++i) {
    Flow f;
    f.src = gpus[i];
    f.dst = gpus[(i + 1) % gpus.size()];
    f.bytes = bytes_per_hop;
    f.start_seconds = start_seconds;
    f.latency_seconds = latency_seconds;
    ids.push_back(sim->Submit(f));
  }
  return ids;
}

void RecordFlowSimMetrics(const FlowSim& sim, const char* prefix) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Current();
  const std::string p(prefix);
  registry.GetCounter(p + ".flows")
      ->Increment(static_cast<double>(sim.outcomes().size()));
  registry.GetCounter(p + ".bytes_total")->Increment(sim.TotalBytes());
  obs::Histogram* fct = registry.GetHistogram(p + ".flow_seconds");
  for (const FlowOutcome& o : sim.outcomes()) fct->Observe(o.seconds);
  double peak = 0.0;
  for (int l = 0; l < sim.fabric().num_links(); ++l) {
    const LinkUsage& usage = sim.link_usage()[l];
    if (usage.bytes <= 0.0) continue;
    peak = std::max(peak, usage.peak_utilization);
    const std::string& name = sim.fabric().link(l).name;
    registry.GetCounter(p + ".link." + name + ".bytes")
        ->Increment(usage.bytes);
    obs::Gauge* g = registry.GetGauge(p + ".link." + name +
                                      ".peak_utilization");
    g->Set(std::max(g->Value(), usage.peak_utilization));
  }
  obs::Gauge* g = registry.GetGauge(p + ".peak_link_utilization");
  g->Set(std::max(g->Value(), peak));
}

}  // namespace net
}  // namespace malleus
