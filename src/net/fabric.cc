#include "net/fabric.h"

#include <cstdlib>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace malleus {
namespace net {

const char* NetModelName(NetModel model) {
  return model == NetModel::kAnalytic ? "analytic" : "flow";
}

Result<NetModel> ParseNetModel(const std::string& name) {
  if (name == "analytic") return NetModel::kAnalytic;
  if (name == "flow") return NetModel::kFlow;
  return Status::InvalidArgument("unknown net model: " + name +
                                 " (expected analytic or flow)");
}

NetModel DefaultNetModel() {
  static const NetModel cached = [] {
#if defined(MALLEUS_DEFAULT_NET_MODEL_FLOW) && MALLEUS_DEFAULT_NET_MODEL_FLOW
    NetModel model = NetModel::kFlow;
#else
    NetModel model = NetModel::kAnalytic;
#endif
    if (const char* env = std::getenv("MALLEUS_NET_MODEL");
        env != nullptr && *env != '\0') {
      Result<NetModel> parsed = ParseNetModel(env);
      if (parsed.ok()) {
        model = *parsed;
      } else {
        MALLEUS_LOG(Warning) << "ignoring MALLEUS_NET_MODEL=" << env << ": "
                             << parsed.status().ToString();
      }
    }
    return model;
  }();
  return cached;
}

Fabric::Fabric(const topo::ClusterSpec& cluster) : cluster_(&cluster) {
  const double nvlink_bps = cluster.link().intra_node_gbps * 1e9;
  const double ib_bps = cluster.link().inter_node_gbps * 1e9;
  links_.reserve(2 * cluster.num_gpus() + 2 * cluster.num_nodes());
  for (topo::GpuId g = 0; g < cluster.num_gpus(); ++g) {
    links_.push_back({StrFormat("gpu%d.out", g), nvlink_bps});
    links_.push_back({StrFormat("gpu%d.in", g), nvlink_bps});
  }
  nic_base_ = static_cast<int>(links_.size());
  for (topo::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    links_.push_back({StrFormat("node%d.nic.out", n), ib_bps});
    links_.push_back({StrFormat("node%d.nic.in", n), ib_bps});
  }
}

std::vector<LinkId> Fabric::Route(topo::GpuId src, topo::GpuId dst) const {
  MALLEUS_CHECK(cluster_->ValidGpu(src));
  MALLEUS_CHECK(cluster_->ValidGpu(dst));
  if (src == dst) return {};
  if (cluster_->SameNode(src, dst)) return {GpuOut(src), GpuIn(dst)};
  return {GpuOut(src), NicOut(cluster_->NodeOf(src)),
          NicIn(cluster_->NodeOf(dst)), GpuIn(dst)};
}

double Fabric::PathBandwidth(topo::GpuId src, topo::GpuId dst) const {
  double bw = std::numeric_limits<double>::infinity();
  for (LinkId l : Route(src, dst)) {
    bw = std::min(bw, links_[l].capacity_bps);
  }
  return bw;
}

}  // namespace net
}  // namespace malleus
