#include "net/fabric.h"

#include <cstdlib>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace malleus {
namespace net {

const char* NetModelName(NetModel model) {
  return model == NetModel::kAnalytic ? "analytic" : "flow";
}

Result<NetModel> ParseNetModel(const std::string& name) {
  if (name == "analytic") return NetModel::kAnalytic;
  if (name == "flow") return NetModel::kFlow;
  return Status::InvalidArgument("unknown net model: " + name +
                                 " (expected analytic or flow)");
}

NetModel DefaultNetModel() {
  static const NetModel cached = [] {
#if defined(MALLEUS_DEFAULT_NET_MODEL_FLOW) && MALLEUS_DEFAULT_NET_MODEL_FLOW
    NetModel model = NetModel::kFlow;
#else
    NetModel model = NetModel::kAnalytic;
#endif
    if (const char* env = std::getenv("MALLEUS_NET_MODEL");
        env != nullptr && *env != '\0') {
      Result<NetModel> parsed = ParseNetModel(env);
      if (parsed.ok()) {
        model = *parsed;
      } else {
        MALLEUS_LOG(Warning) << "ignoring MALLEUS_NET_MODEL=" << env << ": "
                             << parsed.status().ToString();
      }
    }
    return model;
  }();
  return cached;
}

Fabric::Fabric(const topo::ClusterSpec& cluster) : cluster_(&cluster) {
  using topo::FabricSpec;
  const double nvlink_bps = cluster.link().intra_node_gbps * 1e9;
  const double ib_bps = cluster.link().inter_node_gbps * 1e9;
  const FabricSpec::Kind kind = cluster.fabric().kind;
  for (topo::GpuId g = 0; g < cluster.num_gpus(); ++g) {
    links_.push_back({StrFormat("gpu%d.out", g), nvlink_bps});
    links_.push_back({StrFormat("gpu%d.in", g), nvlink_bps});
  }
  if (kind == FabricSpec::Kind::kRail) {
    nic_base_ = static_cast<int>(links_.size());
    for (topo::GpuId g = 0; g < cluster.num_gpus(); ++g) {
      links_.push_back({StrFormat("gpu%d.nic.out", g), ib_bps});
      links_.push_back({StrFormat("gpu%d.nic.in", g), ib_bps});
    }
    rail_base_ = static_cast<int>(links_.size());
    const double uplink_bps = cluster.RailUplinkBytesPerSec();
    for (int r = 0; r < cluster.gpus_per_node(); ++r) {
      links_.push_back({StrFormat("rail%d.up", r), uplink_bps});
      links_.push_back({StrFormat("rail%d.down", r), uplink_bps});
    }
    return;
  }
  nic_base_ = static_cast<int>(links_.size());
  for (topo::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    links_.push_back({StrFormat("node%d.nic.out", n), ib_bps});
    links_.push_back({StrFormat("node%d.nic.in", n), ib_bps});
  }
  if (kind == FabricSpec::Kind::kFatTree) {
    pod_base_ = static_cast<int>(links_.size());
    const double uplink_bps = cluster.PodUplinkBytesPerSec();
    for (int p = 0; p < cluster.num_pods(); ++p) {
      links_.push_back({StrFormat("pod%d.up", p), uplink_bps});
      links_.push_back({StrFormat("pod%d.down", p), uplink_bps});
    }
  }
}

LinkId Fabric::NicOut(topo::NodeId node) const {
  MALLEUS_CHECK(cluster_->fabric().kind != topo::FabricSpec::Kind::kRail);
  return nic_base_ + 2 * node;
}

LinkId Fabric::NicIn(topo::NodeId node) const {
  MALLEUS_CHECK(cluster_->fabric().kind != topo::FabricSpec::Kind::kRail);
  return nic_base_ + 2 * node + 1;
}

LinkId Fabric::PodUp(int pod) const {
  MALLEUS_CHECK(cluster_->fabric().kind == topo::FabricSpec::Kind::kFatTree);
  return pod_base_ + 2 * pod;
}

LinkId Fabric::PodDown(int pod) const {
  MALLEUS_CHECK(cluster_->fabric().kind == topo::FabricSpec::Kind::kFatTree);
  return pod_base_ + 2 * pod + 1;
}

LinkId Fabric::GpuNicOut(topo::GpuId gpu) const {
  MALLEUS_CHECK(cluster_->fabric().kind == topo::FabricSpec::Kind::kRail);
  return nic_base_ + 2 * gpu;
}

LinkId Fabric::GpuNicIn(topo::GpuId gpu) const {
  MALLEUS_CHECK(cluster_->fabric().kind == topo::FabricSpec::Kind::kRail);
  return nic_base_ + 2 * gpu + 1;
}

LinkId Fabric::RailUp(int rail) const {
  MALLEUS_CHECK(cluster_->fabric().kind == topo::FabricSpec::Kind::kRail);
  return rail_base_ + 2 * rail;
}

LinkId Fabric::RailDown(int rail) const {
  MALLEUS_CHECK(cluster_->fabric().kind == topo::FabricSpec::Kind::kRail);
  return rail_base_ + 2 * rail + 1;
}

std::vector<LinkId> Fabric::Route(topo::GpuId src, topo::GpuId dst) const {
  using topo::FabricSpec;
  MALLEUS_CHECK(cluster_->ValidGpu(src));
  MALLEUS_CHECK(cluster_->ValidGpu(dst));
  if (src == dst) return {};
  if (cluster_->SameNode(src, dst)) return {GpuOut(src), GpuIn(dst)};
  switch (cluster_->fabric().kind) {
    case FabricSpec::Kind::kFlat:
      break;
    case FabricSpec::Kind::kFatTree:
      if (!cluster_->SamePod(src, dst)) {
        return {GpuOut(src),
                NicOut(cluster_->NodeOf(src)),
                PodUp(cluster_->PodOf(cluster_->NodeOf(src))),
                PodDown(cluster_->PodOf(cluster_->NodeOf(dst))),
                NicIn(cluster_->NodeOf(dst)),
                GpuIn(dst)};
      }
      break;
    case FabricSpec::Kind::kRail:
      if (cluster_->SameRail(src, dst)) {
        return {GpuOut(src), GpuNicOut(src), GpuNicIn(dst), GpuIn(dst)};
      }
      return {GpuOut(src),
              GpuNicOut(src),
              RailUp(cluster_->RailOf(src)),
              RailDown(cluster_->RailOf(dst)),
              GpuNicIn(dst),
              GpuIn(dst)};
  }
  return {GpuOut(src), NicOut(cluster_->NodeOf(src)),
          NicIn(cluster_->NodeOf(dst)), GpuIn(dst)};
}

double Fabric::PathBandwidth(topo::GpuId src, topo::GpuId dst) const {
  double bw = std::numeric_limits<double>::infinity();
  for (LinkId l : Route(src, dst)) {
    bw = std::min(bw, links_[l].capacity_bps);
  }
  return bw;
}

}  // namespace net
}  // namespace malleus
