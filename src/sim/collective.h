// Cost models of the NCCL-style communication primitives the runtime uses:
// ring all-reduce / reduce-scatter / all-gather, point-to-point activation
// transfers, and fused batched-send-recv (used by model migration).
//
// Every primitive exists in two forms selected by net::NetModel:
//   - kAnalytic: the closed-form isolated-link model below (each transfer
//     priced against the narrowest link on its path, concurrent transfers
//     never interact). Cheap; the planner's solver inner loops use it.
//   - kFlow: the primitive is lowered onto net::FlowSim as a set of
//     concurrent flows over the explicit fabric graph, so transfers that
//     share a link split its bandwidth max–min fairly. Without contention
//     the two models agree (the flow lowerings reproduce the analytic
//     closed forms exactly for an isolated primitive).

#ifndef MALLEUS_SIM_COLLECTIVE_H_
#define MALLEUS_SIM_COLLECTIVE_H_

#include <cstdint>
#include <vector>

#include "net/fabric.h"
#include "topology/cluster.h"

namespace malleus {
namespace sim {

/// Bandwidth (bytes/s) of the narrowest link among `gpus` (ring collectives
/// are bottlenecked by the slowest hop; any cross-node pair forces IB).
///
/// Convention for degenerate groups: a single-GPU or empty group performs
/// no inter-GPU traffic, so there is no bottleneck to report; both return
/// the intra-node (NVLink) bandwidth — the fastest link — so degenerate
/// groups never dominate a min() over groups and callers dividing by the
/// result stay finite. Collective times over such groups are 0 regardless.
double GroupBottleneckBandwidth(const topo::ClusterSpec& cluster,
                                const std::vector<topo::GpuId>& gpus);

/// Aggregate alpha (latency) cost of a ring over `gpus`: the sum of the
/// per-hop latencies of the first n-1 hops (a ring collective takes n-1
/// steps, each bounded by its hop latency). 0 for degenerate groups.
double RingLatencySeconds(const topo::ClusterSpec& cluster,
                          const std::vector<topo::GpuId>& gpus);

/// Ring all-reduce time for `bytes` over `gpus`.
double AllReduceSeconds(const topo::ClusterSpec& cluster,
                        const std::vector<topo::GpuId>& gpus, double bytes);

/// Ring reduce-scatter time for `bytes` over `gpus`.
double ReduceScatterSeconds(const topo::ClusterSpec& cluster,
                            const std::vector<topo::GpuId>& gpus,
                            double bytes);

/// Ring all-gather time for `bytes` over `gpus`.
double AllGatherSeconds(const topo::ClusterSpec& cluster,
                        const std::vector<topo::GpuId>& gpus, double bytes);

/// Point-to-point transfer time for `bytes` from `src` to `dst`.
double P2pSeconds(const topo::ClusterSpec& cluster, topo::GpuId src,
                  topo::GpuId dst, double bytes);

/// A single point-to-point transfer (used by migration).
struct Transfer {
  topo::GpuId src = 0;
  topo::GpuId dst = 0;
  double bytes = 0.0;
};

/// \brief Time of a fused batched-send-recv executing `transfers`
/// concurrently: each GPU's NVLink port serializes its own intra-node
/// sends+receives, cross-node moves serialize on the node's shared IB NIC,
/// links are otherwise independent, and every batch pays one latency per
/// `packs` groups (the paper fuses slices and packs 4 layers per batch).
///
/// Degenerate inputs are free: an empty list, a list containing only
/// self-transfers or zero-byte entries, and a non-positive `packs` (no
/// packing groups means nothing is sent) all return 0.
double BatchedSendRecvSeconds(const topo::ClusterSpec& cluster,
                              const std::vector<Transfer>& transfers,
                              int packs = 1);

// --- Contention-aware (flow-model) forms ------------------------------
// Each lowers the primitive onto a fresh net::FlowSim over `fabric` and
// returns its makespan. For an isolated primitive the result matches the
// analytic form above; concurrency effects only appear when the *caller*
// shares one FlowSim across primitives (see sim::SimulateStep), so these
// standalone wrappers are mainly glue and test anchors.

double AllReduceSecondsFlow(const net::Fabric& fabric,
                            const std::vector<topo::GpuId>& gpus,
                            double bytes);
double ReduceScatterSecondsFlow(const net::Fabric& fabric,
                                const std::vector<topo::GpuId>& gpus,
                                double bytes);
double AllGatherSecondsFlow(const net::Fabric& fabric,
                            const std::vector<topo::GpuId>& gpus,
                            double bytes);
double P2pSecondsFlow(const net::Fabric& fabric, topo::GpuId src,
                      topo::GpuId dst, double bytes);
/// All transfers run concurrently as flows (NIC/port sharing is max–min
/// instead of the analytic serialization bound) plus `packs` latencies.
double BatchedSendRecvSecondsFlow(const net::Fabric& fabric,
                                  const std::vector<Transfer>& transfers,
                                  int packs = 1);

// --- Model-dispatching forms ------------------------------------------
// Convenience overloads that pick the analytic or flow form. The flow
// path builds a transient Fabric per call; hot loops that care should
// build one Fabric and call the *Flow forms directly.

double AllReduceSeconds(const topo::ClusterSpec& cluster,
                        const std::vector<topo::GpuId>& gpus, double bytes,
                        net::NetModel model);
double P2pSeconds(const topo::ClusterSpec& cluster, topo::GpuId src,
                  topo::GpuId dst, double bytes, net::NetModel model);
double BatchedSendRecvSeconds(const topo::ClusterSpec& cluster,
                              const std::vector<Transfer>& transfers,
                              int packs, net::NetModel model);

}  // namespace sim
}  // namespace malleus

#endif  // MALLEUS_SIM_COLLECTIVE_H_
