// Cost models of the NCCL-style communication primitives the runtime uses:
// ring all-reduce / reduce-scatter / all-gather, point-to-point activation
// transfers, and fused batched-send-recv (used by model migration).

#ifndef MALLEUS_SIM_COLLECTIVE_H_
#define MALLEUS_SIM_COLLECTIVE_H_

#include <cstdint>
#include <vector>

#include "topology/cluster.h"

namespace malleus {
namespace sim {

/// Bandwidth (bytes/s) of the narrowest link among `gpus` (ring collectives
/// are bottlenecked by the slowest hop; any cross-node pair forces IB).
double GroupBottleneckBandwidth(const topo::ClusterSpec& cluster,
                                const std::vector<topo::GpuId>& gpus);

/// Ring all-reduce time for `bytes` over `gpus`.
double AllReduceSeconds(const topo::ClusterSpec& cluster,
                        const std::vector<topo::GpuId>& gpus, double bytes);

/// Ring reduce-scatter time for `bytes` over `gpus`.
double ReduceScatterSeconds(const topo::ClusterSpec& cluster,
                            const std::vector<topo::GpuId>& gpus,
                            double bytes);

/// Ring all-gather time for `bytes` over `gpus`.
double AllGatherSeconds(const topo::ClusterSpec& cluster,
                        const std::vector<topo::GpuId>& gpus, double bytes);

/// Point-to-point transfer time for `bytes` from `src` to `dst`.
double P2pSeconds(const topo::ClusterSpec& cluster, topo::GpuId src,
                  topo::GpuId dst, double bytes);

/// A single point-to-point transfer (used by migration).
struct Transfer {
  topo::GpuId src = 0;
  topo::GpuId dst = 0;
  double bytes = 0.0;
};

/// \brief Time of a fused batched-send-recv executing `transfers`
/// concurrently: each GPU's NIC serializes its own sends+receives, links are
/// otherwise independent, and every batch pays one latency per
/// `packs` groups (the paper fuses slices and packs 4 layers per batch).
double BatchedSendRecvSeconds(const topo::ClusterSpec& cluster,
                              const std::vector<Transfer>& transfers,
                              int packs = 1);

}  // namespace sim
}  // namespace malleus

#endif  // MALLEUS_SIM_COLLECTIVE_H_
