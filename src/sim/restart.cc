#include "sim/restart.h"

#include "common/logging.h"

namespace malleus {
namespace sim {

namespace {
double IoSeconds(double bytes, int num_io_nodes,
                 const RestartCostConfig& config) {
  MALLEUS_CHECK_GT(num_io_nodes, 0);
  const double bw = config.per_node_io_gbps * 1e9 * num_io_nodes;
  return bytes / bw;
}
}  // namespace

double RestartSeconds(double checkpoint_bytes, int num_io_nodes,
                      const RestartCostConfig& config) {
  // Save + init + load.
  return 2.0 * IoSeconds(checkpoint_bytes, num_io_nodes, config) +
         config.framework_init_seconds;
}

double CheckpointLoadSeconds(double checkpoint_bytes, int num_io_nodes,
                             const RestartCostConfig& config) {
  return IoSeconds(checkpoint_bytes, num_io_nodes, config);
}

double RestartAfterFailureSeconds(double checkpoint_bytes, int num_io_nodes,
                                  const RestartCostConfig& config) {
  // Init + load only: there is nothing left to save after a failure.
  return IoSeconds(checkpoint_bytes, num_io_nodes, config) +
         config.framework_init_seconds;
}

}  // namespace sim
}  // namespace malleus
