#include "sim/pipeline_sim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "sim/collective.h"

namespace malleus {
namespace sim {

std::vector<StageTask> Build1F1BSchedule(int stage, int num_stages,
                                         int64_t m) {
  std::vector<StageTask> seq;
  seq.reserve(2 * m);
  const int64_t warmup = std::min<int64_t>(m, num_stages - 1 - stage);
  for (int64_t k = 0; k < warmup; ++k) seq.push_back({true, k});
  for (int64_t k = 0; k < m - warmup; ++k) {
    seq.push_back({true, warmup + k});
    seq.push_back({false, k});
  }
  for (int64_t k = m - warmup; k < m; ++k) seq.push_back({false, k});
  return seq;
}

namespace {

// Optional span recording for one pipeline's schedule playback.
struct PipelineTrace {
  obs::TraceRecorder* rec = nullptr;
  double offset = 0.0;  // Simulated start time of this step.
  int pipeline_index = 0;
  const plan::Pipeline* pipe = nullptr;  // Stage metadata for span args.
};

// Simulates one pipeline; returns its compute finish time.
double SimulatePipeline(const std::vector<double>& fwd_seconds,
                        const std::vector<double>& bwd_seconds,
                        const std::vector<double>& xfer_seconds, int64_t m,
                        const PipelineTrace& trace) {
  const int pp = static_cast<int>(fwd_seconds.size());
  std::vector<std::vector<StageTask>> seq(pp);
  for (int j = 0; j < pp; ++j) seq[j] = Build1F1BSchedule(j, pp, m);

  // Trace tracks: one compute lane per stage, plus a P2P lane for stages
  // that receive activation/gradient transfers (spans there may overlap
  // the receiver's compute, so they get their own lane).
  std::vector<obs::TrackId> stage_track(pp), p2p_track(pp);
  std::vector<std::string> stage_gpus(pp);
  if (trace.rec != nullptr) {
    const std::string proc = StrFormat("pipeline %d", trace.pipeline_index);
    for (int j = 0; j < pp; ++j) {
      stage_track[j] = trace.rec->Track(proc, StrFormat("stage %d", j));
      stage_gpus[j] = trace.pipe->stages[j].group.ToString();
    }
    for (int j = 0; j < pp; ++j) {
      if (xfer_seconds[j] > 0 || (j + 1 < pp && xfer_seconds[j + 1] > 0)) {
        p2p_track[j] = trace.rec->Track(proc, StrFormat("stage %d p2p", j));
      }
    }
  }

  std::vector<std::vector<double>> fwd_done(pp), bwd_done(pp);
  for (int j = 0; j < pp; ++j) {
    fwd_done[j].assign(m, -1.0);
    bwd_done[j].assign(m, -1.0);
  }
  std::vector<size_t> pos(pp, 0);
  std::vector<double> busy_until(pp, 0.0);

  bool progressed = true;
  size_t total_done = 0;
  const size_t total_tasks = static_cast<size_t>(pp) * 2 * m;
  while (total_done < total_tasks) {
    MALLEUS_CHECK(progressed) << "1F1B schedule deadlocked";
    progressed = false;
    for (int j = 0; j < pp; ++j) {
      while (pos[j] < seq[j].size()) {
        const StageTask& t = seq[j][pos[j]];
        double dep = 0.0;
        if (t.is_fwd) {
          if (j > 0) {
            if (fwd_done[j - 1][t.micro] < 0) break;  // Not ready.
            dep = fwd_done[j - 1][t.micro] + xfer_seconds[j];
          }
        } else {
          if (j < pp - 1) {
            if (bwd_done[j + 1][t.micro] < 0) break;
            dep = bwd_done[j + 1][t.micro] + xfer_seconds[j + 1];
          }
          // The same-stage forward precedes this task in the sequence, so
          // its activation is already stashed.
        }
        const double start = std::max(busy_until[j], dep);
        const double end =
            start + (t.is_fwd ? fwd_seconds[j] : bwd_seconds[j]);
        busy_until[j] = end;
        (t.is_fwd ? fwd_done : bwd_done)[j][t.micro] = end;
        if (trace.rec != nullptr) {
          // Incoming transfer on the receiver's P2P lane.
          if (t.is_fwd && j > 0 && xfer_seconds[j] > 0) {
            trace.rec->AddSpan(
                StrFormat("p2p fwd mb%lld",
                          static_cast<long long>(t.micro)),
                "comm", p2p_track[j],
                trace.offset + fwd_done[j - 1][t.micro], xfer_seconds[j],
                {obs::TraceArg::Int("micro", t.micro)});
          } else if (!t.is_fwd && j < pp - 1 && xfer_seconds[j + 1] > 0) {
            trace.rec->AddSpan(
                StrFormat("p2p bwd mb%lld",
                          static_cast<long long>(t.micro)),
                "comm", p2p_track[j],
                trace.offset + bwd_done[j + 1][t.micro],
                xfer_seconds[j + 1],
                {obs::TraceArg::Int("micro", t.micro)});
          }
          trace.rec->AddSpan(
              StrFormat("%s mb%lld", t.is_fwd ? "fwd" : "bwd",
                        static_cast<long long>(t.micro)),
              "compute", stage_track[j], trace.offset + start, end - start,
              {obs::TraceArg::Int("micro", t.micro),
               obs::TraceArg::Int("layers",
                                  trace.pipe->stages[j].num_layers),
               obs::TraceArg::Str("gpus", stage_gpus[j])});
        }
        ++pos[j];
        ++total_done;
        progressed = true;
      }
    }
  }
  double finish = 0.0;
  for (int j = 0; j < pp; ++j) finish = std::max(finish, busy_until[j]);
  return finish;
}

// True iff two stages' layer ranges [a0, a1) and [b0, b1) intersect.
bool Overlaps(int a0, int a1, int b0, int b1) { return a0 < b1 && b0 < a1; }

}  // namespace

Result<StepResult> SimulateStep(const topo::ClusterSpec& cluster,
                                const model::CostModel& cost,
                                const plan::ParallelPlan& p,
                                const straggler::Situation& situation,
                                const SimOptions& options, Rng* rng) {
  MALLEUS_CHECK(rng != nullptr);
  MALLEUS_RETURN_NOT_OK(p.Validate(cluster, cost));
  if (situation.num_gpus() != cluster.num_gpus()) {
    return Status::InvalidArgument("situation does not match cluster size");
  }

  StepResult result;
  result.measured_rates.assign(cluster.num_gpus(), 0.0);

  // Per-GPU effective rates for this step (true rate + kernel jitter).
  std::vector<double> effective(cluster.num_gpus(), 0.0);
  for (const topo::GpuId g : p.ActiveGpus()) {
    if (situation.IsFailed(g)) {
      return Status::Unavailable(
          StrFormat("GPU %d is unresponsive; step cannot complete", g));
    }
    double jitter = 1.0 + rng->Normal(0.0, options.timing_noise_stddev);
    jitter = std::max(jitter, 0.5);
    effective[g] = situation.rate(g) * jitter;
    result.measured_rates[g] = effective[g];
  }

  const int b = p.micro_batch_size;
  const double tau = cost.TauSeconds(b);
  const double p2p_bytes = cost.P2pActivationBytes(b);

  // --- Pipeline compute phase ---
  for (size_t pi = 0; pi < p.pipelines.size(); ++pi) {
    const plan::Pipeline& pipe = p.pipelines[pi];
    const int pp = pipe.num_stages();
    std::vector<double> fwd(pp), bwd(pp), xfer(pp, 0.0);
    for (int j = 0; j < pp; ++j) {
      const plan::Stage& s = pipe.stages[j];
      double max_eff = 0.0;
      for (topo::GpuId g : s.group.gpus) {
        max_eff = std::max(max_eff, effective[g]);
      }
      const double y = cost.Rho(s.group.size()) * max_eff;
      const double t_full = y * s.num_layers * tau;
      fwd[j] = t_full / 3.0;   // Backward costs ~2x forward.
      bwd[j] = t_full * 2.0 / 3.0;
      if (p.activation_checkpointing) {
        // Checkpointing re-runs the forward during backward; the forward
        // pass itself is unchanged.
        bwd[j] += (cost.config().ac_compute_overhead - 1.0) * t_full;
      }
      if (j > 0 && options.include_p2p) {
        xfer[j] = P2pSeconds(cluster, pipe.stages[j - 1].group.gpus.back(),
                             s.group.gpus.front(), p2p_bytes);
      }
    }
    PipelineTrace trace;
    trace.rec = options.trace;
    trace.offset = options.trace_time_offset_seconds;
    trace.pipeline_index = static_cast<int>(pi);
    trace.pipe = &pipe;
    result.pipeline_seconds.push_back(
        SimulatePipeline(fwd, bwd, xfer, pipe.num_microbatches, trace));
  }

  double compute_end = 0.0;
  for (double t : result.pipeline_seconds) {
    compute_end = std::max(compute_end, t);
  }

  // --- ZeRO-1 gradient synchronization (reduce-scatter the gradients,
  // all-gather the updated parameters) across pipelines ---
  double sync = 0.0;
  const int dp = p.dp_degree();
  if (options.include_grad_sync && dp > 1) {
    // Precompute each stage's layer offset within its pipeline.
    std::vector<std::vector<int>> offsets(dp);
    for (int i = 0; i < dp; ++i) {
      int off = 0;
      for (const plan::Stage& s : p.pipelines[i].stages) {
        offsets[i].push_back(off);
        off += s.num_layers;
      }
    }
    for (int i = 0; i < dp; ++i) {
      const plan::Pipeline& pipe = p.pipelines[i];
      for (int j = 0; j < pipe.num_stages(); ++j) {
        const plan::Stage& s = pipe.stages[j];
        if (s.num_layers == 0) continue;
        const int lo = offsets[i][j];
        const int hi = lo + s.num_layers;
        // DP peers: the representative GPU of every overlapping stage in
        // the other pipelines (the slice owners the ring passes through).
        std::vector<topo::GpuId> peers = {s.group.gpus.front()};
        for (int i2 = 0; i2 < dp; ++i2) {
          if (i2 == i) continue;
          const plan::Pipeline& other = p.pipelines[i2];
          for (int j2 = 0; j2 < other.num_stages(); ++j2) {
            const plan::Stage& s2 = other.stages[j2];
            if (Overlaps(lo, hi, offsets[i2][j2],
                         offsets[i2][j2] + s2.num_layers)) {
              peers.push_back(s2.group.gpus.front());
            }
          }
        }
        const double bw = GroupBottleneckBandwidth(cluster, peers);
        double hop_latency = 0.0;
        for (size_t q = 1; q < peers.size(); ++q) {
          hop_latency =
              std::max(hop_latency, cluster.LatencySec(peers[0], peers[q]));
        }
        // Per-GPU traffic: bf16 gradients out + bf16 parameters back.
        const double bytes_per_gpu =
            2.0 * s.num_layers * cost.GradSyncBytesPerLayer() /
            s.group.size();
        const double t = bytes_per_gpu *
                             (static_cast<double>(dp - 1) / dp) / bw +
                         2.0 * dp * hop_latency;
        sync = std::max(sync, t);
      }
    }
  }

  if (options.trace != nullptr && options.include_grad_sync && dp > 1) {
    // The ZeRO-1 sync is globally synchronous: every pipeline stalls from
    // the end of the slowest pipeline's compute until sync completion.
    for (int i = 0; i < dp; ++i) {
      const obs::TrackId track = options.trace->Track(
          StrFormat("pipeline %d", i), "grad-sync");
      options.trace->AddSpan(
          "grad-sync", "sync", track,
          options.trace_time_offset_seconds + compute_end, sync,
          {obs::TraceArg::Int("dp_degree", dp),
           obs::TraceArg::Num("seconds", sync)});
    }
  }

  result.grad_sync_seconds = sync;
  result.step_seconds = compute_end + sync;
  return result;
}

}  // namespace sim
}  // namespace malleus
