#include "sim/pipeline_sim.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/flow_sim.h"
#include "obs/trace.h"
#include "plan/estimator.h"
#include "sim/collective.h"

namespace malleus {
namespace sim {

std::vector<StageTask> Build1F1BSchedule(int stage, int num_stages,
                                         int64_t m) {
  std::vector<StageTask> seq;
  seq.reserve(2 * m);
  const int64_t warmup = std::min<int64_t>(m, num_stages - 1 - stage);
  for (int64_t k = 0; k < warmup; ++k) seq.push_back({true, k});
  for (int64_t k = 0; k < m - warmup; ++k) {
    seq.push_back({true, warmup + k});
    seq.push_back({false, k});
  }
  for (int64_t k = m - warmup; k < m; ++k) seq.push_back({false, k});
  return seq;
}

namespace {

// Per-boundary, per-micro-batch transfer durations of one pipeline.
// Boundary b (1 <= b < pp) sits between stage b-1 and stage b: fwd[b][m]
// is the activation transfer stage b-1 -> b of micro-batch m, bwd[b][m]
// the gradient transfer stage b -> b-1. Index 0 is unused. Under the
// analytic model every micro-batch of a boundary costs the same; the flow
// model refines individual entries with contention-aware times.
struct TransferDurations {
  std::vector<std::vector<double>> fwd, bwd;
  // Per-boundary flag: any positive duration (drives trace lane creation).
  std::vector<bool> any;

  void Init(int pp, int64_t m, const std::vector<double>& uniform) {
    fwd.assign(pp, {});
    bwd.assign(pp, {});
    any.assign(pp, false);
    for (int b = 1; b < pp; ++b) {
      fwd[b].assign(m, uniform[b]);
      bwd[b].assign(m, uniform[b]);
      any[b] = uniform[b] > 0.0;
    }
  }
};

// Completion times of one pipeline's schedule playback.
struct Playback {
  double finish = 0.0;
  std::vector<std::vector<double>> fwd_done, bwd_done;  // [stage][micro]
};

// Optional span recording for one pipeline's schedule playback.
struct PipelineTrace {
  obs::TraceRecorder* rec = nullptr;
  double offset = 0.0;  // Simulated start time of this step.
  int pipeline_index = 0;
  const plan::Pipeline* pipe = nullptr;  // Stage metadata for span args.
};

// Simulates one pipeline; returns its completion times.
Playback SimulatePipeline(const std::vector<double>& fwd_seconds,
                          const std::vector<double>& bwd_seconds,
                          const TransferDurations& xfer, int64_t m,
                          const PipelineTrace& trace) {
  const int pp = static_cast<int>(fwd_seconds.size());
  std::vector<std::vector<StageTask>> seq(pp);
  for (int j = 0; j < pp; ++j) seq[j] = Build1F1BSchedule(j, pp, m);

  // Trace tracks: one compute lane per stage, plus a P2P lane for stages
  // that receive activation/gradient transfers (spans there may overlap
  // the receiver's compute, so they get their own lane).
  std::vector<obs::TrackId> stage_track(pp), p2p_track(pp);
  std::vector<std::string> stage_gpus(pp);
  if (trace.rec != nullptr) {
    const std::string proc = StrFormat("pipeline %d", trace.pipeline_index);
    for (int j = 0; j < pp; ++j) {
      stage_track[j] = trace.rec->Track(proc, StrFormat("stage %d", j));
      stage_gpus[j] = trace.pipe->stages[j].group.ToString();
    }
    for (int j = 0; j < pp; ++j) {
      if (xfer.any[j] || (j + 1 < pp && xfer.any[j + 1])) {
        p2p_track[j] = trace.rec->Track(proc, StrFormat("stage %d p2p", j));
      }
    }
  }

  Playback out;
  out.fwd_done.assign(pp, {});
  out.bwd_done.assign(pp, {});
  std::vector<std::vector<double>>& fwd_done = out.fwd_done;
  std::vector<std::vector<double>>& bwd_done = out.bwd_done;
  for (int j = 0; j < pp; ++j) {
    fwd_done[j].assign(m, -1.0);
    bwd_done[j].assign(m, -1.0);
  }
  std::vector<size_t> pos(pp, 0);
  std::vector<double> busy_until(pp, 0.0);

  bool progressed = true;
  size_t total_done = 0;
  const size_t total_tasks = static_cast<size_t>(pp) * 2 * m;
  while (total_done < total_tasks) {
    MALLEUS_CHECK(progressed) << "1F1B schedule deadlocked";
    progressed = false;
    for (int j = 0; j < pp; ++j) {
      while (pos[j] < seq[j].size()) {
        const StageTask& t = seq[j][pos[j]];
        double dep = 0.0;
        if (t.is_fwd) {
          if (j > 0) {
            if (fwd_done[j - 1][t.micro] < 0) break;  // Not ready.
            dep = fwd_done[j - 1][t.micro] + xfer.fwd[j][t.micro];
          }
        } else {
          if (j < pp - 1) {
            if (bwd_done[j + 1][t.micro] < 0) break;
            dep = bwd_done[j + 1][t.micro] + xfer.bwd[j + 1][t.micro];
          }
          // The same-stage forward precedes this task in the sequence, so
          // its activation is already stashed.
        }
        const double start = std::max(busy_until[j], dep);
        const double end =
            start + (t.is_fwd ? fwd_seconds[j] : bwd_seconds[j]);
        busy_until[j] = end;
        (t.is_fwd ? fwd_done : bwd_done)[j][t.micro] = end;
        if (trace.rec != nullptr) {
          // Incoming transfer on the receiver's P2P lane.
          if (t.is_fwd && j > 0 && xfer.fwd[j][t.micro] > 0) {
            trace.rec->AddSpan(
                StrFormat("p2p fwd mb%lld",
                          static_cast<long long>(t.micro)),
                "comm", p2p_track[j],
                trace.offset + fwd_done[j - 1][t.micro],
                xfer.fwd[j][t.micro],
                {obs::TraceArg::Int("micro", t.micro)});
          } else if (!t.is_fwd && j < pp - 1 &&
                     xfer.bwd[j + 1][t.micro] > 0) {
            trace.rec->AddSpan(
                StrFormat("p2p bwd mb%lld",
                          static_cast<long long>(t.micro)),
                "comm", p2p_track[j],
                trace.offset + bwd_done[j + 1][t.micro],
                xfer.bwd[j + 1][t.micro],
                {obs::TraceArg::Int("micro", t.micro)});
          }
          trace.rec->AddSpan(
              StrFormat("%s mb%lld", t.is_fwd ? "fwd" : "bwd",
                        static_cast<long long>(t.micro)),
              "compute", stage_track[j], trace.offset + start, end - start,
              {obs::TraceArg::Int("micro", t.micro),
               obs::TraceArg::Int("layers",
                                  trace.pipe->stages[j].num_layers),
               obs::TraceArg::Str("gpus", stage_gpus[j])});
        }
        ++pos[j];
        ++total_done;
        progressed = true;
      }
    }
  }
  for (int j = 0; j < pp; ++j) {
    out.finish = std::max(out.finish, busy_until[j]);
  }
  return out;
}

}  // namespace

Result<StepResult> SimulateStep(const topo::ClusterSpec& cluster,
                                const model::CostModel& cost,
                                const plan::ParallelPlan& p,
                                const straggler::Situation& situation,
                                const SimOptions& options, Rng* rng) {
  MALLEUS_CHECK(rng != nullptr);
  MALLEUS_RETURN_NOT_OK(p.Validate(cluster, cost));
  if (situation.num_gpus() != cluster.num_gpus()) {
    return Status::InvalidArgument("situation does not match cluster size");
  }

  StepResult result;
  result.measured_rates.assign(cluster.num_gpus(), 0.0);

  // Per-GPU effective rates for this step (true rate + kernel jitter).
  std::vector<double> effective(cluster.num_gpus(), 0.0);
  for (const topo::GpuId g : p.ActiveGpus()) {
    if (situation.IsFailed(g)) {
      return Status::Unavailable(
          StrFormat("GPU %d is unresponsive; step cannot complete", g));
    }
    double jitter = 1.0 + rng->Normal(0.0, options.timing_noise_stddev);
    jitter = std::max(jitter, 0.5);
    effective[g] = situation.rate(g) * jitter;
    result.measured_rates[g] = effective[g];
  }

  const int b = p.micro_batch_size;
  const double tau = cost.TauSeconds(b);
  const double p2p_bytes = cost.P2pActivationBytes(b);
  const bool flow_mode = options.net_model == net::NetModel::kFlow;
  std::optional<net::Fabric> fabric;
  if (flow_mode) fabric.emplace(cluster);

  // --- Pipeline compute phase ---
  // Per-pipeline stage times plus boundary transfer endpoints/durations.
  struct PipeState {
    std::vector<double> fwd, bwd;
    std::vector<topo::GpuId> send;  // Boundary b: sender of the fwd flow.
    std::vector<topo::GpuId> recv;  // Boundary b: receiver of the fwd flow.
    TransferDurations xfer;
    Playback playback;
  };
  std::vector<PipeState> pipes(p.pipelines.size());
  for (size_t pi = 0; pi < p.pipelines.size(); ++pi) {
    const plan::Pipeline& pipe = p.pipelines[pi];
    const int pp = pipe.num_stages();
    PipeState& ps = pipes[pi];
    ps.fwd.resize(pp);
    ps.bwd.resize(pp);
    ps.send.assign(pp, 0);
    ps.recv.assign(pp, 0);
    std::vector<double> xfer_uniform(pp, 0.0);
    for (int j = 0; j < pp; ++j) {
      const plan::Stage& s = pipe.stages[j];
      double max_eff = 0.0;
      for (topo::GpuId g : s.group.gpus) {
        max_eff = std::max(max_eff, effective[g]);
      }
      const double y = cost.Rho(s.group.size()) * max_eff;
      const double t_full = y * s.num_layers * tau;
      ps.fwd[j] = t_full / 3.0;   // Backward costs ~2x forward.
      ps.bwd[j] = t_full * 2.0 / 3.0;
      if (p.activation_checkpointing) {
        // Checkpointing re-runs the forward during backward; the forward
        // pass itself is unchanged.
        ps.bwd[j] += (cost.config().ac_compute_overhead - 1.0) * t_full;
      }
      if (j > 0 && options.include_p2p) {
        ps.send[j] = pipe.stages[j - 1].group.gpus.back();
        ps.recv[j] = s.group.gpus.front();
        xfer_uniform[j] =
            P2pSeconds(cluster, ps.send[j], ps.recv[j], p2p_bytes);
      }
    }
    ps.xfer.Init(pp, pipe.num_microbatches, xfer_uniform);
  }

  const auto run_pipelines = [&](obs::TraceRecorder* rec) {
    for (size_t pi = 0; pi < p.pipelines.size(); ++pi) {
      PipelineTrace trace;
      trace.rec = rec;
      trace.offset = options.trace_time_offset_seconds;
      trace.pipeline_index = static_cast<int>(pi);
      trace.pipe = &p.pipelines[pi];
      pipes[pi].playback =
          SimulatePipeline(pipes[pi].fwd, pipes[pi].bwd, pipes[pi].xfer,
                           p.pipelines[pi].num_microbatches, trace);
    }
  };
  run_pipelines(nullptr);

  // Under the flow model the P2P durations depend on which transfers
  // overlap, and the overlap depends on the durations. Fixed-point replay:
  // play the schedule, submit every transfer at its producer-finish time
  // into one FlowSim, feed the contended durations back, repeat. Without
  // link sharing the first flow pass reproduces the analytic durations
  // exactly and the loop exits after one iteration.
  const auto submit_p2p_flows = [&](net::FlowSim* fs) {
    // Tag encodes (pipeline, boundary, micro, direction) so durations can
    // be routed back; tags are only read locally.
    std::vector<std::pair<int64_t, double*>> slots;
    for (size_t pi = 0; pi < pipes.size(); ++pi) {
      PipeState& ps = pipes[pi];
      const int pp = static_cast<int>(ps.fwd.size());
      const int64_t m = p.pipelines[pi].num_microbatches;
      for (int bnd = 1; bnd < pp; ++bnd) {
        if (!ps.xfer.any[bnd]) continue;
        for (int64_t mi = 0; mi < m; ++mi) {
          net::Flow f;
          f.src = ps.send[bnd];
          f.dst = ps.recv[bnd];
          f.bytes = p2p_bytes;
          f.start_seconds = ps.playback.fwd_done[bnd - 1][mi];
          slots.emplace_back(fs->Submit(f), &ps.xfer.fwd[bnd][mi]);
          // Gradient transfer runs the reverse path.
          net::Flow g;
          g.src = ps.recv[bnd];
          g.dst = ps.send[bnd];
          g.bytes = p2p_bytes;
          g.start_seconds = ps.playback.bwd_done[bnd][mi];
          slots.emplace_back(fs->Submit(g), &ps.xfer.bwd[bnd][mi]);
        }
      }
    }
    return slots;
  };

  bool any_p2p = false;
  for (const PipeState& ps : pipes) {
    for (bool a : ps.xfer.any) any_p2p |= a;
  }
  if (flow_mode && any_p2p) {
    constexpr int kMaxReplayIterations = 4;
    for (int iter = 0; iter < kMaxReplayIterations; ++iter) {
      net::FlowSim fs(*fabric);
      const auto slots = submit_p2p_flows(&fs);
      fs.Run();
      double max_rel_delta = 0.0;
      for (const auto& [id, duration] : slots) {
        const double updated = fs.outcome(id).seconds;
        max_rel_delta =
            std::max(max_rel_delta, std::abs(updated - *duration) /
                                        std::max(*duration, 1e-12));
        *duration = updated;
      }
      if (max_rel_delta < 1e-9) break;
      run_pipelines(nullptr);
    }
  }

  if (options.trace != nullptr) run_pipelines(options.trace);

  double compute_end = 0.0;
  for (const PipeState& ps : pipes) {
    result.pipeline_seconds.push_back(ps.playback.finish);
    compute_end = std::max(compute_end, ps.playback.finish);
  }

  // --- ZeRO-1 gradient synchronization (reduce-scatter the gradients,
  // all-gather the updated parameters) across pipelines ---
  double sync = 0.0;
  const int dp = p.dp_degree();
  std::vector<plan::GradSyncRing> rings;
  if (options.include_grad_sync && dp > 1) {
    rings = plan::CollectGradSyncRings(p, cost, cluster);
  }

  if (!rings.empty() && !flow_mode) {
    for (const plan::GradSyncRing& ring : rings) {
      const double bw = GroupBottleneckBandwidth(cluster, ring.peers);
      const double t = ring.bytes_per_gpu *
                           (static_cast<double>(dp - 1) / dp) / bw +
                       2.0 * dp * ring.hop_latency;
      sync = std::max(sync, t);
    }
  }

  if (flow_mode && (any_p2p || !rings.empty())) {
    // The step's shared fabric session: the (converged) P2P transfers and
    // every stage's grad-sync ring in one FlowSim, so DP rings that cross
    // the same NIC — and any traffic overlapping them — contend.
    net::FlowSim fs(*fabric);
    submit_p2p_flows(&fs);
    std::vector<std::vector<int64_t>> ring_flows(rings.size());
    for (size_t r = 0; r < rings.size(); ++r) {
      const plan::GradSyncRing& ring = rings[r];
      // One fused ring pass: (dp-1)/dp of the per-GPU traffic per hop,
      // and the analytic 2*dp ring-latency charge.
      ring_flows[r] = net::SubmitRing(
          &fs, ring.peers,
          ring.bytes_per_gpu * (static_cast<double>(dp - 1) / dp),
          compute_end, 2.0 * dp * ring.hop_latency);
    }
    fs.Run();
    for (size_t r = 0; r < rings.size(); ++r) {
      double ring_end = compute_end;
      for (int64_t id : ring_flows[r]) {
        ring_end = std::max(ring_end, fs.outcome(id).end_seconds);
      }
      sync = std::max(sync, ring_end - compute_end);
      if (options.trace != nullptr && !ring_flows[r].empty()) {
        const obs::TrackId track =
            options.trace->Track("fabric", "grad-sync rings");
        options.trace->AddSpan(
            StrFormat("ring p%d s%d", rings[r].pipeline, rings[r].stage),
            "net", track, options.trace_time_offset_seconds + compute_end,
            ring_end - compute_end,
            {obs::TraceArg::Int("peers",
                                static_cast<int64_t>(
                                    rings[r].peers.size())),
             obs::TraceArg::Num("bytes_per_gpu", rings[r].bytes_per_gpu)});
      }
    }
    net::RecordFlowSimMetrics(fs);
  }

  if (options.trace != nullptr && !rings.empty()) {
    // The ZeRO-1 sync is globally synchronous: every pipeline stalls from
    // the end of the slowest pipeline's compute until sync completion.
    for (int i = 0; i < dp; ++i) {
      const obs::TrackId track = options.trace->Track(
          StrFormat("pipeline %d", i), "grad-sync");
      options.trace->AddSpan(
          "grad-sync", "sync", track,
          options.trace_time_offset_seconds + compute_end, sync,
          {obs::TraceArg::Int("dp_degree", dp),
           obs::TraceArg::Num("seconds", sync),
           obs::TraceArg::Str("net_model",
                              net::NetModelName(options.net_model))});
    }
  }

  result.grad_sync_seconds = sync;
  result.step_seconds = compute_end + sync;
  return result;
}

}  // namespace sim
}  // namespace malleus
