#include "sim/collective.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace malleus {
namespace sim {

double GroupBottleneckBandwidth(const topo::ClusterSpec& cluster,
                                const std::vector<topo::GpuId>& gpus) {
  MALLEUS_CHECK(!gpus.empty());
  bool cross_node = false;
  for (topo::GpuId g : gpus) {
    if (!cluster.SameNode(g, gpus[0])) {
      cross_node = true;
      break;
    }
  }
  const double gbps = cross_node ? cluster.link().inter_node_gbps
                                 : cluster.link().intra_node_gbps;
  return gbps * 1e9;
}

namespace {
// Alpha cost of a ring collective: n-1 steps, each bounded by the slowest
// hop of that step; approximated as the sum over the first n-1 hops.
double RingLatency(const topo::ClusterSpec& cluster,
                   const std::vector<topo::GpuId>& gpus) {
  double lat = 0.0;
  for (size_t i = 0; i + 1 < gpus.size(); ++i) {
    lat += cluster.LatencySec(gpus[i], gpus[i + 1]);
  }
  return lat;
}
}  // namespace

double ReduceScatterSeconds(const topo::ClusterSpec& cluster,
                            const std::vector<topo::GpuId>& gpus,
                            double bytes) {
  const size_t n = gpus.size();
  if (n <= 1) return 0.0;
  const double bw = GroupBottleneckBandwidth(cluster, gpus);
  // Ring reduce-scatter moves (n-1)/n of the data through each link.
  return bytes * (static_cast<double>(n - 1) / n) / bw +
         RingLatency(cluster, gpus);
}

double AllGatherSeconds(const topo::ClusterSpec& cluster,
                        const std::vector<topo::GpuId>& gpus, double bytes) {
  return ReduceScatterSeconds(cluster, gpus, bytes);
}

double AllReduceSeconds(const topo::ClusterSpec& cluster,
                        const std::vector<topo::GpuId>& gpus, double bytes) {
  // All-reduce = reduce-scatter + all-gather.
  return ReduceScatterSeconds(cluster, gpus, bytes) +
         AllGatherSeconds(cluster, gpus, bytes);
}

double P2pSeconds(const topo::ClusterSpec& cluster, topo::GpuId src,
                  topo::GpuId dst, double bytes) {
  if (src == dst) return 0.0;
  return bytes / cluster.BandwidthBytesPerSec(src, dst) +
         cluster.LatencySec(src, dst);
}

double BatchedSendRecvSeconds(const topo::ClusterSpec& cluster,
                              const std::vector<Transfer>& transfers,
                              int packs) {
  if (transfers.empty()) return 0.0;
  MALLEUS_CHECK_GE(packs, 1);
  // Endpoint serialization: intra-node moves are charged to each GPU's
  // NVLink port, cross-node moves to the *node's* shared InfiniBand NIC.
  std::map<topo::GpuId, double> gpu_seconds;
  std::map<topo::NodeId, double> node_seconds;
  double max_latency = 0.0;
  for (const Transfer& t : transfers) {
    if (t.src == t.dst || t.bytes <= 0) continue;
    const double bw = cluster.BandwidthBytesPerSec(t.src, t.dst);
    const double s = t.bytes / bw;
    if (cluster.SameNode(t.src, t.dst)) {
      gpu_seconds[t.src] += s;
      gpu_seconds[t.dst] += s;
    } else {
      node_seconds[cluster.NodeOf(t.src)] += s;
      node_seconds[cluster.NodeOf(t.dst)] += s;
    }
    max_latency = std::max(max_latency, cluster.LatencySec(t.src, t.dst));
  }
  double busiest = 0.0;
  for (const auto& [gpu, s] : gpu_seconds) busiest = std::max(busiest, s);
  for (const auto& [node, s] : node_seconds) busiest = std::max(busiest, s);
  return busiest + packs * max_latency;
}

}  // namespace sim
}  // namespace malleus
