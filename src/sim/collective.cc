#include "sim/collective.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "net/flow_sim.h"

namespace malleus {
namespace sim {

double GroupBottleneckBandwidth(const topo::ClusterSpec& cluster,
                                const std::vector<topo::GpuId>& gpus) {
  // Degenerate groups (see header): no inter-GPU traffic, report the
  // fastest link so the value never dominates a bottleneck computation.
  if (gpus.size() <= 1) return cluster.link().intra_node_gbps * 1e9;
  bool cross_node = false;
  for (topo::GpuId g : gpus) {
    if (!cluster.SameNode(g, gpus[0])) {
      cross_node = true;
      break;
    }
  }
  const double gbps = cross_node ? cluster.link().inter_node_gbps
                                 : cluster.link().intra_node_gbps;
  return gbps * 1e9;
}

// Alpha cost of a ring collective: n-1 steps, each bounded by the slowest
// hop of that step; approximated as the sum over the first n-1 hops.
double RingLatencySeconds(const topo::ClusterSpec& cluster,
                          const std::vector<topo::GpuId>& gpus) {
  double lat = 0.0;
  for (size_t i = 0; i + 1 < gpus.size(); ++i) {
    lat += cluster.LatencySec(gpus[i], gpus[i + 1]);
  }
  return lat;
}

double ReduceScatterSeconds(const topo::ClusterSpec& cluster,
                            const std::vector<topo::GpuId>& gpus,
                            double bytes) {
  const size_t n = gpus.size();
  if (n <= 1) return 0.0;
  const double bw = GroupBottleneckBandwidth(cluster, gpus);
  // Ring reduce-scatter moves (n-1)/n of the data through each link.
  return bytes * (static_cast<double>(n - 1) / n) / bw +
         RingLatencySeconds(cluster, gpus);
}

double AllGatherSeconds(const topo::ClusterSpec& cluster,
                        const std::vector<topo::GpuId>& gpus, double bytes) {
  return ReduceScatterSeconds(cluster, gpus, bytes);
}

double AllReduceSeconds(const topo::ClusterSpec& cluster,
                        const std::vector<topo::GpuId>& gpus, double bytes) {
  // All-reduce = reduce-scatter + all-gather.
  return ReduceScatterSeconds(cluster, gpus, bytes) +
         AllGatherSeconds(cluster, gpus, bytes);
}

double P2pSeconds(const topo::ClusterSpec& cluster, topo::GpuId src,
                  topo::GpuId dst, double bytes) {
  if (src == dst) return 0.0;
  return bytes / cluster.BandwidthBytesPerSec(src, dst) +
         cluster.LatencySec(src, dst);
}

double BatchedSendRecvSeconds(const topo::ClusterSpec& cluster,
                              const std::vector<Transfer>& transfers,
                              int packs) {
  if (transfers.empty() || packs <= 0) return 0.0;
  // Endpoint serialization: intra-node moves are charged to each GPU's
  // NVLink port, cross-node moves to the *node's* shared InfiniBand NIC.
  std::map<topo::GpuId, double> gpu_seconds;
  std::map<topo::NodeId, double> node_seconds;
  double max_latency = 0.0;
  for (const Transfer& t : transfers) {
    if (t.src == t.dst || t.bytes <= 0) continue;
    const double bw = cluster.BandwidthBytesPerSec(t.src, t.dst);
    const double s = t.bytes / bw;
    if (cluster.SameNode(t.src, t.dst)) {
      gpu_seconds[t.src] += s;
      gpu_seconds[t.dst] += s;
    } else {
      node_seconds[cluster.NodeOf(t.src)] += s;
      node_seconds[cluster.NodeOf(t.dst)] += s;
    }
    max_latency = std::max(max_latency, cluster.LatencySec(t.src, t.dst));
  }
  double busiest = 0.0;
  for (const auto& [gpu, s] : gpu_seconds) busiest = std::max(busiest, s);
  for (const auto& [node, s] : node_seconds) busiest = std::max(busiest, s);
  return busiest + packs * max_latency;
}

namespace {

// Shared body of the flow-model ring collectives: one pass moving
// `per_hop_factor` * (n-1)/n * bytes per hop under `latency` total alpha.
double RingPassSecondsFlow(const net::Fabric& fabric,
                           const std::vector<topo::GpuId>& gpus,
                           double bytes_per_hop, double latency) {
  if (gpus.size() <= 1) return 0.0;
  net::FlowSim fs(fabric);
  net::SubmitRing(&fs, gpus, bytes_per_hop, /*start_seconds=*/0.0, latency);
  fs.Run();
  return fs.MakespanSeconds();
}

}  // namespace

double ReduceScatterSecondsFlow(const net::Fabric& fabric,
                                const std::vector<topo::GpuId>& gpus,
                                double bytes) {
  const double n = static_cast<double>(gpus.size());
  if (n <= 1) return 0.0;
  return RingPassSecondsFlow(fabric, gpus, bytes * (n - 1) / n,
                             RingLatencySeconds(fabric.cluster(), gpus));
}

double AllGatherSecondsFlow(const net::Fabric& fabric,
                            const std::vector<topo::GpuId>& gpus,
                            double bytes) {
  return ReduceScatterSecondsFlow(fabric, gpus, bytes);
}

double AllReduceSecondsFlow(const net::Fabric& fabric,
                            const std::vector<topo::GpuId>& gpus,
                            double bytes) {
  // Reduce-scatter + all-gather fused into one doubled pass: same bytes
  // per link, same total latency, identical to the analytic sum when
  // uncontended.
  const double n = static_cast<double>(gpus.size());
  if (n <= 1) return 0.0;
  return RingPassSecondsFlow(
      fabric, gpus, 2.0 * bytes * (n - 1) / n,
      2.0 * RingLatencySeconds(fabric.cluster(), gpus));
}

double P2pSecondsFlow(const net::Fabric& fabric, topo::GpuId src,
                      topo::GpuId dst, double bytes) {
  if (src == dst) return 0.0;
  net::FlowSim fs(fabric);
  fs.Submit({src, dst, bytes, /*start_seconds=*/0.0});
  fs.Run();
  return fs.MakespanSeconds();
}

double BatchedSendRecvSecondsFlow(const net::Fabric& fabric,
                                  const std::vector<Transfer>& transfers,
                                  int packs) {
  if (transfers.empty() || packs <= 0) return 0.0;
  const topo::ClusterSpec& cluster = fabric.cluster();
  net::FlowSim fs(fabric);
  double max_latency = 0.0;
  bool any = false;
  for (const Transfer& t : transfers) {
    if (t.src == t.dst || t.bytes <= 0) continue;
    // Latency is charged per pack below, not per flow.
    fs.Submit({t.src, t.dst, t.bytes, /*start_seconds=*/0.0,
               /*latency_seconds=*/0.0});
    max_latency = std::max(max_latency, cluster.LatencySec(t.src, t.dst));
    any = true;
  }
  if (!any) return 0.0;
  fs.Run();
  return fs.MakespanSeconds() + packs * max_latency;
}

double AllReduceSeconds(const topo::ClusterSpec& cluster,
                        const std::vector<topo::GpuId>& gpus, double bytes,
                        net::NetModel model) {
  if (model == net::NetModel::kAnalytic) {
    return AllReduceSeconds(cluster, gpus, bytes);
  }
  return AllReduceSecondsFlow(net::Fabric(cluster), gpus, bytes);
}

double P2pSeconds(const topo::ClusterSpec& cluster, topo::GpuId src,
                  topo::GpuId dst, double bytes, net::NetModel model) {
  if (model == net::NetModel::kAnalytic) {
    return P2pSeconds(cluster, src, dst, bytes);
  }
  return P2pSecondsFlow(net::Fabric(cluster), src, dst, bytes);
}

double BatchedSendRecvSeconds(const topo::ClusterSpec& cluster,
                              const std::vector<Transfer>& transfers,
                              int packs, net::NetModel model) {
  if (model == net::NetModel::kAnalytic) {
    return BatchedSendRecvSeconds(cluster, transfers, packs);
  }
  return BatchedSendRecvSecondsFlow(net::Fabric(cluster), transfers, packs);
}

}  // namespace sim
}  // namespace malleus
