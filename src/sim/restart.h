// Cost model of checkpoint-save + restart + checkpoint-load, the recovery
// path of the "w/ Restart" baselines (and of Malleus after GPU failures).

#ifndef MALLEUS_SIM_RESTART_H_
#define MALLEUS_SIM_RESTART_H_

namespace malleus {
namespace sim {

struct RestartCostConfig {
  /// Framework re-initialization: process launch, resource allocation,
  /// communication-group construction (paper S7.2 lists this as a major
  /// component of the 199-442 s Megatron restart overhead).
  double framework_init_seconds = 80.0;
  /// Aggregate checkpoint I/O bandwidth per node (parallel save/load).
  double per_node_io_gbps = 2.0;
};

/// Seconds to save a checkpoint of `checkpoint_bytes`, restart the job, and
/// load it back, with `num_io_nodes` nodes sharing the I/O.
double RestartSeconds(double checkpoint_bytes, int num_io_nodes,
                      const RestartCostConfig& config = RestartCostConfig());

/// Seconds to only load the latest checkpoint (Malleus' failure-recovery
/// path: surviving processes stay up, so no framework re-init).
double CheckpointLoadSeconds(
    double checkpoint_bytes, int num_io_nodes,
    const RestartCostConfig& config = RestartCostConfig());

/// Seconds to restart after a fail-stop (or a migration that died
/// mid-flight): the latest checkpoint already exists and the failed
/// processes' state is unsaveable, so the cost is framework re-init plus
/// one load — NOT RestartSeconds, whose save leg would double-count the
/// checkpoint I/O for state that is already (and only) on disk. Always
/// RestartSeconds - CheckpointLoadSeconds.
double RestartAfterFailureSeconds(
    double checkpoint_bytes, int num_io_nodes,
    const RestartCostConfig& config = RestartCostConfig());

}  // namespace sim
}  // namespace malleus

#endif  // MALLEUS_SIM_RESTART_H_
