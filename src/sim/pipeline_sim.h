// Discrete-event simulation of one hybrid-parallel training step.
//
// This substitutes for the paper's physical execution: it plays out the
// 1F1B pipeline schedule (warm-up / steady / cool-down) with true
// inter-stage dependencies and per-stage compute times derived from the
// cost model and the live straggling rates, then adds the ZeRO-1 gradient
// synchronization across pipelines. The result is the "actual" step time
// (R_actual in Table 3) plus the per-GPU timing measurements the profiler
// consumes (the stand-in for CUDA-event timing).

#ifndef MALLEUS_SIM_PIPELINE_SIM_H_
#define MALLEUS_SIM_PIPELINE_SIM_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "model/cost_model.h"
#include "net/fabric.h"
#include "plan/plan.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {

namespace obs {
class TraceRecorder;
}  // namespace obs

namespace sim {

/// Knobs of the step simulator.
struct SimOptions {
  /// Relative stddev of per-GPU, per-step kernel-time jitter. The profiler
  /// must see through this noise, so tests exercise nonzero values.
  double timing_noise_stddev = 0.01;
  /// Model P2P activation transfers between stages.
  bool include_p2p = true;
  /// Model DP gradient synchronization (reduce-scatter + all-gather).
  bool include_grad_sync = true;
  /// How communication is priced. kAnalytic prices every transfer in
  /// isolation (fast closed forms). kFlow submits the step's P2P
  /// activation transfers and DP grad-sync rings through one shared
  /// contention-aware net::FlowSim, so transfers that overlap in time on a
  /// shared NVLink port or node NIC split its bandwidth max–min fairly;
  /// per-link utilization and flow-completion times are recorded into the
  /// global metrics registry under "net.*". Without link sharing the two
  /// models produce identical timings.
  net::NetModel net_model = net::DefaultNetModel();
  /// When set, SimulateStep records one span per 1F1B stage task
  /// (category "compute"), per P2P activation transfer ("comm") and per
  /// grad-sync phase ("sync"). Timestamps are simulated seconds offset by
  /// `trace_time_offset_seconds`, so a multi-step run forms one timeline.
  obs::TraceRecorder* trace = nullptr;
  double trace_time_offset_seconds = 0.0;
};

/// Outcome of simulating one training step.
struct StepResult {
  /// Wall-clock time of the step (all pipelines + gradient sync).
  double step_seconds = 0.0;
  /// Per-pipeline compute finish time (before gradient sync).
  std::vector<double> pipeline_seconds;
  /// Time spent in the DP gradient synchronization phase.
  double grad_sync_seconds = 0.0;
  /// Per-GPU observed straggling rate: measured kernel time relative to a
  /// healthy GPU doing the same work (noisy view of the true rate).
  /// Zero for GPUs that executed no work this step.
  std::vector<double> measured_rates;
};

/// Simulates one training step of `p` under `situation`.
/// The plan must be valid for (cluster, cost).
Result<StepResult> SimulateStep(const topo::ClusterSpec& cluster,
                                const model::CostModel& cost,
                                const plan::ParallelPlan& p,
                                const straggler::Situation& situation,
                                const SimOptions& options, Rng* rng);

/// One task in a stage's 1F1B sequence.
struct StageTask {
  bool is_fwd = true;
  int64_t micro = 0;
};

/// The deterministic 1F1B task order of stage `stage` (0-based) in a
/// pipeline of `num_stages` stages processing `num_micro` micro-batches:
/// warm-up forwards, steady (fwd, bwd) pairs, cool-down backwards.
/// Shared by the simulator and the graph builder.
std::vector<StageTask> Build1F1BSchedule(int stage, int num_stages,
                                         int64_t num_micro);

}  // namespace sim
}  // namespace malleus

#endif  // MALLEUS_SIM_PIPELINE_SIM_H_
