// malleus::analyze — lexical front end of the determinism linter.
//
// A deliberately small C++ tokenizer: no preprocessor, no semantic
// analysis, just the token stream the rule matchers in analyze.h walk.
// Comments and preprocessor directives are stripped from the stream but
// scanned for detlint:allow suppression annotations (see AllowAnnotation
// for the syntax), which are collected per line. String/char literals survive as single tokens so
// banned identifiers inside literals never trip a rule.
//
// The lexer is total: any byte sequence produces a token stream (unknown
// bytes become one-character punctuation tokens), so the analyzer can be
// pointed at any file in the tree without a parse-failure mode.

#ifndef MALLEUS_ANALYZE_TOKEN_H_
#define MALLEUS_ANALYZE_TOKEN_H_

#include <map>
#include <string>
#include <vector>

namespace malleus {
namespace analyze {

enum class TokKind {
  kIdent,    ///< Identifiers and keywords (the matchers special-case both).
  kNumber,   ///< pp-number: starts with a digit (or .digit), greedily lexed.
  kString,   ///< "..." or R"delim(...)delim", text includes the quotes.
  kChar,     ///< '...'.
  kPunct,    ///< Operators and punctuation, longest-match (e.g. "+=", "::").
};

struct Tok {
  TokKind kind;
  std::string text;
  int line;  ///< 1-based source line of the token's first character.
};

/// One suppression annotation parsed out of a comment:
///   // detlint:allow(det.unordered-iteration keys are sorted below)
/// The annotation suppresses matching findings on its own line and on the
/// following line (covering both trailing-comment and comment-above style).
/// A missing reason is a finding itself (detlint.bad-allow), so every
/// suppression in the tree carries its justification.
struct AllowAnnotation {
  int line = 0;
  std::string code;    ///< The suppressed diagnostic code.
  std::string reason;  ///< Free text; empty means malformed.
};

/// A lexed translation unit.
struct LexedFile {
  std::vector<Tok> toks;
  std::vector<AllowAnnotation> allows;

  /// True iff findings of `code` on `line` are suppressed by a well-formed
  /// allow annotation (same line or the line above).
  bool IsAllowed(const std::string& code, int line) const;
};

/// Lexes `source`. Never fails.
LexedFile Lex(const std::string& source);

/// Index of the matching closer for the opener at `open` ("(", "[", "{"),
/// counting only the opener's own bracket kind. Returns toks.size() when
/// unbalanced.
size_t MatchingClose(const std::vector<Tok>& toks, size_t open);

/// Index one past the matching `>` for the `<` at `open`, treating the
/// token stream as a template argument list: tracks angle depth, steps over
/// parenthesized/braced/bracketed subexpressions, and gives up (returning
/// toks.size()) on tokens that cannot appear in a template argument list
/// (`;`) or on shift-like uses it cannot disambiguate.
size_t SkipTemplateArgs(const std::vector<Tok>& toks, size_t open);

}  // namespace analyze
}  // namespace malleus

#endif  // MALLEUS_ANALYZE_TOKEN_H_
