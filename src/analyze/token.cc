#include "analyze/token.h"

#include <cctype>

namespace malleus {
namespace analyze {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuation, longest first so greedy matching works.
const char* const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=", "*=",
    "/=",  "%=",  "&=",  "|=",  "^=", "==", "!=", "<=", ">=", "&&", "||",
    "<<",  ">>",
};

// Parses every detlint:allow occurrence inside the comment text `body`,
// attributing them to `line` (the line the comment starts on; for
// multi-line block comments annotations should sit on the first line — in
// practice they are single-line).
void ParseAllows(const std::string& body, int line,
                 std::vector<AllowAnnotation>* allows) {
  const std::string marker = "detlint:allow(";
  size_t pos = 0;
  while ((pos = body.find(marker, pos)) != std::string::npos) {
    pos += marker.size();
    const size_t close = body.find(')', pos);
    if (close == std::string::npos) {
      allows->push_back({line, "", ""});
      return;
    }
    const std::string inner = body.substr(pos, close - pos);
    AllowAnnotation a;
    a.line = line;
    const size_t space = inner.find_first_of(" \t");
    if (space == std::string::npos) {
      a.code = inner;  // No reason — malformed, reported by the rule pass.
    } else {
      a.code = inner.substr(0, space);
      const size_t rs = inner.find_first_not_of(" \t", space);
      if (rs != std::string::npos) a.reason = inner.substr(rs);
    }
    allows->push_back(std::move(a));
    pos = close + 1;
  }
}

}  // namespace

bool LexedFile::IsAllowed(const std::string& code, int line) const {
  for (const AllowAnnotation& a : allows) {
    if (a.code != code || a.reason.empty()) continue;
    if (a.line == line || a.line + 1 == line) return true;
  }
  return false;
}

LexedFile Lex(const std::string& source) {
  LexedFile out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;

  const auto advance_over = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (source[i] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: consumed to end of line (honoring backslash
    // continuations). Macro bodies are out of scope for the matchers.
    if (c == '#') {
      // Only at start of line (modulo whitespace).
      size_t back = i;
      bool line_start = true;
      while (back > 0) {
        const char p = source[back - 1];
        if (p == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(p))) {
          line_start = false;
          break;
        }
        --back;
      }
      if (line_start) {
        while (i < n) {
          if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
            advance_over(2);
            continue;
          }
          if (source[i] == '\n') break;
          ++i;
        }
        continue;
      }
      out.toks.push_back({TokKind::kPunct, "#", line});
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const size_t end = source.find('\n', i);
      const std::string body =
          source.substr(i, (end == std::string::npos ? n : end) - i);
      ParseAllows(body, line, &out.allows);
      i = (end == std::string::npos) ? n : end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const size_t end = source.find("*/", i + 2);
      const size_t stop = (end == std::string::npos) ? n : end + 2;
      ParseAllows(source.substr(i, stop - i), line, &out.allows);
      advance_over(stop - i);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      const size_t open = source.find('(', i + 2);
      if (open != std::string::npos) {
        const std::string delim = source.substr(i + 2, open - (i + 2));
        const std::string closer = ")" + delim + "\"";
        const size_t end = source.find(closer, open + 1);
        const size_t stop =
            (end == std::string::npos) ? n : end + closer.size();
        const int start_line = line;
        std::string text = source.substr(i, stop - i);
        advance_over(stop - i);
        out.toks.push_back({TokKind::kString, std::move(text), start_line});
        continue;
      }
    }
    // String / char literal (escape-aware).
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) ++j;
        if (source[j] == '\n') break;  // Unterminated: stop at the line end.
        ++j;
      }
      const size_t stop = (j < n && source[j] == quote) ? j + 1 : j;
      out.toks.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                          source.substr(i, stop - i), line});
      advance_over(stop - i);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(source[j])) ++j;
      out.toks.push_back({TokKind::kIdent, source.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (IsDigit(c)) {
      // pp-number: digits, idents, dots, digit separators and exponent
      // signs; precise numeric grammar is irrelevant to the matchers.
      size_t j = i + 1;
      while (j < n) {
        const char d = source[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') &&
            (source[j - 1] == 'e' || source[j - 1] == 'E' ||
             source[j - 1] == 'p' || source[j - 1] == 'P')) {
          ++j;
          continue;
        }
        break;
      }
      out.toks.push_back({TokKind::kNumber, source.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation, longest match first.
    bool matched = false;
    for (const char* p : kPuncts) {
      const size_t len = std::string(p).size();
      if (source.compare(i, len, p) == 0) {
        out.toks.push_back({TokKind::kPunct, p, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.toks.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

size_t MatchingClose(const std::vector<Tok>& toks, size_t open) {
  if (open >= toks.size()) return toks.size();
  const std::string& o = toks[open].text;
  std::string closer;
  if (o == "(") {
    closer = ")";
  } else if (o == "[") {
    closer = "]";
  } else if (o == "{") {
    closer = "}";
  } else {
    return toks.size();
  }
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == o) ++depth;
    if (toks[i].text == closer && --depth == 0) return i;
  }
  return toks.size();
}

size_t SkipTemplateArgs(const std::vector<Tok>& toks, size_t open) {
  if (open >= toks.size() || toks[open].text != "<") return toks.size();
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "<") {
        ++depth;
      } else if (t.text == ">") {
        if (--depth == 0) return i + 1;
      } else if (t.text == ">>") {
        depth -= 2;
        if (depth <= 0) return i + 1;
      } else if (t.text == "(" || t.text == "[" || t.text == "{") {
        i = MatchingClose(toks, i);
        if (i >= toks.size()) return toks.size();
      } else if (t.text == ";" || t.text == "<<" || t.text == "&&" ||
                 t.text == "||") {
        // Cannot appear inside the template argument lists the matchers
        // care about: this `<` was a comparison.
        return toks.size();
      }
    }
  }
  return toks.size();
}

}  // namespace analyze
}  // namespace malleus
