#include "analyze/analyze.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace malleus {
namespace analyze {
namespace {

using lint::Severity;

// ----- Registry --------------------------------------------------------

const RuleInfo kRules[] = {
    {kRuleSharedMutableCapture, Severity::kError,
     "unsynchronized write to a captured variable in a parallel body",
     "A lambda run by exec::ParallelFor or a pool Submit writes to a\n"
     "variable captured from the enclosing scope without a mutex, an\n"
     "atomic type, or per-worker indexing. Concurrent workers race on the\n"
     "write (undefined behavior) and the winner depends on scheduling, so\n"
     "results differ run to run. Fix: give every worker its own slot\n"
     "(write results[i] where i is the loop index), or guard the write\n"
     "with a std::lock_guard, or make the variable std::atomic.\n"
     "Blind spots: writes through dereferenced pointers (*out = x) and\n"
     "mutation via functions called from the body are not seen; a\n"
     "lock_guard anywhere in the body suppresses the rule for the whole\n"
     "body."},
    {kRuleMissingMetricsScope, Severity::kError,
     "parallel body uses the metrics registry without a MetricsScope",
     "Pool workers start with no thread-local MetricsScope, so\n"
     "obs::MetricsRegistry::Current() inside a ParallelFor / Submit body\n"
     "resolves to the process-global registry instead of the caller's\n"
     "per-request registry — serve request metrics silently leak into the\n"
     "global aggregate (DESIGN.md §13). Fix: capture\n"
     "&MetricsRegistry::Current() outside the lambda and re-install it\n"
     "with obs::MetricsScope scope(metrics); as the body's first\n"
     "statement. Blind spot: registry use inside functions called from\n"
     "the body is not seen."},
    {kRuleBannedFunction, Severity::kError,
     "nondeterministic time/randomness source outside bench/",
     "rand(), srand(), std::random_device, high_resolution_clock and\n"
     "time(nullptr) draw from process-external state, so two runs of the\n"
     "same scenario diverge. Every random draw in this repo must come\n"
     "from a seeded common/rng.h generator and every duration from\n"
     "steady_clock (and only into wall-time fields excluded from\n"
     "byte-compared output). Benchmarks under bench/ are exempt — they\n"
     "measure real time by design. Annotate deliberate sites with\n"
     "// detlint:allow(det.banned-function reason)."},
    {kRuleParallelFpAccumulation, Severity::kError,
     "floating-point accumulation across parallel workers",
     "A ParallelFor / Submit body accumulates (+=, -=, *=, fetch_add)\n"
     "into a float/double captured from the enclosing scope. Even when\n"
     "the variable is atomic or mutex-guarded, the accumulation order\n"
     "depends on worker interleaving, and floating-point addition is not\n"
     "associative — the sum's low bits differ run to run, which the\n"
     "byte-identity gates (golden traces, serve responses, what-if\n"
     "reports) will catch only on an unlucky schedule. Fix: accumulate\n"
     "into per-worker slots and reduce in index order after the join\n"
     "(see core::Planner::Plan phase 4)."},
    {kRulePointerOrdering, Severity::kError,
     "ordered container keyed by pointer value",
     "std::map/std::set keyed on a raw pointer (or std::less<T*>) orders\n"
     "elements by address. Addresses change run to run under ASLR and\n"
     "with allocation order, so any iteration that reaches output,\n"
     "hashing, or accumulation is nondeterministic even though each\n"
     "individual lookup works. Fix: key on a stable id (GPU index, name,\n"
     "enumeration index) instead of the object's address."},
    {kRuleUnorderedIteration, Severity::kError,
     "iteration over an unordered container",
     "Range-for over a std::unordered_map/unordered_set visits elements\n"
     "in hash-table order, which varies with libstdc++ version, insertion\n"
     "history, and rehash points. If the loop feeds serialized output,\n"
     "hashing, accumulation, or diagnostics, the bytes differ across\n"
     "runs — the exact bug class the solver-cache serializer fixes by\n"
     "snapshotting and sorting (solver/solve_cache.cc). Fix: copy to a\n"
     "vector and sort by key before consuming, or, when the loop is\n"
     "genuinely order-insensitive (pure lookup, counting), annotate it:\n"
     "// detlint:allow(det.unordered-iteration why order cannot leak).\n"
     "Containers declared (or aliased) in the same file are always\n"
     "recognized; members declared in another scanned file are matched by\n"
     "name through the symbol index, skipping names also declared with an\n"
     "ordered container type anywhere (a lexical matcher cannot resolve\n"
     "which declaration an identifier refers to)."},
    {kRuleBadAllow, Severity::kError,
     "malformed detlint:allow annotation",
     "A detlint:allow comment is missing its reason or names an unknown\n"
     "rule code. Suppressions are part of the determinism audit trail:\n"
     "every one must name a real rule and say why the site is safe, e.g.\n"
     "// detlint:allow(det.unordered-iteration snapshot sorted below)."},
    {"detlint.stale-baseline", Severity::kNote,
     "baseline entry matches no current finding",
     "An entry in the baseline file no longer corresponds to any finding\n"
     "— the code was fixed or moved. Delete the entry so the baseline\n"
     "keeps shrinking toward empty."},
    {kRuleStatusDiscarded, Severity::kError,
     "discarded Status / Result return value",
     "A statement calls a function declared to return Status or\n"
     "Result<T> and drops the result, silently swallowing the error path\n"
     "(a failed cache load, an infeasible solve). Handle it, propagate it\n"
     "with MALLEUS_RETURN_NOT_OK, or assert it with MALLEUS_CHECK_OK.\n"
     "[[nodiscard]] on Status/Result makes the compiler enforce the same\n"
     "rule; detlint catches it before a build and in code the compiler\n"
     "never instantiates. Blind spot: the matcher resolves callees by\n"
     "name across the scanned set, so names used with both Status and\n"
     "non-Status return types are skipped as ambiguous."},
};

bool IsTypeKeyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "return",   "else",     "new",      "delete",   "throw",  "case",
      "goto",     "if",       "while",    "do",       "for",    "switch",
      "sizeof",   "co_await", "co_return", "co_yield", "not",   "and",
      "or",       "using",    "namespace", "template", "typename",
      "operator", "break",    "continue", "default",  "public", "private",
      "protected"};
  return kw.count(s) != 0;
}

bool IsIdent(const Tok& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

std::string Location(const std::string& path, int line) {
  return StrFormat("%s:%d", path.c_str(), line);
}

// ----- Per-file analysis context ---------------------------------------

class FileAnalyzer {
 public:
  FileAnalyzer(const std::string& path, const LexedFile& file,
               const SymbolIndex& index, const AnalyzeOptions& options,
               lint::DiagnosticSink* sink)
      : path_(path),
        file_(file),
        toks_(file.toks),
        index_(index),
        options_(options),
        sink_(sink) {}

  void Run() {
    CheckAllowAnnotations();
    CollectUnorderedDecls();
    CheckUnorderedIteration();
    CheckPointerOrdering();
    if (!PathRelaxed()) CheckBannedFunctions();
    CheckParallelBodies();
    CheckDiscardedStatus();
  }

 private:
  const std::string& text(size_t i) const { return toks_[i].text; }
  bool Is(size_t i, const char* t) const {
    return i < toks_.size() && toks_[i].text == t;
  }
  bool IsId(size_t i) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kIdent;
  }

  void Report(const char* code, int line, std::string message,
              std::vector<lint::DiagParam> params = {}) {
    if (file_.IsAllowed(code, line)) return;
    const RuleInfo* rule = FindRule(code);
    sink_->Report(rule ? rule->severity : Severity::kError, code,
                  Location(path_, line), std::move(message),
                  std::move(params));
  }

  bool PathRelaxed() const {
    std::string p = path_;
    if (p.rfind("./", 0) == 0) p = p.substr(2);
    for (const std::string& prefix : options_.relaxed_prefixes) {
      if (p.rfind(prefix, 0) == 0) return true;
    }
    return false;
  }

  // --- detlint.bad-allow -----------------------------------------------

  void CheckAllowAnnotations() {
    for (const AllowAnnotation& a : file_.allows) {
      if (a.code.empty() || a.reason.empty()) {
        Report(kRuleBadAllow, a.line,
               "detlint:allow needs a code and a reason: "
               "detlint:allow(CODE why this site is safe)");
      } else if (FindRule(a.code) == nullptr) {
        Report(kRuleBadAllow, a.line,
               StrFormat("detlint:allow names unknown rule '%s'",
                         a.code.c_str()),
               {{"code", a.code}});
      }
    }
  }

  // --- det.unordered-iteration -----------------------------------------

  void CollectUnorderedDecls() {
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    // Aliases: `using Foo = ...unordered_map<...>;`.
    for (size_t i = 0; i + 3 < toks_.size(); ++i) {
      if (!IsIdent(toks_[i], "using") || !IsId(i + 1) || !Is(i + 2, "="))
        continue;
      for (size_t j = i + 3; j < toks_.size() && !Is(j, ";"); ++j) {
        if (IsId(j) && kUnordered.count(text(j)) != 0) {
          unordered_types_.insert(text(i + 1));
          break;
        }
      }
    }
    // Declarations: `std::unordered_map<K,V> name` (members, locals,
    // parameters) and `AliasType name`.
    for (size_t i = 0; i < toks_.size(); ++i) {
      if (!IsId(i)) continue;
      size_t after = 0;
      if (kUnordered.count(text(i)) != 0 && Is(i + 1, "<")) {
        after = SkipTemplateArgs(toks_, i + 1);
      } else if (unordered_types_.count(text(i)) != 0) {
        // Alias use in type position: previous token must not be a member
        // or call context.
        if (i > 0 && (Is(i - 1, ".") || Is(i - 1, "->"))) continue;
        after = i + 1;
      } else {
        continue;
      }
      while (after < toks_.size() &&
             (Is(after, "&") || Is(after, "*") || Is(after, "const"))) {
        ++after;
      }
      if (after < toks_.size() && IsId(after) &&
          !IsTypeKeyword(text(after))) {
        unordered_vars_.insert(text(after));
      }
    }
  }

  void CheckUnorderedIteration() {
    for (size_t i = 0; i + 2 < toks_.size(); ++i) {
      if (!IsIdent(toks_[i], "for") || !Is(i + 1, "(")) continue;
      const size_t close = MatchingClose(toks_, i + 1);
      if (close >= toks_.size()) continue;
      // Find the range-for `:` at paren depth 1.
      size_t colon = 0;
      int depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (toks_[j].kind != TokKind::kPunct) continue;
        const std::string& t = text(j);
        if (t == "(" || t == "[" || t == "{") ++depth;
        if (t == ")" || t == "]" || t == "}") --depth;
        if (t == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == 0 || colon + 1 >= close) continue;
      // Calls and parenthesized expressions are skipped: `for (x :
      // Sorted(m))` is exactly the fix this rule asks for.
      if (Is(close - 1, ")")) continue;
      size_t base = 0;
      for (size_t j = colon + 1; j < close; ++j) {
        if (IsId(j)) base = j;
      }
      if (base == 0) continue;
      if (unordered_vars_.count(text(base)) == 0 &&
          !index_.IsUnordered(text(base))) {
        continue;
      }
      Report(kRuleUnorderedIteration, toks_[i].line,
             StrFormat("iteration over unordered container '%s' is "
                       "order-nondeterministic; sort into a vector first "
                       "or annotate why order cannot leak",
                       text(base).c_str()),
             {{"identifier", text(base)}});
    }
  }

  // --- det.pointer-ordering --------------------------------------------

  void CheckPointerOrdering() {
    static const std::set<std::string> kOrdered = {"map", "set", "multimap",
                                                   "multiset", "less"};
    for (size_t i = 2; i + 1 < toks_.size(); ++i) {
      if (!IsId(i) || kOrdered.count(text(i)) == 0) continue;
      if (!Is(i - 1, "::") || !IsIdent(toks_[i - 2], "std")) continue;
      if (!Is(i + 1, "<")) continue;
      // Walk the first template argument; flag when it ends in '*'.
      size_t last = 0;
      int angle = 1;
      bool ended = false;
      for (size_t j = i + 2; j < toks_.size() && !ended; ++j) {
        const std::string& t = text(j);
        if (toks_[j].kind == TokKind::kPunct) {
          if (t == "<") ++angle;
          else if (t == ">") { if (--angle == 0) ended = true; }
          else if (t == ">>") { angle -= 2; ended = angle <= 0; }
          else if (t == "," && angle == 1) ended = true;
          else if (t == "(") { j = MatchingClose(toks_, j); continue; }
          else if (t == ";") break;  // Not a template argument list.
        }
        if (!ended) last = j;
      }
      if (ended && last != 0 && Is(last, "*")) {
        Report(kRulePointerOrdering, toks_[i].line,
               StrFormat("std::%s keyed by pointer value orders elements "
                         "by address (nondeterministic under ASLR); key "
                         "on a stable id instead",
                         text(i).c_str()));
      }
    }
  }

  // --- det.banned-function ---------------------------------------------

  void CheckBannedFunctions() {
    for (size_t i = 0; i < toks_.size(); ++i) {
      if (!IsId(i)) continue;
      const std::string& t = text(i);
      const bool member = i > 0 && (Is(i - 1, ".") || Is(i - 1, "->"));
      if (t == "random_device" || t == "high_resolution_clock") {
        Report(kRuleBannedFunction, toks_[i].line,
               StrFormat("'%s' is a nondeterministic source; use a seeded "
                         "common/rng.h generator or steady_clock",
                         t.c_str()),
               {{"function", t}});
      } else if ((t == "rand" || t == "srand") && Is(i + 1, "(") &&
                 !member) {
        Report(kRuleBannedFunction, toks_[i].line,
               StrFormat("'%s()' draws from hidden global state; use a "
                         "seeded common/rng.h generator",
                         t.c_str()),
               {{"function", t}});
      } else if (t == "time" && Is(i + 1, "(") && !member &&
                 (Is(i + 2, "nullptr") || Is(i + 2, "NULL") ||
                  Is(i + 2, "0")) &&
                 Is(i + 3, ")")) {
        Report(kRuleBannedFunction, toks_[i].line,
               "'time(nullptr)' reads the wall clock; thread a seed or "
               "timestamp in explicitly",
               {{"function", "time"}});
      }
    }
  }

  // --- Parallel-body rules ---------------------------------------------

  struct Lambda {
    size_t capture_open = 0;   ///< Index of '['.
    size_t body_open = 0;      ///< Index of '{'.
    size_t body_close = 0;     ///< Index of '}'.
    std::set<std::string> params;
  };

  // Parses the lambda whose capture list starts at `lb`; false when the
  // token shape is not a lambda literal.
  bool ParseLambda(size_t lb, Lambda* out) {
    if (!Is(lb, "[")) return false;
    const size_t cap_close = MatchingClose(toks_, lb);
    if (cap_close >= toks_.size()) return false;
    out->capture_open = lb;
    size_t cur = cap_close + 1;
    if (Is(cur, "(")) {
      const size_t pclose = MatchingClose(toks_, cur);
      if (pclose >= toks_.size()) return false;
      // Parameter names: last identifier of each comma-separated segment
      // (before any default-argument '=').
      size_t seg_last = 0;
      int depth = 0;
      bool in_default = false;
      for (size_t j = cur + 1; j <= pclose; ++j) {
        const std::string& t = text(j);
        if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
        if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
        if ((t == "," && depth == 0) || j == pclose) {
          if (seg_last != 0) out->params.insert(text(seg_last));
          seg_last = 0;
          in_default = false;
          continue;
        }
        if (t == "=" && depth == 0) in_default = true;
        if (!in_default && IsId(j)) seg_last = j;
      }
      cur = pclose + 1;
    }
    // Skip mutable/noexcept/attributes/trailing return type up to '{'.
    for (int guard = 0; guard < 16 && cur < toks_.size(); ++guard) {
      if (Is(cur, "{")) break;
      if (Is(cur, "(")) {
        cur = MatchingClose(toks_, cur) + 1;
        continue;
      }
      ++cur;
    }
    if (!Is(cur, "{")) return false;
    out->body_open = cur;
    out->body_close = MatchingClose(toks_, cur);
    return out->body_close < toks_.size();
  }

  // Locates the lambda run by the parallel call at `call` (index of the
  // ParallelFor/Submit identifier): either a lambda literal among the
  // arguments, or a named lambda (`const auto f = [...]...`) declared
  // earlier in the file and passed by name as the last argument.
  bool FindParallelLambda(size_t call, Lambda* out) {
    const size_t open = call + 1;
    const size_t close = MatchingClose(toks_, open);
    if (close >= toks_.size()) return false;
    int depth = 0;
    for (size_t j = open; j < close; ++j) {
      const std::string& t = text(j);
      if (t == "(" || t == "{") ++depth;
      if (t == ")" || t == "}") --depth;
      if (Is(j, "[") && depth == 1 && ParseLambda(j, out)) return true;
    }
    // Named argument: resolve `name = [` backward from the call site.
    if (IsId(close - 1)) {
      const std::string& name = text(close - 1);
      for (size_t j = call; j-- > 2;) {
        if (IsId(j) && text(j) == name && Is(j + 1, "=") && Is(j + 2, "[")) {
          return ParseLambda(j + 2, out);
        }
      }
    }
    return false;
  }

  // Identifiers declared inside [begin, end): `Type name ...`,
  // `Type& name`, `auto name =`, structured bindings, loop variables.
  std::set<std::string> LocalDecls(size_t begin, size_t end) {
    std::set<std::string> locals;
    for (size_t q = begin; q < end; ++q) {
      // Structured bindings: auto [&] [a, b] = ...
      if (IsIdent(toks_[q], "auto")) {
        size_t j = q + 1;
        while (Is(j, "&") || Is(j, "*")) ++j;
        if (Is(j, "[")) {
          const size_t bclose = MatchingClose(toks_, j);
          for (size_t k = j + 1; k < bclose && k < end; ++k) {
            if (IsId(k)) locals.insert(text(k));
          }
          q = bclose;
          continue;
        }
      }
      if (!IsId(q) || q == 0) continue;
      const Tok& next = toks_[std::min(q + 1, toks_.size() - 1)];
      if (next.text != "=" && next.text != ";" && next.text != "(" &&
          next.text != "{" && next.text != ":") {
        continue;
      }
      const Tok& prev = toks_[q - 1];
      const bool prev_type_ident = prev.kind == TokKind::kIdent &&
                                   !IsTypeKeyword(prev.text);
      const bool prev_declarator =
          (prev.text == "&" || prev.text == "*" || prev.text == ">") &&
          q >= 2 &&
          (toks_[q - 2].kind == TokKind::kIdent || Is(q - 2, ">"));
      if (prev_type_ident || prev_declarator) locals.insert(text(q));
    }
    return locals;
  }

  // True when the statement-list [begin, end) contains a lock guard.
  bool HasLock(size_t begin, size_t end) const {
    for (size_t j = begin; j < end; ++j) {
      if (!IsId(j)) continue;
      const std::string& t = toks_[j].text;
      if (t == "lock_guard" || t == "unique_lock" || t == "scoped_lock") {
        return true;
      }
    }
    return false;
  }

  // True when `name`'s declaration (anywhere in the file) mentions one of
  // `type_words` within the same statement, e.g. IsDeclaredAs("sum",
  // {"double","float"}).
  bool IsDeclaredAs(const std::string& name,
                    const std::set<std::string>& type_words) const {
    for (size_t q = 1; q < toks_.size(); ++q) {
      if (!IsId(q) || toks_[q].text != name) continue;
      // Walk back to the statement start, collecting candidate type words.
      for (size_t b = q; b-- > 0;) {
        const std::string& t = toks_[b].text;
        if (t == ";" || t == "{" || t == "}" || t == "(" || t == "," ||
            t == "=") {
          break;  // '=' bounds the walk to the declaration's own type.
        }
        if (toks_[b].kind == TokKind::kIdent && type_words.count(t) != 0) {
          return true;
        }
        if (q - b > 10) break;
      }
    }
    return false;
  }

  void CheckParallelBodies() {
    for (size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!IsId(i) || !Is(i + 1, "(")) continue;
      const std::string& t = text(i);
      bool parallel = false;
      if (t == "ParallelFor") {
        parallel = true;
      } else if (t == "Submit" && i >= 2 &&
                 (Is(i - 1, ".") || Is(i - 1, "->")) && IsId(i - 2) &&
                 text(i - 2).find("pool") != std::string::npos) {
        // Only pool submissions: Server::Submit and FlowSim::Submit share
        // the name but run inline.
        parallel = true;
      }
      if (!parallel) continue;
      Lambda lambda;
      if (!FindParallelLambda(i, &lambda)) continue;
      AnalyzeParallelBody(lambda);
    }
  }

  void AnalyzeParallelBody(const Lambda& lambda) {
    const size_t begin = lambda.body_open + 1;
    const size_t end = lambda.body_close;
    std::set<std::string> locals = LocalDecls(begin, end);
    for (const std::string& p : lambda.params) locals.insert(p);
    const bool has_lock = HasLock(begin, end);

    bool saw_metrics_use = false;
    int metrics_line = 0;
    bool saw_metrics_scope = false;

    static const std::set<std::string> kAssignOps = {
        "=",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
    static const std::set<std::string> kAccumOps = {"+=", "-=", "*=", "/="};
    static const std::set<std::string> kMutators = {
        "push_back", "emplace_back", "pop_back", "insert",   "emplace",
        "erase",     "clear",        "resize",   "assign",   "append",
        "push",      "pop",          "store"};
    static const std::set<std::string> kFetchOps = {"fetch_add",
                                                    "fetch_sub"};
    static const std::set<std::string> kFpTypes = {"double", "float"};

    for (size_t q = begin; q < end; ++q) {
      if (!IsId(q)) continue;
      const std::string& name = text(q);
      if (name == "MetricsScope") saw_metrics_scope = true;
      if ((name == "Current" && q >= 2 && Is(q - 1, "::") &&
           IsIdent(toks_[q - 2], "MetricsRegistry")) ||
          name == "RecordDiagnosticMetrics") {
        if (!saw_metrics_use) metrics_line = toks_[q].line;
        saw_metrics_use = true;
      }

      // Write-site detection: statement-initial identifier followed by a
      // member/subscript chain ending at an assignment or mutating call.
      const std::string& prev = toks_[q - 1].text;
      bool stmt_begin = prev == ";" || prev == "{" || prev == "}" ||
                        prev == ")" || prev == "else";
      bool prefix_incr = false;
      if ((prev == "++" || prev == "--") && q >= 2) {
        const std::string& p2 = toks_[q - 2].text;
        if (p2 == ";" || p2 == "{" || p2 == "}" || p2 == ")") {
          stmt_begin = true;
          prefix_incr = true;
        }
      }
      if (!stmt_begin) continue;
      size_t cur = q + 1;
      bool slot_indexed = false;
      std::string last_member;
      while (cur < end) {
        if (Is(cur, ".") || Is(cur, "->")) {
          if (!IsId(cur + 1)) break;
          last_member = text(cur + 1);
          cur += 2;
          continue;
        }
        if (Is(cur, "[")) {
          const size_t sclose = MatchingClose(toks_, cur);
          for (size_t k = cur + 1; k < sclose; ++k) {
            if (IsId(k) && lambda.params.count(text(k)) != 0) {
              slot_indexed = true;
            }
          }
          cur = sclose + 1;
          continue;
        }
        break;
      }
      if (cur >= end) continue;
      std::string op;
      if (toks_[cur].kind == TokKind::kPunct &&
          kAssignOps.count(text(cur)) != 0) {
        op = text(cur);
      } else if (Is(cur, "++") || Is(cur, "--")) {
        op = text(cur);
      } else if (Is(cur, "(") && !last_member.empty() &&
                 (kMutators.count(last_member) != 0 ||
                  kFetchOps.count(last_member) != 0)) {
        op = last_member;
      } else if (prefix_incr) {
        op = prev;
      } else {
        continue;
      }
      if (locals.count(name) != 0 || slot_indexed) continue;

      const bool accumulates =
          kAccumOps.count(op) != 0 || kFetchOps.count(op) != 0;
      if (accumulates && IsDeclaredAs(name, kFpTypes)) {
        Report(kRuleParallelFpAccumulation, toks_[q].line,
               StrFormat("floating-point accumulation into captured '%s' "
                         "across parallel workers is order-"
                         "nondeterministic; reduce per-worker slots in "
                         "index order instead",
                         name.c_str()),
               {{"identifier", name}, {"op", op}});
        continue;
      }
      if (has_lock || IsDeclaredAs(name, {"atomic"})) continue;
      Report(kRuleSharedMutableCapture, toks_[q].line,
             StrFormat("unsynchronized write to captured '%s' in a "
                       "parallel body; use per-worker slots, a mutex, or "
                       "an atomic",
                       name.c_str()),
             {{"identifier", name}, {"op", op}});
    }

    if (saw_metrics_use && !saw_metrics_scope) {
      Report(kRuleMissingMetricsScope, metrics_line,
             "parallel body resolves MetricsRegistry::Current() without "
             "re-installing the caller's registry; add obs::MetricsScope "
             "scope(metrics) as the first statement");
    }
  }

  // --- status.discarded ------------------------------------------------

  void CheckDiscardedStatus() {
    for (size_t i = 0; i < toks_.size(); ++i) {
      if (!IsId(i)) continue;
      bool stmt_begin = i == 0;
      if (i > 0) {
        const std::string& prev = text(i - 1);
        if (prev == ";" || prev == "{" || prev == "}" || prev == "else") {
          stmt_begin = true;
        } else if (prev == ")") {
          // `if (...) Foo();` discards; `(void)Foo();` suppresses.
          size_t open = i - 1;
          int depth = 0;
          while (open-- > 0) {
            if (Is(open, ")")) ++depth;
            if (Is(open, "(") && depth-- == 0) break;
          }
          stmt_begin = open < toks_.size() && open > 0 && IsId(open - 1) &&
                       (text(open - 1) == "if" || text(open - 1) == "while" ||
                        text(open - 1) == "for" ||
                        text(open - 1) == "switch");
        }
      }
      if (!stmt_begin) continue;
      // Walk `a::b::c` / `obj.method` / `ptr->method` up to a call '('.
      size_t cur = i;
      std::string callee = text(i);
      while (cur + 1 < toks_.size()) {
        const std::string& nxt = text(cur + 1);
        if ((nxt == "::" || nxt == "." || nxt == "->") && IsId(cur + 2)) {
          callee = text(cur + 2);
          cur += 2;
          continue;
        }
        break;
      }
      if (!Is(cur + 1, "(")) continue;
      const size_t close = MatchingClose(toks_, cur + 1);
      if (close >= toks_.size() || !Is(close + 1, ";")) continue;
      if (!index_.IsStatusReturning(callee)) continue;
      Report(kRuleStatusDiscarded, toks_[i].line,
             StrFormat("result of Status/Result-returning '%s' is "
                       "discarded; handle it, MALLEUS_RETURN_NOT_OK it, "
                       "or MALLEUS_CHECK_OK it",
                       callee.c_str()),
             {{"callee", callee}});
    }
  }

  const std::string& path_;
  const LexedFile& file_;
  const std::vector<Tok>& toks_;
  const SymbolIndex& index_;
  const AnalyzeOptions& options_;
  lint::DiagnosticSink* sink_;

  std::set<std::string> unordered_types_;
  std::set<std::string> unordered_vars_;
};

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo>* rules = [] {
    auto* v = new std::vector<RuleInfo>(std::begin(kRules), std::end(kRules));
    std::sort(v->begin(), v->end(), [](const RuleInfo& a, const RuleInfo& b) {
      return std::string(a.code) < b.code;
    });
    return v;
  }();
  return *rules;
}

const RuleInfo* FindRule(const std::string& code) {
  for (const RuleInfo& r : Rules()) {
    if (code == r.code) return &r;
  }
  return nullptr;
}

void SymbolIndex::AddFile(const LexedFile& file) {
  const std::vector<Tok>& toks = file.toks;
  const auto is = [&](size_t i, const char* t) {
    return i < toks.size() && toks[i].text == t;
  };
  const auto is_id = [&](size_t i) {
    return i < toks.size() && toks[i].kind == TokKind::kIdent;
  };
  // Container declarations, for cross-file det.unordered-iteration: a
  // name declared `unordered_map<...> name` anywhere becomes flaggable in
  // every file unless the same name is also declared with an ordered
  // container type somewhere (then it is ambiguous and skipped).
  static const std::set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static const std::set<std::string> kOrderedTypes = {
      "map",  "set",   "multimap", "multiset", "vector",
      "list", "deque", "array",    "string",   "basic_string"};
  const auto record_container = [&](size_t i, std::set<std::string>* dst) {
    size_t after = SkipTemplateArgs(toks, i + 1);
    while (is(after, "&") || is(after, "*") || is(after, "const")) ++after;
    if (is_id(after) && !IsTypeKeyword(toks[after].text)) {
      dst->insert(toks[after].text);
    }
  };
  // Records the declarator name following a Status / Result<T> return
  // type that starts at token `j` (after any '&' and namespace
  // qualification).
  const auto record_declarator = [&](size_t j) {
    if (is(j, "&")) ++j;
    while (is_id(j) && is(j + 1, "::")) j += 2;
    if (is_id(j) && toks[j].text != "operator" && is(j + 1, "(")) {
      status_names_.insert(toks[j].text);
    }
  };
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!is_id(i)) continue;
    const std::string& t = toks[i].text;
    const bool member_ctx = i > 0 && (is(i - 1, ".") || is(i - 1, "->"));
    if (!member_ctx && is(i + 1, "<")) {
      if (kUnorderedTypes.count(t) != 0) {
        record_container(i, &unordered_names_);
      } else if (kOrderedTypes.count(t) != 0) {
        record_container(i, &ordered_names_);
      }
    }
    if (t == "Status" && !member_ctx) {
      record_declarator(i + 1);
    } else if (t == "Result" && !member_ctx && is(i + 1, "<")) {
      const size_t after = SkipTemplateArgs(toks, i + 1);
      if (after < toks.size()) record_declarator(after);
    } else if (!member_ctx && !IsTypeKeyword(t) && t != "Status" &&
               t != "Result" && is_id(i + 1) && is(i + 2, "(") &&
               (i == 0 || (!is(i - 1, ".") && !is(i - 1, "->") &&
                           !is(i - 1, ",") && !is(i - 1, "(") &&
                           !is(i - 1, "<")))) {
      // `T name(` with T != Status/Result: `name` returns something else
      // somewhere, so treat it as ambiguous.
      other_names_.insert(toks[i + 1].text);
    }
  }
}

void AnalyzeFile(const std::string& path, const LexedFile& file,
                 const SymbolIndex& index, const AnalyzeOptions& options,
                 lint::DiagnosticSink* sink) {
  FileAnalyzer(path, file, index, options, sink).Run();
}

void AnalyzeSource(const std::string& path, const std::string& source,
                   const SymbolIndex& index, const AnalyzeOptions& options,
                   lint::DiagnosticSink* sink) {
  const LexedFile file = Lex(source);
  AnalyzeFile(path, file, index, options, sink);
}

Result<std::vector<BaselineEntry>> ParseBaseline(const std::string& text) {
  std::vector<BaselineEntry> entries;
  size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string line = text.substr(
        pos, (eol == std::string::npos ? text.size() : eol) - pos);
    pos = (eol == std::string::npos) ? text.size() + 1 : eol + 1;
    ++line_no;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    line = line.substr(first);

    BaselineEntry e;
    const size_t sp1 = line.find_first_of(" \t");
    if (sp1 == std::string::npos) {
      return Status::InvalidArgument(StrFormat(
          "baseline line %d: expected 'CODE PATH:LINE reason'", line_no));
    }
    e.code = line.substr(0, sp1);
    const size_t loc_start = line.find_first_not_of(" \t", sp1);
    const size_t sp2 = line.find_first_of(" \t", loc_start);
    if (loc_start == std::string::npos || sp2 == std::string::npos) {
      return Status::InvalidArgument(StrFormat(
          "baseline line %d: missing location or reason", line_no));
    }
    const std::string loc = line.substr(loc_start, sp2 - loc_start);
    const size_t colon = loc.rfind(':');
    if (colon == std::string::npos || colon + 1 >= loc.size()) {
      return Status::InvalidArgument(StrFormat(
          "baseline line %d: location must be PATH:LINE, got '%s'", line_no,
          loc.c_str()));
    }
    e.file = loc.substr(0, colon);
    e.line = std::atoi(loc.c_str() + colon + 1);
    if (e.line <= 0) {
      return Status::InvalidArgument(
          StrFormat("baseline line %d: bad line number in '%s'", line_no,
                    loc.c_str()));
    }
    const size_t reason = line.find_first_not_of(" \t", sp2);
    if (reason == std::string::npos) {
      return Status::InvalidArgument(StrFormat(
          "baseline line %d: a reason is mandatory", line_no));
    }
    e.reason = line.substr(reason);
    entries.push_back(std::move(e));
  }
  return entries;
}

void ApplyBaseline(const std::vector<BaselineEntry>& baseline,
                   const lint::DiagnosticSink& in,
                   lint::DiagnosticSink* out) {
  std::vector<bool> used(baseline.size(), false);
  for (const lint::Diagnostic& d : in.diagnostics()) {
    bool matched = false;
    for (size_t i = 0; i < baseline.size(); ++i) {
      const BaselineEntry& e = baseline[i];
      if (d.code == e.code &&
          d.location == Location(e.file, e.line)) {
        used[i] = true;
        matched = true;
      }
    }
    if (!matched) out->Report(d);
  }
  for (size_t i = 0; i < baseline.size(); ++i) {
    if (used[i]) continue;
    out->Report(Severity::kNote, "detlint.stale-baseline",
                Location(baseline[i].file, baseline[i].line),
                StrFormat("baseline entry for %s matches no current "
                          "finding; delete it",
                          baseline[i].code.c_str()));
  }
}

}  // namespace analyze
}  // namespace malleus
