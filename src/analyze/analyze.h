// malleus::analyze — detlint, the repo's determinism & concurrency static
// analyzer (DESIGN.md §15).
//
// Malleus's core contract is bitwise determinism: plans, estimates,
// FlowSim traces and serve responses must be byte-identical at any thread
// count, cache state or worker clamp. That contract is enforced
// dynamically by the differential oracles (DESIGN.md §11) — detlint
// enforces it *statically*, before any test runs, by matching the source
// itself against the handful of C++ patterns that historically break it.
//
// The analyzer is libclang-free: a lexer (token.h) plus lightweight
// declaration/statement matchers tuned to this repo's idiom. Findings are
// heuristic — each rule documents its known blind spots in `explanation`
// — but the rules are tuned so a clean tree stays clean without
// annotation noise. Three rule families:
//
//   D (determinism)
//     det.unordered-iteration     range-for over unordered containers
//     det.parallel-fp-accumulation  FP accumulation across pool workers
//     det.banned-function         rand/random_device/hi-res clock/time(0)
//     det.pointer-ordering        ordered containers keyed by pointers
//   C (concurrency)
//     conc.shared-mutable-capture  unsynchronized writes to captures in
//                                  ParallelFor / pool Submit bodies
//     conc.missing-metrics-scope   pool bodies hitting the metrics
//                                  registry without a MetricsScope
//   S (status hygiene)
//     status.discarded            dropped Status / Result<T> returns
//   plus detlint.bad-allow        malformed suppression annotations
//
// Findings report through lint::Diagnostic / DiagnosticSink, so they
// render in text/JSON/SARIF alongside the scenario-lint codes; locations
// are "path:line" (RenderSarif maps those to SARIF physicalLocations).
// Suppression: an inline detlint:allow comment naming the code and a
// mandatory reason on the finding's line or the line above, or a
// checked-in baseline file (tools/detlint_baseline.txt, see
// ParseBaseline).

#ifndef MALLEUS_ANALYZE_ANALYZE_H_
#define MALLEUS_ANALYZE_ANALYZE_H_

#include <set>
#include <string>
#include <vector>

#include "analyze/token.h"
#include "common/result.h"
#include "common/status.h"
#include "lint/diagnostic.h"

namespace malleus {
namespace analyze {

// ----- Rule registry ---------------------------------------------------

inline constexpr char kRuleUnorderedIteration[] = "det.unordered-iteration";
inline constexpr char kRuleParallelFpAccumulation[] =
    "det.parallel-fp-accumulation";
inline constexpr char kRuleBannedFunction[] = "det.banned-function";
inline constexpr char kRulePointerOrdering[] = "det.pointer-ordering";
inline constexpr char kRuleSharedMutableCapture[] =
    "conc.shared-mutable-capture";
inline constexpr char kRuleMissingMetricsScope[] =
    "conc.missing-metrics-scope";
inline constexpr char kRuleStatusDiscarded[] = "status.discarded";
inline constexpr char kRuleBadAllow[] = "detlint.bad-allow";

struct RuleInfo {
  const char* code;
  lint::Severity severity;
  const char* summary;      ///< One line, for --list.
  const char* explanation;  ///< Multi-line rationale + blind spots, for
                            ///< --explain=CODE.
};

/// Every detlint rule, sorted by code. Kept in sync with DESIGN.md §15 by
/// tests/analyze_test.cc.
const std::vector<RuleInfo>& Rules();

/// Registry lookup; null for unknown codes.
const RuleInfo* FindRule(const std::string& code);

// ----- Cross-file symbol index -----------------------------------------

/// Cross-file declaration knowledge built in a first pass over every
/// analyzed file:
///   - names of functions declared to return Status / Result<T>, so
///     status.discarded can recognize call statements that drop the
///     result;
///   - names of variables/members declared with unordered container
///     types, so det.unordered-iteration sees members iterated in a .cc
///     but declared in the companion header.
/// Both sets are ambiguity-safe: a name also seen with a non-Status
/// return type (or an ordered container type) anywhere in the scanned set
/// is dropped — a lexical matcher cannot overload-resolve, so it must not
/// guess.
class SymbolIndex {
 public:
  /// Accumulates declarations from one lexed file.
  void AddFile(const LexedFile& file);

  /// True iff `name` is unambiguously Status/Result-returning.
  bool IsStatusReturning(const std::string& name) const {
    return status_names_.count(name) != 0 && other_names_.count(name) == 0;
  }

  /// True iff `name` is unambiguously an unordered container.
  bool IsUnordered(const std::string& name) const {
    return unordered_names_.count(name) != 0 &&
           ordered_names_.count(name) == 0;
  }

 private:
  std::set<std::string> status_names_;
  std::set<std::string> other_names_;
  std::set<std::string> unordered_names_;
  std::set<std::string> ordered_names_;
};

// ----- Analysis --------------------------------------------------------

struct AnalyzeOptions {
  /// Path prefixes where det.banned-function does not fire: benchmarks
  /// legitimately read wall clocks. Matched against the path passed to
  /// AnalyzeSource after stripping any leading "./".
  std::vector<std::string> relaxed_prefixes = {"bench/"};
};

/// Runs every rule over one already-lexed file, appending findings (with
/// locations "path:line") to `sink`. `index` may cover just this file or a
/// whole tree; passing a default-constructed index disables
/// status.discarded.
void AnalyzeFile(const std::string& path, const LexedFile& file,
                 const SymbolIndex& index, const AnalyzeOptions& options,
                 lint::DiagnosticSink* sink);

/// Convenience: Lex + AnalyzeFile over raw source text.
void AnalyzeSource(const std::string& path, const std::string& source,
                   const SymbolIndex& index, const AnalyzeOptions& options,
                   lint::DiagnosticSink* sink);

// ----- Baseline --------------------------------------------------------

/// One accepted pre-existing finding. Baseline files are line-oriented:
///   CODE PATH:LINE reason text...
/// with '#' comments and blank lines skipped. The reason is mandatory —
/// a baseline is a list of *justified* exceptions, not a mute button.
struct BaselineEntry {
  std::string code;
  std::string file;
  int line = 0;
  std::string reason;
};

/// Parses baseline text; malformed lines (missing fields or reason) fail
/// with InvalidArgument naming the offending line.
Result<std::vector<BaselineEntry>> ParseBaseline(const std::string& text);

/// Copies `in` to `out` minus findings matched by the baseline
/// (code + file + line must all agree). Stale entries — baseline lines no
/// current finding matches — are appended to `out` as note-level
/// "detlint.stale-baseline" diagnostics so the file shrinks as the tree
/// heals.
void ApplyBaseline(const std::vector<BaselineEntry>& baseline,
                   const lint::DiagnosticSink& in, lint::DiagnosticSink* out);

}  // namespace analyze
}  // namespace malleus

#endif  // MALLEUS_ANALYZE_ANALYZE_H_
