// The per-event action space of the online fault-tolerance engine and the
// pluggable selectors that choose from it.
//
// For every cluster event the runner (policy/runner.h) prices five
// candidate actions and hands the estimates to a PolicySelector:
//
//   tolerate  keep the current plan and ride out the degradation
//   promote   swap the worst degraded active GPU with a healthy same-node
//             standby (S5.2 elastic re-inclusion, migration-priced)
//   delta     delta re-plan through the hierarchical island memo
//             (core/hier.h), then migrate
//   replan    full flat re-plan + migration (paper S4/S5.1)
//   restart   re-plan, then reload everyone from the latest checkpoint
//             (sim/restart.h) instead of migrating
//
// Each estimate carries a one-off transition cost and the steady-state
// step time afterwards; PredictedCost amortizes over a fixed horizon
// (Chameleon's "predicted amortized cost", arXiv 2508.21613). The
// `adaptive` selector takes the feasible argmin; the five fixed selectors
// always pick their namesake action when it is feasible.

#ifndef MALLEUS_POLICY_POLICY_H_
#define MALLEUS_POLICY_POLICY_H_

#include <array>
#include <memory>
#include <string>

#include "common/result.h"
#include "policy/events.h"

namespace malleus {
namespace policy {

/// The action space, in deterministic tie-break order (lower wins ties).
enum class PolicyAction {
  kTolerate = 0,
  kPromote = 1,
  kDeltaReplan = 2,
  kReplan = 3,
  kRestart = 4,
};

inline constexpr int kNumPolicyActions = 5;

/// Stable lowercase name, e.g. "tolerate"; used by logs and golden files.
const char* PolicyActionName(PolicyAction action);

/// Predicted outcome of taking one action in response to one event.
struct ActionEstimate {
  /// False when the action cannot be taken (e.g. tolerate with the current
  /// plan running on a failed GPU, promote with no healthy same-node
  /// standby, or a planner failure). Infeasible estimates are never
  /// selected.
  bool feasible = false;
  /// One-off cost: re-plan latency + migration or checkpoint I/O.
  double transition_seconds = 0.0;
  /// Steady-state per-iteration step time after the action.
  double step_seconds = 0.0;

  /// Amortized cost of the action over the next `horizon` iterations.
  double PredictedCost(double horizon_iterations) const {
    return transition_seconds + horizon_iterations * step_seconds;
  }
};

/// Estimates for all five actions, indexed by PolicyAction.
using ActionEstimates = std::array<ActionEstimate, kNumPolicyActions>;

/// \brief Chooses one action per event from the priced candidates.
class PolicySelector {
 public:
  virtual ~PolicySelector() = default;

  /// The selector's registry name ("adaptive", "tolerate", ...).
  virtual const std::string& name() const = 0;

  /// Picks an action. At least one estimate is guaranteed feasible (the
  /// runner aborts the run otherwise); selectors must return a feasible
  /// action and must be deterministic functions of their arguments.
  virtual PolicyAction Select(const ActionEstimates& estimates,
                              const ClusterEvent& event,
                              double horizon_iterations) const = 0;
};

/// Selector registry: "adaptive" (feasible argmin of PredictedCost, ties
/// to the lowest action index) or a fixed policy by action name
/// ("tolerate", "promote", "delta", "replan", "restart") that falls back
/// to the cheapest feasible action when its namesake is infeasible.
Result<std::unique_ptr<PolicySelector>> MakeSelector(const std::string& name);

/// All registry names, in a fixed order: adaptive first, then the fixed
/// policies in action order. Benchmarks and golden snapshots iterate this.
const std::array<std::string, kNumPolicyActions + 1>& SelectorNames();

}  // namespace policy
}  // namespace malleus

#endif  // MALLEUS_POLICY_POLICY_H_
