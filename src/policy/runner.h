// The dynamic run loop: advances thousands of simulated training
// iterations over sim::pipeline_sim, applies each generated cluster event
// (policy/events.h), prices the five candidate actions (policy/policy.h)
// and executes the selector's choice, accumulating cumulative-goodput
// accounting and an obs run log.
//
// Determinism contract: RunDynamic is a pure function of its arguments.
// Step times come from noise-free simulation memoized by (plan signature,
// situation signature); the planner is bit-identical at any thread count;
// and re-plan latency is priced from the runner's own deterministic memo
// of seen situation signatures (cold on first sight, warm after) with
// fixed constants. The planner's SolveCache hit/miss counters would be the
// "real" latency signal, but they are allowed to vary run-to-run under
// thread racing, so the memo is the determinism-safe stand-in — the cache
// still makes the actual planner calls fast; it just doesn't price them.

#ifndef MALLEUS_POLICY_RUNNER_H_
#define MALLEUS_POLICY_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/planner.h"
#include "core/run_log.h"
#include "model/cost_model.h"
#include "policy/events.h"
#include "policy/policy.h"
#include "sim/pipeline_sim.h"
#include "sim/restart.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace policy {

/// Fixed constants of the predicted-amortized-cost model.
struct PolicyCostConfig {
  /// Re-plan latency for a situation signature never seen before (cold
  /// solver caches) and for one seen before (warm). Representative of the
  /// measured cold/warm Plan() times at 64 GPUs (BENCH_planner_scaling).
  double cold_replan_seconds = 0.5;
  double warm_replan_seconds = 0.02;
  /// Delta re-plans through the island memo re-solve only the touched
  /// islands; priced as this fraction of the full re-plan latency.
  double delta_replan_fraction = 0.25;
  /// Amortization horizon: predicted cost = transition + horizon * step.
  /// Roughly the expected iterations until the next event.
  double horizon_iterations = 50.0;
  /// Checkpoint save/load + framework re-init pricing for restarts.
  sim::RestartCostConfig restart;
};

struct DynamicRunOptions {
  PolicyCostConfig costs;
  /// Planner knobs; dp_degree is managed by the runner (pinned to the
  /// initial plan per the paper's footnote 2; when capacity loss makes the
  /// pinned degree infeasible, a deterministic ladder walks the degree
  /// down one pinned solve at a time — never an unpinned sweep, which is
  /// combinatorially explosive under mixed-rate situations at scale).
  core::PlannerOptions planner;
  /// Simulator knobs; timing noise is forced to 0 so segment step times
  /// are exact and memoizable.
  sim::SimOptions sim;
  /// When set, the runner records one StepReport per segment/transition;
  /// replaying the same trace twice yields byte-identical logs.
  core::RunLog* run_log = nullptr;
};

/// What the runner decided (and verified) for one applied event.
struct EventAudit {
  int64_t iteration = 0;
  EventKind kind = EventKind::kStraggle;
  PolicyAction action = PolicyAction::kTolerate;
  /// Engine-state validity after applying the action: the installed plan
  /// passes Validate and schedules work on no failed GPU.
  bool plan_valid = false;
  bool uses_failed_gpu = false;
  double transition_seconds = 0.0;
  double step_seconds_after = 0.0;
  std::string plan_signature;
  /// Predicted amortized costs backing the choice (for the property test
  /// "adaptive never exceeds tolerate's bound").
  double predicted_cost_chosen = 0.0;
  double predicted_cost_tolerate = 0.0;
  bool tolerate_feasible = false;
};

/// Outcome of one dynamic run.
struct DynamicRunResult {
  int64_t iterations_run = 0;    ///< Iterations actually simulated.
  int64_t trace_iterations = 0;  ///< Iterations the trace spans.
  double wall_seconds = 0.0;     ///< training + transition, exactly.
  double training_seconds = 0.0;
  double transition_seconds = 0.0;
  /// Step time of the initial plan on an all-healthy cluster; the
  /// goodput numeraire.
  double healthy_step_seconds = 0.0;
  /// Cumulative goodput: healthy-equivalent work per wall-second,
  /// iterations_run * healthy_step_seconds / wall_seconds. 1.0 means the
  /// run was as productive as an undisturbed cluster; in (0, 1] normally.
  double goodput = 0.0;
  int events_applied = 0;
  /// Actions taken, indexed by PolicyAction.
  int action_counts[kNumPolicyActions] = {0, 0, 0, 0, 0};
  std::vector<EventAudit> audits;
  /// Empty when the run completed; otherwise why it stopped early (e.g.
  /// no feasible action after an event).
  std::string stop_reason;
};

/// Runs `trace` over (cluster, cost) with `selector` deciding each event.
/// `initial` is the situation before any event (usually all-healthy) and
/// must match the cluster. Fails only when no initial plan exists; event
/// handling degrades to an early stop with `stop_reason` instead.
Result<DynamicRunResult> RunDynamic(const topo::ClusterSpec& cluster,
                                    const model::CostModel& cost,
                                    const straggler::Situation& initial,
                                    const EventTrace& trace,
                                    int64_t global_batch,
                                    const PolicySelector& selector,
                                    const DynamicRunOptions& options);

}  // namespace policy
}  // namespace malleus

#endif  // MALLEUS_POLICY_RUNNER_H_
