// Seeded, deterministic cluster-event traces for the online
// fault-tolerance policy engine (ROADMAP "Chameleon-style" item; see
// "Chameleon: Adaptive Fault Tolerance for Distributed Training via
// Real-time Policy Selection", arXiv 2508.21613, in PAPERS.md).
//
// A trace is a list of (iteration, event) pairs drawn from the stochastic
// processes of a scenario's `dynamic = { ... }` block: per-GPU Poisson
// straggle and fail-stop arrivals, correlated whole-node failures,
// exponential-ish recovery delays, flapping stragglers that re-straggle
// shortly after healing, and a diurnal sine modulation of the straggle
// arrival rate. Generation is a pure function of (cluster shape,
// DynamicSpec, seed): a single malleus::Rng drives every draw in a fixed
// order, so the trace is bit-identical on every platform and at any
// thread count.

#ifndef MALLEUS_POLICY_EVENTS_H_
#define MALLEUS_POLICY_EVENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace policy {

/// What happened to the cluster at one simulated iteration.
enum class EventKind {
  kStraggle,     ///< One GPU starts straggling at `level`.
  kFail,         ///< One GPU fail-stops.
  kNodeFail,     ///< Every GPU of one node fail-stops at once.
  kRecover,      ///< One GPU returns to rate 1.0.
  kNodeRecover,  ///< Every GPU of one node returns to rate 1.0.
};

/// Stable lowercase name, e.g. "straggle"; used by logs and golden files.
const char* EventKindName(EventKind kind);

/// One cluster event. `gpu` is -1 for node-scoped events and `node` is -1
/// for GPU-scoped ones; `level` / `rate` are meaningful for kStraggle.
struct ClusterEvent {
  int64_t iteration = 0;
  EventKind kind = EventKind::kStraggle;
  topo::GpuId gpu = -1;
  topo::NodeId node = -1;
  int level = 0;
  double rate = 1.0;
  /// True when this straggle arrival is a flap (re-straggle after heal).
  bool flap = false;

  /// One-line rendering, e.g. "@120 straggle gpu=9 level=2".
  std::string ToString() const;
};

/// A generated trace: events sorted by iteration (stable in generation
/// order within an iteration), over `iterations` simulated iterations.
struct EventTrace {
  std::vector<ClusterEvent> events;
  int64_t iterations = 0;
};

/// Generates the event trace implied by `dynamic` on `cluster`, seeded
/// with `seed` (callers pass `dynamic.seed` when nonzero, else the
/// scenario seed). Pure function of its arguments; see file comment.
///
/// Feasibility guard: failure arrivals that would leave fewer than
/// max(2, num_gpus / 2) live GPUs are skipped, so generated traces stay
/// plannable by construction.
EventTrace GenerateEventTrace(const topo::ClusterSpec& cluster,
                              const scenario::DynamicSpec& dynamic,
                              uint64_t seed);

/// Applies one event to `situation` (sized for the generating cluster).
/// Node-scoped events touch every GPU of the node.
void ApplyEvent(const topo::ClusterSpec& cluster, const ClusterEvent& event,
                straggler::Situation* situation);

/// True when the event heals capacity (kRecover / kNodeRecover).
bool IsHealEvent(EventKind kind);

}  // namespace policy
}  // namespace malleus

#endif  // MALLEUS_POLICY_EVENTS_H_
