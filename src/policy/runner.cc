#include "policy/runner.h"

#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/migration.h"

namespace malleus {
namespace policy {

namespace {

// Canonical situation fingerprint: every rate at full precision. This keys
// the runner's cold/warm re-plan memo (see the determinism contract in
// runner.h).
std::string SitSignature(const straggler::Situation& situation) {
  std::string sig;
  for (double rate : situation.rates()) {
    sig += StrFormat("%.17g,", rate);
  }
  return sig;
}

bool UsesFailedGpu(const plan::ParallelPlan& p,
                   const straggler::Situation& situation) {
  for (topo::GpuId g : p.ActiveGpus()) {
    if (situation.IsFailed(g)) return true;
  }
  return false;
}

// Plans with the DP degree pinned (paper footnote 2). When capacity loss
// makes the pinned degree infeasible the ladder walks the degree down one
// pinned solve at a time — never an unpinned sweep: under mixed-rate
// situations with failures the planner's unpinned DP search is
// combinatorially explosive at 64+ GPUs (minutes per call), while every
// pinned solve stays in the milliseconds. Deterministic by construction
// (fixed descent order, first feasible degree wins).
Result<core::PlanResult> PlanFor(const core::Planner& planner,
                                 const straggler::Situation& situation,
                                 int64_t global_batch,
                                 core::PlannerOptions opts, int pinned_dp,
                                 int island_nodes) {
  opts.island_nodes = island_nodes;
  if (pinned_dp <= 0) {
    // Only the initial plan solves unpinned (its situation is the caller's
    // starting overlay, the same one the planner oracles already sweep).
    return planner.Plan(situation, global_batch, opts);
  }
  opts.dp_degree = pinned_dp;
  Result<core::PlanResult> planned =
      planner.Plan(situation, global_batch, opts);
  for (int dp = pinned_dp - 1; !planned.ok() && dp >= 1; --dp) {
    opts.dp_degree = dp;
    planned = planner.Plan(situation, global_batch, opts);
  }
  return planned;
}

// The standby-promotion candidate: swap the worst degraded active GPU with
// the lowest-id healthy inactive GPU on the same node (TP groups are
// intra-node, so the swap preserves every structural invariant except
// possibly memory, which Validate re-checks).
Result<plan::ParallelPlan> PromotePlan(const topo::ClusterSpec& cluster,
                                       const model::CostModel& cost,
                                       const plan::ParallelPlan& current,
                                       const straggler::Situation& situation) {
  const std::vector<topo::GpuId> active = current.ActiveGpus();
  topo::GpuId worst = -1;
  double worst_rate = 1.0 + 1e-9;
  for (topo::GpuId g : active) {
    const double rate = situation.rate(g);
    if (rate > worst_rate) {
      worst = g;
      worst_rate = rate;
    }
  }
  if (worst < 0) {
    return Status::NotFound("no degraded active GPU to demote");
  }
  const std::set<topo::GpuId> active_set(active.begin(), active.end());
  topo::GpuId standby = -1;
  for (topo::GpuId g : cluster.GpusOnNode(cluster.NodeOf(worst))) {
    if (active_set.count(g) != 0) continue;
    if (situation.rate(g) > 1.0 + 1e-9) continue;  // Straggling or failed.
    standby = g;
    break;
  }
  if (standby < 0) {
    return Status::NotFound("no healthy same-node standby");
  }
  plan::ParallelPlan promoted = current;
  for (plan::Pipeline& pipeline : promoted.pipelines) {
    for (plan::Stage& stage : pipeline.stages) {
      for (topo::GpuId& g : stage.group.gpus) {
        if (g == worst) g = standby;
      }
    }
  }
  bool swapped_standby = false;
  for (topo::GpuId& g : promoted.standby_gpus) {
    if (g == standby) {
      g = worst;  // The demoted GPU takes the promoted one's standby slot.
      swapped_standby = true;
    }
  }
  if (!swapped_standby) promoted.standby_gpus.push_back(worst);
  MALLEUS_RETURN_NOT_OK(promoted.Validate(cluster, cost));
  return promoted;
}

double MigrationCost(const plan::ParallelPlan& from,
                     const plan::ParallelPlan& to,
                     const topo::ClusterSpec& cluster,
                     const model::CostModel& cost, net::NetModel net_model) {
  Result<core::MigrationPlan> migration =
      core::ComputeMigration(from, to, cost);
  if (!migration.ok()) return 0.0;
  return core::MigrationSeconds(*migration, cluster, net_model);
}

}  // namespace

Result<DynamicRunResult> RunDynamic(const topo::ClusterSpec& cluster,
                                    const model::CostModel& cost,
                                    const straggler::Situation& initial,
                                    const EventTrace& trace,
                                    int64_t global_batch,
                                    const PolicySelector& selector,
                                    const DynamicRunOptions& options) {
  if (initial.num_gpus() != cluster.num_gpus()) {
    return Status::InvalidArgument("situation does not match cluster");
  }
  DynamicRunResult result;
  result.trace_iterations = trace.iterations;

  const core::Planner planner(cluster, cost);
  // A degraded initial situation on a larger cluster must not hit the flat
  // sweep (auto island selection keeps it flat through 8 nodes, which is
  // explosive under mixed rates); route it through half-cluster islands.
  core::PlannerOptions initial_opts = options.planner;
  if (initial_opts.island_nodes == 0 && cluster.num_nodes() > 4) {
    bool degraded = false;
    for (topo::GpuId g = 0; g < initial.num_gpus(); ++g) {
      if (initial.IsStraggler(g) || initial.IsFailed(g)) {
        degraded = true;
        break;
      }
    }
    if (degraded) initial_opts.island_nodes = cluster.num_nodes() / 2;
  }
  Result<core::PlanResult> initial_plan =
      PlanFor(planner, initial, global_batch, initial_opts,
              initial_opts.dp_degree, initial_opts.island_nodes);
  if (!initial_plan.ok()) {
    return Status(initial_plan.status().code(),
                  "no initial plan: " + initial_plan.status().message());
  }
  plan::ParallelPlan current = std::move(initial_plan->plan);
  int pinned_dp = current.dp_degree();

  // Noise-free simulation makes segment step times exact, memoizable and
  // byte-reproducible; the trace recorder stays off (the run log is the
  // dynamic mode's observable).
  sim::SimOptions sim_options = options.sim;
  sim_options.timing_noise_stddev = 0.0;
  sim_options.trace = nullptr;
  std::map<std::string, double> sim_memo;
  const auto step_seconds_of =
      [&](const plan::ParallelPlan& p,
          const straggler::Situation& s) -> Result<double> {
    const std::string key = p.Signature() + "|" + SitSignature(s);
    const auto it = sim_memo.find(key);
    if (it != sim_memo.end()) return it->second;
    Rng rng(0x6D616C6C657573ULL);  // Fixed seed; the noise stddev is 0.
    Result<sim::StepResult> sim_result =
        sim::SimulateStep(cluster, cost, p, s, sim_options, &rng);
    if (!sim_result.ok()) return sim_result.status();
    sim_memo.emplace(key, sim_result->step_seconds);
    return sim_result->step_seconds;
  };

  const straggler::Situation healthy(cluster.num_gpus());
  Result<double> healthy_step = step_seconds_of(current, healthy);
  if (!healthy_step.ok()) return healthy_step.status();
  result.healthy_step_seconds = *healthy_step;

  const auto record = [&](const core::StepReport& report) {
    if (options.run_log != nullptr) {
      options.run_log->Record("dynamic", report);
    }
    result.training_seconds += report.step_seconds;
    result.transition_seconds += report.migration_seconds +
                                 report.recovery_seconds +
                                 report.planning_overflow_seconds;
  };

  // Simulates the event-free segment [cur, until); false on early stop.
  straggler::Situation situation = initial;
  int64_t cur = 0;
  const auto run_segment = [&](int64_t until) -> bool {
    const int64_t len = until - cur;
    if (len <= 0) return true;
    Result<double> step = step_seconds_of(current, situation);
    if (!step.ok()) {
      result.stop_reason =
          "segment simulation failed: " + step.status().message();
      return false;
    }
    core::StepReport report;
    report.step_seconds = *step * static_cast<double>(len);
    report.note = StrFormat("segment x%lld @%.17g s/iter",
                            static_cast<long long>(len), *step);
    record(report);
    result.iterations_run += len;
    cur = until;
    return true;
  };

  std::set<std::string> seen_situations;
  seen_situations.insert(SitSignature(initial));
  const PolicyCostConfig& costs = options.costs;

  for (const ClusterEvent& event : trace.events) {
    if (!run_segment(event.iteration)) break;
    ApplyEvent(cluster, event, &situation);
    const std::string sig = SitSignature(situation);
    const bool cold = seen_situations.count(sig) == 0;
    const double replan_latency =
        cold ? costs.cold_replan_seconds : costs.warm_replan_seconds;

    ActionEstimates estimates{};
    plan::ParallelPlan candidates[kNumPolicyActions];

    // tolerate: the current plan, if it still runs on live GPUs only.
    if (!UsesFailedGpu(current, situation)) {
      Result<double> step = step_seconds_of(current, situation);
      if (step.ok()) {
        estimates[0] = {true, 0.0, *step};
        candidates[0] = current;
      }
    }
    // promote: swap in a healthy same-node standby; priced by the actual
    // state migration the swap implies.
    Result<plan::ParallelPlan> promoted =
        PromotePlan(cluster, cost, current, situation);
    if (promoted.ok() && !UsesFailedGpu(*promoted, situation)) {
      Result<double> step = step_seconds_of(*promoted, situation);
      if (step.ok()) {
        estimates[1] = {true,
                        MigrationCost(current, *promoted, cluster, cost,
                                      sim_options.net_model),
                        *step};
        candidates[1] = std::move(*promoted);
      }
    }
    // delta: re-plan through small islands (the hier memo re-solves only
    // touched islands), then migrate. Islands shrink with cluster size so
    // the delta candidate stays cheaper — and coarser — than the full
    // re-plan's decomposition.
    const int nodes = cluster.num_nodes();
    if (nodes >= 4 && nodes % 2 == 0) {
      const int delta_island = nodes >= 8 ? nodes / 4 : nodes / 2;
      Result<core::PlanResult> planned =
          PlanFor(planner, situation, global_batch, options.planner,
                  pinned_dp, delta_island);
      if (planned.ok() && !UsesFailedGpu(planned->plan, situation)) {
        Result<double> step = step_seconds_of(planned->plan, situation);
        if (step.ok()) {
          estimates[2] = {
              true,
              costs.delta_replan_fraction * replan_latency +
                  MigrationCost(current, planned->plan, cluster, cost,
                                sim_options.net_model),
              *step};
          candidates[2] = std::move(planned->plan);
        }
      }
    }
    // replan: the global re-plan, then migrate. Flat where tractable
    // (<= 4 nodes); beyond that the flat sweep under mixed-rate degraded
    // situations is combinatorially explosive (tens of seconds per solve
    // at 8 nodes), so the full re-plan goes through the whole-cluster
    // hierarchical decomposition with half-cluster islands — measured
    // equal-or-better plan quality at a small fraction of the latency.
    // restart reuses this plan but pays checkpoint I/O + framework
    // re-init instead of migration.
    const int replan_island = nodes <= 4 ? -1 : nodes / 2;
    Result<core::PlanResult> replanned =
        PlanFor(planner, situation, global_batch, options.planner, pinned_dp,
                replan_island);
    if (replanned.ok() && !UsesFailedGpu(replanned->plan, situation)) {
      Result<double> step = step_seconds_of(replanned->plan, situation);
      if (step.ok()) {
        estimates[3] = {true,
                        replan_latency +
                            MigrationCost(current, replanned->plan, cluster,
                                          cost, sim_options.net_model),
                        *step};
        candidates[3] = replanned->plan;
        int alive_nodes = 0;
        for (topo::NodeId n = 0; n < nodes; ++n) {
          bool any_live = false;
          for (topo::GpuId g : cluster.GpusOnNode(n)) {
            if (!situation.IsFailed(g)) any_live = true;
          }
          if (any_live) ++alive_nodes;
        }
        if (alive_nodes > 0) {
          // After a fail-stop the dead GPUs' state is gone and cannot be
          // saved; charging the full save+init+load RestartSeconds there
          // would double-count the checkpoint I/O (the save leg re-prices
          // the load of state that already sits in the checkpoint). The
          // failure path pays load + init only.
          const bool after_failure = event.kind == EventKind::kFail ||
                                     event.kind == EventKind::kNodeFail;
          const double restart_io =
              after_failure
                  ? sim::RestartAfterFailureSeconds(cost.CheckpointBytes(),
                                                    alive_nodes,
                                                    costs.restart)
                  : sim::RestartSeconds(cost.CheckpointBytes(), alive_nodes,
                                        costs.restart);
          estimates[4] = {true, replan_latency + restart_io, *step};
          candidates[4] = std::move(replanned->plan);
        }
      }
    }
    seen_situations.insert(sig);

    int first_feasible = -1;
    for (int a = 0; a < kNumPolicyActions; ++a) {
      if (estimates[a].feasible) {
        first_feasible = a;
        break;
      }
    }
    if (first_feasible < 0) {
      result.stop_reason = "no feasible action for event " + event.ToString();
      break;
    }
    PolicyAction action =
        selector.Select(estimates, event, costs.horizon_iterations);
    if (!estimates[static_cast<int>(action)].feasible) {
      action = static_cast<PolicyAction>(first_feasible);
    }
    const int a = static_cast<int>(action);
    const bool plan_changed =
        candidates[a].Signature() != current.Signature();
    if (action != PolicyAction::kTolerate) {
      current = std::move(candidates[a]);
      pinned_dp = current.dp_degree();
    }

    core::StepReport transition;
    transition.note = event.ToString() + std::string(" -> ") +
                      PolicyActionName(action);
    switch (action) {
      case PolicyAction::kTolerate:
        break;
      case PolicyAction::kPromote:
        transition.migration_seconds = estimates[a].transition_seconds;
        break;
      case PolicyAction::kDeltaReplan:
      case PolicyAction::kReplan: {
        const double latency = action == PolicyAction::kDeltaReplan
                                   ? costs.delta_replan_fraction *
                                         replan_latency
                                   : replan_latency;
        transition.replanned = true;
        transition.planning_seconds = latency;
        transition.planning_overflow_seconds = latency;
        transition.migration_seconds =
            estimates[a].transition_seconds - latency;
        break;
      }
      case PolicyAction::kRestart:
        transition.replanned = true;
        transition.planning_seconds = replan_latency;
        transition.planning_overflow_seconds = replan_latency;
        transition.recovery_seconds =
            estimates[a].transition_seconds - replan_latency;
        break;
    }
    if (plan_changed && action != PolicyAction::kTolerate) {
      transition.plan_signature = current.Signature();
    }
    record(transition);

    EventAudit audit;
    audit.iteration = event.iteration;
    audit.kind = event.kind;
    audit.action = action;
    audit.uses_failed_gpu = UsesFailedGpu(current, situation);
    audit.plan_valid =
        current.Validate(cluster, cost).ok() && !audit.uses_failed_gpu;
    audit.transition_seconds = estimates[a].transition_seconds;
    audit.step_seconds_after = estimates[a].step_seconds;
    audit.plan_signature = current.Signature();
    audit.predicted_cost_chosen =
        estimates[a].PredictedCost(costs.horizon_iterations);
    audit.predicted_cost_tolerate =
        estimates[0].PredictedCost(costs.horizon_iterations);
    audit.tolerate_feasible = estimates[0].feasible;
    result.audits.push_back(std::move(audit));
    ++result.action_counts[a];
    ++result.events_applied;
  }

  if (result.stop_reason.empty()) run_segment(trace.iterations);

  result.wall_seconds = result.training_seconds + result.transition_seconds;
  result.goodput =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.iterations_run) *
                result.healthy_step_seconds / result.wall_seconds
          : 1.0;
  return result;
}

}  // namespace policy
}  // namespace malleus
