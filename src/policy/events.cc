#include "policy/events.h"

#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace malleus {
namespace policy {

namespace {

// Per-GPU generator state. Pending heals are epoch-guarded: any state
// change bumps the epoch, so a heal scheduled for an earlier incarnation
// of the GPU silently expires instead of mis-firing.
enum class GpuState { kHealthy, kStraggling, kFailed };

struct Pending {
  enum class Kind { kHealGpu, kHealNode, kFlapStraggle } kind;
  topo::GpuId gpu = -1;
  topo::NodeId node = -1;
  uint64_t epoch = 0;
  int level = 0;
};

// Mean-`mean` integer delay, uniform over [1, 2*mean + 1]. One draw.
int64_t HealDelay(Rng* rng, int mean) {
  return 1 + rng->UniformInt(static_cast<uint64_t>(2 * mean + 1));
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kStraggle:
      return "straggle";
    case EventKind::kFail:
      return "fail";
    case EventKind::kNodeFail:
      return "node-fail";
    case EventKind::kRecover:
      return "recover";
    case EventKind::kNodeRecover:
      return "node-recover";
  }
  return "unknown";
}

std::string ClusterEvent::ToString() const {
  switch (kind) {
    case EventKind::kStraggle:
      return StrFormat("@%lld straggle gpu=%d level=%d%s",
                       static_cast<long long>(iteration), gpu, level,
                       flap ? " flap" : "");
    case EventKind::kFail:
      return StrFormat("@%lld fail gpu=%d",
                       static_cast<long long>(iteration), gpu);
    case EventKind::kNodeFail:
      return StrFormat("@%lld node-fail node=%d",
                       static_cast<long long>(iteration), node);
    case EventKind::kRecover:
      return StrFormat("@%lld recover gpu=%d",
                       static_cast<long long>(iteration), gpu);
    case EventKind::kNodeRecover:
      return StrFormat("@%lld node-recover node=%d",
                       static_cast<long long>(iteration), node);
  }
  return "@? unknown";
}

bool IsHealEvent(EventKind kind) {
  return kind == EventKind::kRecover || kind == EventKind::kNodeRecover;
}

EventTrace GenerateEventTrace(const topo::ClusterSpec& cluster,
                              const scenario::DynamicSpec& dynamic,
                              uint64_t seed) {
  EventTrace trace;
  trace.iterations = dynamic.iterations;
  if (!dynamic.enabled || dynamic.iterations < 1) return trace;

  const int num_gpus = cluster.num_gpus();
  const int gpn = cluster.gpus_per_node();
  Rng rng(seed);
  std::vector<GpuState> state(num_gpus, GpuState::kHealthy);
  std::vector<uint64_t> epoch(num_gpus, 0);
  // Sorted by fire iteration; std::multimap preserves insertion order for
  // equal keys, so same-iteration heals replay deterministically.
  std::multimap<int64_t, Pending> pending;
  int alive = num_gpus;
  const int min_alive = num_gpus / 2 > 2 ? num_gpus / 2 : 2;

  const auto schedule_heal = [&](int64_t now, const Pending& p) {
    if (dynamic.recover_iters <= 0) return;  // Faults never heal.
    pending.insert({now + HealDelay(&rng, dynamic.recover_iters), p});
  };

  for (int64_t t = 0; t < dynamic.iterations; ++t) {
    // 1. Fire heals (and flap re-arrivals) scheduled for this iteration.
    const auto range = pending.equal_range(t);
    for (auto it = range.first; it != range.second; ++it) {
      const Pending& p = it->second;
      switch (p.kind) {
        case Pending::Kind::kHealGpu: {
          if (epoch[p.gpu] != p.epoch) break;  // Superseded (e.g. node fail).
          const bool was_straggling = state[p.gpu] == GpuState::kStraggling;
          state[p.gpu] = GpuState::kHealthy;
          ++epoch[p.gpu];
          if (was_straggling) {
            trace.events.push_back(
                {t, EventKind::kRecover, p.gpu, -1, 0, 1.0, false});
            if (dynamic.flap_prob > 0.0 &&
                rng.Uniform() < dynamic.flap_prob) {
              Pending flap;
              flap.kind = Pending::Kind::kFlapStraggle;
              flap.gpu = p.gpu;
              flap.epoch = epoch[p.gpu];
              flap.level = p.level;
              pending.insert(
                  {t + 1 +
                       static_cast<int64_t>(rng.UniformInt(
                           static_cast<uint64_t>(2 * dynamic.flap_period + 1))),
                   flap});
            }
          } else {
            ++alive;
            trace.events.push_back(
                {t, EventKind::kRecover, p.gpu, -1, 0, 1.0, false});
          }
          break;
        }
        case Pending::Kind::kHealNode: {
          const topo::GpuId first = p.node * gpn;
          if (epoch[first] != p.epoch) break;
          for (topo::GpuId g = first; g < first + gpn; ++g) {
            state[g] = GpuState::kHealthy;
            ++epoch[g];
          }
          alive += gpn;
          trace.events.push_back(
              {t, EventKind::kNodeRecover, -1, p.node, 0, 1.0, false});
          break;
        }
        case Pending::Kind::kFlapStraggle: {
          if (epoch[p.gpu] != p.epoch) break;
          state[p.gpu] = GpuState::kStraggling;
          ++epoch[p.gpu];
          trace.events.push_back({t, EventKind::kStraggle, p.gpu, -1,
                                  p.level, straggler::RateForLevel(p.level),
                                  true});
          Pending heal;
          heal.kind = Pending::Kind::kHealGpu;
          heal.gpu = p.gpu;
          heal.epoch = epoch[p.gpu];
          heal.level = p.level;
          schedule_heal(t, heal);
          break;
        }
      }
    }
    pending.erase(range.first, range.second);

    // 2. Diurnal modulation of the straggle arrival rate.
    double diurnal = 1.0;
    if (dynamic.diurnal_amplitude > 0.0 && dynamic.diurnal_period > 0) {
      diurnal = 1.0 + dynamic.diurnal_amplitude *
                          std::sin(6.283185307179586 *
                                   static_cast<double>(t) /
                                   static_cast<double>(dynamic.diurnal_period));
      if (diurnal < 0.0) diurnal = 0.0;
    }

    // 3. Correlated node failures (only from an all-healthy node, and only
    // while the feasibility guard leaves enough live GPUs).
    if (dynamic.node_fail_rate > 0.0) {
      for (topo::NodeId n = 0; n < cluster.num_nodes(); ++n) {
        bool all_healthy = true;
        for (topo::GpuId g = n * gpn; g < (n + 1) * gpn; ++g) {
          if (state[g] != GpuState::kHealthy) all_healthy = false;
        }
        if (!all_healthy) continue;
        if (rng.Uniform() >= dynamic.node_fail_rate) continue;
        if (alive - gpn < min_alive) continue;
        for (topo::GpuId g = n * gpn; g < (n + 1) * gpn; ++g) {
          state[g] = GpuState::kFailed;
          ++epoch[g];
        }
        alive -= gpn;
        trace.events.push_back(
            {t, EventKind::kNodeFail, -1, n, 0, 1.0, false});
        Pending heal;
        heal.kind = Pending::Kind::kHealNode;
        heal.node = n;
        heal.epoch = epoch[n * gpn];
        schedule_heal(t, heal);
      }
    }

    // 4. Per-GPU straggle arrivals.
    if (dynamic.straggle_rate > 0.0) {
      for (topo::GpuId g = 0; g < num_gpus; ++g) {
        if (state[g] != GpuState::kHealthy) continue;
        if (rng.Uniform() >= dynamic.straggle_rate * diurnal) continue;
        const int level =
            1 + static_cast<int>(rng.UniformInt(
                    static_cast<uint64_t>(dynamic.max_level)));
        state[g] = GpuState::kStraggling;
        ++epoch[g];
        trace.events.push_back({t, EventKind::kStraggle, g, -1, level,
                                straggler::RateForLevel(level), false});
        Pending heal;
        heal.kind = Pending::Kind::kHealGpu;
        heal.gpu = g;
        heal.epoch = epoch[g];
        heal.level = level;
        schedule_heal(t, heal);
      }
    }

    // 5. Per-GPU fail-stop arrivals.
    if (dynamic.fail_rate > 0.0) {
      for (topo::GpuId g = 0; g < num_gpus; ++g) {
        if (state[g] != GpuState::kHealthy) continue;
        if (rng.Uniform() >= dynamic.fail_rate) continue;
        if (alive - 1 < min_alive) continue;
        state[g] = GpuState::kFailed;
        ++epoch[g];
        --alive;
        trace.events.push_back({t, EventKind::kFail, g, -1, 0, 1.0, false});
        Pending heal;
        heal.kind = Pending::Kind::kHealGpu;
        heal.gpu = g;
        heal.epoch = epoch[g];
        schedule_heal(t, heal);
      }
    }
  }
  return trace;
}

void ApplyEvent(const topo::ClusterSpec& cluster, const ClusterEvent& event,
                straggler::Situation* situation) {
  switch (event.kind) {
    case EventKind::kStraggle:
      situation->SetLevel(event.gpu, event.level);
      break;
    case EventKind::kFail:
      situation->Fail(event.gpu);
      break;
    case EventKind::kNodeFail:
      for (topo::GpuId g : cluster.GpusOnNode(event.node)) {
        situation->Fail(g);
      }
      break;
    case EventKind::kRecover:
      situation->SetRate(event.gpu, 1.0);
      break;
    case EventKind::kNodeRecover:
      for (topo::GpuId g : cluster.GpusOnNode(event.node)) {
        situation->SetRate(g, 1.0);
      }
      break;
  }
}

}  // namespace policy
}  // namespace malleus
