#include "policy/policy.h"

namespace malleus {
namespace policy {

namespace {

// Feasible argmin of PredictedCost; ties break to the lowest action index
// so the choice is deterministic and platform-independent.
PolicyAction CheapestFeasible(const ActionEstimates& estimates,
                              double horizon) {
  int best = -1;
  double best_cost = 0.0;
  for (int a = 0; a < kNumPolicyActions; ++a) {
    if (!estimates[a].feasible) continue;
    const double cost = estimates[a].PredictedCost(horizon);
    if (best < 0 || cost < best_cost) {
      best = a;
      best_cost = cost;
    }
  }
  // The runner guarantees at least one feasible action; default defensively
  // to restart (always priced) rather than read out of range.
  return best >= 0 ? static_cast<PolicyAction>(best) : PolicyAction::kRestart;
}

class AdaptiveSelector : public PolicySelector {
 public:
  const std::string& name() const override {
    static const std::string kName = "adaptive";
    return kName;
  }
  PolicyAction Select(const ActionEstimates& estimates,
                      const ClusterEvent& /*event*/,
                      double horizon) const override {
    return CheapestFeasible(estimates, horizon);
  }
};

class FixedSelector : public PolicySelector {
 public:
  FixedSelector(std::string name, PolicyAction action)
      : name_(std::move(name)), action_(action) {}
  const std::string& name() const override { return name_; }
  PolicyAction Select(const ActionEstimates& estimates,
                      const ClusterEvent& /*event*/,
                      double horizon) const override {
    if (estimates[static_cast<int>(action_)].feasible) return action_;
    // The namesake action is impossible (e.g. tolerate on a failed GPU or
    // promote with no standby): fall back deterministically.
    return CheapestFeasible(estimates, horizon);
  }

 private:
  std::string name_;
  PolicyAction action_;
};

}  // namespace

const char* PolicyActionName(PolicyAction action) {
  switch (action) {
    case PolicyAction::kTolerate:
      return "tolerate";
    case PolicyAction::kPromote:
      return "promote";
    case PolicyAction::kDeltaReplan:
      return "delta";
    case PolicyAction::kReplan:
      return "replan";
    case PolicyAction::kRestart:
      return "restart";
  }
  return "unknown";
}

Result<std::unique_ptr<PolicySelector>> MakeSelector(
    const std::string& name) {
  if (name == "adaptive") {
    return std::unique_ptr<PolicySelector>(new AdaptiveSelector());
  }
  for (int a = 0; a < kNumPolicyActions; ++a) {
    const PolicyAction action = static_cast<PolicyAction>(a);
    if (name == PolicyActionName(action)) {
      return std::unique_ptr<PolicySelector>(new FixedSelector(name, action));
    }
  }
  return Status::InvalidArgument(
      "unknown policy selector: " + name +
      " (expected adaptive, tolerate, promote, delta, replan or restart)");
}

const std::array<std::string, kNumPolicyActions + 1>& SelectorNames() {
  static const std::array<std::string, kNumPolicyActions + 1> kNames = {
      "adaptive", "tolerate", "promote", "delta", "replan", "restart"};
  return kNames;
}

}  // namespace policy
}  // namespace malleus
