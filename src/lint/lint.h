// malleus::lint — the analysis passes.
//
// Three artifact layers are analyzed (see DESIGN.md §10 for the full
// diagnostic-code table and severity policy):
//
//   Plans      — the structural invariants (error level; shared with
//                ParallelPlan::Validate via plan/plan_checks.h) plus
//                warn-level quality passes: stage compute imbalance under
//                the live Situation, razor-edge memory headroom, healthy
//                GPUs parked on standby, TP groups mixing straggling
//                rates, and micro-batch/DP divisibility waste.
//   Scenarios  — cluster shape and interconnect sanity, situation rate
//                ranges against the fitted x = 1 + 1.44k straggler model,
//                scenario-file semantic checks (model/phase names, GPU
//                ranges, duplicate straggler ids).
//   Event/flow — topological feasibility of 1F1B schedules (a deadlocked
//                schedule is a lint error, not a hung simulation) and
//                flow-conservation audits of net::FlowSim results.
//
// All passes append to a DiagnosticSink and never fail; "can't analyze"
// (e.g. quality passes over a structurally broken plan) means the pass
// skips itself, since the structural errors are already in the sink.

#ifndef MALLEUS_LINT_LINT_H_
#define MALLEUS_LINT_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lint/diagnostic.h"
#include "model/cost_model.h"
#include "net/flow_sim.h"
#include "plan/plan.h"
#include "plan/plan_checks.h"
#include "scenario/scenario.h"
#include "sim/pipeline_sim.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace lint {

// ----- Diagnostic codes beyond the structural plan checks --------------
// (the plan.* error codes live in plan/plan_checks.h).

inline constexpr char kLintPlanStageImbalance[] = "plan.stage-imbalance";
inline constexpr char kLintPlanMemoryHeadroom[] = "plan.memory-headroom";
inline constexpr char kLintPlanHealthyStandby[] = "plan.healthy-standby";
inline constexpr char kLintPlanMixedTpRates[] = "plan.mixed-tp-rates";
inline constexpr char kLintPlanUnevenData[] = "plan.uneven-data";

inline constexpr char kLintClusterEmpty[] = "cluster.empty";
inline constexpr char kLintClusterBadBandwidth[] = "cluster.bad-bandwidth";
inline constexpr char kLintClusterNoUsableMemory[] =
    "cluster.no-usable-memory";

inline constexpr char kLintSituationSizeMismatch[] =
    "situation.size-mismatch";
inline constexpr char kLintSituationBadRate[] = "situation.bad-rate";
inline constexpr char kLintSituationRateAboveFit[] =
    "situation.rate-above-fit";
inline constexpr char kLintSituationFailedGpu[] = "situation.failed-gpu";

inline constexpr char kLintScenarioUnknownModel[] = "scenario.unknown-model";
inline constexpr char kLintScenarioUnknownPhase[] = "scenario.unknown-phase";
inline constexpr char kLintScenarioInvalidValue[] = "scenario.invalid-value";
inline constexpr char kLintScenarioGpuOutOfRange[] =
    "scenario.gpu-out-of-range";
inline constexpr char kLintScenarioDuplicateStraggler[] =
    "scenario.duplicate-straggler";
inline constexpr char kLintScenarioDynamicInvalidValue[] =
    "scenario.dynamic-invalid-value";
inline constexpr char kLintScenarioDynamicSaturated[] =
    "scenario.dynamic-saturated";
inline constexpr char kLintScenarioUnknownFabric[] =
    "scenario.unknown-fabric";
inline constexpr char kLintScenarioFabricFieldIgnored[] =
    "scenario.fabric-field-ignored";

inline constexpr char kLintGraphMalformedSchedule[] =
    "graph.malformed-schedule";
inline constexpr char kLintGraphDeadlock[] = "graph.deadlock";

inline constexpr char kLintNetNegativeLinkBytes[] =
    "net.negative-link-bytes";
inline constexpr char kLintNetVolumeMismatch[] = "net.volume-mismatch";
inline constexpr char kLintNetLinkOvercommit[] = "net.link-overcommit";

// ----- Quality-pass thresholds -----------------------------------------

/// plan.stage-imbalance fires when max/min per-micro-batch stage time
/// within a pipeline exceeds this ratio: the slowest stage gates every
/// 1F1B slot, so 25% imbalance is ~25% wasted compute on the fast stages.
inline constexpr double kStageImbalanceRatio = 1.25;

/// plan.memory-headroom fires below this fraction of free capacity; a
/// few-percent margin leaves re-planning no feasible moves (§5.3).
inline constexpr double kMemoryHeadroomFraction = 0.10;

/// plan.mixed-tp-rates fires when a TP group's fastest and slowest member
/// rates differ by more than this ratio (y = rho * max x drags the whole
/// group to its slowest member, wasting the healthy GPUs).
inline constexpr double kMixedTpRateRatio = 1.05;

// ----- Pass registry ---------------------------------------------------

struct PassInfo {
  const char* code;
  Severity severity;
  const char* summary;
};

/// Every diagnostic code the engine can emit, with its severity and a
/// one-line summary. Sorted by code. Used by `malleus_lint --list` and
/// kept in sync with DESIGN.md §10 by tests.
const std::vector<PassInfo>& Passes();

// ----- Plan passes -----------------------------------------------------

/// Runs the structural (error-level) checks and, when they pass and a
/// `situation` is provided, the warn-level quality passes. `situation`
/// may be null: situation-dependent passes are then skipped.
void LintPlan(const plan::ParallelPlan& p, const topo::ClusterSpec& cluster,
              const model::CostModel& cost,
              const straggler::Situation* situation, DiagnosticSink* sink);

/// Just the warn-level quality passes (callers that already validated).
void LintPlanQuality(const plan::ParallelPlan& p,
                     const topo::ClusterSpec& cluster,
                     const model::CostModel& cost,
                     const straggler::Situation& situation,
                     DiagnosticSink* sink);

// ----- Scenario / cluster passes ---------------------------------------

/// Cluster shape and interconnect sanity.
void LintCluster(const topo::ClusterSpec& cluster, DiagnosticSink* sink);

/// Situation vs. cluster: size, rate range against the fitted straggler
/// model (x = 1 + 1.44k, levels 0..8), failed (unreachable) GPUs.
void LintSituation(const topo::ClusterSpec& cluster,
                   const straggler::Situation& situation,
                   DiagnosticSink* sink);

/// Semantic checks over a parsed scenario file: model and phase names,
/// positive shape/batch/steps, straggler GPU ids inside the cluster,
/// duplicate straggler entries, and rate/level ranges.
void LintScenario(const scenario::ScenarioSpec& spec, DiagnosticSink* sink);

// ----- Event-graph / flow passes ---------------------------------------

/// Checks that `per_stage[j]` is a complete, topologically feasible 1F1B
/// task order for a pipeline of per_stage.size() stages over `num_micro`
/// micro-batches: every (fwd, bwd) x micro appears exactly once per stage
/// (graph.malformed-schedule) and playback reaches completion under the
/// 1F1B dependencies — fwd needs the upstream fwd, bwd needs the
/// downstream bwd and the same-stage fwd (graph.deadlock).
void LintPipelineSchedule(
    const std::vector<std::vector<sim::StageTask>>& per_stage,
    int64_t num_micro, const std::string& location_prefix,
    DiagnosticSink* sink);

/// Builds each pipeline's 1F1B schedule (sim::Build1F1BSchedule) and lints
/// it. Skips pipelines whose structure is too broken to schedule.
void LintEventGraph(const plan::ParallelPlan& p, DiagnosticSink* sink);

/// Flow-level audit data extracted from a completed FlowSim run (or
/// hand-built in tests).
struct FlowAudit {
  double total_flow_bytes = 0.0;
  std::vector<double> link_bytes;
  std::vector<double> link_peak_utilization;
  std::vector<std::string> link_names;
};

/// Snapshot of a completed FlowSim for auditing.
FlowAudit AuditFlowSim(const net::FlowSim& sim);

/// Conservation checks: per-link bytes must be finite and >= 0
/// (net.negative-link-bytes), per-link peak utilization must not exceed
/// capacity (net.link-overcommit), and the flows' byte sum must match the
/// collective lowering's expected volume within `rel_tolerance`
/// (net.volume-mismatch).
void LintFlowConservation(const FlowAudit& audit, double expected_bytes,
                          double rel_tolerance, DiagnosticSink* sink);

}  // namespace lint
}  // namespace malleus

#endif  // MALLEUS_LINT_LINT_H_
