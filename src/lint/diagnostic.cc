#include "lint/diagnostic.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace malleus {
namespace lint {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarn:
      return "warn";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = StrFormat("%s[%s]", SeverityName(severity), code.c_str());
  if (!location.empty()) out += " " + location;
  out += ": " + message;
  return out;
}

void DiagnosticSink::Report(Diagnostic d) {
  switch (d.severity) {
    case Severity::kError:
      ++num_errors_;
      break;
    case Severity::kWarn:
      ++num_warnings_;
      break;
    case Severity::kNote:
      ++num_notes_;
      break;
  }
  diagnostics_.push_back(std::move(d));
}

void DiagnosticSink::Report(Severity severity, std::string code,
                            std::string location, std::string message,
                            std::vector<DiagParam> params) {
  Diagnostic d;
  d.severity = severity;
  d.code = std::move(code);
  d.location = std::move(location);
  d.message = std::move(message);
  d.params = std::move(params);
  Report(std::move(d));
}

bool DiagnosticSink::HasCode(const std::string& code) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

void DiagnosticSink::Merge(const DiagnosticSink& other) {
  for (const Diagnostic& d : other.diagnostics_) Report(d);
}

std::string RenderText(const DiagnosticSink& sink) {
  if (sink.empty()) return "no diagnostics\n";
  std::string out;
  for (const Diagnostic& d : sink.diagnostics()) {
    out += d.ToString();
    out += "\n";
  }
  out += StrFormat("%d error%s, %d warning%s, %d note%s\n",
                   sink.num_errors(), sink.num_errors() == 1 ? "" : "s",
                   sink.num_warnings(), sink.num_warnings() == 1 ? "" : "s",
                   sink.num_notes(), sink.num_notes() == 1 ? "" : "s");
  return out;
}

namespace {

std::string JsonString(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

std::string ParamsJson(const std::vector<DiagParam>& params) {
  std::vector<std::string> parts;
  parts.reserve(params.size());
  for (const DiagParam& p : params) {
    parts.push_back(JsonString(p.key) + ":" + JsonString(p.value));
  }
  return "{" + Join(parts, ",") + "}";
}

}  // namespace

std::string RenderJson(const DiagnosticSink& sink) {
  std::vector<std::string> items;
  items.reserve(sink.size());
  for (const Diagnostic& d : sink.diagnostics()) {
    items.push_back(StrFormat(
        "{\"code\":%s,\"severity\":%s,\"location\":%s,\"message\":%s,"
        "\"params\":%s}",
        JsonString(d.code).c_str(), JsonString(SeverityName(d.severity)).c_str(),
        JsonString(d.location).c_str(), JsonString(d.message).c_str(),
        ParamsJson(d.params).c_str()));
  }
  return StrFormat(
      "{\"diagnostics\":[%s],\"errors\":%d,\"warnings\":%d,\"notes\":%d}",
      Join(items, ",").c_str(), sink.num_errors(), sink.num_warnings(),
      sink.num_notes());
}

namespace {

// Splits a "path:line" location (line all-digits, non-empty path) into its
// parts; false for logical locations like "pipeline[2].stage[0]".
bool SplitFileLine(const std::string& location, std::string* path,
                   int* line) {
  const size_t colon = location.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= location.size()) {
    return false;
  }
  long long n = 0;
  for (size_t i = colon + 1; i < location.size(); ++i) {
    if (location[i] < '0' || location[i] > '9') return false;
    n = n * 10 + (location[i] - '0');
  }
  if (n <= 0) return false;
  *path = location.substr(0, colon);
  *line = static_cast<int>(n);
  return true;
}

}  // namespace

std::string RenderSarif(const DiagnosticSink& sink,
                        const std::string& artifact,
                        const std::string& tool) {
  // SARIF maps severities onto its fixed "level" vocabulary.
  const auto sarif_level = [](Severity s) {
    switch (s) {
      case Severity::kError:
        return "error";
      case Severity::kWarn:
        return "warning";
      case Severity::kNote:
        return "note";
    }
    return "none";
  };

  // One reportingDescriptor per distinct code, in first-seen order.
  std::vector<std::string> rule_ids;
  std::set<std::string> seen;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (seen.insert(d.code).second) rule_ids.push_back(d.code);
  }
  std::map<std::string, int> rule_index;
  std::vector<std::string> rules;
  for (size_t i = 0; i < rule_ids.size(); ++i) {
    rule_index[rule_ids[i]] = static_cast<int>(i);
    rules.push_back(StrFormat("{\"id\":%s}", JsonString(rule_ids[i]).c_str()));
  }

  std::vector<std::string> results;
  results.reserve(sink.size());
  for (const Diagnostic& d : sink.diagnostics()) {
    std::string location;
    if (!d.location.empty()) {
      std::string file;
      int line = 0;
      std::string physical;
      if (SplitFileLine(d.location, &file, &line)) {
        physical = StrFormat(
            "\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s},"
            "\"region\":{\"startLine\":%d}},",
            JsonString(file).c_str(), line);
      }
      location = StrFormat(
          ",\"locations\":[{%s\"logicalLocations\":[{\"fullyQualifiedName\":"
          "%s}]}]",
          physical.c_str(), JsonString(d.location).c_str());
    }
    std::string properties;
    if (!d.params.empty()) {
      properties = ",\"properties\":" + ParamsJson(d.params);
    }
    results.push_back(StrFormat(
        "{\"ruleId\":%s,\"ruleIndex\":%d,\"level\":\"%s\","
        "\"message\":{\"text\":%s}%s%s}",
        JsonString(d.code).c_str(), rule_index[d.code],
        sarif_level(d.severity), JsonString(d.message).c_str(),
        location.c_str(), properties.c_str()));
  }

  std::string artifacts;
  if (!artifact.empty()) {
    artifacts = StrFormat(
        ",\"artifacts\":[{\"location\":{\"uri\":%s}}]",
        JsonString(artifact).c_str());
  }
  return StrFormat(
      "{\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":"
      "{\"name\":%s,\"rules\":[%s]}}%s,\"results\":[%s]}]}",
      JsonString(tool).c_str(), Join(rules, ",").c_str(), artifacts.c_str(),
      Join(results, ",").c_str());
}

void RecordDiagnosticMetrics(const DiagnosticSink& sink) {
  if (sink.empty()) return;
  auto& registry = obs::MetricsRegistry::Current();
  for (const Diagnostic& d : sink.diagnostics()) {
    registry.GetCounter("lint.diagnostics." + d.code)->Increment();
  }
  if (sink.num_errors() > 0) {
    registry.GetCounter("lint.errors")
        ->Increment(static_cast<double>(sink.num_errors()));
  }
  if (sink.num_warnings() > 0) {
    registry.GetCounter("lint.warnings")
        ->Increment(static_cast<double>(sink.num_warnings()));
  }
  if (sink.num_notes() > 0) {
    registry.GetCounter("lint.notes")
        ->Increment(static_cast<double>(sink.num_notes()));
  }
}

}  // namespace lint
}  // namespace malleus
