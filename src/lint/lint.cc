#include "lint/lint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/string_util.h"
#include "plan/estimator.h"

namespace malleus {
namespace lint {

namespace {

std::string PipelineLoc(size_t i) { return StrFormat("pipeline[%zu]", i); }

std::string StageLoc(size_t i, size_t j) {
  return StrFormat("pipeline[%zu].stage[%zu]", i, j);
}

/// Largest straggling rate the fitted model x = 1 + 1.44k covers (the
/// paper injects levels k in {1,2,3,8}; Appendix B.7).
double MaxFittedRate() { return straggler::RateForLevel(8); }

}  // namespace

const std::vector<PassInfo>& Passes() {
  static const std::vector<PassInfo>* passes = new std::vector<PassInfo>{
      {kLintClusterBadBandwidth, Severity::kError,
       "interconnect bandwidth/latency is zero or negative"},
      {kLintClusterEmpty, Severity::kError,
       "cluster has no nodes or no GPUs per node"},
      {kLintClusterNoUsableMemory, Severity::kError,
       "reserved memory gap consumes the whole GPU"},
      {kLintGraphDeadlock, Severity::kError,
       "pipeline schedule cannot complete under 1F1B dependencies"},
      {kLintGraphMalformedSchedule, Severity::kError,
       "stage task sequence is not a permutation of the 1F1B work"},
      {kLintNetLinkOvercommit, Severity::kError,
       "a link's peak utilization exceeds its capacity"},
      {kLintNetNegativeLinkBytes, Severity::kError,
       "a link carried a negative or non-finite byte count"},
      {kLintNetVolumeMismatch, Severity::kError,
       "flow bytes do not sum to the collective lowering's volume"},
      {plan::kLintPlanBadMicroBatch, Severity::kError,
       "micro-batch size is not positive"},
      {plan::kLintPlanBadTpDegree, Severity::kError,
       "TP group size is not a power of two in [1, 8]"},
      {plan::kLintPlanBatchCoverage, Severity::kError,
       "sum(m_i) * b does not equal the global batch"},
      {plan::kLintPlanDuplicateStandby, Severity::kError,
       "a GPU appears twice on the standby list"},
      {plan::kLintPlanEmptyPipeline, Severity::kError,
       "a pipeline has no stages"},
      {plan::kLintPlanEmptyStage, Severity::kError, "a stage has no GPUs"},
      {plan::kLintPlanGpuReused, Severity::kError,
       "a GPU is assigned more than once"},
      {kLintPlanHealthyStandby, Severity::kWarn,
       "a non-straggler GPU is parked on standby"},
      {plan::kLintPlanInvalidGpu, Severity::kError,
       "a GPU id is outside the cluster"},
      {plan::kLintPlanLayerCoverage, Severity::kError,
       "a pipeline's layers do not sum to the model's"},
      {plan::kLintPlanMemoryCapacity, Severity::kError,
       "a stage does not fit in GPU memory"},
      {kLintPlanMemoryHeadroom, Severity::kWarn,
       "a stage's free memory is below 10% of capacity"},
      {kLintPlanMixedTpRates, Severity::kWarn,
       "a TP group mixes straggling rates (healthy GPUs dragged down)"},
      {plan::kLintPlanNegativeLayers, Severity::kError,
       "a stage has a negative layer count"},
      {plan::kLintPlanNoMicrobatches, Severity::kError,
       "a pipeline has no micro-batches"},
      {plan::kLintPlanNoPipelines, Severity::kError,
       "the plan has no pipelines"},
      {kLintPlanStageImbalance, Severity::kWarn,
       "per-micro-batch stage times within a pipeline are imbalanced"},
      {plan::kLintPlanTpSpansNodes, Severity::kError,
       "a TP group spans nodes"},
      {kLintPlanUnevenData, Severity::kWarn,
       "equal-rate pipelines carry unequal micro-batch counts"},
      {kLintScenarioDuplicateStraggler, Severity::kError,
       "two straggler entries target the same GPU"},
      {kLintScenarioDynamicInvalidValue, Severity::kError,
       "a dynamic block field is outside its valid range"},
      {kLintScenarioDynamicSaturated, Severity::kWarn,
       "dynamic event rates would saturate the cluster with faults"},
      {kLintScenarioFabricFieldIgnored, Severity::kWarn,
       "a fabric field does not apply to the chosen fabric kind"},
      {kLintScenarioGpuOutOfRange, Severity::kError,
       "a straggler entry names a GPU outside the cluster"},
      {kLintScenarioInvalidValue, Severity::kError,
       "a scenario field has a non-positive or unparsable value"},
      {kLintScenarioUnknownFabric, Severity::kError,
       "the scenario names an unknown fabric kind"},
      {kLintScenarioUnknownModel, Severity::kError,
       "the scenario names an unknown model"},
      {kLintScenarioUnknownPhase, Severity::kError,
       "the scenario names an unknown trace phase"},
      {kLintSituationBadRate, Severity::kError,
       "a straggling rate is below 1 or not a number"},
      {kLintSituationFailedGpu, Severity::kNote,
       "a GPU is marked failed (unreachable)"},
      {kLintSituationRateAboveFit, Severity::kWarn,
       "a straggling rate exceeds the fitted x = 1 + 1.44k range"},
      {kLintSituationSizeMismatch, Severity::kError,
       "the situation does not cover the cluster's GPUs"},
  };
  return *passes;
}

// ----- Plan quality passes ---------------------------------------------

void LintPlanQuality(const plan::ParallelPlan& p,
                     const topo::ClusterSpec& cluster,
                     const model::CostModel& cost,
                     const straggler::Situation& situation,
                     DiagnosticSink* sink) {
  if (situation.num_gpus() != cluster.num_gpus()) return;

  // plan.stage-imbalance + the per-pipeline bottlenecks for
  // plan.uneven-data.
  std::vector<double> bottlenecks;
  for (size_t i = 0; i < p.pipelines.size(); ++i) {
    const plan::Pipeline& pipe = p.pipelines[i];
    double t_min = std::numeric_limits<double>::infinity();
    double t_max = 0.0;
    for (const plan::Stage& s : pipe.stages) {
      if (s.num_layers <= 0) continue;
      const double t = plan::StageTimePerMicrobatch(s, p.micro_batch_size,
                                                    cost, situation);
      t_min = std::min(t_min, t);
      t_max = std::max(t_max, t);
    }
    bottlenecks.push_back(t_max);
    if (t_max > 0.0 && std::isfinite(t_min) && t_min > 0.0 &&
        t_max / t_min > kStageImbalanceRatio) {
      sink->Report(
          Severity::kWarn, kLintPlanStageImbalance, PipelineLoc(i),
          StrFormat("stage times span %.2fx within the pipeline (slowest "
                    "%.3fs vs fastest %.3fs per micro-batch); the slow "
                    "stage gates every 1F1B slot",
                    t_max / t_min, t_max, t_min),
          {{"ratio", StrFormat("%.3f", t_max / t_min)},
           {"threshold", StrFormat("%.2f", kStageImbalanceRatio)}});
    }
  }

  // plan.memory-headroom.
  const double cap = static_cast<double>(cost.gpu().UsableBytes());
  for (size_t i = 0; i < p.pipelines.size(); ++i) {
    for (size_t j = 0; j < p.pipelines[i].stages.size(); ++j) {
      const double used = plan::StageMemoryBytesPerGpu(
          p, static_cast<int>(i), static_cast<int>(j), cost);
      if (cap <= 0.0 || used > cap * (1.0 + 1e-9)) continue;  // Error case.
      const double headroom = 1.0 - used / cap;
      if (headroom < kMemoryHeadroomFraction) {
        sink->Report(
            Severity::kWarn, kLintPlanMemoryHeadroom, StageLoc(i, j),
            StrFormat("only %.1f%% memory headroom (%s used of %s); "
                      "re-planning may have no feasible moves",
                      headroom * 100.0,
                      FormatBytes(static_cast<uint64_t>(used)).c_str(),
                      FormatBytes(static_cast<uint64_t>(cap)).c_str()),
            {{"headroom_pct", StrFormat("%.2f", headroom * 100.0)},
             {"threshold_pct",
              StrFormat("%.0f", kMemoryHeadroomFraction * 100.0)}});
      }
    }
  }

  // plan.healthy-standby.
  for (size_t k = 0; k < p.standby_gpus.size(); ++k) {
    const topo::GpuId g = p.standby_gpus[k];
    if (g < 0 || g >= situation.num_gpus()) continue;
    if (!situation.IsStraggler(g) && !situation.IsFailed(g)) {
      sink->Report(Severity::kWarn, kLintPlanHealthyStandby,
                   StrFormat("standby[%zu]", k),
                   StrFormat("GPU %d is on standby but not straggling "
                             "(rate %.2f); its capacity is wasted",
                             g, situation.rate(g)),
                   {{"gpu", StrFormat("%d", g)},
                    {"rate", StrFormat("%.3f", situation.rate(g))}});
    }
  }

  // plan.mixed-tp-rates.
  for (size_t i = 0; i < p.pipelines.size(); ++i) {
    for (size_t j = 0; j < p.pipelines[i].stages.size(); ++j) {
      const plan::TpGroup& group = p.pipelines[i].stages[j].group;
      if (group.size() < 2) continue;
      double r_min = std::numeric_limits<double>::infinity();
      double r_max = 0.0;
      bool in_range = true;
      for (topo::GpuId g : group.gpus) {
        if (g < 0 || g >= situation.num_gpus()) {
          in_range = false;
          break;
        }
        r_min = std::min(r_min, situation.rate(g));
        r_max = std::max(r_max, situation.rate(g));
      }
      if (!in_range || !(r_min > 0.0)) continue;
      if (r_max / r_min > kMixedTpRateRatio) {
        sink->Report(
            Severity::kWarn, kLintPlanMixedTpRates, StageLoc(i, j),
            StrFormat("TP group mixes straggling rates (%.2f..%.2f): the "
                      "group runs at its slowest member, wasting the "
                      "faster GPUs",
                      r_min, r_max),
            {{"min_rate", StrFormat("%.3f", r_min)},
             {"max_rate", StrFormat("%.3f", r_max)}});
      }
    }
  }

  // plan.uneven-data: pipelines with equal bottlenecks should carry equal
  // micro-batch counts (Eq. 3 reduces to an even split); inequality means
  // divisibility waste — some pipelines idle while others finish.
  if (p.pipelines.size() > 1 && !bottlenecks.empty()) {
    const double b_min =
        *std::min_element(bottlenecks.begin(), bottlenecks.end());
    const double b_max =
        *std::max_element(bottlenecks.begin(), bottlenecks.end());
    int64_t m_min = std::numeric_limits<int64_t>::max();
    int64_t m_max = 0;
    for (const plan::Pipeline& pipe : p.pipelines) {
      m_min = std::min(m_min, pipe.num_microbatches);
      m_max = std::max(m_max, pipe.num_microbatches);
    }
    if (b_min > 0.0 && b_max / b_min < 1.01 && m_max != m_min) {
      sink->Report(
          Severity::kWarn, kLintPlanUnevenData, "",
          StrFormat("pipelines have equal stage bottlenecks but unequal "
                    "micro-batch counts (%lld..%lld): the global batch "
                    "does not divide evenly and %lld extra micro-batch(es) "
                    "gate the step",
                    static_cast<long long>(m_min),
                    static_cast<long long>(m_max),
                    static_cast<long long>(m_max - m_min)),
          {{"m_min", StrFormat("%lld", static_cast<long long>(m_min))},
           {"m_max", StrFormat("%lld", static_cast<long long>(m_max))}});
    }
  }
}

void LintPlan(const plan::ParallelPlan& p, const topo::ClusterSpec& cluster,
              const model::CostModel& cost,
              const straggler::Situation* situation, DiagnosticSink* sink) {
  DiagnosticSink structure;
  plan::LintPlanStructure(p, cluster, cost, &structure);
  sink->Merge(structure);
  // Quality passes assume a structurally sound plan (the memory model and
  // stage-time formulas presuppose valid groups and indices).
  if (!structure.HasErrors() && situation != nullptr) {
    LintPlanQuality(p, cluster, cost, *situation, sink);
  }
}

// ----- Scenario / cluster passes ---------------------------------------

void LintCluster(const topo::ClusterSpec& cluster, DiagnosticSink* sink) {
  if (cluster.num_nodes() <= 0 || cluster.gpus_per_node() <= 0) {
    sink->Report(Severity::kError, kLintClusterEmpty, "cluster",
                 StrFormat("cluster has %d nodes with %d GPUs each",
                           cluster.num_nodes(), cluster.gpus_per_node()));
    return;
  }
  const topo::LinkSpec& link = cluster.link();
  if (!(link.intra_node_gbps > 0.0)) {
    sink->Report(Severity::kError, kLintClusterBadBandwidth,
                 "cluster.link.intra_node",
                 StrFormat("intra-node bandwidth is %.3f GB/s",
                           link.intra_node_gbps));
  }
  if (cluster.num_nodes() > 1 && !(link.inter_node_gbps > 0.0)) {
    sink->Report(Severity::kError, kLintClusterBadBandwidth,
                 "cluster.link.inter_node",
                 StrFormat("inter-node bandwidth is %.3f GB/s",
                           link.inter_node_gbps));
  }
  if (link.intra_node_latency_s < 0.0 || link.inter_node_latency_s < 0.0) {
    sink->Report(Severity::kError, kLintClusterBadBandwidth, "cluster.link",
                 "negative link latency");
  }
  if (cluster.gpu().UsableBytes() == 0) {
    sink->Report(
        Severity::kError, kLintClusterNoUsableMemory, "cluster.gpu",
        StrFormat("reserved gap (%s) consumes the whole GPU memory (%s)",
                  FormatBytes(cluster.gpu().reserved_bytes).c_str(),
                  FormatBytes(cluster.gpu().memory_bytes).c_str()));
  }
}

void LintSituation(const topo::ClusterSpec& cluster,
                   const straggler::Situation& situation,
                   DiagnosticSink* sink) {
  if (situation.num_gpus() != cluster.num_gpus()) {
    sink->Report(
        Severity::kError, kLintSituationSizeMismatch, "situation",
        StrFormat("situation covers %d GPUs, cluster has %d",
                  situation.num_gpus(), cluster.num_gpus()),
        {{"situation_gpus", StrFormat("%d", situation.num_gpus())},
         {"cluster_gpus", StrFormat("%d", cluster.num_gpus())}});
    return;
  }
  const double max_fit = MaxFittedRate();
  for (topo::GpuId g = 0; g < situation.num_gpus(); ++g) {
    const double rate = situation.rate(g);
    const std::string loc = StrFormat("situation.gpu[%d]", g);
    if (situation.IsFailed(g)) {
      sink->Report(Severity::kNote, kLintSituationFailedGpu, loc,
                   StrFormat("GPU %d is failed/unreachable; plans must "
                             "exclude it",
                             g));
      continue;
    }
    if (std::isnan(rate) || rate < 1.0 - 1e-12) {
      sink->Report(Severity::kError, kLintSituationBadRate, loc,
                   StrFormat("straggling rate %.4f of GPU %d is below 1 "
                             "(rates are slowdowns; 1 = healthy)",
                             rate, g),
                   {{"rate", StrFormat("%.6f", rate)}});
    } else if (rate > max_fit * (1.0 + 1e-9)) {
      sink->Report(
          Severity::kWarn, kLintSituationRateAboveFit, loc,
          StrFormat("straggling rate %.2f of GPU %d exceeds the fitted "
                    "range x = 1 + 1.44k, k <= 8 (max %.2f); the cost "
                    "model is extrapolating",
                    rate, g, max_fit),
          {{"rate", StrFormat("%.3f", rate)},
           {"max_fitted", StrFormat("%.3f", max_fit)}});
    }
  }
}

void LintScenario(const scenario::ScenarioSpec& spec, DiagnosticSink* sink) {
  if (!scenario::ModelSpecByName(spec.model).ok()) {
    sink->Report(Severity::kError, kLintScenarioUnknownModel,
                 "scenario.model",
                 StrFormat("unknown model \"%s\" (expected 32b, 70b, 110b "
                           "or tiny)",
                           spec.model.c_str()));
  }
  const bool shape_ok = spec.nodes >= 1 && spec.gpus_per_node >= 1;
  if (!shape_ok) {
    sink->Report(Severity::kError, kLintScenarioInvalidValue,
                 "scenario.nodes",
                 StrFormat("cluster shape %dx%d is not positive", spec.nodes,
                           spec.gpus_per_node));
  }
  if (spec.batch < 1) {
    sink->Report(Severity::kError, kLintScenarioInvalidValue,
                 "scenario.batch",
                 StrFormat("batch %lld must be >= 1",
                           static_cast<long long>(spec.batch)));
  }
  if (spec.steps < 1) {
    sink->Report(Severity::kError, kLintScenarioInvalidValue,
                 "scenario.steps",
                 StrFormat("steps %d must be >= 1", spec.steps));
  }
  if (!spec.net_model.empty() &&
      !net::ParseNetModel(spec.net_model).ok()) {
    sink->Report(Severity::kError, kLintScenarioInvalidValue,
                 "scenario.net_model",
                 StrFormat("unknown net model \"%s\" (expected analytic or "
                           "flow)",
                           spec.net_model.c_str()));
  }
  topo::FabricSpec::Kind fabric_kind = topo::FabricSpec::Kind::kFlat;
  bool fabric_ok = true;
  if (!spec.fabric.empty()) {
    Result<topo::FabricSpec::Kind> parsed =
        topo::ParseFabricKind(spec.fabric);
    if (!parsed.ok()) {
      sink->Report(Severity::kError, kLintScenarioUnknownFabric,
                   "scenario.fabric",
                   StrFormat("unknown fabric \"%s\" (expected flat, "
                             "fat-tree or rail)",
                             spec.fabric.c_str()));
      fabric_ok = false;
    } else {
      fabric_kind = *parsed;
    }
  }
  if (fabric_ok) {
    if (fabric_kind == topo::FabricSpec::Kind::kFatTree) {
      if (spec.nodes_per_pod <= 0) {
        sink->Report(Severity::kError, kLintScenarioInvalidValue,
                     "scenario.nodes_per_pod",
                     StrFormat("fat-tree fabric requires nodes_per_pod >= 1 "
                               "(got %d)",
                               spec.nodes_per_pod));
      } else if (shape_ok && spec.nodes % spec.nodes_per_pod != 0) {
        sink->Report(Severity::kError, kLintScenarioInvalidValue,
                     "scenario.nodes_per_pod",
                     StrFormat("nodes_per_pod %d must divide nodes %d",
                               spec.nodes_per_pod, spec.nodes),
                     {{"nodes_per_pod", StrFormat("%d", spec.nodes_per_pod)},
                      {"nodes", StrFormat("%d", spec.nodes)}});
      }
    } else if (spec.nodes_per_pod != 0) {
      sink->Report(Severity::kWarn, kLintScenarioFabricFieldIgnored,
                   "scenario.nodes_per_pod",
                   StrFormat("nodes_per_pod only applies to fat-tree "
                             "fabrics (fabric is %s); the field is ignored",
                             topo::FabricKindName(fabric_kind)));
    }
    if (fabric_kind != topo::FabricSpec::Kind::kFlat) {
      if (spec.oversubscription != 0.0 && spec.oversubscription < 1.0) {
        sink->Report(Severity::kError, kLintScenarioInvalidValue,
                     "scenario.oversubscription",
                     StrFormat("oversubscription %.4f must be >= 1 "
                               "(1 = non-blocking)",
                               spec.oversubscription));
      }
    } else if (spec.oversubscription != 0.0) {
      sink->Report(Severity::kWarn, kLintScenarioFabricFieldIgnored,
                   "scenario.oversubscription",
                   "oversubscription only applies to hierarchical fabrics "
                   "(fabric is flat); the field is ignored");
    }
  }
  for (size_t i = 0; i < spec.phases.size(); ++i) {
    if (!scenario::SituationIdByName(spec.phases[i]).ok()) {
      sink->Report(Severity::kError, kLintScenarioUnknownPhase,
                   StrFormat("scenario.phase[%zu]", i),
                   StrFormat("unknown trace phase \"%s\" (expected normal "
                             "or s1..s6)",
                             spec.phases[i].c_str()));
    }
  }
  const int num_gpus = shape_ok ? spec.nodes * spec.gpus_per_node : 0;
  const double max_fit = MaxFittedRate();
  std::set<topo::GpuId> seen;
  for (size_t i = 0; i < spec.stragglers.size(); ++i) {
    const scenario::StragglerEntry& s = spec.stragglers[i];
    const std::string loc = StrFormat("scenario.straggler[%zu]", i);
    if (shape_ok && (s.gpu < 0 || s.gpu >= num_gpus)) {
      sink->Report(Severity::kError, kLintScenarioGpuOutOfRange, loc,
                   StrFormat("straggler GPU %d is outside the %d-GPU "
                             "cluster",
                             s.gpu, num_gpus),
                   {{"gpu", StrFormat("%d", s.gpu)},
                    {"num_gpus", StrFormat("%d", num_gpus)}});
    }
    if (!seen.insert(s.gpu).second) {
      sink->Report(Severity::kError, kLintScenarioDuplicateStraggler, loc,
                   StrFormat("GPU %d already has a straggler entry", s.gpu),
                   {{"gpu", StrFormat("%d", s.gpu)}});
    }
    if (s.is_rate) {
      if (std::isinf(s.rate) && s.rate > 0) {
        sink->Report(Severity::kNote, kLintSituationFailedGpu, loc,
                     StrFormat("GPU %d is marked failed (infinite rate)",
                               s.gpu));
      } else if (std::isnan(s.rate) || s.rate < 1.0 - 1e-12) {
        sink->Report(Severity::kError, kLintSituationBadRate, loc,
                     StrFormat("straggling rate %.4f is below 1", s.rate),
                     {{"rate", StrFormat("%.6f", s.rate)}});
      } else if (s.rate > max_fit * (1.0 + 1e-9)) {
        sink->Report(Severity::kWarn, kLintSituationRateAboveFit, loc,
                     StrFormat("rate %.2f exceeds the fitted range (max "
                               "%.2f at level 8)",
                               s.rate, max_fit),
                     {{"rate", StrFormat("%.3f", s.rate)}});
      }
    } else {
      if (s.level < 0) {
        sink->Report(Severity::kError, kLintSituationBadRate, loc,
                     StrFormat("straggler level %d is negative", s.level));
      } else if (s.level > 8) {
        sink->Report(Severity::kWarn, kLintSituationRateAboveFit, loc,
                     StrFormat("level %d exceeds the fitted range k <= 8 "
                               "(rate %.2f)",
                               s.level, straggler::RateForLevel(s.level)),
                     {{"level", StrFormat("%d", s.level)}});
      }
    }
  }
  if (spec.dynamic.enabled) {
    const scenario::DynamicSpec& d = spec.dynamic;
    const std::string loc = "scenario.dynamic";
    const auto bad = [&](const std::string& what) {
      sink->Report(Severity::kError, kLintScenarioDynamicInvalidValue, loc,
                   what);
    };
    if (d.iterations < 1 || d.iterations > 10 * 1000 * 1000) {
      bad(StrFormat("iterations %d must be in [1, 10000000]", d.iterations));
    }
    if (!(d.straggle_rate >= 0.0 && d.straggle_rate <= 1.0)) {
      bad(StrFormat("straggle_rate %.6g must be in [0, 1]",
                    d.straggle_rate));
    }
    if (!(d.fail_rate >= 0.0 && d.fail_rate <= 1.0)) {
      bad(StrFormat("fail_rate %.6g must be in [0, 1]", d.fail_rate));
    }
    if (!(d.node_fail_rate >= 0.0 && d.node_fail_rate <= 1.0)) {
      bad(StrFormat("node_fail_rate %.6g must be in [0, 1]",
                    d.node_fail_rate));
    }
    if (d.recover_iters < 0) {
      bad(StrFormat("recover_iters %d must be >= 0", d.recover_iters));
    }
    if (!(d.flap_prob >= 0.0 && d.flap_prob <= 1.0)) {
      bad(StrFormat("flap_prob %.6g must be in [0, 1]", d.flap_prob));
    }
    if (d.flap_period < 1) {
      bad(StrFormat("flap_period %d must be >= 1", d.flap_period));
    }
    if (!(d.diurnal_amplitude >= 0.0 && d.diurnal_amplitude <= 1.0)) {
      bad(StrFormat("diurnal_amplitude %.6g must be in [0, 1]",
                    d.diurnal_amplitude));
    }
    if (d.diurnal_period < 1) {
      bad(StrFormat("diurnal_period %d must be >= 1", d.diurnal_period));
    }
    if (d.max_level < 1 || d.max_level > 8) {
      bad(StrFormat("max_level %d must be in [1, 8]", d.max_level));
    }
    // Saturation: with per-GPU arrival probability p and mean heal time r,
    // the expected number of concurrently-faulty GPUs in steady state is
    // about num_gpus * p * r. Past half the cluster the planner spends the
    // whole run in degraded plans and the comparison tells you nothing.
    if (shape_ok && d.straggle_rate >= 0.0 && d.fail_rate >= 0.0 &&
        d.node_fail_rate >= 0.0 && d.recover_iters >= 0) {
      const double arrival = d.straggle_rate + d.fail_rate +
                             d.node_fail_rate * spec.gpus_per_node;
      const double expected_faulty =
          static_cast<double>(num_gpus) * arrival *
          (d.recover_iters > 0 ? d.recover_iters : d.iterations);
      if (expected_faulty >= num_gpus / 2.0 && num_gpus > 0) {
        sink->Report(
            Severity::kWarn, kLintScenarioDynamicSaturated, loc,
            StrFormat("expected concurrent faulty GPUs %.1f is at least "
                      "half the %d-GPU cluster; the dynamic run will be "
                      "fault-dominated",
                      expected_faulty, num_gpus),
            {{"expected_faulty", StrFormat("%.2f", expected_faulty)},
             {"num_gpus", StrFormat("%d", num_gpus)}});
      }
    }
  }
}

// ----- Event-graph / flow passes ---------------------------------------

void LintPipelineSchedule(
    const std::vector<std::vector<sim::StageTask>>& per_stage,
    int64_t num_micro, const std::string& location_prefix,
    DiagnosticSink* sink) {
  const int pp = static_cast<int>(per_stage.size());
  const auto stage_loc = [&](int j) {
    return location_prefix.empty()
               ? StrFormat("stage[%d]", j)
               : StrFormat("%s.stage[%d]", location_prefix.c_str(), j);
  };

  // Completeness: each stage must run fwd and bwd of every micro-batch
  // exactly once.
  bool malformed = false;
  for (int j = 0; j < pp; ++j) {
    std::vector<int> fwd_count(num_micro, 0), bwd_count(num_micro, 0);
    int out_of_range = 0;
    for (const sim::StageTask& t : per_stage[j]) {
      if (t.micro < 0 || t.micro >= num_micro) {
        ++out_of_range;
        continue;
      }
      ++(t.is_fwd ? fwd_count : bwd_count)[t.micro];
    }
    int missing = 0, duplicated = 0;
    for (int64_t m = 0; m < num_micro; ++m) {
      missing += (fwd_count[m] == 0) + (bwd_count[m] == 0);
      duplicated += (fwd_count[m] > 1) + (bwd_count[m] > 1);
    }
    if (missing > 0 || duplicated > 0 || out_of_range > 0) {
      malformed = true;
      sink->Report(
          Severity::kError, kLintGraphMalformedSchedule, stage_loc(j),
          StrFormat("stage %d schedule is not a 1F1B permutation: %d "
                    "missing, %d duplicated, %d out-of-range task(s) over "
                    "%lld micro-batches",
                    j, missing, duplicated, out_of_range,
                    static_cast<long long>(num_micro)),
          {{"missing", StrFormat("%d", missing)},
           {"duplicated", StrFormat("%d", duplicated)},
           {"out_of_range", StrFormat("%d", out_of_range)}});
    }
  }
  if (malformed) return;  // Playback of a non-permutation is meaningless.

  // Topological playback under the 1F1B dependencies. This is the same
  // readiness rule the simulator uses, without times: a schedule that
  // stalls here would deadlock (or CHECK-fail) the simulation.
  std::vector<std::vector<bool>> fwd_done(pp), bwd_done(pp);
  for (int j = 0; j < pp; ++j) {
    fwd_done[j].assign(num_micro, false);
    bwd_done[j].assign(num_micro, false);
  }
  std::vector<size_t> pos(pp, 0);
  size_t total_done = 0;
  const size_t total_tasks = static_cast<size_t>(pp) * 2 * num_micro;
  bool progressed = true;
  while (total_done < total_tasks && progressed) {
    progressed = false;
    for (int j = 0; j < pp; ++j) {
      while (pos[j] < per_stage[j].size()) {
        const sim::StageTask& t = per_stage[j][pos[j]];
        if (t.is_fwd) {
          if (j > 0 && !fwd_done[j - 1][t.micro]) break;
          fwd_done[j][t.micro] = true;
        } else {
          // A backward consumes the stashed activation of its own forward
          // and the gradient from downstream.
          if (!fwd_done[j][t.micro]) break;
          if (j < pp - 1 && !bwd_done[j + 1][t.micro]) break;
          bwd_done[j][t.micro] = true;
        }
        ++pos[j];
        ++total_done;
        progressed = true;
      }
    }
  }
  if (total_done < total_tasks) {
    // Name the first stalled stage and the task it is blocked on.
    for (int j = 0; j < pp; ++j) {
      if (pos[j] >= per_stage[j].size()) continue;
      const sim::StageTask& t = per_stage[j][pos[j]];
      sink->Report(
          Severity::kError, kLintGraphDeadlock, stage_loc(j),
          StrFormat("1F1B schedule deadlocks: stage %d is blocked on %s of "
                    "micro-batch %lld with %zu of %zu tasks done",
                    j, t.is_fwd ? "forward" : "backward",
                    static_cast<long long>(t.micro), total_done,
                    total_tasks),
          {{"blocked_micro", StrFormat("%lld",
                                       static_cast<long long>(t.micro))},
           {"blocked_kind", t.is_fwd ? "fwd" : "bwd"}});
      return;  // One finding pinpoints the cycle; the rest is fallout.
    }
  }
}

void LintEventGraph(const plan::ParallelPlan& p, DiagnosticSink* sink) {
  for (size_t i = 0; i < p.pipelines.size(); ++i) {
    const plan::Pipeline& pipe = p.pipelines[i];
    const int pp = pipe.num_stages();
    if (pp <= 0 || pipe.num_microbatches <= 0) continue;  // Structural.
    std::vector<std::vector<sim::StageTask>> per_stage(pp);
    for (int j = 0; j < pp; ++j) {
      per_stage[j] = sim::Build1F1BSchedule(j, pp, pipe.num_microbatches);
    }
    LintPipelineSchedule(per_stage, pipe.num_microbatches, PipelineLoc(i),
                         sink);
  }
}

FlowAudit AuditFlowSim(const net::FlowSim& sim) {
  FlowAudit audit;
  audit.total_flow_bytes = sim.TotalBytes();
  const std::vector<net::LinkUsage>& usage = sim.link_usage();
  audit.link_bytes.reserve(usage.size());
  audit.link_peak_utilization.reserve(usage.size());
  audit.link_names.reserve(usage.size());
  for (size_t i = 0; i < usage.size(); ++i) {
    audit.link_bytes.push_back(usage[i].bytes);
    audit.link_peak_utilization.push_back(usage[i].peak_utilization);
    audit.link_names.push_back(
        sim.fabric().link(static_cast<net::LinkId>(i)).name);
  }
  return audit;
}

void LintFlowConservation(const FlowAudit& audit, double expected_bytes,
                          double rel_tolerance, DiagnosticSink* sink) {
  for (size_t i = 0; i < audit.link_bytes.size(); ++i) {
    const std::string name = i < audit.link_names.size()
                                 ? audit.link_names[i]
                                 : StrFormat("link[%zu]", i);
    const double bytes = audit.link_bytes[i];
    if (std::isnan(bytes) || bytes < 0.0) {
      sink->Report(Severity::kError, kLintNetNegativeLinkBytes,
                   StrFormat("link.%s", name.c_str()),
                   StrFormat("link %s carried %.3f bytes", name.c_str(),
                             bytes),
                   {{"bytes", StrFormat("%.3f", bytes)}});
    }
    if (i < audit.link_peak_utilization.size()) {
      const double peak = audit.link_peak_utilization[i];
      if (std::isnan(peak) || peak > 1.0 + 1e-6) {
        sink->Report(
            Severity::kError, kLintNetLinkOvercommit, StrFormat("link.%s", name.c_str()),
            StrFormat("link %s peaked at %.4fx its capacity (max–min fair "
                      "sharing must not overcommit)",
                      name.c_str(), peak),
            {{"peak_utilization", StrFormat("%.6f", peak)}});
      }
    }
  }
  const double diff = std::abs(audit.total_flow_bytes - expected_bytes);
  if (std::isnan(audit.total_flow_bytes) ||
      diff > rel_tolerance * std::max(1.0, expected_bytes)) {
    sink->Report(
        Severity::kError, kLintNetVolumeMismatch, "",
        StrFormat("flows moved %.0f bytes, the collective lowering "
                  "expected %.0f (off by %.2f%%)",
                  audit.total_flow_bytes, expected_bytes,
                  expected_bytes > 0.0 ? diff / expected_bytes * 100.0
                                       : 0.0),
        {{"actual_bytes", StrFormat("%.3f", audit.total_flow_bytes)},
         {"expected_bytes", StrFormat("%.3f", expected_bytes)}});
  }
}

}  // namespace lint
}  // namespace malleus
