// malleus::lint — the diagnostics engine.
//
// A Diagnostic is one finding of a static-analysis pass: a stable code
// (e.g. "plan.gpu-reused"), a severity, a human message, a path-like
// location into the analyzed artifact (e.g. "pipeline[2].stage[0]") and
// structured key/value params for machine consumers. Diagnostics are
// collected by a DiagnosticSink and rendered as human text, JSON, or
// SARIF 2.1.0 (the OASIS static-analysis interchange format, so CI
// systems can annotate findings natively).
//
// The sink is deliberately a plain value type: passes append, callers
// copy/move it around (e.g. attached to a PlanResult). It is not
// thread-safe; concurrent passes collect into their own sinks and merge.

#ifndef MALLEUS_LINT_DIAGNOSTIC_H_
#define MALLEUS_LINT_DIAGNOSTIC_H_

#include <string>
#include <utility>
#include <vector>

namespace malleus {
namespace lint {

/// Severity policy: kError findings make the artifact unusable (the
/// executor refuses such plans; CLIs exit non-zero); kWarn findings are
/// legal but likely pathological (imbalance, razor-edge memory); kNote is
/// informational context attached to other findings.
enum class Severity {
  kError,
  kWarn,
  kNote,
};

/// "error" / "warn" / "note".
const char* SeverityName(Severity severity);

/// One structured parameter of a diagnostic, e.g. {"headroom_pct", "4.2"}.
struct DiagParam {
  std::string key;
  std::string value;
};

/// One finding of an analysis pass.
struct Diagnostic {
  std::string code;      ///< Stable dotted identifier, e.g. "plan.gpu-reused".
  Severity severity = Severity::kError;
  std::string message;   ///< Human-readable, one line.
  /// Path into the analyzed artifact, e.g. "pipeline[2].stage[0]" or
  /// "scenario.straggler[1]". Empty for artifact-wide findings.
  std::string location;
  std::vector<DiagParam> params;

  /// "error[plan.gpu-reused] pipeline[0].stage[1]: GPU 3 used more than
  /// once" (location omitted when empty).
  std::string ToString() const;
};

/// \brief Collects diagnostics emitted by analysis passes.
class DiagnosticSink {
 public:
  /// Appends a diagnostic.
  void Report(Diagnostic d);

  /// Convenience: builds and appends in one call.
  void Report(Severity severity, std::string code, std::string location,
              std::string message, std::vector<DiagParam> params = {});

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }

  int num_errors() const { return num_errors_; }
  int num_warnings() const { return num_warnings_; }
  int num_notes() const { return num_notes_; }
  bool HasErrors() const { return num_errors_ > 0; }

  /// True iff any collected diagnostic carries `code`.
  bool HasCode(const std::string& code) const;

  /// Appends every diagnostic of `other`.
  void Merge(const DiagnosticSink& other);

  /// When set, passes stop analyzing after the first error-level finding
  /// (ParallelPlan::Validate uses this to preserve its first-error-wins
  /// contract). Cooperative: passes consult ShouldStop() between checks.
  void set_fail_fast(bool fail_fast) { fail_fast_ = fail_fast; }
  bool fail_fast() const { return fail_fast_; }
  bool ShouldStop() const { return fail_fast_ && num_errors_ > 0; }

 private:
  std::vector<Diagnostic> diagnostics_;
  int num_errors_ = 0;
  int num_warnings_ = 0;
  int num_notes_ = 0;
  bool fail_fast_ = false;
};

// ----- Renderers -------------------------------------------------------

/// One line per diagnostic (Diagnostic::ToString) plus a trailing summary
/// line ("2 errors, 1 warning"). Empty sinks render "no diagnostics\n".
std::string RenderText(const DiagnosticSink& sink);

/// {"diagnostics":[{"code":...,"severity":...,"location":...,
///  "message":...,"params":{...}}],"errors":N,"warnings":N,"notes":N}
std::string RenderJson(const DiagnosticSink& sink);

/// SARIF 2.1.0 (the OASIS standard CI annotators consume): one run with
/// tool.driver.name `tool` (default "malleus-lint"), one reporting rule
/// per distinct code, one result per diagnostic with the location mapped
/// to a SARIF logicalLocation and the params to result.properties.
/// Locations of the form "path:line" (as emitted by malleus::analyze)
/// additionally get a physicalLocation with artifactLocation.uri = path
/// and region.startLine = line, so CI annotators can pin the finding to
/// the source line. `artifact` names the analyzed input (e.g. a scenario
/// file path); empty omits it.
std::string RenderSarif(const DiagnosticSink& sink,
                        const std::string& artifact = "",
                        const std::string& tool = "malleus-lint");

/// Increments the `lint.diagnostics.<code>` counter of the global metrics
/// registry for every collected diagnostic, plus the `lint.errors` /
/// `lint.warnings` / `lint.notes` totals.
void RecordDiagnosticMetrics(const DiagnosticSink& sink);

}  // namespace lint
}  // namespace malleus

#endif  // MALLEUS_LINT_DIAGNOSTIC_H_
