#include "common/string_util.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace malleus {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  std::string s = StrFormat("%.*f", digits, v);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", v, kUnits[unit]);
}

std::string FormatSeconds(double seconds) {
  if (seconds < 0) {
    // Two statements: GCC 12's -Wrestrict misfires on `"-" + <temporary>`.
    std::string out = "-";
    out += FormatSeconds(-seconds);
    return out;
  }
  if (seconds < 1e-3) return StrFormat("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.2f s", seconds);
  return StrFormat("%.1f min", seconds / 60.0);
}

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v, int significant_digits) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.*g", significant_digits, v);
}

std::string JsonFixed(double v, int decimals) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.*f", decimals, v);
}

std::string JsonSanitizeNonFinite(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  bool in_string = false;
  size_t i = 0;
  auto matches = [&](size_t pos, const char* word) {
    const size_t n = std::strlen(word);
    if (json.compare(pos, n, word) != 0) return size_t{0};
    return n;
  };
  while (i < json.size()) {
    const char c = json[i];
    if (in_string) {
      out += c;
      if (c == '\\' && i + 1 < json.size()) {
        out += json[i + 1];
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      out += c;
      ++i;
      continue;
    }
    // A non-finite printf rendering can only start at a sign or at the
    // token itself; "-nan" / "-inf" must swallow the sign too (a bare
    // `-null` would still be invalid JSON).
    size_t p = i;
    if (c == '-' || c == '+') ++p;
    size_t n = matches(p, "nan");
    if (n == 0) n = matches(p, "inf");
    if (n != 0) {
      p += n;
      if (json.compare(p, 5, "inity") == 0) p += 5;  // "infinity"
      if (p < json.size() && json[p] == '(') {       // "nan(0x...)" payloads
        const size_t close = json.find(')', p);
        if (close != std::string::npos) p = close + 1;
      }
      out += "null";
      i = p;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

}  // namespace malleus
