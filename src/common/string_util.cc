#include "common/string_util.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace malleus {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  std::string s = StrFormat("%.*f", digits, v);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", v, kUnits[unit]);
}

std::string FormatSeconds(double seconds) {
  if (seconds < 0) return "-" + FormatSeconds(-seconds);
  if (seconds < 1e-3) return StrFormat("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.2f s", seconds);
  return StrFormat("%.1f min", seconds / 60.0);
}

}  // namespace malleus
