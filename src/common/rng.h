// Deterministic random number generation (SplitMix64 / xoshiro256**).
//
// All stochastic behaviour in the simulator flows through Rng so that runs
// are reproducible from a single seed.

#ifndef MALLEUS_COMMON_RNG_H_
#define MALLEUS_COMMON_RNG_H_

#include <cstdint>
#include <limits>

namespace malleus {

/// \brief Small, fast, seedable PRNG (xoshiro256**), deterministic across
/// platforms, used instead of std::mt19937 to keep simulator runs stable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator via SplitMix64 expansion of `seed`.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (one value per call, no caching).
  double Normal() {
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

  /// Normal with mean/stddev.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace malleus

#endif  // MALLEUS_COMMON_RNG_H_
