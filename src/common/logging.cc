#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace malleus {

namespace {

// Startup log level: MALLEUS_LOG_LEVEL=debug|info|warning|error (also
// accepts "warn"; case-insensitive) overrides the kInfo default, so
// examples and benches can be made verbose without recompiling.
LogLevel InitialLogLevel() {
  const char* env = std::getenv("MALLEUS_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::kInfo;
  std::string v;
  for (const char* p = env; *p; ++p) {
    v += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warning" || v == "warn") return LogLevel::kWarning;
  if (v == "error") return LogLevel::kError;
  std::fprintf(stderr,
               "[WARN logging.cc] unknown MALLEUS_LOG_LEVEL '%s' "
               "(want debug|info|warning|error); using info\n",
               env);
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_log_level{InitialLogLevel()};

// Serializes writes to stderr so concurrent threads (e.g. an overlapped
// planner run) cannot interleave log lines. Leaked to dodge destruction-
// order issues with logging from static destructors.
std::mutex& StderrMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    const std::string line = stream_.str();
    std::lock_guard<std::mutex> lock(StderrMutex());
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalLogMessage::~FatalLogMessage() {
  const std::string line = stream_.str();
  {
    std::lock_guard<std::mutex> lock(StderrMutex());
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  std::abort();
}

}  // namespace internal

}  // namespace malleus
