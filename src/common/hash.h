// Tiny non-cryptographic hashing shared by tools and the recorded-run
// bundle format: FNV-1a over bytes. Stable across platforms (pure integer
// arithmetic, no endianness dependence), so hashes written into artifacts
// (bundle manifests, fuzz reports) verify anywhere.

#ifndef MALLEUS_COMMON_HASH_H_
#define MALLEUS_COMMON_HASH_H_

#include <cstdint>
#include <string>

namespace malleus {

/// 64-bit FNV-1a. The conventional offset basis / prime; matches every
/// published reference implementation byte for byte.
inline uint64_t Fnv1a64(const char* data, size_t size,
                        uint64_t seed = 1469598103934665603ull) {
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

inline uint64_t Fnv1a64(const std::string& bytes,
                        uint64_t seed = 1469598103934665603ull) {
  return Fnv1a64(bytes.data(), bytes.size(), seed);
}

}  // namespace malleus

#endif  // MALLEUS_COMMON_HASH_H_
