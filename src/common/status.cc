#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace malleus {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

namespace internal {

void DieOnStatus(const Status& st, const char* file, int line) {
  std::fprintf(stderr, "MALLEUS_CHECK_OK failed at %s:%d: %s\n", file, line,
               st.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace malleus
