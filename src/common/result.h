// Result<T>: value-or-Status, the library's StatusOr equivalent.

#ifndef MALLEUS_COMMON_RESULT_H_
#define MALLEUS_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace malleus {

/// \brief Holds either a value of type T or an error Status.
///
/// Usage:
/// \code
///   Result<Plan> r = planner.Plan(...);
///   if (!r.ok()) return r.status();
///   Plan plan = std::move(r).ValueOrDie();
/// \endcode
/// [[nodiscard]] for the same reason as Status: a dropped Result<T> hides
/// both the value and the error it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the success case).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK Status (the error case).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; the Result must be ok().
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates the error of a Result expression, else assigns its value.
#define MALLEUS_ASSIGN_OR_RETURN(lhs, expr)          \
  MALLEUS_ASSIGN_OR_RETURN_IMPL(                     \
      MALLEUS_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define MALLEUS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie();

#define MALLEUS_CONCAT_NAME_INNER(x, y) x##y
#define MALLEUS_CONCAT_NAME(x, y) MALLEUS_CONCAT_NAME_INNER(x, y)

}  // namespace malleus

#endif  // MALLEUS_COMMON_RESULT_H_
