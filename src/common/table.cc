#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace malleus {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'x' &&
               c != 'e' && c != 'E') {
      return false;
    }
  }
  return digit;
}

std::string Pad(const std::string& s, size_t width, bool right_align) {
  if (s.size() >= width) return s;
  std::string pad(width - s.size(), ' ');
  return right_align ? pad + s : s + pad;
}

}  // namespace

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{false, std::move(row)});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TablePrinter::ToString() const {
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<size_t> widths(ncols, 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = std::max(widths[c], header_[c].size());
  }
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  auto hline = [&]() {
    std::string s = "+";
    for (size_t c = 0; c < ncols; ++c) {
      s += std::string(widths[c] + 2, '-');
      s += "+";
    }
    s += "\n";
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < cells.size() ? cells[c] : "";
      // Built up in pieces: GCC 12's -Wrestrict misfires on the
      // temporary chain `" " + Pad(...) + " |"`.
      s += ' ';
      s += Pad(cell, widths[c], LooksNumeric(cell));
      s += " |";
    }
    s += "\n";
    return s;
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  out += hline();
  if (!header_.empty()) {
    out += render_row(header_);
    out += hline();
  }
  for (const auto& r : rows_) {
    out += r.separator ? hline() : render_row(r.cells);
  }
  out += hline();
  return out;
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace malleus
