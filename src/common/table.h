// ASCII table printer used by the benchmark harnesses to emit paper-style
// tables (Table 2, Table 3, ...).

#ifndef MALLEUS_COMMON_TABLE_H_
#define MALLEUS_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace malleus {

/// \brief Accumulates rows of cells and renders an aligned ASCII table.
///
/// Column widths are computed from content; numeric cells are right-aligned,
/// everything else left-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row; rows may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator at the current position.
  void AddSeparator();

  /// Renders the table.
  std::string ToString() const;

  /// Renders to stdout.
  void Print() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace malleus

#endif  // MALLEUS_COMMON_TABLE_H_
