// String formatting helpers shared across modules.

#ifndef MALLEUS_COMMON_STRING_UTIL_H_
#define MALLEUS_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace malleus {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins elements with a separator, e.g. Join({"a","b"}, ",") == "a,b".
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Renders a double with `digits` decimals, trimming trailing zeros off
/// integers ("2" not "2.00" when digits allows).
std::string FormatDouble(double v, int digits = 2);

/// Human-readable byte count, e.g. "1.50 GiB".
std::string FormatBytes(uint64_t bytes);

/// Human-readable duration from seconds, e.g. "1.25 s" or "320 ms".
std::string FormatSeconds(double seconds);

/// RFC 4180 CSV field: quoted (with embedded quotes doubled) iff the field
/// contains a comma, quote, CR or LF; returned verbatim otherwise.
std::string CsvEscape(const std::string& field);

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes and control characters); adds no surrounding quotes.
std::string JsonEscape(const std::string& s);

/// Renders a double as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values render as `null` (the conventional lossless-ish
/// substitute) instead of producing invalid output like `inf`.
std::string JsonNumber(double v, int significant_digits = 9);

/// Renders a double as a JSON number with a fixed number of decimals
/// ("%.*f"), for fields whose textual width must not depend on magnitude
/// (e.g. trace timestamps). Non-finite values render as `null`, like
/// JsonNumber.
std::string JsonFixed(double v, int decimals);

/// Repairs a JSON document whose numeric fields were printf-formatted
/// without a finiteness check: every bare `nan`/`inf` token (with optional
/// sign, and `nan(...)` payloads) outside string literals is replaced with
/// `null`. Content inside strings is left untouched.
std::string JsonSanitizeNonFinite(const std::string& json);

}  // namespace malleus

#endif  // MALLEUS_COMMON_STRING_UTIL_H_
