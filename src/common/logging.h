// Minimal leveled logging plus CHECK macros.

#ifndef MALLEUS_COMMON_LOGGING_H_
#define MALLEUS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace malleus {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted. The default is kInfo,
/// overridable at startup with MALLEUS_LOG_LEVEL=debug|info|warning|error.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts after streaming the message; used by CHECK failures.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define MALLEUS_LOG(level)                                              \
  ::malleus::internal::LogMessage(::malleus::LogLevel::k##level,        \
                                  __FILE__, __LINE__)

/// Aborts the process with a message if `cond` is false.
#define MALLEUS_CHECK(cond)                                            \
  if (!(cond))                                                         \
  ::malleus::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define MALLEUS_CHECK_EQ(a, b) MALLEUS_CHECK((a) == (b))
#define MALLEUS_CHECK_NE(a, b) MALLEUS_CHECK((a) != (b))
#define MALLEUS_CHECK_LT(a, b) MALLEUS_CHECK((a) < (b))
#define MALLEUS_CHECK_LE(a, b) MALLEUS_CHECK((a) <= (b))
#define MALLEUS_CHECK_GT(a, b) MALLEUS_CHECK((a) > (b))
#define MALLEUS_CHECK_GE(a, b) MALLEUS_CHECK((a) >= (b))

}  // namespace malleus

#endif  // MALLEUS_COMMON_LOGGING_H_
