// Status: lightweight error-handling type in the Arrow/RocksDB idiom.
//
// Functions that can fail return a Status (or a Result<T>, see result.h)
// instead of throwing. Statuses carry a code and a human-readable message.

#ifndef MALLEUS_COMMON_STATUS_H_
#define MALLEUS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace malleus {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kInfeasible,   ///< An optimization problem has no feasible solution.
  kUnavailable,  ///< A device or resource is (possibly transiently) down.
  kInternal,
  kNotImplemented,
};

/// Returns the canonical name of a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: either OK or an error code plus message.
///
/// The class is cheap to copy in the OK case (no allocation) and is intended
/// to be returned by value. Use the MALLEUS_RETURN_NOT_OK macro to propagate
/// errors up the call stack.
///
/// [[nodiscard]]: silently dropping a Status swallows the error path, so
/// the compiler flags any call statement that ignores one (the detlint
/// status.discarded rule catches the same pattern pre-build). Deliberate
/// best-effort discards must say so with a (void) cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsInfeasible() const { return code_ == StatusCode::kInfeasible; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// Renders as "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define MALLEUS_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::malleus::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// Aborts the process if `expr` is not OK; for use in tests and examples.
#define MALLEUS_CHECK_OK(expr)                                      \
  do {                                                              \
    ::malleus::Status _st = (expr);                                 \
    if (!_st.ok()) {                                                \
      ::malleus::internal::DieOnStatus(_st, __FILE__, __LINE__);    \
    }                                                               \
  } while (false)

namespace internal {
[[noreturn]] void DieOnStatus(const Status& st, const char* file, int line);
}  // namespace internal

}  // namespace malleus

#endif  // MALLEUS_COMMON_STATUS_H_
