#include "scenario/scenario.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace malleus {
namespace scenario {

namespace {

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Status LineError(int line, const std::string& what) {
  return Status::InvalidArgument(StrFormat("line %d: %s", line, what.c_str()));
}

// Parses a whole-string integer; false on trailing garbage or empty input.
bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

// "GPU:LEVEL" or "GPU:xRATE".
Status ParseStraggler(const std::string& value, int line,
                      StragglerEntry* out) {
  const size_t colon = value.find(':');
  if (colon == std::string::npos) {
    return LineError(line, "straggler must be GPU:LEVEL or GPU:xRATE");
  }
  int64_t gpu = 0;
  if (!ParseInt64(Trim(value.substr(0, colon)), &gpu)) {
    return LineError(line, "straggler GPU id is not an integer");
  }
  out->gpu = static_cast<topo::GpuId>(gpu);
  out->line = line;
  const std::string rest = Trim(value.substr(colon + 1));
  if (!rest.empty() && rest[0] == 'x') {
    double rate = 0.0;
    if (!ParseDouble(rest.substr(1), &rate)) {
      return LineError(line, "straggler rate is not a number");
    }
    out->rate = rate;
    out->is_rate = true;
    return Status::OK();
  }
  int64_t level = 0;
  if (!ParseInt64(rest, &level)) {
    return LineError(line, "straggler level is not an integer");
  }
  out->level = static_cast<int>(level);
  out->is_rate = false;
  return Status::OK();
}

// "{ key=value key=value ... }" — the braces hold whitespace-separated
// inner pairs, so the whole dynamic block stays one scenario line and the
// top-level first-'=' split keeps working.
Status ParseDynamic(const std::string& value, int line, DynamicSpec* out) {
  if (value.front() != '{' || value.back() != '}') {
    return LineError(line, "dynamic value must be { key=value ... }");
  }
  *out = DynamicSpec();
  out->enabled = true;
  out->line = line;
  const std::string inner = value.substr(1, value.size() - 2);
  size_t pos = 0;
  while (pos < inner.size()) {
    while (pos < inner.size() &&
           std::isspace(static_cast<unsigned char>(inner[pos]))) {
      ++pos;
    }
    if (pos >= inner.size()) break;
    size_t end = pos;
    while (end < inner.size() &&
           !std::isspace(static_cast<unsigned char>(inner[end]))) {
      ++end;
    }
    const std::string pair = inner.substr(pos, end - pos);
    pos = end;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= pair.size()) {
      return LineError(line, "dynamic entry must be key=value: " + pair);
    }
    const std::string key = pair.substr(0, eq);
    const std::string val = pair.substr(eq + 1);
    int64_t n = 0;
    double d = 0.0;
    if (key == "iterations") {
      if (!ParseInt64(val, &n)) return LineError(line, "bad dynamic iterations");
      out->iterations = static_cast<int>(n);
    } else if (key == "straggle_rate") {
      if (!ParseDouble(val, &d)) {
        return LineError(line, "bad dynamic straggle_rate");
      }
      out->straggle_rate = d;
    } else if (key == "fail_rate") {
      if (!ParseDouble(val, &d)) return LineError(line, "bad dynamic fail_rate");
      out->fail_rate = d;
    } else if (key == "node_fail_rate") {
      if (!ParseDouble(val, &d)) {
        return LineError(line, "bad dynamic node_fail_rate");
      }
      out->node_fail_rate = d;
    } else if (key == "recover_iters") {
      if (!ParseInt64(val, &n)) {
        return LineError(line, "bad dynamic recover_iters");
      }
      out->recover_iters = static_cast<int>(n);
    } else if (key == "flap_prob") {
      if (!ParseDouble(val, &d)) return LineError(line, "bad dynamic flap_prob");
      out->flap_prob = d;
    } else if (key == "flap_period") {
      if (!ParseInt64(val, &n)) {
        return LineError(line, "bad dynamic flap_period");
      }
      out->flap_period = static_cast<int>(n);
    } else if (key == "diurnal_amplitude") {
      if (!ParseDouble(val, &d)) {
        return LineError(line, "bad dynamic diurnal_amplitude");
      }
      out->diurnal_amplitude = d;
    } else if (key == "diurnal_period") {
      if (!ParseInt64(val, &n)) {
        return LineError(line, "bad dynamic diurnal_period");
      }
      out->diurnal_period = static_cast<int>(n);
    } else if (key == "max_level") {
      if (!ParseInt64(val, &n)) return LineError(line, "bad dynamic max_level");
      out->max_level = static_cast<int>(n);
    } else if (key == "seed") {
      if (!ParseInt64(val, &n)) return LineError(line, "bad dynamic seed");
      out->seed = static_cast<uint64_t>(n);
    } else {
      return LineError(line, "unknown dynamic key: " + key);
    }
  }
  return Status::OK();
}

}  // namespace

Result<ScenarioSpec> ParseScenarioString(const std::string& text) {
  ScenarioSpec spec;
  int line_no = 0;
  size_t pos = 0;
  // Files that passed through Windows editors may lead with a UTF-8 BOM;
  // without this the first key would read as "\xEF\xBB\xBFmodel". CR and
  // trailing whitespace are handled by Trim (isspace covers '\r').
  if (text.compare(0, 3, "\xEF\xBB\xBF") == 0) pos = 3;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string line = text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return LineError(line_no, "expected key = value");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (value.empty()) return LineError(line_no, "empty value for " + key);

    int64_t n = 0;
    if (key == "model") {
      spec.model = value;
    } else if (key == "nodes") {
      if (!ParseInt64(value, &n)) return LineError(line_no, "bad nodes");
      spec.nodes = static_cast<int>(n);
    } else if (key == "gpus_per_node") {
      if (!ParseInt64(value, &n)) {
        return LineError(line_no, "bad gpus_per_node");
      }
      spec.gpus_per_node = static_cast<int>(n);
    } else if (key == "batch") {
      if (!ParseInt64(value, &n)) return LineError(line_no, "bad batch");
      spec.batch = n;
    } else if (key == "steps") {
      if (!ParseInt64(value, &n)) return LineError(line_no, "bad steps");
      spec.steps = static_cast<int>(n);
    } else if (key == "seed") {
      if (!ParseInt64(value, &n)) return LineError(line_no, "bad seed");
      spec.seed = static_cast<uint64_t>(n);
    } else if (key == "net_model") {
      spec.net_model = value;
    } else if (key == "fabric") {
      spec.fabric = value;
    } else if (key == "nodes_per_pod") {
      if (!ParseInt64(value, &n)) {
        return LineError(line_no, "bad nodes_per_pod");
      }
      spec.nodes_per_pod = static_cast<int>(n);
    } else if (key == "oversubscription") {
      double d = 0.0;
      if (!ParseDouble(value, &d)) {
        return LineError(line_no, "bad oversubscription");
      }
      spec.oversubscription = d;
    } else if (key == "phase") {
      spec.phases.push_back(value);
    } else if (key == "straggler") {
      StragglerEntry entry;
      MALLEUS_RETURN_NOT_OK(ParseStraggler(value, line_no, &entry));
      spec.stragglers.push_back(entry);
    } else if (key == "dynamic") {
      MALLEUS_RETURN_NOT_OK(ParseDynamic(value, line_no, &spec.dynamic));
    } else {
      return LineError(line_no, "unknown key: " + key);
    }
  }
  return spec;
}

std::string SerializeScenario(const ScenarioSpec& spec) {
  std::string out;
  out += "model = " + spec.model + "\n";
  out += StrFormat("nodes = %d\n", spec.nodes);
  out += StrFormat("gpus_per_node = %d\n", spec.gpus_per_node);
  out += StrFormat("batch = %lld\n", static_cast<long long>(spec.batch));
  out += StrFormat("steps = %d\n", spec.steps);
  // The parser reads seeds through strtoll, so only seeds below 2^63
  // round-trip; everything in the tree (flag defaults, the fuzzer's
  // generator) stays in that range.
  out += StrFormat("seed = %llu\n",
                   static_cast<unsigned long long>(spec.seed));
  if (!spec.net_model.empty()) {
    out += "net_model = " + spec.net_model + "\n";
  }
  if (!spec.fabric.empty()) {
    out += "fabric = " + spec.fabric + "\n";
  }
  if (spec.nodes_per_pod != 0) {
    out += StrFormat("nodes_per_pod = %d\n", spec.nodes_per_pod);
  }
  if (spec.oversubscription != 0.0) {
    out += StrFormat("oversubscription = %.17g\n", spec.oversubscription);
  }
  for (const std::string& phase : spec.phases) {
    out += "phase = " + phase + "\n";
  }
  for (const StragglerEntry& s : spec.stragglers) {
    if (s.is_rate) {
      // %.17g round-trips every finite double exactly through strtod.
      out += StrFormat("straggler = %d:x%.17g\n", s.gpu, s.rate);
    } else {
      out += StrFormat("straggler = %d:%d\n", s.gpu, s.level);
    }
  }
  if (spec.dynamic.enabled) {
    const DynamicSpec& d = spec.dynamic;
    out += StrFormat(
        "dynamic = { iterations=%d straggle_rate=%.17g fail_rate=%.17g "
        "node_fail_rate=%.17g recover_iters=%d flap_prob=%.17g "
        "flap_period=%d diurnal_amplitude=%.17g diurnal_period=%d "
        "max_level=%d seed=%llu }\n",
        d.iterations, d.straggle_rate, d.fail_rate, d.node_fail_rate,
        d.recover_iters, d.flap_prob, d.flap_period, d.diurnal_amplitude,
        d.diurnal_period, d.max_level,
        static_cast<unsigned long long>(d.seed));
  }
  return out;
}

Result<ScenarioSpec> LoadScenarioFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open scenario file: " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  Result<ScenarioSpec> spec = ParseScenarioString(text);
  if (!spec.ok()) {
    return Status(spec.status().code(),
                  path + ": " + spec.status().message());
  }
  spec->source = path;
  return spec;
}

Result<model::ModelSpec> ModelSpecByName(const std::string& name) {
  if (name == "32b") return model::ModelSpec::Llama32B();
  if (name == "70b") return model::ModelSpec::Llama70B();
  if (name == "110b") return model::ModelSpec::Llama110B();
  if (name == "tiny") return model::ModelSpec::Tiny();
  return Status::InvalidArgument("unknown model: " + name);
}

Result<straggler::SituationId> SituationIdByName(const std::string& name) {
  using straggler::SituationId;
  if (name == "normal") return SituationId::kNormal;
  if (name == "s1") return SituationId::kS1;
  if (name == "s2") return SituationId::kS2;
  if (name == "s3") return SituationId::kS3;
  if (name == "s4") return SituationId::kS4;
  if (name == "s5") return SituationId::kS5;
  if (name == "s6") return SituationId::kS6;
  return Status::InvalidArgument("unknown trace phase: " + name);
}

Result<ResolvedScenario> ResolveScenario(const ScenarioSpec& spec) {
  ResolvedScenario out;
  MALLEUS_ASSIGN_OR_RETURN(out.spec, ModelSpecByName(spec.model));
  if (spec.nodes < 1 || spec.gpus_per_node < 1) {
    return Status::InvalidArgument("cluster shape must be positive");
  }
  if (spec.batch < 1 || spec.steps < 1) {
    return Status::InvalidArgument("batch and steps must be >= 1");
  }
  topo::FabricSpec fabric;
  if (!spec.fabric.empty()) {
    MALLEUS_ASSIGN_OR_RETURN(fabric.kind, topo::ParseFabricKind(spec.fabric));
  }
  if (fabric.kind == topo::FabricSpec::Kind::kFatTree) {
    if (spec.nodes_per_pod <= 0) {
      return Status::InvalidArgument(
          "fat-tree fabric requires nodes_per_pod > 0");
    }
    if (spec.nodes % spec.nodes_per_pod != 0) {
      return Status::InvalidArgument(
          StrFormat("nodes_per_pod=%d must divide nodes=%d",
                    spec.nodes_per_pod, spec.nodes));
    }
    fabric.nodes_per_pod = spec.nodes_per_pod;
  }
  if (fabric.kind != topo::FabricSpec::Kind::kFlat &&
      spec.oversubscription != 0.0) {
    if (spec.oversubscription < 1.0) {
      return Status::InvalidArgument(
          "oversubscription must be >= 1 (1 = non-blocking)");
    }
    fabric.oversubscription = spec.oversubscription;
  }
  out.cluster = topo::ClusterSpec(spec.nodes, spec.gpus_per_node,
                                  topo::GpuSpec(), topo::LinkSpec(), fabric);
  out.net_model = net::DefaultNetModel();
  if (!spec.net_model.empty()) {
    MALLEUS_ASSIGN_OR_RETURN(out.net_model,
                             net::ParseNetModel(spec.net_model));
  }
  for (const std::string& phase : spec.phases) {
    MALLEUS_ASSIGN_OR_RETURN(straggler::SituationId id,
                             SituationIdByName(phase));
    out.trace.push_back({id, spec.steps});
  }
  out.overlay = straggler::Situation(out.cluster.num_gpus());
  for (const StragglerEntry& s : spec.stragglers) {
    if (!out.cluster.ValidGpu(s.gpu)) {
      return Status::InvalidArgument(
          StrFormat("straggler GPU %d outside the cluster", s.gpu));
    }
    if (s.is_rate) {
      out.overlay.SetRate(s.gpu, s.rate);
    } else {
      out.overlay.SetLevel(s.gpu, s.level);
    }
    out.has_overlay = true;
  }
  return out;
}

Result<std::vector<LabeledSituation>> ImpliedSituations(
    const ResolvedScenario& resolved) {
  std::vector<LabeledSituation> situations;
  if (resolved.has_overlay) {
    situations.push_back({"overlay", resolved.overlay});
  } else if (!resolved.trace.empty()) {
    std::vector<straggler::SituationId> seen;
    for (const straggler::TracePhase& phase : resolved.trace) {
      bool duplicate = false;
      for (straggler::SituationId id : seen) {
        if (id == phase.id) duplicate = true;
      }
      if (duplicate) continue;
      seen.push_back(phase.id);
      Result<straggler::Situation> situation =
          straggler::Situation::Canonical(resolved.cluster, phase.id);
      if (!situation.ok()) return situation.status();
      situations.push_back({straggler::SituationName(phase.id),
                            std::move(*situation)});
    }
  } else {
    situations.push_back(
        {"Normal", straggler::Situation(resolved.cluster.num_gpus())});
  }
  return situations;
}

}  // namespace scenario
}  // namespace malleus
