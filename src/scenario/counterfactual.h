// Counterfactual specs: the query grammar of the what-if attribution
// engine (tools/malleus_whatif, src/whatif). A counterfactual is one
// targeted edit to a recorded run's world — heal or dampen a straggler,
// scale the fabric, constrain or free the planner, add standby capacity,
// swap the network cost model — that the engine re-plans and re-simulates
// to measure what the edited world would have cost.
//
// Grammar (one counterfactual per line; '#' comments and blank lines are
// ignored; a grid file is just many lines):
//
//   remove_straggler gpu=9            # rate -> 1.0 on GPU 9
//   dampen_straggler gpu=9 factor=0.5 # rate -> 1 + (rate-1)*factor
//   scale_nic factor=2                # inter-node bandwidth x2, all nodes
//   scale_nvlink factor=0.5           # intra-node bandwidth x0.5
//   force_tp tp=8                     # planner enumerates only TP=8
//   add_standby_node nodes=1          # grow the cluster by healthy nodes
//   net_model model=flow              # re-price comm under this model
//
// Parsing is purely syntactic (like scenario.h): range checks that need
// the cluster (GPU ids) happen when the engine applies the counterfactual.
// The ClusterSpec is homogeneous, so the bandwidth scales apply fleet-wide
// — "this node's NIC is degraded" is modeled as "what if every NIC ran at
// factor x", the right question under the paper's nominally-uniform
// hardware premise (DESIGN.md §12).

#ifndef MALLEUS_SCENARIO_COUNTERFACTUAL_H_
#define MALLEUS_SCENARIO_COUNTERFACTUAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "net/fabric.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace scenario {

enum class CounterfactualKind {
  kRemoveStraggler,  ///< Heal one GPU (rate -> 1.0).
  kDampenStraggler,  ///< Shrink one GPU's excess rate by `factor`.
  kScaleNic,         ///< Scale inter-node (NIC) bandwidth by `factor`.
  kScaleNvlink,      ///< Scale intra-node (NVLink) bandwidth by `factor`.
  kForceTp,          ///< Pin the planner's TP enumeration to `tp`.
  kAddStandbyNode,   ///< Add `nodes` healthy nodes to the cluster.
  kSwapNetModel,     ///< Re-price communication under `net_model`.
};

/// Stable lowercase name, e.g. "remove_straggler".
const char* CounterfactualKindName(CounterfactualKind kind);

/// One parsed counterfactual.
struct Counterfactual {
  CounterfactualKind kind = CounterfactualKind::kRemoveStraggler;
  topo::GpuId gpu = -1;       ///< kRemove/kDampenStraggler.
  double factor = 1.0;        ///< kDampen (in [0,1)) / kScale* (> 0).
  int tp = 0;                 ///< kForceTp, in {1,2,4,8}.
  int nodes = 0;              ///< kAddStandbyNode, >= 1.
  net::NetModel net_model = net::NetModel::kAnalytic;  ///< kSwapNetModel.
  int line = 0;               ///< 1-based grid-file line, for diagnostics.

  /// Canonical one-line rendering; parses back to an equal value.
  std::string Label() const;
};

/// Parses one counterfactual line. Errors name the offending token and
/// check per-kind argument ranges that need no cluster (factor, tp, nodes).
Result<Counterfactual> ParseCounterfactual(const std::string& text);

/// Parses a grid file body: one counterfactual per non-comment line.
/// Errors name the 1-based line.
Result<std::vector<Counterfactual>> ParseCounterfactualGrid(
    const std::string& text);

struct DefaultGridOptions {
  /// Sweep remove_straggler over EVERY GPU (healthy ones included — their
  /// attribution must come out ~0, which both scales the grid to the
  /// cluster and cross-checks the engine). When false, only GPUs that are
  /// stragglers in `situation` are swept.
  bool per_gpu_removals = true;
  /// Dampen factors applied to each straggler GPU.
  std::vector<double> dampen_factors = {0.75, 0.5, 0.25};
  /// Sweep the dampen factors over EVERY GPU instead of stragglers only.
  /// Dampening a healthy GPU is definitionally the identity, so the extra
  /// rows are ~0-attribution cross-checks; this is the "full" grid the
  /// bench and `--auto-grid=full` use to stress sweep throughput (a
  /// 64-GPU cluster yields 250+ counterfactuals).
  bool dampen_all_gpus = false;
  /// Bandwidth scales applied to the NIC and to NVLink, each.
  std::vector<double> bandwidth_factors = {0.5, 2.0, 4.0};
  /// Enumerate force_tp over {1,2,4,8} (capped by gpus_per_node).
  bool tp_sweep = true;
  /// Standby-node additions to try.
  std::vector<int> standby_nodes = {1};
  /// Include the swap to the other net model.
  bool swap_net_model = true;
};

/// The standard counterfactual grid for `situation` on `cluster`:
/// per-GPU straggler removals, per-straggler dampenings, bandwidth scales,
/// TP constraints, standby additions and the net-model swap, in that
/// order. Deterministic for deterministic inputs.
std::vector<Counterfactual> DefaultCounterfactualGrid(
    const topo::ClusterSpec& cluster,
    const straggler::Situation& situation, net::NetModel base_model,
    const DefaultGridOptions& options = {});

}  // namespace scenario
}  // namespace malleus

#endif  // MALLEUS_SCENARIO_COUNTERFACTUAL_H_
