#include "scenario/counterfactual.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace malleus {
namespace scenario {

namespace {

// Splits on runs of spaces/tabs.
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::string tok;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!tok.empty()) out.push_back(std::move(tok));
      tok.clear();
    } else {
      tok += c;
    }
  }
  if (!tok.empty()) out.push_back(std::move(tok));
  return out;
}

// "key=value" tokens after the kind word; duplicate or unknown keys fail.
struct KeyValues {
  std::vector<std::pair<std::string, std::string>> pairs;

  const std::string* Find(const std::string& key) const {
    for (const auto& [k, v] : pairs) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

Result<KeyValues> ParseKeyValues(const std::vector<std::string>& tokens) {
  KeyValues out;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("expected key=value, got '" +
                                     tokens[i] + "'");
    }
    const std::string key = tokens[i].substr(0, eq);
    if (out.Find(key) != nullptr) {
      return Status::InvalidArgument("duplicate key '" + key + "'");
    }
    out.pairs.emplace_back(key, tokens[i].substr(eq + 1));
  }
  return out;
}

Result<int> ParseInt(const std::string& key, const KeyValues& kv) {
  const std::string* v = kv.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("missing required key '" + key + "'");
  }
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    return Status::InvalidArgument("cannot parse " + key + "='" + *v +
                                   "' as an integer");
  }
  return static_cast<int>(parsed);
}

Result<double> ParseDouble(const std::string& key, const KeyValues& kv) {
  const std::string* v = kv.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("missing required key '" + key + "'");
  }
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    return Status::InvalidArgument("cannot parse " + key + "='" + *v +
                                   "' as a number");
  }
  return parsed;
}

Status CheckKeys(const KeyValues& kv,
                 const std::vector<std::string>& allowed) {
  for (const auto& [k, v] : kv.pairs) {
    bool ok = false;
    for (const std::string& a : allowed) {
      if (k == a) ok = true;
    }
    if (!ok) return Status::InvalidArgument("unknown key '" + k + "'");
  }
  return Status::OK();
}

}  // namespace

const char* CounterfactualKindName(CounterfactualKind kind) {
  switch (kind) {
    case CounterfactualKind::kRemoveStraggler:
      return "remove_straggler";
    case CounterfactualKind::kDampenStraggler:
      return "dampen_straggler";
    case CounterfactualKind::kScaleNic:
      return "scale_nic";
    case CounterfactualKind::kScaleNvlink:
      return "scale_nvlink";
    case CounterfactualKind::kForceTp:
      return "force_tp";
    case CounterfactualKind::kAddStandbyNode:
      return "add_standby_node";
    case CounterfactualKind::kSwapNetModel:
      return "net_model";
  }
  return "unknown";
}

std::string Counterfactual::Label() const {
  switch (kind) {
    case CounterfactualKind::kRemoveStraggler:
      return StrFormat("remove_straggler gpu=%d", gpu);
    case CounterfactualKind::kDampenStraggler:
      return StrFormat("dampen_straggler gpu=%d factor=%s", gpu,
                       FormatDouble(factor, 6).c_str());
    case CounterfactualKind::kScaleNic:
      return StrFormat("scale_nic factor=%s",
                       FormatDouble(factor, 6).c_str());
    case CounterfactualKind::kScaleNvlink:
      return StrFormat("scale_nvlink factor=%s",
                       FormatDouble(factor, 6).c_str());
    case CounterfactualKind::kForceTp:
      return StrFormat("force_tp tp=%d", tp);
    case CounterfactualKind::kAddStandbyNode:
      return StrFormat("add_standby_node nodes=%d", nodes);
    case CounterfactualKind::kSwapNetModel:
      return StrFormat("net_model model=%s",
                       net::NetModelName(net_model));
  }
  return "unknown";
}

Result<Counterfactual> ParseCounterfactual(const std::string& text) {
  const std::vector<std::string> tokens = Tokens(text);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty counterfactual");
  }
  Result<KeyValues> kv = ParseKeyValues(tokens);
  if (!kv.ok()) return kv.status();

  Counterfactual cf;
  const std::string& kind = tokens[0];
  if (kind == "remove_straggler") {
    cf.kind = CounterfactualKind::kRemoveStraggler;
    if (Status s = CheckKeys(*kv, {"gpu"}); !s.ok()) return s;
    Result<int> gpu = ParseInt("gpu", *kv);
    if (!gpu.ok()) return gpu.status();
    if (*gpu < 0) return Status::InvalidArgument("gpu must be >= 0");
    cf.gpu = *gpu;
  } else if (kind == "dampen_straggler") {
    cf.kind = CounterfactualKind::kDampenStraggler;
    if (Status s = CheckKeys(*kv, {"gpu", "factor"}); !s.ok()) return s;
    Result<int> gpu = ParseInt("gpu", *kv);
    if (!gpu.ok()) return gpu.status();
    if (*gpu < 0) return Status::InvalidArgument("gpu must be >= 0");
    cf.gpu = *gpu;
    Result<double> factor = ParseDouble("factor", *kv);
    if (!factor.ok()) return factor.status();
    if (!(*factor >= 0.0) || *factor >= 1.0) {
      return Status::InvalidArgument(
          "dampen factor must be in [0, 1): 0 heals the GPU entirely, "
          "1 would change nothing");
    }
    cf.factor = *factor;
  } else if (kind == "scale_nic" || kind == "scale_nvlink") {
    cf.kind = kind == "scale_nic" ? CounterfactualKind::kScaleNic
                                  : CounterfactualKind::kScaleNvlink;
    if (Status s = CheckKeys(*kv, {"factor"}); !s.ok()) return s;
    Result<double> factor = ParseDouble("factor", *kv);
    if (!factor.ok()) return factor.status();
    if (!(*factor > 0.0)) {
      return Status::InvalidArgument("bandwidth factor must be > 0");
    }
    cf.factor = *factor;
  } else if (kind == "force_tp") {
    cf.kind = CounterfactualKind::kForceTp;
    if (Status s = CheckKeys(*kv, {"tp"}); !s.ok()) return s;
    Result<int> tp = ParseInt("tp", *kv);
    if (!tp.ok()) return tp.status();
    if (*tp != 1 && *tp != 2 && *tp != 4 && *tp != 8) {
      return Status::InvalidArgument("tp must be one of 1, 2, 4, 8");
    }
    cf.tp = *tp;
  } else if (kind == "add_standby_node") {
    cf.kind = CounterfactualKind::kAddStandbyNode;
    if (Status s = CheckKeys(*kv, {"nodes"}); !s.ok()) return s;
    Result<int> nodes = ParseInt("nodes", *kv);
    if (!nodes.ok()) return nodes.status();
    if (*nodes < 1) return Status::InvalidArgument("nodes must be >= 1");
    cf.nodes = *nodes;
  } else if (kind == "net_model") {
    cf.kind = CounterfactualKind::kSwapNetModel;
    if (Status s = CheckKeys(*kv, {"model"}); !s.ok()) return s;
    const std::string* model = kv->Find("model");
    if (model == nullptr) {
      return Status::InvalidArgument("missing required key 'model'");
    }
    Result<net::NetModel> parsed = net::ParseNetModel(*model);
    if (!parsed.ok()) return parsed.status();
    cf.net_model = *parsed;
  } else {
    return Status::InvalidArgument("unknown counterfactual kind '" + kind +
                                   "'");
  }
  return cf;
}

Result<std::vector<Counterfactual>> ParseCounterfactualGrid(
    const std::string& text) {
  std::vector<Counterfactual> out;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Strip comments (counterfactual lines contain no string literals).
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (Tokens(line).empty()) continue;
    Result<Counterfactual> cf = ParseCounterfactual(line);
    if (!cf.ok()) {
      return Status::InvalidArgument(
          StrFormat("grid line %d: %s", line_no,
                    cf.status().ToString().c_str()));
    }
    cf->line = line_no;
    out.push_back(std::move(*cf));
  }
  return out;
}

std::vector<Counterfactual> DefaultCounterfactualGrid(
    const topo::ClusterSpec& cluster,
    const straggler::Situation& situation, net::NetModel base_model,
    const DefaultGridOptions& options) {
  std::vector<Counterfactual> grid;
  auto add = [&grid](Counterfactual cf) { grid.push_back(std::move(cf)); };

  // Straggler removals: every GPU (scale + cross-check) or stragglers only.
  for (topo::GpuId g = 0; g < cluster.num_gpus(); ++g) {
    if (!options.per_gpu_removals && !situation.IsStraggler(g)) continue;
    Counterfactual cf;
    cf.kind = CounterfactualKind::kRemoveStraggler;
    cf.gpu = g;
    add(cf);
  }
  // Dampenings target actual stragglers by default: dampening a healthy
  // GPU is definitionally the identity (the full grid sweeps them anyway
  // as ~0-attribution cross-checks).
  std::vector<topo::GpuId> dampen_targets;
  if (options.dampen_all_gpus) {
    dampen_targets = cluster.AllGpus();
  } else {
    dampen_targets = situation.Stragglers();
  }
  for (topo::GpuId g : dampen_targets) {
    for (double f : options.dampen_factors) {
      Counterfactual cf;
      cf.kind = CounterfactualKind::kDampenStraggler;
      cf.gpu = g;
      cf.factor = f;
      add(cf);
    }
  }
  for (double f : options.bandwidth_factors) {
    Counterfactual cf;
    cf.kind = CounterfactualKind::kScaleNic;
    cf.factor = f;
    add(cf);
    cf.kind = CounterfactualKind::kScaleNvlink;
    add(cf);
  }
  if (options.tp_sweep) {
    for (int tp : {1, 2, 4, 8}) {
      if (tp > cluster.gpus_per_node()) continue;
      Counterfactual cf;
      cf.kind = CounterfactualKind::kForceTp;
      cf.tp = tp;
      add(cf);
    }
  }
  for (int n : options.standby_nodes) {
    Counterfactual cf;
    cf.kind = CounterfactualKind::kAddStandbyNode;
    cf.nodes = n;
    add(cf);
  }
  if (options.swap_net_model) {
    Counterfactual cf;
    cf.kind = CounterfactualKind::kSwapNetModel;
    cf.net_model = base_model == net::NetModel::kAnalytic
                       ? net::NetModel::kFlow
                       : net::NetModel::kAnalytic;
    add(cf);
  }
  return grid;
}

}  // namespace scenario
}  // namespace malleus
