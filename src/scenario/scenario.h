// Scenario files: a small key=value format describing one training
// scenario (model, cluster shape, batch, straggler trace, optional custom
// straggler overlay), shared by tools/malleus_lint and examples/
// scenario_cli so a scenario can be linted and executed from the same
// artifact.
//
//   # 32B run over 4 nodes with the S3 situation.
//   model = 32b
//   nodes = 4
//   batch = 64
//   steps = 6
//   phase = normal
//   phase = s3
//   straggler = 9:2        # GPU 9 runs at straggler level 2
//   straggler = 17:x2.5    # GPU 17 at an explicit rate of 2.5
//
// Hierarchical fabrics (the default is a flat non-blocking spine):
//
//   fabric = fat-tree       # or "rail", or the default "flat"
//   nodes_per_pod = 4       # fat-tree only; must divide nodes
//   oversubscription = 4    # spine taper ratio, >= 1 (1 = non-blocking)
//
// Dynamic fault-tolerance runs (malleus::policy) are declared with one
// `dynamic = { ... }` line whose braces hold space-separated key=value
// pairs describing the stochastic event processes:
//
//   dynamic = { iterations=2000 straggle_rate=0.02 fail_rate=0.004
//               recover_iters=80 flap_prob=0.3 flap_period=25
//               diurnal_amplitude=0.8 diurnal_period=200 max_level=3 }
//
// (shown wrapped; the file form is one physical line). Unknown inner keys
// are parse errors like unknown top-level keys; value ranges are checked
// by lint (scenario.dynamic-invalid-value / scenario.dynamic-saturated).
//
// Parsing is purely syntactic: unknown keys, malformed lines and
// unparsable numbers fail with a Status naming the line. Semantic
// validity (model names, phase names, GPU ranges, rate ranges) is the
// job of the lint passes (lint::LintScenario), so a tool can report
// every problem in one pass instead of dying on the first.

#ifndef MALLEUS_SCENARIO_SCENARIO_H_
#define MALLEUS_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/model_spec.h"
#include "net/fabric.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace scenario {

/// One custom straggler entry ("straggler = GPU:LEVEL" or "GPU:xRATE").
struct StragglerEntry {
  topo::GpuId gpu = 0;
  /// Exactly one of the two is meaningful, selected by `is_rate`.
  int level = 0;
  double rate = 1.0;
  bool is_rate = false;
  int line = 0;  ///< 1-based source line, for diagnostics.
};

/// The stochastic event processes of a `dynamic = { ... }` line. All
/// rates are per-GPU (or per-node for `node_fail_rate`) Poisson arrival
/// probabilities per simulated iteration; the trace generator in
/// malleus::policy consumes this verbatim. Ranges are lint's job
/// (scenario.dynamic-invalid-value), not the parser's.
struct DynamicSpec {
  bool enabled = false;
  /// Simulated iterations the dynamic run advances.
  int iterations = 2000;
  /// Per-GPU straggle arrival probability per iteration.
  double straggle_rate = 0.01;
  /// Per-GPU fail-stop arrival probability per iteration.
  double fail_rate = 0.0;
  /// Per-node correlated-failure probability per iteration (fails every
  /// GPU on the node at once).
  double node_fail_rate = 0.0;
  /// Mean iterations until a straggle/failure heals (0 = never heals).
  int recover_iters = 100;
  /// Probability a healed straggler flaps (re-straggles after roughly
  /// `flap_period` iterations).
  double flap_prob = 0.0;
  /// Mean iterations between flaps of a flapping GPU.
  int flap_period = 50;
  /// Diurnal contention: straggle arrivals are modulated by
  /// 1 + amplitude * sin(2*pi*t / period). 0 disables.
  double diurnal_amplitude = 0.0;
  int diurnal_period = 500;
  /// Straggler levels are drawn uniformly from [1, max_level].
  int max_level = 3;
  /// Trace seed; 0 means "derive from the scenario seed".
  uint64_t seed = 0;
  int line = 0;  ///< 1-based source line of the dynamic block.
};

/// A parsed scenario file. Defaults match scenario_cli's flag defaults.
struct ScenarioSpec {
  std::string model = "32b";
  int nodes = 4;
  int gpus_per_node = 8;
  int64_t batch = 64;
  int steps = 6;
  uint64_t seed = 42;
  /// "analytic" / "flow"; empty picks net::DefaultNetModel().
  std::string net_model;
  /// "flat" / "fat-tree" / "rail"; empty means flat.
  std::string fabric;
  /// Fat-tree pod size in nodes; 0 = unset. Ignored for other fabrics.
  int nodes_per_pod = 0;
  /// Spine taper ratio; 0 = unset (non-blocking). Ignored for flat fabrics.
  double oversubscription = 0.0;
  /// Canonical situation names ("normal", "s1".."s6"), in trace order.
  std::vector<std::string> phases;
  std::vector<StragglerEntry> stragglers;
  /// Dynamic fault-tolerance run configuration; disabled by default.
  DynamicSpec dynamic;
  /// The file this spec came from ("" when parsed from a string).
  std::string source;
};

/// Parses the scenario text. Syntax errors name the 1-based line.
/// Tolerates editor artifacts that round-trip through other tools: a
/// UTF-8 BOM, CRLF line endings, trailing whitespace, and `#` comments
/// after a value.
Result<ScenarioSpec> ParseScenarioString(const std::string& text);

/// Reads and parses `path`.
Result<ScenarioSpec> LoadScenarioFile(const std::string& path);

/// Renders `spec` back into the scenario file syntax such that
/// ParseScenarioString(SerializeScenario(spec)) reproduces every field
/// (source and per-entry line numbers excepted). Straggler rates are
/// emitted with enough digits to round-trip exactly. This is what the
/// fuzzer uses to write self-contained `.scenario` repro files.
std::string SerializeScenario(const ScenarioSpec& spec);

/// A ScenarioSpec resolved against the library types. Resolution assumes
/// the spec is semantically valid (lint it first); violations surface as
/// Status errors.
struct ResolvedScenario {
  model::ModelSpec spec;
  topo::ClusterSpec cluster;
  net::NetModel net_model = net::NetModel::kAnalytic;
  /// One TracePhase per `phases` entry, each `steps` iterations long.
  std::vector<straggler::TracePhase> trace;
  /// The custom straggler overlay applied to a healthy cluster. All-healthy
  /// when the spec lists no stragglers.
  straggler::Situation overlay;
  bool has_overlay = false;
};

/// Resolves model/cluster/trace/overlay. Fails on unknown model or phase
/// names, out-of-range GPU ids, or an invalid net model.
Result<ResolvedScenario> ResolveScenario(const ScenarioSpec& spec);

/// One labeled straggler situation the scenario implies.
struct LabeledSituation {
  std::string label;  ///< "overlay", "Normal", "S1", ...
  straggler::Situation situation;
};

/// The situations `resolved` implies, deduplicated in first-appearance
/// order: the custom overlay when present, else one per distinct trace
/// phase, else the all-healthy "Normal". Shared by the golden-snapshot
/// renderer and the what-if engine so both enumerate identically.
Result<std::vector<LabeledSituation>> ImpliedSituations(
    const ResolvedScenario& resolved);

/// Maps a model name ("32b"/"70b"/"110b"/"tiny") to its spec.
Result<model::ModelSpec> ModelSpecByName(const std::string& name);

/// Maps a canonical situation name ("normal", "s1".."s6") to its id.
Result<straggler::SituationId> SituationIdByName(const std::string& name);

}  // namespace scenario
}  // namespace malleus

#endif  // MALLEUS_SCENARIO_SCENARIO_H_
