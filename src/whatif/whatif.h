// The what-if attribution engine: replay a recorded run under
// counterfactual edits and rank how much of the step each cause costs.
//
// A recorded-run bundle (obs/bundle.h) pins the scenario; the planner and
// simulator are deterministic, so the engine re-derives the exact baseline
// plan and noise-free step timeline from the scenario alone, then — for
// every counterfactual in a grid (scenario/counterfactual.h) — builds the
// edited world (healed straggler, scaled fabric, constrained planner,
// grown cluster, swapped net model), re-plans and re-simulates it, and
// diffs the simulated step against the baseline. The output is a ranked
// obs::AttributionReport: "removing the level-3 straggler on GPU 0 saves
// 3.1 s/step (41% of the step)".
//
// Attribution semantics: every row carries up to two step times.
//   replay  — the RECORDED plan executed unchanged in the edited world;
//             answers "what would this step have cost with the same
//             decisions".
//   replan  — the planner re-run in the edited world; answers "what would
//             Malleus have done about it".
// attributed_seconds = baseline_step - best(computed step times): the
// counterfactual is credited with the best step the system could reach in
// its world. For planner edits (force_tp, add_standby_node) replay is
// definitionally the identity, so replan is the only candidate; for
// net-model swaps the planner cannot see network pricing, so replay is;
// straggler and bandwidth edits take the better of the two. The last case
// matters because Malleus is MALLEABLE: the recorded plan often routes
// around a severe straggler (it sits on the standby list), so fixed-plan
// replay attributes ~0 to healing it — the replan candidate is what
// reveals the capacity that straggler costs. attributed_seconds is
// positive when the counterfactual would have saved time.
//
// Determinism: variants are planned with one planner thread and simulated
// with timing noise 0; the sweep itself runs on an exec::ThreadPool with
// every worker writing only its own row slot, and the final ranking sorts
// by (attributed seconds desc, grid index). Reports therefore render
// byte-identically across repeat runs at any --threads value. Variants
// that share a world (same cluster + cost model) share one planner and
// its solver::SolveCache, so a 250-counterfactual sweep mostly replays
// memoized division/layer solves; cache traffic is reported but excluded
// from the JSON/CSV bytes (see obs/report.h).

#ifndef MALLEUS_WHATIF_WHATIF_H_
#define MALLEUS_WHATIF_WHATIF_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/cost_model.h"
#include "net/fabric.h"
#include "obs/bundle.h"
#include "obs/report.h"
#include "plan/plan.h"
#include "scenario/counterfactual.h"
#include "scenario/scenario.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace whatif {

/// A recorded run loaded from a bundle (or built from a spec in tests):
/// the scenario plus the recorded snapshot text used to cross-check that
/// this build re-derives the plan the bundle was recorded with.
struct RecordedRun {
  scenario::ScenarioSpec spec;
  scenario::ResolvedScenario resolved;
  /// testkit::RenderGoldenSnapshot text from the bundle; empty when the
  /// run was built from a bare spec. When non-empty, RunWhatIf requires
  /// the re-derived baseline plan signature to appear in it.
  std::string snapshot_text;
  /// Where the run came from (bundle directory or spec source), for the
  /// report's provenance fields.
  std::string source;
};

/// Extracts the scenario (and snapshot text, when present) from a loaded
/// bundle. Fails with a Status when the scenario member is missing or does
/// not parse/resolve.
Result<RecordedRun> LoadRecordedRun(const obs::RunBundle& bundle,
                                    const std::string& source = "");

/// Builds a RecordedRun straight from a spec (no bundle), for tests and
/// benches that sweep in-process.
Result<RecordedRun> RecordedRunFromSpec(const scenario::ScenarioSpec& spec);

/// The situation the sweep attributes: the implied situation labeled
/// `phase`, or — when `phase` is empty — the implied situation with the
/// most stragglers (ties to the first in order), i.e. the phase with
/// something to attribute. Shared by RunWhatIf and the tool's --auto-grid
/// builder so both see the same world.
Result<scenario::LabeledSituation> AnalyzedSituation(
    const RecordedRun& run, const std::string& phase = "");

/// One replayed step: the simulated wall time plus the aggregate span
/// seconds per trace category, diffable against another replay.
struct ReplayResult {
  double step_seconds = 0.0;
  double compute_span_seconds = 0.0;  ///< 1F1B stage tasks.
  double comm_span_seconds = 0.0;     ///< P2P activation transfers.
  double sync_span_seconds = 0.0;     ///< Grad-sync phases.
};

/// Simulates one noise-free step of `plan` under `situation` on `cluster`
/// priced by `net_model`, aggregating the trace spans per category.
/// Deterministic for deterministic inputs. Exposed for the testkit oracle
/// (fixed-plan replay is monotone in straggling rates under the analytic
/// model) and for tests.
Result<ReplayResult> ReplayPlanStep(const topo::ClusterSpec& cluster,
                                    const model::CostModel& cost,
                                    const plan::ParallelPlan& plan,
                                    const straggler::Situation& situation,
                                    net::NetModel net_model, uint64_t seed);

struct WhatIfOptions {
  /// Sweep workers. 0 picks exec::DefaultPlannerThreads(); 1 sweeps
  /// inline. The report bytes are identical at every value.
  int num_threads = 0;
  /// Also re-plan straggler and bandwidth edits, letting their rows take
  /// the better of replay and replan (see the attribution semantics
  /// above). Off attributes those rows by fixed-plan replay alone —
  /// cheaper, but blind to stragglers the recorded plan already routed
  /// around. force_tp / add_standby_node re-plan regardless.
  bool replan = true;
  /// Situation label to analyze ("overlay", "Normal", "S3", ...). Empty
  /// picks the implied situation with the most stragglers (ties to the
  /// first), i.e. the phase with something to attribute.
  std::string phase;
};

/// Runs the counterfactual sweep and returns the ranked report. Rows that
/// cannot be evaluated (GPU id outside the cluster, infeasible re-plan)
/// carry their error text, attribute 0 seconds and rank last — one bad
/// grid line never sinks the sweep.
Result<obs::AttributionReport> RunWhatIf(
    const RecordedRun& run,
    const std::vector<scenario::Counterfactual>& grid,
    const WhatIfOptions& options = {});

}  // namespace whatif
}  // namespace malleus

#endif  // MALLEUS_WHATIF_WHATIF_H_
