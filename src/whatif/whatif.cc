#include "whatif/whatif.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/planner.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/pipeline_sim.h"

namespace malleus {
namespace whatif {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// One planning world: a cluster variant plus its cost model and planner.
// The planner holds references into this struct, so entries live behind
// unique_ptr and never move. One entry is shared by every counterfactual
// with the same world, which is what makes the solver cache effective:
// all straggler heals/dampenings and force_tp rows hit the base entry.
struct PlannerEntry {
  topo::ClusterSpec cluster;
  model::CostModel cost;
  core::Planner planner;

  PlannerEntry(topo::ClusterSpec c, const model::ModelSpec& spec)
      : cluster(c), cost(spec, cluster.gpu()), planner(cluster, cost) {}
};

// Lazily-built map of world key -> planner entry. Thread-safe: the sweep
// workers race to create entries, but Planner::Plan itself is const and
// internally synchronized, so sharing an entry across workers is safe.
class PlannerMap {
 public:
  PlannerMap(const topo::ClusterSpec& base, const model::ModelSpec& spec)
      : base_(base), spec_(spec) {}

  // The unmodified recorded world.
  PlannerEntry* Base() { return Get("base", base_); }

  PlannerEntry* ScaledLink(bool intra, double factor) {
    topo::LinkSpec link = base_.link();
    if (intra) {
      link.intra_node_gbps *= factor;
    } else {
      link.inter_node_gbps *= factor;
    }
    const std::string key = StrFormat(
        "%s:%.17g", intra ? "nvlink" : "nic", factor);
    return Get(key, topo::ClusterSpec(base_.num_nodes(),
                                      base_.gpus_per_node(), base_.gpu(),
                                      link));
  }

  PlannerEntry* Grown(int extra_nodes) {
    const std::string key = StrFormat("standby:%d", extra_nodes);
    return Get(key, topo::ClusterSpec(base_.num_nodes() + extra_nodes,
                                      base_.gpus_per_node(), base_.gpu(),
                                      base_.link()));
  }

  // Cache traffic summed over every world created so far.
  solver::SolveCache::Stats TotalCacheStats() const {
    std::lock_guard<std::mutex> lock(mu_);
    solver::SolveCache::Stats total;
    for (const auto& [key, entry] : entries_) {
      const solver::SolveCache::Stats s = entry->planner.solve_cache().stats();
      total.hits += s.hits;
      total.misses += s.misses;
    }
    return total;
  }

 private:
  PlannerEntry* Get(const std::string& key, const topo::ClusterSpec& c) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      it = entries_
               .emplace(key, std::make_unique<PlannerEntry>(c, spec_))
               .first;
    }
    return it->second.get();
  }

  const topo::ClusterSpec base_;
  const model::ModelSpec spec_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<PlannerEntry>> entries_;
};

// Whether the recorded plan can meaningfully replay under this kind. The
// planner-targeted kinds (force_tp, add_standby_node) leave the executed
// world untouched, so their replay is definitionally the baseline.
bool ReplayApplies(scenario::CounterfactualKind kind) {
  return kind != scenario::CounterfactualKind::kForceTp &&
         kind != scenario::CounterfactualKind::kAddStandbyNode;
}

// Whether the planner can react to this kind's edit. Network PRICING is
// invisible to the planner's closed-form objective, so re-planning under a
// swapped net model is pure confirmation (same plan) and replay answers.
bool PlannerReacts(scenario::CounterfactualKind kind) {
  return kind != scenario::CounterfactualKind::kSwapNetModel;
}

// The edited world of one counterfactual.
struct Variant {
  PlannerEntry* entry = nullptr;
  straggler::Situation situation;
  net::NetModel net_model = net::NetModel::kAnalytic;
  int forced_tp = 0;
};

Result<Variant> BuildVariant(const scenario::Counterfactual& cf,
                             PlannerMap* planners,
                             const straggler::Situation& baseline,
                             net::NetModel base_model) {
  Variant v;
  v.entry = planners->Base();
  v.situation = baseline;
  v.net_model = base_model;
  switch (cf.kind) {
    case scenario::CounterfactualKind::kRemoveStraggler:
    case scenario::CounterfactualKind::kDampenStraggler: {
      if (!v.entry->cluster.ValidGpu(cf.gpu)) {
        return Status::InvalidArgument(
            StrFormat("gpu %d outside the recorded cluster (%d GPUs)",
                      cf.gpu, v.entry->cluster.num_gpus()));
      }
      if (cf.kind == scenario::CounterfactualKind::kRemoveStraggler) {
        v.situation.SetRate(cf.gpu, 1.0);
      } else {
        const double rate = baseline.rate(cf.gpu);
        v.situation.SetRate(cf.gpu, 1.0 + (rate - 1.0) * cf.factor);
      }
      break;
    }
    case scenario::CounterfactualKind::kScaleNic:
      v.entry = planners->ScaledLink(/*intra=*/false, cf.factor);
      break;
    case scenario::CounterfactualKind::kScaleNvlink:
      v.entry = planners->ScaledLink(/*intra=*/true, cf.factor);
      break;
    case scenario::CounterfactualKind::kForceTp:
      v.forced_tp = cf.tp;
      break;
    case scenario::CounterfactualKind::kAddStandbyNode: {
      v.entry = planners->Grown(cf.nodes);
      straggler::Situation grown(v.entry->cluster.num_gpus());
      for (int g = 0; g < baseline.num_gpus(); ++g) {
        grown.SetRate(g, baseline.rate(g));
      }
      v.situation = std::move(grown);
      break;
    }
    case scenario::CounterfactualKind::kSwapNetModel:
      v.net_model = cf.net_model;
      break;
  }
  return v;
}

}  // namespace

Result<RecordedRun> LoadRecordedRun(const obs::RunBundle& bundle,
                                    const std::string& source) {
  const std::string* scenario_text = bundle.Find(obs::kBundleScenarioName);
  if (scenario_text == nullptr) {
    return Status::NotFound(
        StrFormat("bundle has no %s member", obs::kBundleScenarioName));
  }
  RecordedRun run;
  MALLEUS_ASSIGN_OR_RETURN(run.spec,
                           scenario::ParseScenarioString(*scenario_text));
  MALLEUS_ASSIGN_OR_RETURN(run.resolved,
                           scenario::ResolveScenario(run.spec));
  if (const std::string* snap = bundle.Find(obs::kBundleSnapshotName)) {
    run.snapshot_text = *snap;
  }
  run.source = source.empty() ? bundle.producer : source;
  return run;
}

Result<RecordedRun> RecordedRunFromSpec(const scenario::ScenarioSpec& spec) {
  RecordedRun run;
  run.spec = spec;
  MALLEUS_ASSIGN_OR_RETURN(run.resolved, scenario::ResolveScenario(spec));
  run.source = spec.source.empty() ? "<spec>" : spec.source;
  return run;
}

Result<ReplayResult> ReplayPlanStep(const topo::ClusterSpec& cluster,
                                    const model::CostModel& cost,
                                    const plan::ParallelPlan& plan,
                                    const straggler::Situation& situation,
                                    net::NetModel net_model, uint64_t seed) {
  obs::TraceRecorder trace;
  sim::SimOptions sopts;
  sopts.timing_noise_stddev = 0.0;  // Replays must be deterministic.
  sopts.net_model = net_model;
  sopts.trace = &trace;
  Rng rng(seed);
  MALLEUS_ASSIGN_OR_RETURN(
      sim::StepResult step,
      sim::SimulateStep(cluster, cost, plan, situation, sopts, &rng));
  ReplayResult out;
  out.step_seconds = step.step_seconds;
  for (const obs::TraceEvent& e : trace.Events()) {
    if (e.phase != 'X') continue;
    const double seconds = e.duration_us / 1e6;
    if (e.category == "compute") {
      out.compute_span_seconds += seconds;
    } else if (e.category == "comm") {
      out.comm_span_seconds += seconds;
    } else if (e.category == "sync") {
      out.sync_span_seconds += seconds;
    }
  }
  return out;
}

Result<scenario::LabeledSituation> AnalyzedSituation(
    const RecordedRun& run, const std::string& phase) {
  MALLEUS_ASSIGN_OR_RETURN(
      std::vector<scenario::LabeledSituation> situations,
      scenario::ImpliedSituations(run.resolved));
  const scenario::LabeledSituation* chosen = nullptr;
  if (!phase.empty()) {
    for (const scenario::LabeledSituation& s : situations) {
      if (s.label == phase) chosen = &s;
    }
    if (chosen == nullptr) {
      return Status::InvalidArgument(
          "scenario implies no situation labeled " + phase);
    }
  } else {
    size_t most = 0;
    for (const scenario::LabeledSituation& s : situations) {
      const size_t stragglers = s.situation.Stragglers().size();
      if (chosen == nullptr || stragglers > most) {
        chosen = &s;
        most = stragglers;
      }
    }
    if (chosen == nullptr) {
      return Status::InvalidArgument("scenario implies no situations");
    }
  }
  return *chosen;
}

Result<obs::AttributionReport> RunWhatIf(
    const RecordedRun& run,
    const std::vector<scenario::Counterfactual>& grid,
    const WhatIfOptions& options) {
  MALLEUS_ASSIGN_OR_RETURN(const scenario::LabeledSituation analyzed,
                           AnalyzedSituation(run, options.phase));
  const scenario::LabeledSituation* chosen = &analyzed;

  PlannerMap planners(run.resolved.cluster, run.resolved.spec);
  PlannerEntry* base = planners.Base();

  // Re-derive the recorded plan. The planner is bit-identical at any
  // thread count, so this IS the plan the bundle snapshot rendered.
  core::PlannerOptions popts;
  popts.num_threads = 1;
  MALLEUS_ASSIGN_OR_RETURN(
      core::PlanResult baseline_plan,
      base->planner.Plan(chosen->situation, run.spec.batch, popts));
  const std::string baseline_signature = baseline_plan.plan.Signature();
  if (!run.snapshot_text.empty() &&
      run.snapshot_text.find("plan.signature = " + baseline_signature) ==
          std::string::npos) {
    return Status::InvalidArgument(
        "re-derived baseline plan signature " + baseline_signature +
        " does not appear in the bundle snapshot: the bundle was recorded "
        "by a different build or the scenario member was edited");
  }

  MALLEUS_ASSIGN_OR_RETURN(
      ReplayResult baseline,
      ReplayPlanStep(base->cluster, base->cost, baseline_plan.plan,
                     chosen->situation, run.resolved.net_model,
                     run.spec.seed));

  obs::AttributionReport report;
  report.title = "what-if attribution";
  report.scenario = run.source;
  report.phase = chosen->label;
  report.net_model = net::NetModelName(run.resolved.net_model);
  report.baseline_step_seconds = baseline.step_seconds;
  report.baseline_compute_seconds = baseline.compute_span_seconds;
  report.baseline_comm_seconds = baseline.comm_span_seconds;
  report.baseline_sync_seconds = baseline.sync_span_seconds;

  // Sweep: each worker writes only rows[i]; the shared planner entries are
  // internally synchronized.
  std::vector<obs::AttributionRow> rows(grid.size());
  obs::MetricsRegistry* metrics = &obs::MetricsRegistry::Current();
  const auto evaluate = [&, metrics](int64_t i) {
    // Re-install the caller's registry on the pool worker so the nested
    // planner/replay metrics stay with this sweep's request.
    obs::MetricsScope metrics_scope(metrics);
    const scenario::Counterfactual& cf = grid[i];
    obs::AttributionRow& row = rows[i];
    row.cause = cf.Label();
    row.kind = scenario::CounterfactualKindName(cf.kind);
    row.replay_step_seconds = kNaN;
    row.replan_step_seconds = kNaN;
    row.compute_delta_seconds = kNaN;
    row.comm_delta_seconds = kNaN;
    row.sync_delta_seconds = kNaN;

    Result<Variant> variant =
        BuildVariant(cf, &planners, chosen->situation,
                     run.resolved.net_model);
    if (!variant.ok()) {
      row.error = variant.status().ToString();
      return;
    }
    const bool replay_applies = ReplayApplies(cf.kind);
    const bool want_replan =
        !replay_applies || (options.replan && PlannerReacts(cf.kind));

    // The row is credited with the BEST step time the system could reach
    // in the edited world: Malleus is malleable, so the recorded plan
    // often routes AROUND a severe straggler (it sits on the standby
    // list) and fixed-plan replay attributes ~0 to healing it — the
    // replan column is what reveals the capacity that straggler costs.
    bool have_primary = false;
    ReplayResult primary;
    if (replay_applies) {
      Result<ReplayResult> replay = ReplayPlanStep(
          variant->entry->cluster, variant->entry->cost, baseline_plan.plan,
          variant->situation, variant->net_model, run.spec.seed);
      if (!replay.ok()) {
        row.error = replay.status().ToString();
        return;
      }
      row.replay_step_seconds = replay->step_seconds;
      primary = *replay;
      have_primary = true;
    }

    if (want_replan) {
      core::PlannerOptions vpopts;
      vpopts.num_threads = 1;
      vpopts.forced_tp = variant->forced_tp;
      Result<core::PlanResult> replanned = variant->entry->planner.Plan(
          variant->situation, run.spec.batch, vpopts);
      if (!replanned.ok()) {
        // The replay column stands for world edits; a planner edit has no
        // fallback and the row carries the failure.
        if (!replay_applies) {
          row.error = replanned.status().ToString();
          return;
        }
      } else {
        row.plan_signature = replanned->plan.Signature();
        row.plan_changed = row.plan_signature != baseline_signature;
        Result<ReplayResult> replan_step = ReplayPlanStep(
            variant->entry->cluster, variant->entry->cost, replanned->plan,
            variant->situation, variant->net_model, run.spec.seed);
        if (!replan_step.ok()) {
          if (!replay_applies) {
            row.error = replan_step.status().ToString();
            return;
          }
        } else {
          row.replan_step_seconds = replan_step->step_seconds;
          if (!have_primary ||
              replan_step->step_seconds < primary.step_seconds) {
            primary = *replan_step;
          }
          have_primary = true;
        }
      }
      if (!have_primary) {
        row.error = "re-plan produced no step time";
        return;
      }
    }

    row.attributed_seconds = baseline.step_seconds - primary.step_seconds;
    row.attributed_fraction =
        baseline.step_seconds > 0.0
            ? row.attributed_seconds / baseline.step_seconds
            : 0.0;
    row.compute_delta_seconds =
        baseline.compute_span_seconds - primary.compute_span_seconds;
    row.comm_delta_seconds =
        baseline.comm_span_seconds - primary.comm_span_seconds;
    row.sync_delta_seconds =
        baseline.sync_span_seconds - primary.sync_span_seconds;
  };

  const int requested = options.num_threads > 0
                            ? options.num_threads
                            : exec::DefaultPlannerThreads();
  const int workers = static_cast<int>(
      std::min<size_t>(requested, std::max<size_t>(grid.size(), 1)));
  if (workers > 1) {
    exec::ThreadPool pool(workers);
    exec::ParallelFor(&pool, static_cast<int64_t>(grid.size()), evaluate);
  } else {
    for (size_t i = 0; i < grid.size(); ++i) {
      evaluate(static_cast<int64_t>(i));
    }
  }

  // Deterministic ranking: evaluated rows by attributed seconds
  // descending, ties (and error rows, which rank last) by grid order.
  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&rows](size_t a, size_t b) {
    const bool a_ok = rows[a].error.empty();
    const bool b_ok = rows[b].error.empty();
    if (a_ok != b_ok) return a_ok;
    if (!a_ok) return false;
    return rows[a].attributed_seconds > rows[b].attributed_seconds;
  });
  report.rows.reserve(rows.size());
  for (size_t i : order) report.rows.push_back(std::move(rows[i]));

  const solver::SolveCache::Stats cache = planners.TotalCacheStats();
  report.cache_hits = cache.hits;
  report.cache_misses = cache.misses;

  // Sweep telemetry for the process-global registry (dashboards, bench
  // snapshots). Deliberately NOT part of the report struct: report bytes
  // must stay interleaving-independent.
  auto& registry = obs::MetricsRegistry::Current();
  registry.GetCounter("whatif.sweeps")->Increment();
  registry.GetCounter("whatif.counterfactuals")
      ->Increment(static_cast<double>(grid.size()));
  obs::Histogram* attributed =
      registry.GetHistogram("whatif.attributed_seconds");
  int64_t errors = 0;
  for (const obs::AttributionRow& row : report.rows) {
    if (row.error.empty()) {
      attributed->Observe(row.attributed_seconds);
    } else {
      ++errors;
    }
  }
  registry.GetCounter("whatif.row_errors")
      ->Increment(static_cast<double>(errors));
  return report;
}

}  // namespace whatif
}  // namespace malleus
