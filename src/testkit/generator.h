// Seeded random scenario generation for the fuzz harness.
//
// The generator produces syntactically valid scenario::ScenarioSpecs whose
// distribution is deliberately biased toward the boundary regions where the
// planner/simulator stack historically breaks: single-GPU nodes, degenerate
// TP groups (gpus_per_node not a power of two), maximum straggler levels,
// duplicate straggler entries, micro-batch counts of 1 and far beyond the
// cluster, and models too large for the cluster (so infeasibility paths are
// exercised, not just happy paths).
//
// Determinism contract: the generated spec is a pure function of the Rng
// state — GenerateScenario(seeded rng) is byte-stable across runs, builds
// and thread counts, which is what makes `malleus_fuzz --seed=S`
// reproducible and its report hashable.

#ifndef MALLEUS_TESTKIT_GENERATOR_H_
#define MALLEUS_TESTKIT_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "scenario/scenario.h"

namespace malleus {
namespace testkit {

struct GeneratorOptions {
  /// Hard caps keeping one fuzz run sub-second on the tiny model.
  int max_nodes = 8;
  int max_gpus_per_node = 8;
  int64_t max_batch = 1024;
  /// Probability of picking a real paper model (32b/70b/110b) instead of
  /// the tiny test model. Big models mostly exercise infeasibility and the
  /// memory-constraint boundaries; tiny keeps the solver sweeps fast.
  double big_model_prob = 0.15;
  /// Probability of a straggler entry using an explicit rate (GPU:xR)
  /// instead of a level (GPU:K).
  double rate_entry_prob = 0.35;
  /// Probability of one entry marking a completely failed GPU (rate inf).
  double failed_gpu_prob = 0.03;
  /// Probability of attaching a `dynamic = { ... }` block (a seeded
  /// event-trace run through malleus::policy). 1.0 forces one on every
  /// scenario (`malleus_fuzz --dynamic`). Generated blocks keep the
  /// expected event count small so one oracle evaluation stays fast, but
  /// deliberately sample the saturation and never-heal boundaries.
  double dynamic_prob = 0.25;
};

/// Draws one scenario from `rng`. Never fails: every output parses and
/// serializes (round-trip), though it may be semantically infeasible on
/// purpose (that is a boundary the oracles must survive, not an error).
scenario::ScenarioSpec GenerateScenario(Rng* rng,
                                        const GeneratorOptions& options = {});

/// Mixes a base seed and a run index into one Rng seed. SplitMix-style so
/// consecutive runs land in unrelated states.
uint64_t MixSeed(uint64_t seed, uint64_t run);

}  // namespace testkit
}  // namespace malleus

#endif  // MALLEUS_TESTKIT_GENERATOR_H_
