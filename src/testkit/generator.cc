#include "testkit/generator.h"

#include <algorithm>
#include <vector>

namespace malleus {
namespace testkit {

namespace {

// Picks an element with the weight distribution `weights` (parallel to
// `values`); weights need not sum to 1.
template <typename T>
T Weighted(Rng* rng, const std::vector<T>& values,
           const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double x = rng->Uniform() * total;
  for (size_t i = 0; i < values.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return values[i];
  }
  return values.back();
}

}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t run) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (run + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

scenario::ScenarioSpec GenerateScenario(Rng* rng,
                                        const GeneratorOptions& options) {
  scenario::ScenarioSpec spec;

  // Model: mostly tiny (fast solver sweeps); occasionally a paper model,
  // which on a small cluster probes the infeasible/memory-bound boundary.
  if (rng->Uniform() < options.big_model_prob) {
    spec.model = Weighted<std::string>(rng, {"32b", "70b", "110b"},
                                       {0.6, 0.3, 0.1});
  } else {
    spec.model = "tiny";
  }

  // Cluster shape, biased to the degenerate corners: single-node clusters,
  // single-GPU nodes, and non-power-of-two nodes whose grouping must fall
  // back to mixed power-of-two compositions (7 -> 4+2+1).
  spec.nodes = std::min<int>(
      options.max_nodes,
      Weighted<int>(rng, {1, 2, 3, 4, 8}, {0.3, 0.25, 0.1, 0.25, 0.1}));
  spec.gpus_per_node = std::min<int>(
      options.max_gpus_per_node,
      Weighted<int>(rng, {1, 2, 3, 4, 5, 7, 8},
                    {0.25, 0.1, 0.07, 0.15, 0.04, 0.04, 0.35}));

  // Batch: 1 (degenerate 1F1B), around the paper's 64, or huge (more
  // micro-batches than the division search normally sees).
  spec.batch = std::min<int64_t>(
      options.max_batch,
      Weighted<int64_t>(rng, {1, 2, 4, 8, 16, 64, 256, 1024},
                        {0.18, 0.08, 0.08, 0.12, 0.12, 0.22, 0.1, 0.1}));
  spec.steps = static_cast<int>(rng->UniformInt(1, 2));
  spec.seed = rng->Next() >> 1;  // Keep below 2^63 so it round-trips.

  spec.net_model = Weighted<std::string>(rng, {"", "analytic", "flow"},
                                         {0.5, 0.25, 0.25});

  // Hierarchical fabrics: mostly flat (the seed shape), with fat-tree and
  // rail draws so route construction, spine contention, and the fabric
  // lint/resolve agreement get fuzzed. Pod sizes that do not divide
  // `nodes` are drawn on purpose — lint must flag them and resolve must
  // refuse them, never crash.
  spec.fabric = Weighted<std::string>(rng, {"", "flat", "fat-tree", "rail"},
                                      {0.55, 0.05, 0.25, 0.15});
  if (spec.fabric == "fat-tree") {
    spec.nodes_per_pod =
        Weighted<int>(rng, {1, 2, 3, 4}, {0.3, 0.35, 0.1, 0.25});
  }
  if (!spec.fabric.empty() && spec.fabric != "flat" &&
      rng->Uniform() < 0.6) {
    spec.oversubscription =
        Weighted<double>(rng, {1.0, 2.0, 4.0, 8.0}, {0.3, 0.3, 0.3, 0.1});
  }

  // Trace phases: empty (overlay-only), or a few canonical situations with
  // extra weight on the multi-straggler ones (s5/s6 stress whole nodes).
  const int num_phases = static_cast<int>(rng->UniformInt(0, 3));
  for (int i = 0; i < num_phases; ++i) {
    spec.phases.push_back(Weighted<std::string>(
        rng, {"normal", "s1", "s2", "s3", "s4", "s5", "s6"},
        {0.2, 0.12, 0.12, 0.12, 0.12, 0.16, 0.16}));
  }

  // Custom straggler overlay. Duplicates and already-straggling GPUs are
  // allowed on purpose (last entry wins; the parser and resolver must not
  // care). Levels are biased to the extremes (1 and the paper's max 8).
  const int num_gpus = spec.nodes * spec.gpus_per_node;
  const int num_stragglers = static_cast<int>(rng->UniformInt(0, 5));
  for (int i = 0; i < num_stragglers; ++i) {
    scenario::StragglerEntry entry;
    entry.gpu =
        static_cast<topo::GpuId>(rng->UniformInt(0, num_gpus - 1));
    if (rng->Uniform() < options.failed_gpu_prob) {
      entry.is_rate = true;
      entry.rate = straggler::kFailedRate;  // Serializes as "inf".
    } else if (rng->Uniform() < options.rate_entry_prob) {
      entry.is_rate = true;
      // The fitted model tops out at x = 1 + 1.44 * 8 = 12.52; sample a
      // bit past it so the rate-above-fit lint boundary is exercised.
      entry.rate = rng->Uniform(1.0, 14.0);
    } else {
      entry.level =
          static_cast<int>(Weighted<int>(rng, {0, 1, 2, 3, 8},
                                         {0.1, 0.3, 0.15, 0.15, 0.3}));
    }
    spec.stragglers.push_back(entry);
  }

  // Dynamic fault-tolerance runs: short traces (the policy runner replans
  // on events, so event count — roughly gpus * rate * horizon — is what
  // costs time), with occasional draws at the saturation and never-heal
  // boundaries the lint pass warns about.
  if (rng->Uniform() < options.dynamic_prob) {
    spec.dynamic.enabled = true;
    spec.dynamic.iterations = Weighted<int>(rng, {10, 50, 150},
                                            {0.4, 0.4, 0.2});
    spec.dynamic.straggle_rate = Weighted<double>(
        rng, {0.0, 0.002, 0.01, 0.05}, {0.1, 0.4, 0.35, 0.15});
    spec.dynamic.fail_rate = Weighted<double>(rng, {0.0, 0.0005, 0.005},
                                              {0.5, 0.35, 0.15});
    spec.dynamic.node_fail_rate =
        Weighted<double>(rng, {0.0, 0.001}, {0.7, 0.3});
    spec.dynamic.recover_iters =
        Weighted<int>(rng, {0, 10, 40}, {0.15, 0.45, 0.4});
    spec.dynamic.flap_prob =
        Weighted<double>(rng, {0.0, 0.3, 0.9}, {0.5, 0.3, 0.2});
    spec.dynamic.flap_period = Weighted<int>(rng, {5, 25}, {0.5, 0.5});
    spec.dynamic.diurnal_amplitude =
        Weighted<double>(rng, {0.0, 0.5, 1.0}, {0.5, 0.3, 0.2});
    spec.dynamic.diurnal_period = Weighted<int>(rng, {20, 100}, {0.5, 0.5});
    spec.dynamic.max_level = static_cast<int>(rng->UniformInt(1, 8));
    spec.dynamic.seed = rng->Next() >> 1;
  }
  return spec;
}

}  // namespace testkit
}  // namespace malleus
