// Repro handling for oracle violations: deterministic greedy scenario
// minimization and self-contained `.scenario` repro rendering.
//
// When an oracle fires, the raw generated scenario is usually bigger than
// the bug needs. MinimizeScenario shrinks it along a fixed schedule
// (smaller model, fewer nodes/GPUs, smaller batch, dropped phases and
// straggler entries, a disabled or tamer dynamic block), keeping a shrink
// only when the SAME oracle still
// fires on the shrunk spec. The result plus the violation metadata is
// rendered into a standalone `.scenario` file that `malleus_fuzz
// --replay=<file>` re-runs: the repro carries everything needed (the
// minimized spec and the oracle options) so reproduction does not depend
// on the fuzzer's seed stream.

#ifndef MALLEUS_TESTKIT_REPRO_H_
#define MALLEUS_TESTKIT_REPRO_H_

#include <cstdint>
#include <string>

#include "scenario/scenario.h"
#include "testkit/oracle.h"

namespace malleus {
namespace testkit {

/// True iff RunOracles(spec, options) reports a violation of `oracle`
/// (exact name match). Empty `oracle` matches any violation.
bool StillViolates(const scenario::ScenarioSpec& spec,
                   const std::string& oracle, const OracleOptions& options);

/// Greedily shrinks `spec` while `oracle` keeps firing. Deterministic:
/// fixed shrink order, first-accepted-wins, repeated to a fixpoint.
/// `max_evals` caps the number of oracle evaluations spent shrinking;
/// `evals` (optional) reports how many were used.
scenario::ScenarioSpec MinimizeScenario(const scenario::ScenarioSpec& spec,
                                        const std::string& oracle,
                                        const OracleOptions& options,
                                        int max_evals = 200,
                                        int* evals = nullptr);

/// Renders a self-contained repro file: a `#`-comment header naming the
/// violated oracle, its message, the provenance (base seed + run index)
/// and the oracle options, followed by the serialized minimized spec.
/// The output parses with ParseScenarioString (comments are syntax).
std::string RenderRepro(const scenario::ScenarioSpec& minimized,
                        const Violation& violation, uint64_t base_seed,
                        uint64_t run_index, const OracleOptions& options);

}  // namespace testkit
}  // namespace malleus

#endif  // MALLEUS_TESTKIT_REPRO_H_
