#include "testkit/repro.h"

#include <utility>
#include <vector>

#include "common/string_util.h"
#include "net/fabric.h"

namespace malleus {
namespace testkit {

bool StillViolates(const scenario::ScenarioSpec& spec,
                   const std::string& oracle, const OracleOptions& options) {
  const OracleOutcome outcome = RunOracles(spec, options);
  for (const Violation& v : outcome.violations) {
    if (oracle.empty() || v.oracle == oracle) return true;
  }
  return false;
}

namespace {

// Applies one candidate shrink; returns false when the shrink would not
// change the spec (so the caller skips the oracle evaluation).
using Shrink = bool (*)(scenario::ScenarioSpec*);

bool ShrinkModel(scenario::ScenarioSpec* s) {
  if (s->model == "tiny") return false;
  s->model = "tiny";
  return true;
}
bool ShrinkNodesToOne(scenario::ScenarioSpec* s) {
  if (s->nodes <= 1) return false;
  s->nodes = 1;
  return true;
}
bool ShrinkNodesHalf(scenario::ScenarioSpec* s) {
  if (s->nodes <= 1) return false;
  s->nodes /= 2;
  return true;
}
bool ShrinkGpusToOne(scenario::ScenarioSpec* s) {
  if (s->gpus_per_node <= 1) return false;
  s->gpus_per_node = 1;
  return true;
}
bool ShrinkGpusHalf(scenario::ScenarioSpec* s) {
  if (s->gpus_per_node <= 1) return false;
  s->gpus_per_node /= 2;
  return true;
}
bool ShrinkBatchToOne(scenario::ScenarioSpec* s) {
  if (s->batch <= 1) return false;
  s->batch = 1;
  return true;
}
bool ShrinkBatchHalf(scenario::ScenarioSpec* s) {
  if (s->batch <= 1) return false;
  s->batch /= 2;
  return true;
}
bool ShrinkSteps(scenario::ScenarioSpec* s) {
  if (s->steps <= 1) return false;
  s->steps = 1;
  return true;
}
bool ShrinkNetModel(scenario::ScenarioSpec* s) {
  if (s->net_model.empty()) return false;
  s->net_model.clear();
  return true;
}
bool ShrinkDropAllPhases(scenario::ScenarioSpec* s) {
  if (s->phases.empty()) return false;
  s->phases.clear();
  return true;
}
bool ShrinkDropLastPhase(scenario::ScenarioSpec* s) {
  if (s->phases.empty()) return false;
  s->phases.pop_back();
  return true;
}
bool ShrinkDropAllStragglers(scenario::ScenarioSpec* s) {
  if (s->stragglers.empty()) return false;
  s->stragglers.clear();
  return true;
}
bool ShrinkDropLastStraggler(scenario::ScenarioSpec* s) {
  if (s->stragglers.empty()) return false;
  s->stragglers.pop_back();
  return true;
}
bool ShrinkDynamicOff(scenario::ScenarioSpec* s) {
  if (!s->dynamic.enabled) return false;
  s->dynamic = scenario::DynamicSpec();
  return true;
}
bool ShrinkDynamicIterationsHalf(scenario::ScenarioSpec* s) {
  if (!s->dynamic.enabled || s->dynamic.iterations <= 1) return false;
  s->dynamic.iterations /= 2;
  return true;
}
bool ShrinkDynamicNoFail(scenario::ScenarioSpec* s) {
  if (!s->dynamic.enabled ||
      (s->dynamic.fail_rate == 0.0 && s->dynamic.node_fail_rate == 0.0)) {
    return false;
  }
  s->dynamic.fail_rate = 0.0;
  s->dynamic.node_fail_rate = 0.0;
  return true;
}
bool ShrinkDynamicNoFlap(scenario::ScenarioSpec* s) {
  if (!s->dynamic.enabled || s->dynamic.flap_prob == 0.0) return false;
  s->dynamic.flap_prob = 0.0;
  return true;
}
bool ShrinkDynamicNoDiurnal(scenario::ScenarioSpec* s) {
  if (!s->dynamic.enabled || s->dynamic.diurnal_amplitude == 0.0) {
    return false;
  }
  s->dynamic.diurnal_amplitude = 0.0;
  return true;
}

// Cheapest-first: whole-field clears before halvings, so a spec whose bug
// survives on the trivial shape collapses in a handful of evaluations.
constexpr Shrink kShrinks[] = {
    ShrinkModel,          ShrinkDropAllPhases,    ShrinkDropAllStragglers,
    ShrinkDynamicOff,     ShrinkNodesToOne,       ShrinkGpusToOne,
    ShrinkBatchToOne,     ShrinkSteps,            ShrinkNetModel,
    ShrinkNodesHalf,      ShrinkGpusHalf,         ShrinkBatchHalf,
    ShrinkDropLastPhase,  ShrinkDropLastStraggler,
    ShrinkDynamicIterationsHalf, ShrinkDynamicNoFail,
    ShrinkDynamicNoFlap,  ShrinkDynamicNoDiurnal,
};

}  // namespace

scenario::ScenarioSpec MinimizeScenario(const scenario::ScenarioSpec& spec,
                                        const std::string& oracle,
                                        const OracleOptions& options,
                                        int max_evals, int* evals) {
  scenario::ScenarioSpec best = spec;
  int used = 0;
  bool shrunk = true;
  while (shrunk && used < max_evals) {
    shrunk = false;
    for (Shrink shrink : kShrinks) {
      if (used >= max_evals) break;
      scenario::ScenarioSpec candidate = best;
      if (!shrink(&candidate)) continue;
      ++used;
      if (StillViolates(candidate, oracle, options)) {
        best = std::move(candidate);
        shrunk = true;
      }
    }
  }
  if (evals != nullptr) *evals = used;
  return best;
}

std::string RenderRepro(const scenario::ScenarioSpec& minimized,
                        const Violation& violation, uint64_t base_seed,
                        uint64_t run_index, const OracleOptions& options) {
  std::string out;
  out += "# malleus_fuzz oracle violation repro\n";
  out += StrFormat("# oracle: %s\n", violation.oracle.c_str());
  // Violation messages are single-line by construction (StrFormat'd), but
  // keep the comment well-formed if one ever carries a newline.
  std::string message = violation.message;
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  out += StrFormat("# message: %s\n", message.c_str());
  out += StrFormat("# found by: --seed=%llu run %llu\n",
                   static_cast<unsigned long long>(base_seed),
                   static_cast<unsigned long long>(run_index));
  out += StrFormat("# oracle options: sim-net-model=%s%s\n",
                   net::NetModelName(options.sim_net_model),
                   options.inject_perturb_estimate
                       ? " --inject=perturb-estimate"
                       : "");
  out += StrFormat("# replay: malleus_fuzz --replay=<this file>%s\n",
                   options.inject_perturb_estimate
                       ? " --inject=perturb-estimate"
                       : "");
  out += scenario::SerializeScenario(minimized);
  return out;
}

}  // namespace testkit
}  // namespace malleus
