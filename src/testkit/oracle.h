// The property-oracle engine: machine-checked invariants of the
// planner/estimator/simulator stack, evaluated on one scenario.
//
// Three oracle families (ISSUE 5 / DESIGN.md §11):
//
//   differential — two implementations that must agree exactly:
//     differential.planner-threads   Plan() at 1 worker == Plan() at 4
//     differential.solve-cache       cache off == cold cache == warm cache
//     differential.net-model         flow grad-sync >= analytic, equal when
//                                    no two flows share a fabric link
//     differential.validate-lint     ParallelPlan::Validate verdict ==
//                                    error-level lint verdict, on the
//                                    chosen plan and on broken mutants
//     differential.sim-replay        the noisy simulator replayed with the
//                                    same Rng seed is bit-identical (under
//                                    OracleOptions::sim_net_model)
//     differential.flowsim-incremental  the incremental max–min FlowSim ==
//                                    the legacy from-scratch engine bitwise
//                                    (outcomes, makespan, link usage) on
//                                    the plan's grad-sync lowering
//
//   metamorphic — a known input transformation with a known output bound:
//     metamorphic.straggler-monotone-plan    worsening one GPU's rate never
//                                            improves a FIXED plan's
//                                            estimate (exact)
//     metamorphic.straggler-monotone-replan  re-planning under the worse
//                                            rates still succeeds
//                                            (feasibility is
//                                            rate-independent) and the new
//                                            plan obeys the same exact
//                                            fixed-plan monotonicity
//     metamorphic.standby-monotone           adding a node keeps the
//                                            cluster plannable, and a node
//                                            of FAILED newcomers is
//                                            bitwise-equivalent to no node
//                                            at all
//     metamorphic.bandwidth-scaling          scaling every link bandwidth
//                                            by k scales zero-latency comm
//                                            terms by exactly 1/k
//     whatif.remove-straggler-monotone       the what-if engine's fixed-plan
//                                            replay under the analytic model
//                                            never gets SLOWER when an
//                                            injected straggler is removed
//                                            (1F1B event times are monotone
//                                            in task durations; analytic
//                                            only — max–min sharing under
//                                            the flow model is not provably
//                                            monotone)
//
//   simulator invariants:
//     sim.invariants            finite, nonnegative span times; step time
//                               dominates every pipeline; flow >= analytic
//     sim.event-graph           every 1F1B schedule is well-formed and
//                               deadlock-free (lint::LintEventGraph)
//     net.flow-conservation     FlowSim moves exactly the bytes the
//                               grad-sync lowering submitted; no link
//                               carries negative bytes or overcommits
//
//   dynamic (scenarios with a `dynamic = { ... }` block; malleus::policy):
//     dynamic.engine-state-valid   after every applied cluster event the
//                                  installed plan validates and schedules
//                                  no failed GPU, whatever action the
//                                  adaptive selector chose
//     dynamic.goodput-conservation wall == training + transition exactly
//                                  across policy switches; goodput finite
//                                  and nonnegative; a run with no stop
//                                  reason covers the whole trace
//
// An unplannable scenario (infeasible cluster/model combination) is NOT a
// violation: the planner oracles then check that the failure itself is
// deterministic across thread counts and cache modes, and the rest skip.

#ifndef MALLEUS_TESTKIT_ORACLE_H_
#define MALLEUS_TESTKIT_ORACLE_H_

#include <string>
#include <vector>

#include "net/fabric.h"
#include "scenario/scenario.h"

namespace malleus {
namespace testkit {

struct OracleOptions {
  /// Net model the noisy simulator invariant pass runs under (both models
  /// are always covered by the noise-free differential pass).
  net::NetModel sim_net_model = net::NetModel::kAnalytic;
  /// Test hook: deliberately mis-report the perturbed estimate in
  /// metamorphic.straggler-monotone-plan so the violation -> minimize ->
  /// repro -> replay path can be exercised end to end (malleus_fuzz
  /// --inject=perturb-estimate).
  bool inject_perturb_estimate = false;
};

struct Violation {
  std::string oracle;   ///< e.g. "differential.planner-threads".
  std::string message;  ///< Human-readable describing the disagreement.
};

struct OracleOutcome {
  /// Whether the base scenario resolved and planned at all.
  bool resolved = false;
  bool planned = false;
  /// The planner/resolver error when not (not a violation by itself).
  std::string error;
  /// Oracles that actually ran (for coverage accounting in the report).
  std::vector<std::string> oracles_run;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

/// Runs every applicable oracle on `spec`. Deterministic: identical specs
/// and options produce identical outcomes (including message text).
OracleOutcome RunOracles(const scenario::ScenarioSpec& spec,
                         const OracleOptions& options = {});

}  // namespace testkit
}  // namespace malleus

#endif  // MALLEUS_TESTKIT_ORACLE_H_
